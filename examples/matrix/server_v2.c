struct config_int { char *name; int *variable; int min; int max; };
int worker_threads = 4;
int idle_timeout = 60;
int cache_kb = 2048;
int cache_ttl = 300;
int log_format = 0;
int use_cache = 1;
int slots[64];
int started = 0;
struct config_int int_options[] = {
  { "worker_threads", &worker_threads, 1, 8 },
  { "idle_timeout", &idle_timeout, 0, 3600 },
  { "cache_kb", &cache_kb, 64, 1048576 },
  { "cache_ttl", &cache_ttl, 1, 86400 },
};
void parse_extra(char *key, char *value) {
  if (!strcasecmp(key, "log_format")) {
    if (!strcmp(value, "plain")) { log_format = 0; }
    else if (!strcmp(value, "json")) { log_format = 1; }
  }
  if (!strcasecmp(key, "use_cache")) {
    if (!strcasecmp(value, "on")) { use_cache = 1; } else { use_cache = 0; }
  }
}
int handle_config_line(char *key, char *value) {
  int i;
  for (i = 0; i < 4; i++) {
    if (!strcmp(int_options[i].name, key)) {
      *int_options[i].variable = atoi(value);
      return 0;
    }
  }
  parse_extra(key, value);
  return 0;
}
int server_init() {
  int i;
  for (i = 0; i < worker_threads; i++) { slots[i] = 1; }
  long bytes = cache_kb * 1024;
  malloc(bytes);
  sleep(idle_timeout);
  if (use_cache != 0) {
    sleep(cache_ttl);
  }
  started = 1;
  return 0;
}
int test_started() { return started; }
