worker_threads = 4
idle_timeout = 60
cache_kb = 2048
cache_ttl = 300
log_format = plain
use_cache = on
