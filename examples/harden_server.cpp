// Harden a server against misconfigurations: the full SPEX-INJ loop on the
// OpenLDAP corpus target — including the paper's Figure 2 scenario, where
// "listener-threads" above a hard-coded cap of 16 crashes the server with
// nothing but "Segmentation fault".
//
// Build & run:  ./build/examples/harden_server
#include <iostream>

#include "src/corpus/pipeline.h"

int main() {
  spex::DiagnosticEngine diags;
  spex::ApiRegistry apis = spex::ApiRegistry::BuiltinC();
  spex::TargetAnalysis analysis =
      spex::AnalyzeTarget(spex::FindTarget("openldap"), apis, &diags);
  if (diags.HasErrors()) {
    std::cerr << diags.Render();
    return 1;
  }

  std::cout << "Target: " << analysis.bundle.display_name << " ("
            << analysis.bundle.param_count << " parameters, "
            << analysis.constraints.TotalConstraints() << " inferred constraints)\n\n";

  spex::CampaignSummary summary = spex::RunCampaign(analysis);
  std::cout << "Injection campaign: " << summary.results.size() << " misconfigurations, "
            << summary.TotalVulnerabilities() << " vulnerabilities at "
            << summary.UniqueVulnerabilityLocations() << " source locations.\n\n";

  std::cout << "Error reports for the developer (vulnerabilities only):\n";
  int shown = 0;
  for (const spex::InjectionResult& result : summary.results) {
    if (!IsVulnerability(result.category) || shown >= 12) {
      continue;
    }
    ++shown;
    std::cout << "\n[" << shown << "] " << ReactionCategoryName(result.category) << "\n";
    std::cout << "    injected: " << result.config.Describe() << "\n";
    if (!result.detail.empty()) {
      std::cout << "    observed: " << result.detail << "\n";
    }
    if (result.logs.empty()) {
      std::cout << "    system log: (empty — the user gets no clue)\n";
    } else {
      for (size_t i = 0; i < result.logs.size() && i < 2; ++i) {
        std::cout << "    system log: " << result.logs[i] << "\n";
      }
    }
    std::cout << "    fix at: " << result.vulnerability_loc.ToString() << "\n";
  }

  std::cout << "\nThe Figure 2 crash, specifically:\n";
  for (const spex::InjectionResult& result : summary.results) {
    if (result.config.param == "listener-threads" &&
        result.category == spex::ReactionCategory::kCrashHang) {
      std::cout << "  listener-threads = " << result.config.value << "  ->  " << result.detail
                << "\n";
    }
  }
  return 0;
}
