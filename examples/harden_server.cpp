// Harden a server against misconfigurations: the full SPEX-INJ loop on the
// OpenLDAP corpus target — including the paper's Figure 2 scenario, where
// "listener-threads" above a hard-coded cap of 16 crashes the server with
// nothing but "Segmentation fault".
//
// Build & run:  ./build/example_harden_server
#include <iostream>

#include "src/api/session.h"

namespace {

// Streaming progress through the façade's observer: a long campaign inside
// a service would ship these to a dashboard instead of stderr.
class ProgressObserver : public spex::CampaignObserver {
 public:
  void OnCampaignBegin(size_t total_runs) override { total_ = total_runs; }
  void OnRunComplete(size_t index, const spex::InjectionResult& result) override {
    (void)index;
    (void)result;
    if (++completed_ % 50 == 0) {
      std::cerr << "  ... " << completed_ << "/" << total_ << " misconfigurations injected\n";
    }
  }

 private:
  size_t total_ = 0;
  size_t completed_ = 0;
};

}  // namespace

int main() {
  spex::Session session;
  spex::Target* target = session.LoadTarget("openldap");
  if (target == nullptr) {
    std::cerr << session.RenderDiagnostics();
    return 1;
  }
  const spex::TargetAnalysis& analysis = target->analysis();

  std::cout << "Target: " << analysis.bundle.display_name << " ("
            << analysis.bundle.param_count << " parameters, "
            << analysis.constraints.TotalConstraints() << " inferred constraints)\n\n";

  ProgressObserver progress;
  spex::CampaignSummary summary = target->RunCampaign({}, &progress);
  std::cout << "Injection campaign: " << summary.results.size() << " misconfigurations, "
            << summary.TotalVulnerabilities() << " vulnerabilities at "
            << summary.UniqueVulnerabilityLocations() << " source locations.\n\n";

  std::cout << "Error reports for the developer (vulnerabilities only):\n";
  int shown = 0;
  for (const spex::InjectionResult& result : summary.results) {
    if (!IsVulnerability(result.category) || shown >= 12) {
      continue;
    }
    ++shown;
    std::cout << "\n[" << shown << "] " << ReactionCategoryName(result.category) << "\n";
    std::cout << "    injected: " << result.config.Describe() << "\n";
    if (!result.detail.empty()) {
      std::cout << "    observed: " << result.detail << "\n";
    }
    if (result.logs.empty()) {
      std::cout << "    system log: (empty — the user gets no clue)\n";
    } else {
      for (size_t i = 0; i < result.logs.size() && i < 2; ++i) {
        std::cout << "    system log: " << result.logs[i] << "\n";
      }
    }
    std::cout << "    fix at: " << result.vulnerability_loc.ToString() << "\n";
  }

  std::cout << "\nThe Figure 2 crash, specifically:\n";
  for (const spex::InjectionResult& result : summary.results) {
    if (result.config.param == "listener-threads" &&
        result.category == spex::ReactionCategory::kCrashHang) {
      std::cout << "  listener-threads = " << result.config.value << "  ->  " << result.detail
                << "\n";
    }
  }
  return 0;
}
