// Audit a system's configuration design for error-prone patterns — the
// Squid interaction from Section 5 of the paper: silent overruling of
// boolean values, unsafe atoi/sscanf parsing, case-sensitivity chaos, and
// undocumented constraints.
//
// Build & run:  ./build/example_design_audit
#include <iostream>
#include <map>

#include "src/api/session.h"
#include "src/design/detectors.h"

int main() {
  spex::Session session;
  spex::Target* target = session.LoadTarget("squid");
  if (target == nullptr) {
    std::cerr << session.RenderDiagnostics();
    return 1;
  }
  const spex::TargetAnalysis& analysis = target->analysis();

  spex::DesignAuditor auditor(analysis.constraints, analysis.manual);
  std::vector<spex::DesignFinding> findings = auditor.Audit();

  std::map<spex::DesignFlawKind, int> per_kind;
  for (const spex::DesignFinding& finding : findings) {
    ++per_kind[finding.kind];
  }
  std::cout << "Design audit of " << analysis.bundle.display_name << ": " << findings.size()
            << " findings\n\n";
  for (const auto& [kind, count] : per_kind) {
    std::cout << "  " << DesignFlawKindName(kind) << ": " << count << "\n";
  }

  std::cout << "\nDetails (first 15):\n";
  int shown = 0;
  for (const spex::DesignFinding& finding : findings) {
    if (shown++ >= 15) {
      break;
    }
    std::cout << "  - " << finding.ToString() << "\n";
  }

  spex::CaseSensitivityStats stats = auditor.CaseStats();
  std::cout << "\nCase sensitivity: " << stats.sensitive << " sensitive vs "
            << stats.insensitive << " insensitive parameters"
            << (stats.Inconsistent() ? " — inconsistent, users will guess wrong." : ".")
            << "\n";
  std::cout << "\nAfter the paper reported these, Squid fixed all silent-overruling\n"
               "cases and reworked its parsing library (Section 5.1).\n";
  return 0;
}
