// Quickstart: infer configuration constraints for a small server, then
// check a user's config file against them — the "do not blame users" loop
// in ~25 lines of API use.
//
//   1. Point a spex::Session at the target's source code.
//   2. Annotate the parameter-to-variable mapping interface (one line per
//      mapping convention — not per parameter).
//   3. Read the inferred constraints, and CheckConfig() every user config
//      before the server ever sees it.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "src/api/session.h"

int main() {
  // A 40-line "server": a PostgreSQL-style config table plus some use sites.
  const char* kSource = R"(
    struct config_int { char *name; int *variable; int min; int max; };
    int worker_threads = 4;
    int idle_timeout = 60;
    int listen_port = 8080;
    char *data_dir = "/srv/data";
    struct config_int int_options[] = {
      { "worker_threads", &worker_threads, 1, 64 },
      { "idle_timeout", &idle_timeout, 0, 3600 },
      { "listen_port", &listen_port, 1, 65535 },
    };
    int server_start() {
      if (chdir(data_dir) < 0) {
        log_error("cannot enter data_dir '%s'", data_dir);
        return -1;
      }
      int fd = socket();
      if (bind(fd, listen_port) < 0) {
        log_error("cannot bind listen_port %d", listen_port);
        return -1;
      }
      sleep(idle_timeout);
      return 0;
    }
  )";
  const char* kAnnotations = "@STRUCT int_options { par = 0, var = 1, min = 2, max = 3 }";

  spex::Session session;
  spex::Target* target = session.LoadSource(kSource, kAnnotations, "quickstart.c");
  if (target == nullptr) {
    std::cerr << session.RenderDiagnostics();
    return 1;
  }

  const spex::ModuleConstraints& constraints = target->InferConstraints();
  std::cout << "Inferred constraints (" << constraints.TotalConstraints() << " total):\n\n";
  for (const spex::ParamConstraints& param : constraints.params) {
    std::cout << "\"" << param.param << "\"\n";
    if (param.basic_type.has_value()) {
      std::cout << "  basic type:     " << param.basic_type->ToString() << "\n";
    }
    for (const spex::SemanticTypeConstraint& semantic : param.semantic_types) {
      std::cout << "  semantic type:  " << semantic.ToString() << "\n";
    }
    if (param.range.has_value()) {
      std::cout << "  value range:    " << param.range->ToString() << "\n";
    }
    std::cout << "\n";
  }

  // The user-facing checker: flag this config *before* it starts a server.
  const char* kUserConfig =
      "worker_threads = 99\n"
      "idle_timeout = 500ms\n"
      "listen_prot = 8080\n";
  std::cout << "Checking user config:\n" << kUserConfig << "\n";
  for (const spex::Violation& violation : target->CheckConfig(kUserConfig, "user.conf")) {
    std::cout << "  " << violation.ToString() << "\n";
  }
  return 0;
}
