// Quickstart: infer configuration constraints for a small server, then
// check a user's config file against them — the "do not blame users" loop
// in ~30 lines of API use.
//
//   1. Point a spex::Session at the target's source code.
//   2. Annotate the parameter-to-variable mapping interface (one line per
//      mapping convention — not per parameter).
//   3. Read the inferred constraints, and CheckConfig() every user config
//      before the server ever sees it — statically (which constraint does
//      this line violate?) and dynamically (what will the system actually
//      do with it?).
//
// Build & run:  ./build/example_quickstart
#include <iostream>

#include "src/api/session.h"

int main() {
  // A 50-line "server": a PostgreSQL-style config table, a parse/init
  // driver surface, and some use sites.
  const char* kSource = R"(
    struct config_int { char *name; int *variable; int min; int max; };
    int worker_threads = 4;
    int idle_timeout = 60;
    int listen_port = 8080;
    int slots[64];
    int started = 0;
    struct config_int int_options[] = {
      { "worker_threads", &worker_threads, 1, 64 },
      { "idle_timeout", &idle_timeout, 0, 3600 },
      { "listen_port", &listen_port, 1, 65535 },
    };
    int handle_config_line(char *key, char *value) {
      int i;
      for (i = 0; i < 3; i++) {
        if (!strcmp(int_options[i].name, key)) {
          *int_options[i].variable = atoi(value);
          return 0;
        }
      }
      return 0;
    }
    int server_init() {
      int i;
      for (i = 0; i < worker_threads; i++) { slots[i] = 1; }
      int fd = socket();
      if (bind(fd, listen_port) < 0) {
        log_error("cannot bind listen_port %d", listen_port);
        return -1;
      }
      sleep(idle_timeout);
      started = 1;
      return 0;
    }
    int test_started() { return started; }
  )";
  const char* kAnnotations = "@STRUCT int_options { par = 0, var = 1, min = 2, max = 3 }";
  // The SUT driver surface + baseline template make the target replayable
  // (RunCampaign and dynamic CheckConfig); leave them empty when only
  // static checking is needed.
  spex::SutSpec sut;
  sut.tests.push_back({"started", "test_started", 1, 1});
  sut.param_storage["worker_threads"] = "worker_threads";
  sut.param_storage["idle_timeout"] = "idle_timeout";
  sut.param_storage["listen_port"] = "listen_port";
  const char* kTemplate =
      "worker_threads = 4\n"
      "idle_timeout = 60\n"
      "listen_port = 8080\n";

  spex::Session session;
  spex::Target* target = session.LoadSource(kSource, kAnnotations, "quickstart.c",
                                            spex::ConfigDialect::kKeyEqualsValue, sut,
                                            kTemplate);
  if (target == nullptr) {
    std::cerr << session.RenderDiagnostics();
    return 1;
  }

  const spex::ModuleConstraints& constraints = target->InferConstraints();
  std::cout << "Inferred constraints (" << constraints.TotalConstraints() << " total):\n\n";
  for (const spex::ParamConstraints& param : constraints.params) {
    std::cout << "\"" << param.param << "\"\n";
    if (param.basic_type.has_value()) {
      std::cout << "  basic type:     " << param.basic_type->ToString() << "\n";
    }
    for (const spex::SemanticTypeConstraint& semantic : param.semantic_types) {
      std::cout << "  semantic type:  " << semantic.ToString() << "\n";
    }
    if (param.range.has_value()) {
      std::cout << "  value range:    " << param.range->ToString() << "\n";
    }
    std::cout << "\n";
  }

  const char* kUserConfig =
      "worker_threads = 99\n"
      "idle_timeout = 500ms\n"
      "listen_prot = 8080\n";

  // Static mode: flag the constraint each line violates.
  std::cout << "Static check:\n" << kUserConfig << "\n";
  for (const spex::Violation& violation : target->CheckConfig(kUserConfig, "user.conf")) {
    std::cout << "  " << violation.ToString() << "\n";
  }

  // Dynamic mode: replay the user's delta through the interpreter and
  // report the observed Table-3 reaction — what the system will *do*.
  spex::CheckOptions dynamic;
  dynamic.mode = spex::CheckMode::kDynamic;
  std::cout << "\nDynamic check (observed reactions):\n";
  for (const spex::Violation& violation :
       target->CheckConfig(kUserConfig, "user.conf", dynamic)) {
    std::cout << "  " << violation.ToString() << "\n";
  }
  return 0;
}
