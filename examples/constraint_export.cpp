// Export inferred constraints as a Markdown configuration reference — the
// "give the constraints to developers and doc writers" use case from
// Section 6 of the paper (and a direct cure for the undocumented-constraint
// findings of Table 8).
//
// Build & run:  ./build/example_constraint_export [target]
#include <iostream>
#include <string>

#include "src/api/session.h"

int main(int argc, char** argv) {
  std::string target_name = argc > 1 ? argv[1] : "mysql";
  spex::Session session;
  spex::Target* target = session.LoadTarget(target_name);
  if (target == nullptr) {
    std::cerr << session.RenderDiagnostics();
    return 1;
  }
  const spex::TargetAnalysis& analysis = target->analysis();
  const spex::ModuleConstraints& constraints = target->InferConstraints();

  std::cout << "# " << analysis.bundle.display_name << " configuration reference\n\n";
  std::cout << "Generated from source code by SPEX. " << constraints.params.size()
            << " parameters, " << constraints.TotalConstraints() << " constraints.\n\n";

  size_t shown = 0;
  for (const spex::ParamConstraints& param : constraints.params) {
    if (++shown > 20) {
      std::cout << "... (" << (constraints.params.size() - 20) << " more parameters)\n";
      break;
    }
    std::cout << "## `" << param.param << "`\n\n";
    if (param.basic_type.has_value()) {
      std::cout << "* type: `" << param.basic_type->ToString() << "`\n";
    }
    for (const spex::SemanticTypeConstraint& semantic : param.semantic_types) {
      std::cout << "* semantics: " << semantic.ToString() << "\n";
    }
    if (param.range.has_value()) {
      std::cout << "* accepted values: " << param.range->ToString() << "\n";
    }
    if (param.case_sensitivity == spex::CaseSensitivity::kSensitive) {
      std::cout << "* values are case-SENSITIVE\n";
    } else if (param.case_sensitivity == spex::CaseSensitivity::kInsensitive) {
      std::cout << "* values are case-insensitive\n";
    }
    for (const spex::ControlDepConstraint& dep : constraints.control_deps) {
      if (dep.dependent == param.param) {
        std::cout << "* only takes effect when `" << dep.master << "` "
                  << IrCmpPredName(dep.pred) << " " << dep.value << "\n";
      }
    }
    for (const spex::ValueRelConstraint& rel : constraints.value_rels) {
      if (rel.lhs == param.param || rel.rhs == param.param) {
        std::cout << "* must satisfy: " << rel.ToString() << "\n";
      }
    }
    std::cout << "\n";
  }
  return 0;
}
