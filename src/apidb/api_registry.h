// Registry of known system / library APIs.
//
// Semantic-type inference (Section 2.2.2) works by recognizing what known
// functions do with a parameter: a value passed to open() is a file path, a
// value passed to usleep() is a time in microseconds, a value compared via
// strcasecmp() is case-insensitive. The registry holds those facts for the
// standard C library (built in), and supports importing proprietary APIs
// from a spec file — the mechanism the paper uses for Storage-A's internal
// libraries.
#ifndef SPEX_APIDB_API_REGISTRY_H_
#define SPEX_APIDB_API_REGISTRY_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/apidb/semantic_types.h"
#include "src/support/diagnostics.h"

namespace spex {

struct ApiParamSpec {
  int index = -1;
  SemanticType semantic = SemanticType::kNone;
  TimeUnit time_unit = TimeUnit::kNone;
  SizeUnit size_unit = SizeUnit::kNone;
};

struct ApiSpec {
  std::string name;
  std::vector<ApiParamSpec> params;
  SemanticType return_semantic = SemanticType::kNone;
  TimeUnit return_time_unit = TimeUnit::kNone;

  bool is_terminating = false;          // exit / abort — never returns.
  bool is_unsafe_transform = false;     // atoi / sscanf / sprintf (Section 3.2).
  bool is_case_sensitive_cmp = false;   // strcmp family.
  bool is_case_insensitive_cmp = false; // strcasecmp family.
  bool is_logging = false;              // emits a log message.
  bool is_error_logging = false;        // emits an *error* log message.

  const ApiParamSpec* FindParam(int index) const;
  bool IsStringCompare() const { return is_case_sensitive_cmp || is_case_insensitive_cmp; }
};

class ApiRegistry {
 public:
  // The registry pre-populated with the standard C library surface SPEX
  // understands (file, network, user, time, memory, string APIs).
  static ApiRegistry BuiltinC();

  // Imports custom APIs from a spec text (one declaration per line):
  //
  //   api my_open(0:FILE) returns NONE
  //   api cluster_sleep(0:TIME_S)
  //   api fatal_error() terminating log
  //   # comments and blank lines are ignored
  //
  // Parameter kinds: FILE DIR PORT IP HOST USER GROUP PERM COUNT BOOL COMMAND
  // TIME_US TIME_MS TIME_S TIME_M TIME_H SIZE_B SIZE_KB SIZE_MB SIZE_GB.
  // Flags after the parens: terminating unsafe cmp_sensitive cmp_insensitive
  // log errlog. Returns false if any line failed to parse.
  bool ImportSpec(std::string_view text, DiagnosticEngine* diags);

  void Add(ApiSpec spec);
  const ApiSpec* Find(const std::string& name) const;
  size_t size() const { return specs_.size(); }

  bool IsTerminating(const std::string& name) const;
  bool IsErrorLogging(const std::string& name) const;

 private:
  std::map<std::string, ApiSpec> specs_;
};

// Parses a parameter-kind token ("FILE", "TIME_S", ...) used by ImportSpec
// and by tests. Returns nullopt on unknown tokens.
std::optional<ApiParamSpec> ParseParamKind(std::string_view token);

}  // namespace spex

#endif  // SPEX_APIDB_API_REGISTRY_H_
