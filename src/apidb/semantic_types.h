// Semantic types and units for configuration parameters.
//
// Basic types (i32, string, ...) say how a value is represented; semantic
// types say what it *means* — a file path, a port, a timeout — and therefore
// which misconfigurations are worth injecting (Section 2.1 of the paper).
#ifndef SPEX_APIDB_SEMANTIC_TYPES_H_
#define SPEX_APIDB_SEMANTIC_TYPES_H_

#include <string>

namespace spex {

enum class SemanticType {
  kNone,
  kFilePath,
  kDirPath,
  kPort,
  kIpAddress,
  kHostname,
  kUserName,
  kGroupName,
  kPermissionMask,
  kTime,
  kSize,
  kCount,
  kBoolean,
  kCommand,
};

enum class TimeUnit { kNone, kMicroseconds, kMilliseconds, kSeconds, kMinutes, kHours };
enum class SizeUnit { kNone, kBytes, kKilobytes, kMegabytes, kGigabytes };

const char* SemanticTypeName(SemanticType type);
const char* TimeUnitName(TimeUnit unit);
const char* SizeUnitName(SizeUnit unit);

// Unit arithmetic for transform-aware unit inference (Figure 6(b)): a
// parameter multiplied by 1024 before reaching a Bytes-unit API is itself in
// Kilobytes. Returns kNone when the factor does not map to a unit boundary.
TimeUnit ScaleTimeUnit(TimeUnit api_unit, int64_t factor);
SizeUnit ScaleSizeUnit(SizeUnit api_unit, int64_t factor);

}  // namespace spex

#endif  // SPEX_APIDB_SEMANTIC_TYPES_H_
