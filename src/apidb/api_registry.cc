#include "src/apidb/api_registry.h"

#include "src/support/strings.h"

namespace spex {

const ApiParamSpec* ApiSpec::FindParam(int index) const {
  for (const ApiParamSpec& param : params) {
    if (param.index == index) {
      return &param;
    }
  }
  return nullptr;
}

namespace {

ApiParamSpec Param(int index, SemanticType semantic, TimeUnit time_unit = TimeUnit::kNone,
                   SizeUnit size_unit = SizeUnit::kNone) {
  ApiParamSpec spec;
  spec.index = index;
  spec.semantic = semantic;
  spec.time_unit = time_unit;
  spec.size_unit = size_unit;
  return spec;
}

ApiSpec Api(std::string name, std::vector<ApiParamSpec> params) {
  ApiSpec spec;
  spec.name = std::move(name);
  spec.params = std::move(params);
  return spec;
}

}  // namespace

ApiRegistry ApiRegistry::BuiltinC() {
  ApiRegistry registry;

  // --- Files and directories.
  registry.Add(Api("open", {Param(0, SemanticType::kFilePath)}));
  registry.Add(Api("fopen", {Param(0, SemanticType::kFilePath)}));
  registry.Add(Api("my_open", {Param(0, SemanticType::kFilePath)}));
  registry.Add(Api("unlink", {Param(0, SemanticType::kFilePath)}));
  registry.Add(Api("access", {Param(0, SemanticType::kFilePath)}));
  registry.Add(Api("stat_file", {Param(0, SemanticType::kFilePath)}));
  registry.Add(Api("opendir", {Param(0, SemanticType::kDirPath)}));
  registry.Add(Api("chdir", {Param(0, SemanticType::kDirPath)}));
  registry.Add(Api("mkdir", {Param(0, SemanticType::kDirPath)}));
  registry.Add(Api("chroot", {Param(0, SemanticType::kDirPath)}));
  registry.Add(Api("chown", {Param(0, SemanticType::kFilePath), Param(1, SemanticType::kUserName)}));
  registry.Add(Api("chmod", {Param(0, SemanticType::kFilePath),
                             Param(1, SemanticType::kPermissionMask)}));

  // --- Network.
  registry.Add(Api("bind", {Param(1, SemanticType::kPort)}));
  registry.Add(Api("connect", {Param(1, SemanticType::kHostname), Param(2, SemanticType::kPort)}));
  registry.Add(Api("htons", {Param(0, SemanticType::kPort)}));
  registry.Add(Api("set_port", {Param(0, SemanticType::kPort)}));
  registry.Add(Api("inet_addr", {Param(0, SemanticType::kIpAddress)}));
  registry.Add(Api("inet_aton", {Param(0, SemanticType::kIpAddress)}));
  registry.Add(Api("gethostbyname", {Param(0, SemanticType::kHostname)}));

  // --- Users and groups.
  registry.Add(Api("getpwnam", {Param(0, SemanticType::kUserName)}));
  registry.Add(Api("getgrnam", {Param(0, SemanticType::kGroupName)}));
  registry.Add(Api("setuid_user", {Param(0, SemanticType::kUserName)}));
  registry.Add(Api("umask", {Param(0, SemanticType::kPermissionMask)}));

  // --- Time.
  registry.Add(Api("sleep", {Param(0, SemanticType::kTime, TimeUnit::kSeconds)}));
  registry.Add(Api("usleep", {Param(0, SemanticType::kTime, TimeUnit::kMicroseconds)}));
  registry.Add(Api("poll_wait", {Param(0, SemanticType::kTime, TimeUnit::kMilliseconds)}));
  registry.Add(
      Api("set_timeout_ms", {Param(0, SemanticType::kTime, TimeUnit::kMilliseconds)}));
  registry.Add(Api("alarm", {Param(0, SemanticType::kTime, TimeUnit::kSeconds)}));
  {
    ApiSpec time_spec = Api("time", {});
    time_spec.return_semantic = SemanticType::kTime;
    time_spec.return_time_unit = TimeUnit::kSeconds;
    registry.Add(std::move(time_spec));
  }

  // --- Memory / sizes.
  registry.Add(Api("malloc",
                   {Param(0, SemanticType::kSize, TimeUnit::kNone, SizeUnit::kBytes)}));
  registry.Add(Api("alloc_buffer",
                   {Param(0, SemanticType::kSize, TimeUnit::kNone, SizeUnit::kBytes)}));
  registry.Add(Api("set_buffer_size",
                   {Param(0, SemanticType::kSize, TimeUnit::kNone, SizeUnit::kBytes)}));

  // --- String comparisons.
  {
    ApiSpec spec = Api("strcmp", {});
    spec.is_case_sensitive_cmp = true;
    registry.Add(std::move(spec));
  }
  {
    ApiSpec spec = Api("strncmp", {});
    spec.is_case_sensitive_cmp = true;
    registry.Add(std::move(spec));
  }
  {
    ApiSpec spec = Api("strcasecmp", {});
    spec.is_case_insensitive_cmp = true;
    registry.Add(std::move(spec));
  }
  {
    ApiSpec spec = Api("strncasecmp", {});
    spec.is_case_insensitive_cmp = true;
    registry.Add(std::move(spec));
  }

  // --- Unsafe string-to-number transformations (Section 3.2).
  for (const char* name : {"atoi", "atol", "sscanf", "sprintf"}) {
    ApiSpec spec = Api(name, {});
    spec.is_unsafe_transform = true;
    registry.Add(std::move(spec));
  }

  // parse_int_strict is the safe strtol-with-checks idiom; registered so it
  // is recognized (and NOT flagged unsafe).
  registry.Add(Api("parse_int_strict", {}));

  // --- Termination.
  for (const char* name : {"exit", "abort", "_exit"}) {
    ApiSpec spec = Api(name, {});
    spec.is_terminating = true;
    registry.Add(std::move(spec));
  }

  // --- Logging.
  for (const char* name : {"log_info", "log_warn", "printf", "fprintf"}) {
    ApiSpec spec = Api(name, {});
    spec.is_logging = true;
    registry.Add(std::move(spec));
  }
  for (const char* name : {"log_error", "log_fatal"}) {
    ApiSpec spec = Api(name, {});
    spec.is_logging = true;
    spec.is_error_logging = true;
    registry.Add(std::move(spec));
  }

  return registry;
}

void ApiRegistry::Add(ApiSpec spec) { specs_[spec.name] = std::move(spec); }

const ApiSpec* ApiRegistry::Find(const std::string& name) const {
  auto it = specs_.find(name);
  return it != specs_.end() ? &it->second : nullptr;
}

bool ApiRegistry::IsTerminating(const std::string& name) const {
  const ApiSpec* spec = Find(name);
  return spec != nullptr && spec->is_terminating;
}

bool ApiRegistry::IsErrorLogging(const std::string& name) const {
  const ApiSpec* spec = Find(name);
  return spec != nullptr && spec->is_error_logging;
}

std::optional<ApiParamSpec> ParseParamKind(std::string_view token) {
  ApiParamSpec spec;
  std::string upper = ToUpperCopy(token);
  if (upper == "FILE") {
    spec.semantic = SemanticType::kFilePath;
  } else if (upper == "DIR") {
    spec.semantic = SemanticType::kDirPath;
  } else if (upper == "PORT") {
    spec.semantic = SemanticType::kPort;
  } else if (upper == "IP") {
    spec.semantic = SemanticType::kIpAddress;
  } else if (upper == "HOST") {
    spec.semantic = SemanticType::kHostname;
  } else if (upper == "USER") {
    spec.semantic = SemanticType::kUserName;
  } else if (upper == "GROUP") {
    spec.semantic = SemanticType::kGroupName;
  } else if (upper == "PERM") {
    spec.semantic = SemanticType::kPermissionMask;
  } else if (upper == "COUNT") {
    spec.semantic = SemanticType::kCount;
  } else if (upper == "BOOL") {
    spec.semantic = SemanticType::kBoolean;
  } else if (upper == "COMMAND") {
    spec.semantic = SemanticType::kCommand;
  } else if (upper == "TIME_US") {
    spec.semantic = SemanticType::kTime;
    spec.time_unit = TimeUnit::kMicroseconds;
  } else if (upper == "TIME_MS") {
    spec.semantic = SemanticType::kTime;
    spec.time_unit = TimeUnit::kMilliseconds;
  } else if (upper == "TIME_S") {
    spec.semantic = SemanticType::kTime;
    spec.time_unit = TimeUnit::kSeconds;
  } else if (upper == "TIME_M") {
    spec.semantic = SemanticType::kTime;
    spec.time_unit = TimeUnit::kMinutes;
  } else if (upper == "TIME_H") {
    spec.semantic = SemanticType::kTime;
    spec.time_unit = TimeUnit::kHours;
  } else if (upper == "SIZE_B") {
    spec.semantic = SemanticType::kSize;
    spec.size_unit = SizeUnit::kBytes;
  } else if (upper == "SIZE_KB") {
    spec.semantic = SemanticType::kSize;
    spec.size_unit = SizeUnit::kKilobytes;
  } else if (upper == "SIZE_MB") {
    spec.semantic = SemanticType::kSize;
    spec.size_unit = SizeUnit::kMegabytes;
  } else if (upper == "SIZE_GB") {
    spec.semantic = SemanticType::kSize;
    spec.size_unit = SizeUnit::kGigabytes;
  } else {
    return std::nullopt;
  }
  return spec;
}

bool ApiRegistry::ImportSpec(std::string_view text, DiagnosticEngine* diags) {
  bool ok = true;
  uint32_t line_number = 0;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    ++line_number;
    std::string_view line = TrimWhitespace(raw_line);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    SourceLoc loc{"<api-spec>", line_number, 1};
    if (!StartsWith(line, "api ")) {
      diags->Error(loc, "expected 'api <name>(...)': " + std::string(line));
      ok = false;
      continue;
    }
    line.remove_prefix(4);
    size_t open_paren = line.find('(');
    size_t close_paren = line.find(')');
    if (open_paren == std::string_view::npos || close_paren == std::string_view::npos ||
        close_paren < open_paren) {
      diags->Error(loc, "malformed api declaration");
      ok = false;
      continue;
    }
    ApiSpec spec;
    spec.name = std::string(TrimWhitespace(line.substr(0, open_paren)));
    std::string_view params = line.substr(open_paren + 1, close_paren - open_paren - 1);
    if (!TrimWhitespace(params).empty()) {
      for (const std::string& entry : SplitString(params, ',')) {
        auto parts = SplitString(entry, ':');
        if (parts.size() != 2) {
          diags->Error(loc, "malformed parameter '" + entry + "' (want index:KIND)");
          ok = false;
          continue;
        }
        auto index = ParseInt64(parts[0]);
        auto kind = ParseParamKind(TrimWhitespace(parts[1]));
        if (!index.has_value() || !kind.has_value()) {
          diags->Error(loc, "unknown parameter kind in '" + entry + "'");
          ok = false;
          continue;
        }
        kind->index = static_cast<int>(*index);
        spec.params.push_back(*kind);
      }
    }
    // Trailing tokens: `returns KIND` and boolean flags.
    auto tail = SplitWhitespace(line.substr(close_paren + 1));
    for (size_t i = 0; i < tail.size(); ++i) {
      if (tail[i] == "returns" && i + 1 < tail.size()) {
        auto kind = ParseParamKind(tail[i + 1]);
        if (kind.has_value()) {
          spec.return_semantic = kind->semantic;
          spec.return_time_unit = kind->time_unit;
        }
        ++i;
      } else if (tail[i] == "terminating") {
        spec.is_terminating = true;
      } else if (tail[i] == "unsafe") {
        spec.is_unsafe_transform = true;
      } else if (tail[i] == "cmp_sensitive") {
        spec.is_case_sensitive_cmp = true;
      } else if (tail[i] == "cmp_insensitive") {
        spec.is_case_insensitive_cmp = true;
      } else if (tail[i] == "log") {
        spec.is_logging = true;
      } else if (tail[i] == "errlog") {
        spec.is_logging = true;
        spec.is_error_logging = true;
      } else {
        diags->Error(loc, "unknown api flag '" + tail[i] + "'");
        ok = false;
      }
    }
    Add(std::move(spec));
  }
  return ok;
}

}  // namespace spex
