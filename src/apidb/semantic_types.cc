#include "src/apidb/semantic_types.h"

namespace spex {

const char* SemanticTypeName(SemanticType type) {
  switch (type) {
    case SemanticType::kNone:
      return "NONE";
    case SemanticType::kFilePath:
      return "FILE";
    case SemanticType::kDirPath:
      return "DIR";
    case SemanticType::kPort:
      return "PORT";
    case SemanticType::kIpAddress:
      return "IP";
    case SemanticType::kHostname:
      return "HOST";
    case SemanticType::kUserName:
      return "USER";
    case SemanticType::kGroupName:
      return "GROUP";
    case SemanticType::kPermissionMask:
      return "PERM";
    case SemanticType::kTime:
      return "TIME";
    case SemanticType::kSize:
      return "SIZE";
    case SemanticType::kCount:
      return "COUNT";
    case SemanticType::kBoolean:
      return "BOOL";
    case SemanticType::kCommand:
      return "COMMAND";
  }
  return "?";
}

const char* TimeUnitName(TimeUnit unit) {
  switch (unit) {
    case TimeUnit::kNone:
      return "-";
    case TimeUnit::kMicroseconds:
      return "us";
    case TimeUnit::kMilliseconds:
      return "ms";
    case TimeUnit::kSeconds:
      return "s";
    case TimeUnit::kMinutes:
      return "m";
    case TimeUnit::kHours:
      return "h";
  }
  return "?";
}

const char* SizeUnitName(SizeUnit unit) {
  switch (unit) {
    case SizeUnit::kNone:
      return "-";
    case SizeUnit::kBytes:
      return "B";
    case SizeUnit::kKilobytes:
      return "KB";
    case SizeUnit::kMegabytes:
      return "MB";
    case SizeUnit::kGigabytes:
      return "GB";
  }
  return "?";
}

TimeUnit ScaleTimeUnit(TimeUnit api_unit, int64_t factor) {
  // The parameter feeds the API after multiplication by `factor`, so the
  // parameter's unit is `factor` times coarser than the API's.
  struct Step {
    TimeUnit unit;
    int64_t to_next;  // Multiplier to the next coarser unit.
  };
  static const Step kLadder[] = {
      {TimeUnit::kMicroseconds, 1000},
      {TimeUnit::kMilliseconds, 1000},
      {TimeUnit::kSeconds, 60},
      {TimeUnit::kMinutes, 60},
      {TimeUnit::kHours, 0},
  };
  if (factor == 1) {
    return api_unit;
  }
  int index = -1;
  for (int i = 0; i < 5; ++i) {
    if (kLadder[i].unit == api_unit) {
      index = i;
      break;
    }
  }
  if (index < 0) {
    return TimeUnit::kNone;
  }
  int64_t remaining = factor;
  while (remaining > 1 && index < 4 && kLadder[index].to_next != 0) {
    if (remaining % kLadder[index].to_next != 0) {
      return TimeUnit::kNone;
    }
    remaining /= kLadder[index].to_next;
    ++index;
  }
  return remaining == 1 ? kLadder[index].unit : TimeUnit::kNone;
}

SizeUnit ScaleSizeUnit(SizeUnit api_unit, int64_t factor) {
  static const SizeUnit kLadder[] = {SizeUnit::kBytes, SizeUnit::kKilobytes,
                                     SizeUnit::kMegabytes, SizeUnit::kGigabytes};
  if (factor == 1) {
    return api_unit;
  }
  int index = -1;
  for (int i = 0; i < 4; ++i) {
    if (kLadder[i] == api_unit) {
      index = i;
      break;
    }
  }
  if (index < 0) {
    return SizeUnit::kNone;
  }
  int64_t remaining = factor;
  while (remaining > 1 && index < 3) {
    if (remaining % 1024 != 0) {
      return SizeUnit::kNone;
    }
    remaining /= 1024;
    ++index;
  }
  return remaining == 1 ? kLadder[index] : SizeUnit::kNone;
}

}  // namespace spex
