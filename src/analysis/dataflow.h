// Inter-procedural, field-sensitive data-flow ("taint") analysis.
//
// This is the engine behind Section 2.2 of the paper: starting from the
// program values / memory locations that hold one configuration parameter,
// it computes the parameter's whole data-flow path and records every fact
// the five inference engines need — casts (type evolution), comparisons
// (ranges, relationships), call-argument uses (semantic types, units),
// arithmetic transforms (unit scaling), and the stores that define or reset
// the parameter.
//
// Context handling: taint entering a callee through argument i at call site
// s is tracked under context s (k=1 call strings). A tainted return value
// only flows back to the call sites whose context produced it, which is the
// place where context-insensitivity would otherwise smear parameters into
// each other through shared helpers.
#ifndef SPEX_ANALYSIS_DATAFLOW_H_
#define SPEX_ANALYSIS_DATAFLOW_H_

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/memloc.h"
#include "src/ir/ir.h"

namespace spex {

// Module-wide indexes shared by every per-parameter analysis. Build once.
class AnalysisContext {
 public:
  explicit AnalysisContext(const Module& module);

  const Module& module() const { return module_; }

  // Resolves an address-typed value to an abstract location. Returns nullopt
  // for addresses that flow through memory (pointer aliasing) — the paper's
  // stated limitation, surfaced here on purpose.
  std::optional<MemLoc> ResolveAddress(const Value* address) const;

  const std::vector<const Instruction*>& LoadsFrom(const MemLoc& loc) const;
  const std::vector<const Instruction*>& StoresTo(const MemLoc& loc) const;
  const std::vector<const Instruction*>& UsersOf(const Value* value) const;
  const std::vector<const Instruction*>& CallSitesOf(const std::string& callee) const;

  // All return instructions of a function.
  const std::vector<const Instruction*>& ReturnsOf(const Function* fn) const;

  const Function* FindFunction(const std::string& name) const {
    return module_.FindFunction(name);
  }

 private:
  // Hashed, not ordered: these indexes are only ever point-queried (never
  // iterated), and SpexEngine::Run re-queries them for every parameter.
  const Module& module_;
  std::unordered_map<MemLoc, std::vector<const Instruction*>, MemLocHash> loads_by_loc_;
  std::unordered_map<MemLoc, std::vector<const Instruction*>, MemLocHash> stores_by_loc_;
  std::unordered_map<const Value*, std::vector<const Instruction*>> users_;
  std::unordered_map<std::string, std::vector<const Instruction*>> call_sites_;
  std::unordered_map<const Function*, std::vector<const Instruction*>> returns_;
  std::vector<const Instruction*> empty_;
};

// ---------------------------------------------------------------------------
// Facts recorded along a parameter's data-flow path.

// The parameter value is passed as argument `arg_index` of `call`.
struct CallArgUse {
  const Instruction* call = nullptr;
  int arg_index = -1;
};

// The parameter value is compared: `cmp`'s operand `tainted_side` (0 = lhs)
// carries the parameter; `other` is the opposite operand.
struct CmpUse {
  const Instruction* cmp = nullptr;
  int tainted_side = 0;
  const Value* other = nullptr;
};

// A cast the parameter value goes through (explicit or implicit).
struct CastStep {
  const Instruction* cast = nullptr;
};

// The parameter value is transformed arithmetically; `other` is the second
// operand (unit-scale inference looks for constant factors here).
struct TransformUse {
  const Instruction* binop = nullptr;
  int tainted_side = 0;
  const Value* other = nullptr;
};

// A store to one of the parameter's own locations. `value_tainted` is false
// for a "reset" (something else — often a constant — overwrites the
// parameter).
struct StoreDef {
  const Instruction* store = nullptr;
  MemLoc loc;
  bool value_tainted = false;
};

// Result of analyzing one parameter.
struct ParamDataflow {
  // Every value on the parameter's data-flow path.
  std::set<const Value*> tainted_values;
  // Memory locations that hold the parameter's value.
  std::set<MemLoc> locations;

  std::vector<CallArgUse> call_arg_uses;
  std::vector<CmpUse> cmp_uses;
  std::vector<CastStep> casts;
  std::vector<TransformUse> transforms;
  std::vector<StoreDef> stores;
  // Loads of the parameter's locations (read sites).
  std::vector<const Instruction*> loads;
  // Switch statements driven by the parameter (enumerative-range usage).
  std::vector<const Instruction*> switch_uses;

  bool Contains(const Value* value) const { return tainted_values.count(value) > 0; }
  bool HoldsLocation(const MemLoc& loc) const { return locations.count(loc) > 0; }
};

// ---------------------------------------------------------------------------
// Engine.

struct DataflowSeeds {
  std::vector<const Value*> values;  // e.g. a parse-function argument.
  std::vector<MemLoc> locations;     // e.g. a global config variable.
};

class DataflowEngine {
 public:
  // `max_steps` bounds the worklist as a defense against pathological code.
  explicit DataflowEngine(const AnalysisContext& context, size_t max_steps = 200000)
      : context_(context), max_steps_(max_steps) {}

  ParamDataflow Analyze(const DataflowSeeds& seeds) const;

 private:
  const AnalysisContext& context_;
  size_t max_steps_;
};

}  // namespace spex

#endif  // SPEX_ANALYSIS_DATAFLOW_H_
