#include "src/analysis/dataflow.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace spex {

namespace {

// External functions whose return value carries their (tainted) argument:
// string-to-number conversions, byte-order/canonicalization helpers, and
// string duplication. Calls to functions defined in the module are handled
// precisely and do not consult this list.
const std::set<std::string>& ValuePropagatingExternals() {
  static const auto* kSet = new std::set<std::string>{
      "atoi",    "atol",    "strtol",  "strtoll", "strtoul", "strtod", "htons",
      "ntohs",   "htonl",   "ntohl",   "strdup",  "abs",     "labs",
      "canonicalize_path",  "tolower_str",        "toupper_str",
  };
  return *kSet;
}

// Sort key that is stable across runs (no pointer ordering).
struct InstrOrder {
  bool operator()(const Instruction* a, const Instruction* b) const {
    if (a == b) {
      return false;
    }
    const std::string& fa = a->parent()->parent()->name();
    const std::string& fb = b->parent()->parent()->name();
    if (fa != fb) {
      return fa < fb;
    }
    if (a->parent()->index() != b->parent()->index()) {
      return a->parent()->index() < b->parent()->index();
    }
    return a->id() < b->id();
  }
};

}  // namespace

AnalysisContext::AnalysisContext(const Module& module) : module_(module) {
  // Reserve up front. The instruction count is a cheap upper bound for all
  // of these: users_ holds at most one entry per distinct operand value
  // (many instructions share operands or have none), and the loc/call
  // indexes hold one entry per distinct location/callee.
  size_t instruction_count = 0;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      instruction_count += block->instructions().size();
    }
  }
  users_.reserve(instruction_count);
  loads_by_loc_.reserve(instruction_count / 4 + 1);
  stores_by_loc_.reserve(instruction_count / 4 + 1);
  call_sites_.reserve(instruction_count / 4 + 1);
  returns_.reserve(module.functions().size());

  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& instr : block->instructions()) {
        for (const Value* operand : instr->operands()) {
          users_[operand].push_back(instr.get());
        }
        switch (instr->instr_kind()) {
          case InstrKind::kLoad: {
            auto loc = ResolveAddress(instr->operand(0));
            if (loc.has_value()) {
              loads_by_loc_[*loc].push_back(instr.get());
            }
            break;
          }
          case InstrKind::kStore: {
            auto loc = ResolveAddress(instr->operand(1));
            if (loc.has_value()) {
              stores_by_loc_[*loc].push_back(instr.get());
            }
            break;
          }
          case InstrKind::kCall:
            call_sites_[instr->callee()].push_back(instr.get());
            break;
          case InstrKind::kRet:
            returns_[fn.get()].push_back(instr.get());
            break;
          default:
            break;
        }
      }
    }
  }
}

std::optional<MemLoc> AnalysisContext::ResolveAddress(const Value* address) const {
  // Walk the address chain bottom-up, collecting path steps. -1 = array
  // element wildcard, -2 = pointer dereference (one level through a local
  // pointer variable, e.g. a `ConfigArgs *c` parameter).
  std::vector<int> reversed_path;
  const Value* current = address;
  for (int depth = 0; depth < 32; ++depth) {
    if (current->value_kind() == ValueKind::kGlobal) {
      MemLoc loc;
      loc.root = current;
      loc.path.assign(reversed_path.rbegin(), reversed_path.rend());
      return loc;
    }
    if (current->value_kind() != ValueKind::kInstruction) {
      return std::nullopt;
    }
    const auto* instr = static_cast<const Instruction*>(current);
    switch (instr->instr_kind()) {
      case InstrKind::kAlloca: {
        MemLoc loc;
        loc.root = current;
        loc.path.assign(reversed_path.rbegin(), reversed_path.rend());
        return loc;
      }
      case InstrKind::kFieldAddr:
        reversed_path.push_back(instr->field_index());
        current = instr->operand(0);
        break;
      case InstrKind::kIndexAddr:
        reversed_path.push_back(-1);
        current = instr->operand(0);
        break;
      case InstrKind::kLoad:
        // Address loaded through a pointer variable: keep resolving with a
        // deref marker so `c->field` stays field-sensitive per pointer
        // variable. This is the single level of indirection SPEX models;
        // anything deeper is the aliasing blind spot discussed in the paper.
        reversed_path.push_back(-2);
        current = instr->operand(0);
        break;
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

const std::vector<const Instruction*>& AnalysisContext::LoadsFrom(const MemLoc& loc) const {
  auto it = loads_by_loc_.find(loc);
  return it != loads_by_loc_.end() ? it->second : empty_;
}

const std::vector<const Instruction*>& AnalysisContext::StoresTo(const MemLoc& loc) const {
  auto it = stores_by_loc_.find(loc);
  return it != stores_by_loc_.end() ? it->second : empty_;
}

const std::vector<const Instruction*>& AnalysisContext::UsersOf(const Value* value) const {
  auto it = users_.find(value);
  return it != users_.end() ? it->second : empty_;
}

const std::vector<const Instruction*>& AnalysisContext::CallSitesOf(
    const std::string& callee) const {
  auto it = call_sites_.find(callee);
  return it != call_sites_.end() ? it->second : empty_;
}

const std::vector<const Instruction*>& AnalysisContext::ReturnsOf(const Function* fn) const {
  auto it = returns_.find(fn);
  return it != returns_.end() ? it->second : empty_;
}

namespace {

class Propagation {
 public:
  Propagation(const AnalysisContext& context, size_t max_steps)
      : context_(context), max_steps_(max_steps) {}

  ParamDataflow Run(const DataflowSeeds& seeds) {
    for (const Value* seed : seeds.values) {
      Push(seed, nullptr);
    }
    for (const MemLoc& loc : seeds.locations) {
      TaintLoc(loc, nullptr);
    }
    size_t steps = 0;
    while (!work_.empty() && steps < max_steps_) {
      ++steps;
      auto [value, ctx] = work_.front();
      work_.pop_front();
      Process(value, ctx);
    }
    FinalizeStores();
    SortRecords();
    return std::move(result_);
  }

 private:
  using Ctx = const Instruction*;  // The call that injected taint into the
                                   // value's enclosing function (k=1).

  void Push(const Value* value, Ctx ctx) {
    if (visited_.insert({value, ctx}).second) {
      result_.tainted_values.insert(value);
      work_.push_back({value, ctx});
    }
  }

  void TaintLoc(const MemLoc& loc, Ctx ctx) {
    if (!result_.locations.insert(loc).second) {
      return;
    }
    for (const Instruction* load : context_.LoadsFrom(loc)) {
      if (recorded_loads_.insert(load).second) {
        result_.loads.push_back(load);
      }
      Push(load, ctx);
    }
    // The address of the parameter's own storage is parameter data too: it
    // flows into alias pointers (`cur = &param`) and output-parameter calls
    // (`sscanf(s, "%d", &param)`), and writes through it are parameter
    // definitions.
    if (loc.path.empty() && loc.root->value_kind() == ValueKind::kGlobal) {
      Push(loc.root, ctx);
    }
  }

  void Process(const Value* value, Ctx ctx) {
    for (const Instruction* user : context_.UsersOf(value)) {
      switch (user->instr_kind()) {
        case InstrKind::kStore:
          if (user->operand(0) == value) {
            auto loc = context_.ResolveAddress(user->operand(1));
            if (loc.has_value()) {
              TaintLoc(*loc, ctx);
            }
          } else if (user->operand(1) == value) {
            // The parameter's *address* is the store target (writes through
            // an alias pointer such as `*cur = 255`). The written location
            // belongs to the parameter's storage.
            auto loc = context_.ResolveAddress(user->operand(1));
            if (loc.has_value()) {
              TaintLoc(*loc, ctx);
            }
          }
          break;
        case InstrKind::kLoad:
          // `value` is a (tainted) address; the loaded data carries taint.
          Push(user, ctx);
          break;
        case InstrKind::kBinOp: {
          int side = user->operand(0) == value ? 0 : 1;
          if (recorded_transforms_.insert({user, side}).second) {
            result_.transforms.push_back(TransformUse{user, side, user->operand(1 - side)});
          }
          Push(user, ctx);
          break;
        }
        case InstrKind::kCmp: {
          int side = user->operand(0) == value ? 0 : 1;
          if (recorded_cmps_.insert({user, side}).second) {
            result_.cmp_uses.push_back(CmpUse{user, side, user->operand(1 - side)});
          }
          break;  // Comparison results are guards, not parameter data.
        }
        case InstrKind::kCast:
          if (recorded_casts_.insert(user).second) {
            result_.casts.push_back(CastStep{user});
          }
          Push(user, ctx);
          break;
        case InstrKind::kFieldAddr:
        case InstrKind::kIndexAddr:
          Push(user, ctx);  // Derived address; loads of it handled above.
          break;
        case InstrKind::kCall:
          ProcessCallUse(user, value, ctx);
          break;
        case InstrKind::kSwitch:
          if (user->operand(0) == value && recorded_switches_.insert(user).second) {
            result_.switch_uses.push_back(user);
          }
          break;
        case InstrKind::kRet:
          ProcessReturn(user, ctx);
          break;
        default:
          break;
      }
    }
  }

  void ProcessCallUse(const Instruction* call, const Value* value, Ctx ctx) {
    for (size_t i = 0; i < call->operand_count(); ++i) {
      if (call->operand(i) != value) {
        continue;
      }
      int index = static_cast<int>(i);
      if (recorded_calls_.insert({call, index}).second) {
        result_.call_arg_uses.push_back(CallArgUse{call, index});
      }
      const Function* callee = context_.FindFunction(call->callee());
      if (callee != nullptr && !callee->IsDeclaration()) {
        if (i < callee->arguments().size()) {
          if (ctx_parent_.find(call) == ctx_parent_.end()) {
            ctx_parent_[call] = ctx;
          }
          Push(callee->arguments()[i].get(), call);
        }
      } else if (ValuePropagatingExternals().count(call->callee()) > 0) {
        Push(call, ctx);
      }
      // Output-parameter externals: the input string's value re-emerges
      // through a pointer argument (sscanf-style).
      static const std::map<std::string, std::pair<int, int>>* kOutParams =
          new std::map<std::string, std::pair<int, int>>{
              {"sscanf", {0, 2}},
              {"parse_int_strict", {0, 1}},
          };
      auto out_it = kOutParams->find(call->callee());
      if (out_it != kOutParams->end() && index == out_it->second.first &&
          static_cast<size_t>(out_it->second.second) < call->operand_count()) {
        auto loc = context_.ResolveAddress(
            call->operand(static_cast<size_t>(out_it->second.second)));
        if (loc.has_value()) {
          TaintLoc(*loc, ctx);
        }
      }
    }
  }

  void ProcessReturn(const Instruction* ret, Ctx ctx) {
    const Function* fn = ret->parent()->parent();
    if (ctx != nullptr) {
      // Taint entered this function through `ctx`; the return flows back to
      // exactly that call site.
      auto parent_it = ctx_parent_.find(ctx);
      Push(ctx, parent_it != ctx_parent_.end() ? parent_it->second : nullptr);
      return;
    }
    // Root-context taint (e.g. a global): every caller receives it.
    for (const Instruction* site : context_.CallSitesOf(fn->name())) {
      Push(site, nullptr);
    }
  }

  void FinalizeStores() {
    for (const MemLoc& loc : result_.locations) {
      for (const Instruction* store : context_.StoresTo(loc)) {
        bool tainted = result_.tainted_values.count(store->operand(0)) > 0;
        result_.stores.push_back(StoreDef{store, loc, tainted});
      }
    }
  }

  void SortRecords() {
    InstrOrder order;
    std::sort(result_.call_arg_uses.begin(), result_.call_arg_uses.end(),
              [&](const CallArgUse& a, const CallArgUse& b) {
                if (a.call != b.call) {
                  return order(a.call, b.call);
                }
                return a.arg_index < b.arg_index;
              });
    std::sort(result_.cmp_uses.begin(), result_.cmp_uses.end(),
              [&](const CmpUse& a, const CmpUse& b) {
                if (a.cmp != b.cmp) {
                  return order(a.cmp, b.cmp);
                }
                return a.tainted_side < b.tainted_side;
              });
    // Casts are deliberately left in discovery (BFS) order: the first cast
    // reached from the seed is the "first cast" of the basic-type rule.
    std::sort(result_.transforms.begin(), result_.transforms.end(),
              [&](const TransformUse& a, const TransformUse& b) {
                if (a.binop != b.binop) {
                  return order(a.binop, b.binop);
                }
                return a.tainted_side < b.tainted_side;
              });
    std::sort(result_.stores.begin(), result_.stores.end(),
              [&](const StoreDef& a, const StoreDef& b) {
                if (a.store != b.store) {
                  return order(a.store, b.store);
                }
                return a.loc < b.loc;
              });
    std::sort(result_.loads.begin(), result_.loads.end(), order);
    std::sort(result_.switch_uses.begin(), result_.switch_uses.end(), order);
  }

  const AnalysisContext& context_;
  size_t max_steps_;
  ParamDataflow result_;
  std::deque<std::pair<const Value*, Ctx>> work_;
  std::set<std::pair<const Value*, Ctx>> visited_;
  std::map<const Instruction*, Ctx> ctx_parent_;
  std::set<std::pair<const Instruction*, int>> recorded_calls_;
  std::set<std::pair<const Instruction*, int>> recorded_cmps_;
  std::set<const Instruction*> recorded_casts_;
  std::set<std::pair<const Instruction*, int>> recorded_transforms_;
  std::set<const Instruction*> recorded_loads_;
  std::set<const Instruction*> recorded_switches_;
};

}  // namespace

ParamDataflow DataflowEngine::Analyze(const DataflowSeeds& seeds) const {
  Propagation propagation(context_, max_steps_);
  return propagation.Run(seeds);
}

}  // namespace spex
