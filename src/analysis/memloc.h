// Abstract memory locations.
//
// The unit of field-sensitivity: a MemLoc names a storage root (a global
// variable or an alloca) plus a path of field indices into it. Array
// subscripts are collapsed to a wildcard element (-1) — distinguishing rows
// of a config table is the mapping toolkits' job (they read the constant
// initializer), not the data-flow engine's.
#ifndef SPEX_ANALYSIS_MEMLOC_H_
#define SPEX_ANALYSIS_MEMLOC_H_

#include <string>
#include <tuple>
#include <vector>

#include "src/ir/ir.h"
#include "src/support/hashing.h"

namespace spex {

struct MemLoc {
  const Value* root = nullptr;  // GlobalVariable or Alloca instruction.
  std::vector<int> path;        // Field indices; -1 = any array element.

  bool IsValid() const { return root != nullptr; }

  std::string ToString() const {
    std::string out = root != nullptr ? root->Label() : "<null>";
    for (int step : path) {
      out += step == -1 ? "[*]" : ("." + std::to_string(step));
    }
    return out;
  }

  friend bool operator==(const MemLoc& a, const MemLoc& b) {
    return a.root == b.root && a.path == b.path;
  }
  friend bool operator<(const MemLoc& a, const MemLoc& b) {
    return std::tie(a.root, a.path) < std::tie(b.root, b.path);
  }
};

// Hash for unordered containers keyed by MemLoc (the data-flow indexes).
struct MemLocHash {
  size_t operator()(const MemLoc& loc) const {
    size_t h = std::hash<const void*>()(loc.root);
    for (int step : loc.path) {
      h = HashCombine(h, std::hash<int>()(step));
    }
    return h;
  }
};

}  // namespace spex

#endif  // SPEX_ANALYSIS_MEMLOC_H_
