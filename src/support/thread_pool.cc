#include "src/support/thread_pool.h"

#include <algorithm>

namespace spex {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ThreadPool::ShardRange(size_t count, size_t workers,
                            const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) {
    return;
  }
  workers = std::min(workers, count);
  if (workers <= 1) {
    fn(0, count);
    return;
  }
  size_t chunk = (count + workers - 1) / workers;
  for (size_t begin = 0; begin < count; begin += chunk) {
    size_t end = std::min(begin + chunk, count);
    // By reference: Wait() below keeps fn alive past every shard.
    Submit([&fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

size_t ThreadPool::ResolveThreadCount(size_t requested) {
  if (requested != 0) {
    return requested;
  }
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

}  // namespace spex
