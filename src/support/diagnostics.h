// Diagnostic collection for the front-end and the analysis pipeline.
//
// The engine records errors and warnings with source locations instead of
// throwing; callers check HasErrors() at phase boundaries. This mirrors how a
// compiler front-end degrades gracefully on malformed input, which matters
// here because SPEX must keep analyzing the rest of a target after one bad
// function.
#ifndef SPEX_SUPPORT_DIAGNOSTICS_H_
#define SPEX_SUPPORT_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "src/support/source_loc.h"

namespace spex {

enum class DiagSeverity { kNote, kWarning, kError };

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  SourceLoc loc;
  std::string message;

  std::string ToString() const;
};

class DiagnosticEngine {
 public:
  void Error(const SourceLoc& loc, std::string message);
  void Warning(const SourceLoc& loc, std::string message);
  void Note(const SourceLoc& loc, std::string message);

  bool HasErrors() const { return error_count_ > 0; }
  size_t error_count() const { return error_count_; }
  size_t warning_count() const { return warning_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // All diagnostics joined by newlines; convenient for test assertions and
  // for surfacing parse failures in tools.
  std::string Render() const;

  void Clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t error_count_ = 0;
  size_t warning_count_ = 0;
};

}  // namespace spex

#endif  // SPEX_SUPPORT_DIAGNOSTICS_H_
