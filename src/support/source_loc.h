// Source locations for the MiniC front-end and everything downstream.
//
// A SourceLoc identifies a point in a translation unit; it flows from the
// lexer through the AST into the IR so that inferred constraints, injection
// reports, and design-flaw findings can cite "source-code locations" the way
// the paper's Table 5(b) does.
#ifndef SPEX_SUPPORT_SOURCE_LOC_H_
#define SPEX_SUPPORT_SOURCE_LOC_H_

#include <cstdint>
#include <string>
#include <tuple>

namespace spex {

struct SourceLoc {
  std::string file;
  uint32_t line = 0;
  uint32_t column = 0;

  bool IsValid() const { return line != 0; }

  std::string ToString() const {
    if (!IsValid()) {
      return "<unknown>";
    }
    return file + ":" + std::to_string(line) + ":" + std::to_string(column);
  }

  // Location identity without the column: the paper counts unique
  // "source-code locations" at line granularity (one patch site).
  std::string LineKey() const { return file + ":" + std::to_string(line); }

  friend bool operator==(const SourceLoc& a, const SourceLoc& b) {
    return std::tie(a.file, a.line, a.column) == std::tie(b.file, b.line, b.column);
  }
  friend bool operator<(const SourceLoc& a, const SourceLoc& b) {
    return std::tie(a.file, a.line, a.column) < std::tie(b.file, b.line, b.column);
  }
};

}  // namespace spex

#endif  // SPEX_SUPPORT_SOURCE_LOC_H_
