// Min-heap of deadlines — the idle/read-expiry index for the serve
// front end.
//
// The event loop tracks one armed deadline per connection (slow-loris
// read bound while a request is mid-read, keep-alive idle bound while a
// reused connection waits for its next request). It needs two cheap
// queries per loop iteration: "when is the next expiry?" (to size the
// epoll timeout) and "which entries are due?" (to cut off the expired).
// A binary heap gives both in O(log n) / O(k log n).
//
// Cancellation is lazy: re-arming a connection pushes a fresh entry and
// simply abandons the old one, and closed connections leave their entries
// behind. The caller validates each popped entry against the connection's
// current state (same generation, same armed deadline) and drops stale
// ones — the classic timer-wheel trick without the wheel. Heap size is
// therefore bounded by total arms, which is bounded by requests served,
// and every entry is eventually popped and discarded.
//
// Single-threaded by design: only the event loop touches it.
#ifndef SPEX_SUPPORT_DEADLINE_HEAP_H_
#define SPEX_SUPPORT_DEADLINE_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/support/cancellation.h"

namespace spex {

template <typename T>
class DeadlineHeap {
 public:
  void Push(MonotonicTime when, T item) {
    heap_.push_back(Node{when, std::move(item)});
    std::push_heap(heap_.begin(), heap_.end(), Later);
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Earliest armed deadline; only meaningful when !empty().
  MonotonicTime next_deadline() const { return heap_.front().when; }

  // Pops every entry with deadline <= now and hands it to `fn(item)`.
  // `fn` must tolerate stale entries (lazy cancellation).
  template <typename Fn>
  void PopExpired(MonotonicTime now, Fn&& fn) {
    while (!heap_.empty() && heap_.front().when <= now) {
      std::pop_heap(heap_.begin(), heap_.end(), Later);
      Node node = std::move(heap_.back());
      heap_.pop_back();
      fn(std::move(node.item));
    }
  }

 private:
  struct Node {
    MonotonicTime when;
    T item;
  };
  // std::push_heap builds a max-heap; invert the comparison for a min-heap.
  static bool Later(const Node& a, const Node& b) { return a.when > b.when; }

  std::vector<Node> heap_;
};

}  // namespace spex

#endif  // SPEX_SUPPORT_DEADLINE_HEAP_H_
