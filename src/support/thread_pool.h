// Fixed-size worker pool for fan-out/join parallelism.
//
// SPEX's parallel workloads (injection campaigns, future sharded corpus
// runs) are embarrassingly parallel over pre-sized result slots, so this is
// deliberately a plain shared-queue pool: no work stealing, no futures.
// Submit closures, then Wait() for the queue to drain. Determinism is the
// caller's job — write results into per-task slots, never append.
#ifndef SPEX_SUPPORT_THREAD_POOL_H_
#define SPEX_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace spex {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void Wait();

  // Fans [0, count) over at most `workers` contiguous shards — one
  // Submit per shard, then Wait() — calling fn(begin, end) per shard.
  // Runs fn(0, count) inline when a single shard suffices. Note Wait()
  // drains the pool's *whole* queue: callers sharing a pool serialize
  // ShardRange against other clients, exactly as they do for Wait().
  void ShardRange(size_t count, size_t workers,
                  const std::function<void(size_t, size_t)>& fn);

  // Maps a user-facing thread-count knob to a worker count:
  // 0 = hardware concurrency (at least 1), otherwise the value itself.
  static size_t ResolveThreadCount(size_t requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // Queued + currently running tasks.
  bool shutting_down_ = false;
};

}  // namespace spex

#endif  // SPEX_SUPPORT_THREAD_POOL_H_
