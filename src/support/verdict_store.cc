#include "src/support/verdict_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace spex {
namespace {

// File layout constants. The magic doubles as the format version: any
// layout change bumps the trailing digit and old files open as empty.
constexpr char kMagic[8] = {'S', 'P', 'E', 'X', 'V', 'S', 'T', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 16;  // magic + u32 version + u32 reserved.
// A single record larger than this is treated as corruption, not data:
// it bounds how far a flipped length field can make the parser reach.
constexpr uint32_t kMaxRecordBytes = 1u << 26;

constexpr uint8_t kRecordFingerprint = 1;  // Interns the next scope id.
constexpr uint8_t kRecordVerdict = 2;
constexpr uint8_t kRecordTombstone = 3;

// CRC32 (IEEE, reflected) with a lazily built table — no zlib dependency.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

uint32_t Crc32(const char* data, size_t size) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void PutU32(std::string* out, uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, 4);
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, 8);
  out->append(bytes, 8);
}

void PutBytes(std::string* out, std::string_view bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes.data(), bytes.size());
}

// Bounds-checked forward reader over a record payload. Every Read* call
// fails (returns false) instead of walking off the end, so a bit flip
// that survives the CRC (or a logic bug) degrades to "stop loading here".
struct Cursor {
  const char* data;
  size_t size;
  size_t off = 0;

  bool ReadU8(uint8_t* out) {
    if (off + 1 > size) return false;
    *out = static_cast<uint8_t>(data[off]);
    off += 1;
    return true;
  }
  bool ReadU32(uint32_t* out) {
    if (off + 4 > size) return false;
    std::memcpy(out, data + off, 4);
    off += 4;
    return true;
  }
  bool ReadU64(uint64_t* out) {
    if (off + 8 > size) return false;
    std::memcpy(out, data + off, 8);
    off += 8;
    return true;
  }
  bool ReadBytes(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len) || off + len > size) return false;
    out->assign(data + off, len);
    off += len;
    return true;
  }
};

std::string ComposeKey(uint64_t scope_id, std::string_view key) {
  std::string composed;
  composed.reserve(8 + key.size());
  PutU64(&composed, scope_id);
  composed.append(key.data(), key.size());
  return composed;
}

std::string HeaderBytes() {
  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kVersion);
  PutU32(&header, 0);  // Reserved.
  return header;
}

// Frames a payload as [crc][len][payload].
void AppendFrame(std::string* out, const std::string& payload) {
  PutU32(out, Crc32(payload.data(), payload.size()));
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

std::string EncodeVerdict(uint64_t scope_id, std::string_view key,
                          const StoredVerdict& verdict) {
  std::string payload;
  payload.push_back(static_cast<char>(kRecordVerdict));
  PutU64(&payload, scope_id);
  PutBytes(&payload, key);
  payload.push_back(static_cast<char>(verdict.category));
  payload.push_back(verdict.pinpointed ? 1 : 0);
  PutU64(&payload, static_cast<uint64_t>(verdict.tests_run));
  PutBytes(&payload, verdict.detail);
  PutU32(&payload, static_cast<uint32_t>(verdict.logs.size()));
  for (const std::string& log : verdict.logs) PutBytes(&payload, log);
  return payload;
}

bool WriteFully(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

VerdictStore::VerdictStore(std::string path, VerdictStoreOptions options)
    : path_(std::move(path)), options_(options) {
  index_.store(std::make_shared<const Index>(), std::memory_order_release);
}

VerdictStore::~VerdictStore() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) ::close(fd_);
  if (lock_fd_ >= 0) ::close(lock_fd_);  // Releases the flock.
}

std::shared_ptr<VerdictStore> VerdictStore::Open(const std::string& path,
                                                VerdictStoreOptions options,
                                                Status* status) {
  std::shared_ptr<VerdictStore> store(new VerdictStore(path, options));
  Status open_status = store->OpenInternal();
  if (status != nullptr) *status = open_status;
  return store;
}

Status VerdictStore::OpenInternal() {
  std::lock_guard<std::mutex> lock(mutex_);
  Status degradation = Status::Ok();

  if (!options_.read_only) {
    lock_fd_ = ::open((path_ + ".lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                      0644);
    if (lock_fd_ >= 0 && ::flock(lock_fd_, LOCK_EX | LOCK_NB) == 0) {
      writable_ = true;
    } else if (lock_fd_ >= 0) {
      ::close(lock_fd_);
      lock_fd_ = -1;
      degradation = Status::Unavailable(
          "verdict store writer lock is held elsewhere; opened read-only");
    } else {
      // The lock file could not even be created (unwritable directory,
      // missing parent, path is a directory, ...) — a different failure
      // from contention, and the operator's fix is different too: make
      // the path writable, don't hunt for the other writer.
      degradation = Status::Unavailable(
          std::string("verdict store path unwritable (") +
          std::strerror(errno) + "); opened read-only");
    }
  }

  fd_ = ::open(path_.c_str(),
               writable_ ? (O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC)
                         : (O_RDONLY | O_CLOEXEC),
               0644);
  if (fd_ < 0) {
    // Read-only and no file yet (or unreadable): behave as empty.
    writable_ = false;
    return degradation.ok()
               ? Status::Unavailable("verdict store unreadable; acting empty")
               : degradation;
  }

  struct stat st{};
  if (::fstat(fd_, &st) != 0) st.st_size = 0;
  size_t file_size = static_cast<size_t>(st.st_size);

  if (file_size == 0) {
    if (writable_) {
      std::string header = HeaderBytes();
      WriteFully(fd_, header.data(), header.size());
    }
    return degradation;
  }

  // Validate the header; a mismatch means a different format/version and
  // the whole file is untrusted.
  bool header_ok = false;
  if (file_size >= kHeaderBytes) {
    char header[kHeaderBytes];
    if (::pread(fd_, header, kHeaderBytes, 0) ==
        static_cast<ssize_t>(kHeaderBytes)) {
      uint32_t version = 0;
      std::memcpy(&version, header + sizeof(kMagic), 4);
      header_ok =
          std::memcmp(header, kMagic, sizeof(kMagic)) == 0 && version == kVersion;
    }
  }
  if (!header_ok) {
    stat_dropped_bytes_.store(file_size, std::memory_order_relaxed);
    if (writable_) {
      ::ftruncate(fd_, 0);
      std::string header = HeaderBytes();
      WriteFully(fd_, header.data(), header.size());
    }
    return Status::InvalidArgument(
        "verdict store header/version mismatch; starting empty");
  }

  // Parse the record log via mmap (the "mmap-friendly" contract: records
  // are scanned in place, no read-buffer copies).
  auto index = std::make_unique<Index>();
  size_t valid_end = kHeaderBytes;
  void* mapped = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (mapped != MAP_FAILED) {
    const char* base = static_cast<const char*>(mapped);
    valid_end = kHeaderBytes +
                LoadRecords(base + kHeaderBytes, file_size - kHeaderBytes,
                            index.get());
    ::munmap(mapped, file_size);
  }

  if (valid_end < file_size) {
    uint64_t dropped = file_size - valid_end;
    stat_dropped_bytes_.store(dropped, std::memory_order_relaxed);
    if (writable_) ::ftruncate(fd_, static_cast<off_t>(valid_end));
    if (degradation.ok()) {
      degradation = Status::InvalidArgument(
          "verdict store tail corrupt/truncated; dropped " +
          std::to_string(dropped) + " bytes");
    }
  }

  stat_loaded_.store(index->size(), std::memory_order_relaxed);
  durable_fingerprints_ = fingerprints_.size();
  index_.store(std::shared_ptr<const Index>(std::move(index)),
               std::memory_order_release);

  if (writable_ && dead_records_ >= options_.compact_min_dead) {
    std::shared_ptr<const Index> live =
        index_.load(std::memory_order_acquire);
    if (static_cast<double>(dead_records_) >
        options_.compact_dead_ratio * static_cast<double>(live->size())) {
      CompactLocked();
    }
  }
  return degradation;
}

size_t VerdictStore::LoadRecords(const char* data, size_t size, Index* index) {
  size_t off = 0;
  while (off + 8 <= size) {
    uint32_t crc = 0;
    uint32_t len = 0;
    std::memcpy(&crc, data + off, 4);
    std::memcpy(&len, data + off + 4, 4);
    if (len == 0 || len > kMaxRecordBytes || off + 8 + len > size) break;
    const char* payload = data + off + 8;
    if (Crc32(payload, len) != crc) break;

    Cursor cursor{payload, len};
    uint8_t type = 0;
    if (!cursor.ReadU8(&type)) break;
    if (type == kRecordFingerprint) {
      std::string fingerprint;
      if (!cursor.ReadBytes(&fingerprint)) break;
      // Ids are implicit: the Nth fingerprint record in the file is id N.
      auto [it, inserted] =
          fingerprint_ids_.emplace(fingerprint, fingerprints_.size());
      if (!inserted) break;  // Duplicate intern: corrupt log.
      fingerprints_.push_back(std::move(fingerprint));
      (void)it;
    } else if (type == kRecordVerdict) {
      uint64_t scope_id = 0;
      std::string key;
      auto entry = std::make_shared<Entry>();
      StoredVerdict& verdict = entry->verdict;
      uint8_t category = 0;
      uint8_t pinpointed = 0;
      uint64_t tests_run = 0;
      uint32_t n_logs = 0;
      if (!cursor.ReadU64(&scope_id) || !cursor.ReadBytes(&key) ||
          !cursor.ReadU8(&category) || !cursor.ReadU8(&pinpointed) ||
          !cursor.ReadU64(&tests_run) || !cursor.ReadBytes(&verdict.detail) ||
          !cursor.ReadU32(&n_logs)) {
        break;
      }
      if (scope_id >= fingerprints_.size()) break;  // Dangling scope: corrupt.
      bool logs_ok = true;
      verdict.logs.reserve(n_logs);
      for (uint32_t i = 0; i < n_logs; ++i) {
        std::string log;
        if (!cursor.ReadBytes(&log)) {
          logs_ok = false;
          break;
        }
        verdict.logs.push_back(std::move(log));
      }
      if (!logs_ok) break;
      verdict.category = category;
      verdict.pinpointed = pinpointed != 0;
      verdict.tests_run = static_cast<int64_t>(tests_run);
      std::string composed = ComposeKey(scope_id, key);
      auto it = index->find(composed);
      if (it != index->end()) {
        it->second = std::move(entry);
        ++dead_records_;  // The overwritten record is dead log weight.
      } else {
        index->emplace(std::move(composed), std::move(entry));
      }
    } else if (type == kRecordTombstone) {
      uint64_t scope_id = 0;
      std::string key;
      if (!cursor.ReadU64(&scope_id) || !cursor.ReadBytes(&key)) break;
      if (index->erase(ComposeKey(scope_id, key)) > 0) ++dead_records_;
      ++dead_records_;  // The tombstone itself is dead weight too.
    } else {
      break;  // Unknown record type: future format, stop trusting here.
    }
    off += 8 + len;
  }
  return off;
}

uint64_t VerdictStore::ResolveScope(std::string_view fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fingerprint_ids_.find(std::string(fingerprint));
  if (it != fingerprint_ids_.end()) return it->second;
  uint64_t id = fingerprints_.size();
  fingerprints_.emplace_back(fingerprint);
  fingerprint_ids_.emplace(fingerprints_.back(), id);
  // The intern record is written lazily, with the first append that needs
  // it — a scope that never stores a verdict costs no disk.
  return id;
}

bool VerdictStore::Lookup(uint64_t scope_id, std::string_view key,
                          StoredVerdict* out, bool* reverify_due) const {
  std::shared_ptr<const Index> index = index_.load(std::memory_order_acquire);
  auto it = index->find(ComposeKey(scope_id, key));
  if (it == index->end()) {
    stat_misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const Entry& entry = *it->second;
  *out = entry.verdict;
  uint64_t hits_before = entry.hits.fetch_add(1, std::memory_order_relaxed);
  stat_hits_.fetch_add(1, std::memory_order_relaxed);
  if (reverify_due != nullptr) {
    *reverify_due = options_.reverify_period > 0 &&
                    hits_before % options_.reverify_period == 0;
  }
  return true;
}

size_t VerdictStore::AppendBatch(std::vector<VerdictAppend> appends) {
  if (appends.empty()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!writable_) {
    stat_dropped_appends_.fetch_add(appends.size(), std::memory_order_relaxed);
    return 0;
  }

  std::string bytes;
  // Intern records first, in id order, so file-local implicit ids match.
  uint64_t max_scope = 0;
  for (const VerdictAppend& append : appends) {
    if (append.scope_id > max_scope) max_scope = append.scope_id;
  }
  while (durable_fingerprints_ <= max_scope &&
         durable_fingerprints_ < fingerprints_.size()) {
    std::string payload;
    payload.push_back(static_cast<char>(kRecordFingerprint));
    PutBytes(&payload, fingerprints_[durable_fingerprints_]);
    AppendFrame(&bytes, payload);
    ++durable_fingerprints_;
  }

  // Copy-on-write: one index copy amortized over the whole batch.
  std::shared_ptr<const Index> current = index_.load(std::memory_order_acquire);
  auto next = std::make_unique<Index>(*current);
  size_t written = 0;
  for (VerdictAppend& append : appends) {
    if (append.scope_id >= durable_fingerprints_) continue;  // Unknown scope.
    std::string composed = ComposeKey(append.scope_id, append.key);
    auto it = next->find(composed);
    if (it != next->end() && it->second->verdict == append.verdict) {
      continue;  // Identical record already stored; skip the log write.
    }
    AppendFrame(&bytes, EncodeVerdict(append.scope_id, append.key,
                                      append.verdict));
    auto entry = std::make_shared<Entry>();
    entry->verdict = std::move(append.verdict);
    if (it != next->end()) {
      it->second = std::move(entry);
      ++dead_records_;
    } else {
      next->emplace(std::move(composed), std::move(entry));
    }
    ++written;
  }
  if (bytes.empty()) return 0;
  if (!WriteFully(fd_, bytes.data(), bytes.size())) {
    // Disk trouble: stop trusting the writer role; readers keep the old
    // snapshot, so nothing unverified is ever served.
    writable_ = false;
    stat_dropped_appends_.fetch_add(appends.size(), std::memory_order_relaxed);
    return 0;
  }
  stat_appends_.fetch_add(written, std::memory_order_relaxed);
  index_.store(std::shared_ptr<const Index>(std::move(next)),
               std::memory_order_release);
  return written;
}

void VerdictStore::Append(uint64_t scope_id, std::string_view key,
                          StoredVerdict verdict) {
  std::vector<VerdictAppend> one;
  one.push_back({scope_id, std::string(key), std::move(verdict)});
  AppendBatch(std::move(one));
}

void VerdictStore::Invalidate(uint64_t scope_id, std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string composed = ComposeKey(scope_id, key);
  std::shared_ptr<const Index> current = index_.load(std::memory_order_acquire);
  if (current->find(composed) == current->end()) return;
  if (writable_) {
    std::string payload;
    payload.push_back(static_cast<char>(kRecordTombstone));
    PutU64(&payload, scope_id);
    PutBytes(&payload, key);
    std::string bytes;
    AppendFrame(&bytes, payload);
    WriteFully(fd_, bytes.data(), bytes.size());
    dead_records_ += 2;  // The dead verdict plus the tombstone itself.
  }
  auto next = std::make_unique<Index>(*current);
  next->erase(composed);
  stat_invalidations_.fetch_add(1, std::memory_order_relaxed);
  index_.store(std::shared_ptr<const Index>(std::move(next)),
               std::memory_order_release);
}

void VerdictStore::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0 && writable_) ::fsync(fd_);
}

Status VerdictStore::Compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  return CompactLocked();
}

Status VerdictStore::CompactLocked() {
  if (!writable_) {
    return Status::Unavailable("verdict store is read-only; cannot compact");
  }
  std::string tmp_path = path_ + ".tmp";
  int tmp_fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) return Status::Internal("compact: cannot create temp file");

  std::string bytes = HeaderBytes();
  // Every known fingerprint is rewritten in id order: index keys embed
  // scope ids, so ids must survive compaction unchanged.
  for (const std::string& fingerprint : fingerprints_) {
    std::string payload;
    payload.push_back(static_cast<char>(kRecordFingerprint));
    PutBytes(&payload, fingerprint);
    AppendFrame(&bytes, payload);
  }
  std::shared_ptr<const Index> index = index_.load(std::memory_order_acquire);
  for (const auto& [composed, entry] : *index) {
    uint64_t scope_id = 0;
    std::memcpy(&scope_id, composed.data(), 8);
    AppendFrame(&bytes, EncodeVerdict(scope_id, composed.substr(8),
                                      entry->verdict));
  }
  bool ok = WriteFully(tmp_fd, bytes.data(), bytes.size()) &&
            ::fsync(tmp_fd) == 0;
  ::close(tmp_fd);
  if (!ok || ::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::Internal("compact: rewrite failed; keeping old log");
  }
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) writable_ = false;
  durable_fingerprints_ = fingerprints_.size();
  dead_records_ = 0;
  stat_compactions_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

VerdictStoreStats VerdictStore::stats() const {
  VerdictStoreStats stats;
  stats.hits = stat_hits_.load(std::memory_order_relaxed);
  stats.misses = stat_misses_.load(std::memory_order_relaxed);
  stats.appends = stat_appends_.load(std::memory_order_relaxed);
  stats.dropped_appends = stat_dropped_appends_.load(std::memory_order_relaxed);
  stats.invalidations = stat_invalidations_.load(std::memory_order_relaxed);
  stats.live_records = size();
  stats.loaded_records = stat_loaded_.load(std::memory_order_relaxed);
  stats.dropped_bytes = stat_dropped_bytes_.load(std::memory_order_relaxed);
  stats.compactions = stat_compactions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.read_only = !writable_;
  }
  return stats;
}

size_t VerdictStore::size() const {
  return index_.load(std::memory_order_acquire)->size();
}

}  // namespace spex
