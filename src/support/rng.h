// Deterministic random number generation.
//
// Everything in the corpus synthesizer and the injection generators that
// "picks" a value goes through this RNG so that two runs of any bench or test
// produce byte-identical output. SplitMix64 is small, fast, and has no global
// state.
#ifndef SPEX_SUPPORT_RNG_H_
#define SPEX_SUPPORT_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spex {

class DeterministicRng {
 public:
  explicit DeterministicRng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextBounded(span));
  }

  double NextDouble() { return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0); }

  bool NextBool(double probability_true = 0.5) { return NextDouble() < probability_true; }

  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[NextBounded(items.size())];
  }

  // Derives an independent child stream; used so that adding parameters to
  // one corpus target never perturbs another target's stream.
  DeterministicRng Fork(uint64_t salt) { return DeterministicRng(NextU64() ^ (salt * 0x9e3779b97f4a7c15ULL)); }

 private:
  uint64_t state_;
};

}  // namespace spex

#endif  // SPEX_SUPPORT_RNG_H_
