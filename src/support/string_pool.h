// Interned-string pool: dense Symbol ids over stable string storage.
//
// The interpreter's runtime values used to carry an owned std::string each;
// register moves, Reset() image copies and snapshot restores all paid an
// allocation per string value. Interning replaces the payload with a Symbol
// id plus a pointer into pool-stable storage, so copying a runtime value is
// trivial and comparing two values interned in the same pool is a pointer
// check. Storage is a deque, so interned strings never move: a
// `const std::string*` handed out by the pool stays valid for the pool's
// lifetime regardless of later Intern() calls.
//
// Thread-safety: a pool constructed with kLocked serializes Intern() behind
// a mutex (used for the process-wide boundary pool that backs
// RtValue::Str()). Readers never need the lock — they hold stable pointers,
// and append-only storage means previously interned bytes are never touched
// again. kSingleThread pools (one per Interpreter) skip the mutex entirely.
//
// Reclamation: storage is append-only while in use, but a long-lived
// embedder (spex::Session) must not grow the boundary pool without bound.
// Epochs solve this: EnterEpoch()/ExitEpoch() bracket a pool-using scope,
// and when the *last* concurrently-open epoch closes, every string interned
// since the *first* one opened is reclaimed (storage truncates back to the
// size it had at that point). Strings interned with no epoch open are
// permanent. Pointers handed out inside an epoch stay valid until the last
// overlapping epoch closes — exactly the Session-lifetime contract.
#ifndef SPEX_SUPPORT_STRING_POOL_H_
#define SPEX_SUPPORT_STRING_POOL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace spex {

// Dense 1-based id of an interned string; 0 is "no symbol".
using Symbol = uint32_t;
inline constexpr Symbol kInvalidSymbol = 0;

class StringPool {
 public:
  enum class Concurrency { kSingleThread, kLocked };

  struct Stats {
    size_t strings = 0;  // Distinct interned strings.
    size_t bytes = 0;    // Total payload bytes held.
  };

  explicit StringPool(Concurrency concurrency = Concurrency::kSingleThread)
      : locked_(concurrency == Concurrency::kLocked) {}

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  // Returns the symbol for `text`, interning it on first sight.
  Symbol Intern(std::string_view text);

  // Intern and return the stable storage pointer in one step (one lock
  // acquisition in kLocked mode); `sym` receives the symbol if non-null.
  const std::string* InternPtr(std::string_view text, Symbol* sym = nullptr);

  // Stable pointer for an already-interned symbol. Only safe from the
  // interning thread for kSingleThread pools; for kLocked pools, callers
  // should keep the pointer returned by InternPtr instead.
  const std::string* StablePtr(Symbol sym) const;

  std::string_view View(Symbol sym) const;

  Stats stats() const;

  // --- Epoch-based reclamation (see file comment). Epochs may overlap;
  // reclamation happens when the count of open epochs returns to zero.
  void EnterEpoch();
  void ExitEpoch();
  size_t open_epochs() const;

 private:
  Symbol InternLockHeld(std::string_view text);
  void ReclaimLockHeld(size_t baseline);

  // Deque keeps element addresses stable across growth; index_ keys are
  // views into the stored strings themselves.
  std::deque<std::string> storage_;
  std::unordered_map<std::string_view, Symbol> index_;
  size_t bytes_ = 0;
  size_t open_epochs_ = 0;
  size_t epoch_baseline_ = 0;  // storage_.size() when the first epoch opened.
  mutable std::mutex mutex_;
  const bool locked_;
};

// RAII epoch on a pool; the way an embedder ties pool growth to its own
// lifetime (spex::Session holds one on the boundary pool).
class StringPoolEpoch {
 public:
  explicit StringPoolEpoch(StringPool& pool) : pool_(&pool) { pool_->EnterEpoch(); }
  ~StringPoolEpoch() { pool_->ExitEpoch(); }

  StringPoolEpoch(const StringPoolEpoch&) = delete;
  StringPoolEpoch& operator=(const StringPoolEpoch&) = delete;

 private:
  StringPool* pool_;
};

// Process-wide pool backing RtValue::Str() construction at API boundaries
// (tests, campaign drivers). Locked; strings interned outside any epoch are
// permanent (few and long-lived), while long-lived embedders bracket their
// use with StringPoolEpoch so per-session strings are reclaimed when the
// session ends.
StringPool& BoundaryStringPool();

}  // namespace spex

#endif  // SPEX_SUPPORT_STRING_POOL_H_
