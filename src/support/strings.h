// Small string utilities shared across the code base.
//
// These mirror the handful of helpers the pipeline needs constantly: token
// splitting for annotation and config files, case-insensitive comparison for
// the case-sensitivity analyses, and numeric parsing that reports failure
// instead of silently truncating (SPEX itself must not use "unsafe APIs").
#ifndef SPEX_SUPPORT_STRINGS_H_
#define SPEX_SUPPORT_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spex {

std::string_view TrimWhitespace(std::string_view text);

std::vector<std::string> SplitString(std::string_view text, char delimiter);

// Splits on runs of whitespace; no empty fields are produced.
std::vector<std::string> SplitWhitespace(std::string_view text);

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view separator);

std::string ToLowerCopy(std::string_view text);
std::string ToUpperCopy(std::string_view text);

bool EqualsIgnoreCase(std::string_view a, std::string_view b);
// Three-way strcmp-style comparison; returns -1, 0 or 1. The IgnoreCase
// variant lowercases on the fly — no temporary copies.
int CompareStrings(std::string_view a, std::string_view b);
int CompareStringsIgnoreCase(std::string_view a, std::string_view b);
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);
bool ContainsSubstring(std::string_view haystack, std::string_view needle);
bool ContainsSubstringIgnoreCase(std::string_view haystack, std::string_view needle);

// Strict integer parsing: the whole string must be a decimal (optionally
// signed) integer with no trailing garbage. Returns nullopt on any deviation,
// including overflow of int64_t.
std::optional<int64_t> ParseInt64(std::string_view text);

// Strict floating-point parsing with the same whole-string requirement.
std::optional<double> ParseDouble(std::string_view text);

// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string text, std::string_view from, std::string_view to);

}  // namespace spex

#endif  // SPEX_SUPPORT_STRINGS_H_
