// Shared hash utilities for unordered-container keys.
#ifndef SPEX_SUPPORT_HASHING_H_
#define SPEX_SUPPORT_HASHING_H_

#include <cstddef>

namespace spex {

// Boost-style hash combine: folds `value` into `seed`.
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace spex

#endif  // SPEX_SUPPORT_HASHING_H_
