// Shared hash utilities for unordered-container keys.
#ifndef SPEX_SUPPORT_HASHING_H_
#define SPEX_SUPPORT_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace spex {

// Boost-style hash combine: folds `value` into `seed`.
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

// FNV-1a over bytes. Stable across runs and platforms, unlike std::hash,
// so it is safe to persist (verdict-store scope fingerprints) and to put
// in logs that get diffed across machines.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace spex

#endif  // SPEX_SUPPORT_HASHING_H_
