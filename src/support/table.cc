#include "src/support/table.h"

#include <algorithm>
#include <sstream>

namespace spex {

void TextTable::SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::AddRow(std::vector<std::string> row) { rows_.push_back({std::move(row), false}); }

void TextTable::AddFooterRow(std::vector<std::string> row) {
  rows_.push_back({std::move(row), true});
}

std::string TextTable::Render() const {
  std::vector<size_t> widths;
  auto account = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) {
      widths.resize(cells.size(), 0);
    }
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  account(header_);
  for (const Row& row : rows_) {
    account(row.cells);
  }

  size_t total_width = 0;
  for (size_t w : widths) {
    total_width += w + 3;
  }
  total_width = total_width > 1 ? total_width - 1 : 1;

  std::ostringstream out;
  auto emit_cells = [&out, &widths](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) {
        out << " | ";
      }
      out << cells[i];
      if (i + 1 < cells.size()) {
        out << std::string(widths[i] - cells[i].size(), ' ');
      }
    }
    out << "\n";
  };

  if (!title_.empty()) {
    out << "== " << title_ << " ==\n";
  }
  if (!header_.empty()) {
    emit_cells(header_);
    out << std::string(total_width, '-') << "\n";
  }
  for (const Row& row : rows_) {
    if (row.separated_before) {
      out << std::string(total_width, '-') << "\n";
    }
    emit_cells(row.cells);
  }
  return out.str();
}

}  // namespace spex
