// Structured error taxonomy for the serve boundary.
//
// Inside the library, failure is expressive: diagnostics for load errors,
// Table-3 verdicts for replays. At the boundary where untrusted requests
// meet the checker — spexcheckd, CheckConfigBatch's per-config reports —
// every outcome must collapse into a machine-readable status a client can
// branch on: was my config checked, shed, malformed, or out of time? The
// codes mirror the well-known RPC vocabulary so operators need no new
// glossary, but only the rows this service can actually produce exist.
#ifndef SPEX_SUPPORT_STATUS_H_
#define SPEX_SUPPORT_STATUS_H_

#include <cstddef>
#include <string>
#include <utility>

namespace spex {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,    // Malformed/oversized request or config text.
  kNotFound,           // Unknown target or route.
  kDeadlineExceeded,   // The request's deadline fired mid-check.
  kCancelled,          // Explicit cancellation (client gone, server drain).
  kResourceExhausted,  // Admission control shed the request; retry later.
  kUnavailable,        // Server is draining and accepts no new work.
  kInternal,           // Bug or invariant violation; never expected.
};

inline constexpr size_t kStatusCodeCount = static_cast<size_t>(StatusCode::kInternal) + 1;

// Stable lower_snake_case wire name ("deadline_exceeded"): what spexcheckd
// emits in JSON and what the tests grep for.
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() = default;  // kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "deadline_exceeded: replay of 'port' overran 250ms" — or "ok".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace spex

#endif  // SPEX_SUPPORT_STATUS_H_
