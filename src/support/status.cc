#include "src/support/status.h"

namespace spex {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
  }
  return "?";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace spex
