#include "src/support/strings.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace spex {

namespace {

bool IsSpaceChar(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

char ToLowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

char ToUpperChar(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}

}  // namespace

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && IsSpaceChar(text[begin])) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && IsSpaceChar(text[end - 1])) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitString(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && IsSpaceChar(text[i])) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && !IsSpaceChar(text[i])) {
      ++i;
    }
    if (i > start) {
      parts.emplace_back(text.substr(start, i - start));
    }
  }
  return parts;
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view separator) {
  std::ostringstream out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out << separator;
    }
    out << parts[i];
  }
  return out.str();
}

std::string ToLowerCopy(std::string_view text) {
  std::string result(text);
  std::transform(result.begin(), result.end(), result.begin(), ToLowerChar);
  return result;
}

std::string ToUpperCopy(std::string_view text) {
  std::string result(text);
  std::transform(result.begin(), result.end(), result.begin(), ToUpperChar);
  return result;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLowerChar(a[i]) != ToLowerChar(b[i])) {
      return false;
    }
  }
  return true;
}

int CompareStrings(std::string_view a, std::string_view b) {
  int order = a.compare(b);
  return order < 0 ? -1 : (order > 0 ? 1 : 0);
}

int CompareStringsIgnoreCase(std::string_view a, std::string_view b) {
  size_t common = std::min(a.size(), b.size());
  for (size_t i = 0; i < common; ++i) {
    unsigned char ca = static_cast<unsigned char>(ToLowerChar(a[i]));
    unsigned char cb = static_cast<unsigned char>(ToLowerChar(b[i]));
    if (ca != cb) {
      return ca < cb ? -1 : 1;
    }
  }
  if (a.size() == b.size()) {
    return 0;
  }
  return a.size() < b.size() ? -1 : 1;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool ContainsSubstring(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ContainsSubstringIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) {
    return true;
  }
  std::string lowered_haystack = ToLowerCopy(haystack);
  std::string lowered_needle = ToLowerCopy(needle);
  return lowered_haystack.find(lowered_needle) != std::string::npos;
}

std::optional<int64_t> ParseInt64(std::string_view text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) {
    return std::nullopt;
  }
  std::string buffer(trimmed);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE || end == buffer.c_str() || *end != '\0') {
    return std::nullopt;
  }
  return static_cast<int64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) {
    return std::nullopt;
  }
  std::string buffer(trimmed);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE || end == buffer.c_str() || *end != '\0') {
    return std::nullopt;
  }
  return value;
}

std::string ReplaceAll(std::string text, std::string_view from, std::string_view to) {
  if (from.empty()) {
    return text;
  }
  size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

}  // namespace spex
