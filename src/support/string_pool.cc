#include "src/support/string_pool.h"

namespace spex {

Symbol StringPool::InternLockHeld(std::string_view text) {
  auto it = index_.find(text);
  if (it != index_.end()) {
    return it->second;
  }
  storage_.emplace_back(text);
  bytes_ += text.size();
  Symbol sym = static_cast<Symbol>(storage_.size());  // 1-based.
  index_.emplace(std::string_view(storage_.back()), sym);
  return sym;
}

Symbol StringPool::Intern(std::string_view text) {
  if (locked_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return InternLockHeld(text);
  }
  return InternLockHeld(text);
}

const std::string* StringPool::InternPtr(std::string_view text, Symbol* sym) {
  if (locked_) {
    std::lock_guard<std::mutex> lock(mutex_);
    Symbol interned = InternLockHeld(text);
    if (sym != nullptr) {
      *sym = interned;
    }
    return &storage_[interned - 1];
  }
  Symbol interned = InternLockHeld(text);
  if (sym != nullptr) {
    *sym = interned;
  }
  return &storage_[interned - 1];
}

const std::string* StringPool::StablePtr(Symbol sym) const {
  if (sym == kInvalidSymbol || sym > storage_.size()) {
    return nullptr;
  }
  return &storage_[sym - 1];
}

std::string_view StringPool::View(Symbol sym) const {
  const std::string* str = StablePtr(sym);
  return str != nullptr ? std::string_view(*str) : std::string_view();
}

void StringPool::ReclaimLockHeld(size_t baseline) {
  // Pop interned strings back to `baseline`. Index keys are views into the
  // stored strings, so each key must be erased before its storage dies.
  while (storage_.size() > baseline) {
    bytes_ -= storage_.back().size();
    index_.erase(std::string_view(storage_.back()));
    storage_.pop_back();
  }
}

void StringPool::EnterEpoch() {
  if (locked_) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (open_epochs_++ == 0) {
      epoch_baseline_ = storage_.size();
    }
    return;
  }
  if (open_epochs_++ == 0) {
    epoch_baseline_ = storage_.size();
  }
}

void StringPool::ExitEpoch() {
  if (locked_) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (open_epochs_ > 0 && --open_epochs_ == 0) {
      ReclaimLockHeld(epoch_baseline_);
    }
    return;
  }
  if (open_epochs_ > 0 && --open_epochs_ == 0) {
    ReclaimLockHeld(epoch_baseline_);
  }
}

size_t StringPool::open_epochs() const {
  if (locked_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return open_epochs_;
  }
  return open_epochs_;
}

StringPool::Stats StringPool::stats() const {
  if (locked_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return Stats{storage_.size(), bytes_};
  }
  return Stats{storage_.size(), bytes_};
}

StringPool& BoundaryStringPool() {
  static StringPool* kPool = new StringPool(StringPool::Concurrency::kLocked);
  return *kPool;
}

}  // namespace spex
