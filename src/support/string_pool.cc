#include "src/support/string_pool.h"

namespace spex {

Symbol StringPool::InternLockHeld(std::string_view text) {
  auto it = index_.find(text);
  if (it != index_.end()) {
    return it->second;
  }
  storage_.emplace_back(text);
  bytes_ += text.size();
  Symbol sym = static_cast<Symbol>(storage_.size());  // 1-based.
  index_.emplace(std::string_view(storage_.back()), sym);
  return sym;
}

Symbol StringPool::Intern(std::string_view text) {
  if (locked_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return InternLockHeld(text);
  }
  return InternLockHeld(text);
}

const std::string* StringPool::InternPtr(std::string_view text, Symbol* sym) {
  if (locked_) {
    std::lock_guard<std::mutex> lock(mutex_);
    Symbol interned = InternLockHeld(text);
    if (sym != nullptr) {
      *sym = interned;
    }
    return &storage_[interned - 1];
  }
  Symbol interned = InternLockHeld(text);
  if (sym != nullptr) {
    *sym = interned;
  }
  return &storage_[interned - 1];
}

const std::string* StringPool::StablePtr(Symbol sym) const {
  if (sym == kInvalidSymbol || sym > storage_.size()) {
    return nullptr;
  }
  return &storage_[sym - 1];
}

std::string_view StringPool::View(Symbol sym) const {
  const std::string* str = StablePtr(sym);
  return str != nullptr ? std::string_view(*str) : std::string_view();
}

StringPool::Stats StringPool::stats() const {
  if (locked_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return Stats{storage_.size(), bytes_};
  }
  return Stats{storage_.size(), bytes_};
}

StringPool& BoundaryStringPool() {
  static StringPool* kPool = new StringPool(StringPool::Concurrency::kLocked);
  return *kPool;
}

}  // namespace spex
