// Cooperative cancellation and monotonic deadlines.
//
// A config-checking *service* is only as good as its worst request: a
// pathological user config must not pin an interpreter forever. The repo's
// answer is cooperative: hot loops (the interpreter's step counter, the
// campaign's replay boundaries) poll a CancelToken, and the poll is cheap
// enough to sit inside the step-budget path — one relaxed atomic load, plus
// a steady_clock read only every few thousand polls when a deadline is
// armed. A fired token is sticky: once ShouldCancel() returns true it
// returns true forever, so every layer above the first detection sees a
// consistent "this request is over" signal.
//
// Tokens chain: a per-replay token holds a pointer to the request-wide
// token, which may hold the server's drain token. Firing anywhere up the
// chain cancels everything below it. Reason() distinguishes an explicit
// Cancel() (client gone, server draining) from a deadline expiry, so the
// serve boundary can answer 499-style "cancelled" vs "deadline exceeded"
// as distinct machine-readable statuses.
//
// Thread-safety: all state is atomic. Any number of threads may poll a
// token while others Cancel() it; arming (ArmDeadlineAfter /
// CancelAfterPolls) must happen before the token is shared, like any
// publication.
#ifndef SPEX_SUPPORT_CANCELLATION_H_
#define SPEX_SUPPORT_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace spex {

// Monotonic clock used for every deadline in the repo: never jumps on NTP
// adjustments, comparable across threads.
using MonotonicClock = std::chrono::steady_clock;
using MonotonicTime = MonotonicClock::time_point;

inline MonotonicTime MonotonicNow() { return MonotonicClock::now(); }

class CancelToken {
 public:
  enum class Reason : int {
    kNone = 0,      // Not fired.
    kExplicit = 1,  // Cancel() was called (client disconnect, server drain).
    kDeadline = 2,  // The armed deadline passed.
  };

  CancelToken() = default;
  // A child token: fires when its own state fires *or* when `parent` does.
  // The parent must outlive the child (the campaign's per-replay tokens are
  // stack-local inside the request that owns the parent).
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Explicit cancellation; sticky, thread-safe, idempotent (the first
  // reason to fire wins).
  void Cancel() { Fire(Reason::kExplicit); }

  // Arms an absolute monotonic deadline. A deadline in the past fires on
  // the first poll — the deterministic way to test the expiry path.
  void ArmDeadline(MonotonicTime when) {
    deadline_ns_.store(when.time_since_epoch().count(), std::memory_order_release);
  }
  template <typename Rep, typename Period>
  void ArmDeadlineAfter(std::chrono::duration<Rep, Period> budget) {
    ArmDeadline(MonotonicNow() + std::chrono::duration_cast<MonotonicClock::duration>(budget));
  }

  // Test / fault-injection seam: fire (as kExplicit) on the n-th
  // ShouldCancel() poll. Wall-clock-free, so containment tests are
  // deterministic on any machine. n <= 0 disarms.
  void CancelAfterPolls(int64_t n) { polls_left_.store(n, std::memory_order_release); }

  // The cooperative check hot loops call. One relaxed load when nothing is
  // armed; reads the clock only when a deadline is armed. Sticky.
  bool ShouldCancel() const {
    if (reason_.load(std::memory_order_relaxed) != static_cast<int>(Reason::kNone)) {
      return true;
    }
    int64_t polls = polls_left_.load(std::memory_order_relaxed);
    if (polls > 0 && polls_left_.fetch_sub(1, std::memory_order_relaxed) <= 1) {
      Fire(Reason::kExplicit);
      return true;
    }
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline &&
        MonotonicNow().time_since_epoch().count() >= deadline) {
      Fire(Reason::kDeadline);
      return true;
    }
    if (parent_ != nullptr && parent_->ShouldCancel()) {
      // Inherit the parent's reason so the serve boundary reports the
      // root cause (drain vs. deadline) for the whole chain.
      Fire(parent_->reason());
      return true;
    }
    return false;
  }

  // Pure read (no side effects): has this token fired?
  bool cancelled() const {
    return reason_.load(std::memory_order_acquire) != static_cast<int>(Reason::kNone);
  }

  Reason reason() const {
    return static_cast<Reason>(reason_.load(std::memory_order_acquire));
  }

 private:
  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

  void Fire(Reason reason) const {
    int expected = static_cast<int>(Reason::kNone);
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_acq_rel, std::memory_order_acquire);
  }

  const CancelToken* parent_ = nullptr;
  // Mutable: polling is conceptually const (hot loops hold const pointers)
  // but latches the fired state.
  mutable std::atomic<int> reason_{static_cast<int>(Reason::kNone)};
  mutable std::atomic<int64_t> polls_left_{0};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace spex

#endif  // SPEX_SUPPORT_CANCELLATION_H_
