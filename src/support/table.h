// Plain-text table rendering for the benchmark harness.
//
// Every bench binary reproduces one of the paper's tables; this renderer
// keeps their output consistent (aligned columns, optional title and footer
// rows) so EXPERIMENTS.md can paste paper-vs-measured side by side.
#ifndef SPEX_SUPPORT_TABLE_H_
#define SPEX_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace spex {

class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  // A separator line is rendered before this row (used for "Total" rows).
  void AddFooterRow(std::vector<std::string> row);

  std::string Render() const;

  size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separated_before = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace spex

#endif  // SPEX_SUPPORT_TABLE_H_
