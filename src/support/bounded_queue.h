// Bounded multi-producer/multi-consumer queue — the admission-control
// primitive behind spexcheckd.
//
// The existing ThreadPool is a fan-out/join device: unbounded queue,
// Wait() drains everything. A service needs the opposite shape: producers
// (the accept loop) must *fail fast* when consumers (request workers) fall
// behind, because the alternative is an unbounded backlog of sockets whose
// clients gave up long ago. TryPush is therefore non-blocking — a full
// queue is the signal to shed with 503 + Retry-After — while Pop blocks,
// because an idle worker has nothing better to do.
//
// Close() is the drain half of graceful shutdown: producers are refused
// from that point on, consumers keep popping until the queue is empty,
// then Pop returns nullopt and workers exit their loops.
#ifndef SPEX_SUPPORT_BOUNDED_QUEUE_H_
#define SPEX_SUPPORT_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace spex {

template <typename T>
class BoundedQueue {
 public:
  // Capacity is clamped to at least 1; a zero-capacity queue would turn
  // every TryPush into a shed.
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Non-blocking: false when the queue is full or closed. Full-queue
  // rejection is the admission-control signal, not an error.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until an item arrives or the queue is closed *and* drained;
  // nullopt means "no more work ever" (the worker-exit signal).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Refuse new pushes; wake every blocked Pop. Items already queued are
  // still handed out (drain semantics).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace spex

#endif  // SPEX_SUPPORT_BOUNDED_QUEUE_H_
