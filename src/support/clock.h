// Injectable monotonic clock — the test seam behind every serve-layer
// timeout.
//
// The serving front end (src/serve/server.cc) expires slow-loris reads
// and idle keep-alive connections against deadlines. Testing those paths
// with real sleeps is the road to flaky CI: a loaded runner turns a 50ms
// idle bound into a race. So the server never reads the wall clock
// directly — it reads a Clock, which defaults to steady_clock and can be
// swapped for a ManualClock that only moves when the test says so. With
// a ManualClock installed, "wait for the idle timeout" becomes a single
// deterministic Advance() call, identical on a laptop and a saturated CI
// box.
//
// ManualClock::Advance also fires a registered waker, because a server
// blocked in epoll_wait has no reason to re-check deadlines until either
// real time passes (real clock) or the test moves time (manual clock) —
// the waker is how moved time becomes an event the loop can see.
#ifndef SPEX_SUPPORT_CLOCK_H_
#define SPEX_SUPPORT_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>

#include "src/support/cancellation.h"

namespace spex {

// Abstract monotonic time source. Implementations must be thread-safe
// and non-decreasing.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual MonotonicTime Now() const = 0;
};

// The production clock: steady_clock, no state.
class SteadyClock : public Clock {
 public:
  MonotonicTime Now() const override { return MonotonicNow(); }
};

// Test clock: time moves only on Advance(). Any number of threads may
// read Now() while one advances.
class ManualClock : public Clock {
 public:
  explicit ManualClock(MonotonicTime start = MonotonicNow())
      : now_ns_(start.time_since_epoch().count()) {}

  MonotonicTime Now() const override {
    return MonotonicTime(
        MonotonicClock::duration(now_ns_.load(std::memory_order_acquire)));
  }

  template <typename Rep, typename Period>
  void Advance(std::chrono::duration<Rep, Period> step) {
    auto delta = std::chrono::duration_cast<MonotonicClock::duration>(step);
    now_ns_.fetch_add(delta.count(), std::memory_order_acq_rel);
    std::function<void()> waker;
    {
      std::lock_guard<std::mutex> lock(waker_mutex_);
      waker = waker_;
    }
    if (waker) {
      waker();  // Moved time is an event; tell the sleeper to look again.
    }
  }

  // Installed by the component whose timeouts this clock drives (the
  // serve front end registers its epoll wakeup here). Pass nullptr to
  // clear before the component dies.
  void SetWaker(std::function<void()> waker) {
    std::lock_guard<std::mutex> lock(waker_mutex_);
    waker_ = std::move(waker);
  }

 private:
  std::atomic<int64_t> now_ns_;
  std::mutex waker_mutex_;
  std::function<void()> waker_;
};

}  // namespace spex

#endif  // SPEX_SUPPORT_CLOCK_H_
