// Persistent cross-run verdict store: an on-disk map from
// (scope fingerprint, execution key) -> stored verdict.
//
// PR 5 proved that suspects with the same execution identity produce the
// same verdict *within* a batch (SuspectExecutionKey dedup). This store
// extends that identity across time: a fleet re-check after a small config
// push replays only never-before-seen executions — O(diff) instead of
// O(fleet). The store itself is deliberately semantics-free: it maps
// opaque (scope, key) pairs to small records with an opaque category tag.
// The injection layer owns what the fields mean and, critically, what goes
// into the scope fingerprint — any input that could change a verdict
// (target source, annotations, SUT spec, template, campaign options) must
// be folded into the scope so an edit lands in a fresh, empty scope.
//
// Durability model — append log + compaction:
//   header | record | record | ...
// Each record is CRC32-framed ([crc][len][payload]); payloads are
// fingerprint interns, verdicts, or tombstones. A corrupt, truncated, or
// version-mismatched store is *never trusted*: parsing stops at the first
// bad frame, the valid prefix is kept (writable handles truncate the bad
// tail away), and a bad header means "start empty". Every failure mode
// degrades to a cache miss, never to a wrong verdict.
//
// Concurrency model — single writer, lock-free readers:
//   - Lookup() is wait-free on the hot path: it loads an atomic
//     shared_ptr snapshot of the index. Any number of threads may call it
//     concurrently with appends.
//   - AppendBatch()/Invalidate()/Compact() serialize on an internal
//     mutex and publish a fresh index snapshot (copy-on-write).
//   - Cross-process: the writer role is claimed via flock() on a sidecar
//     "<path>.lock" file. A second process opening the same path gets a
//     read-only handle (lookups work, appends are counted and dropped).
#ifndef SPEX_SUPPORT_VERDICT_STORE_H_
#define SPEX_SUPPORT_VERDICT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/support/status.h"

namespace spex {

// One cached verdict. `category` is an opaque tag owned by the caller
// (the injection layer stores ReactionCategory); the store never
// interprets it. The fields are exactly the replay-produced fields that
// re-attribution copies between suspects sharing an execution identity,
// so a stored verdict reproduces a replay bit-for-bit.
struct StoredVerdict {
  uint8_t category = 0;
  bool pinpointed = false;
  int64_t tests_run = 0;
  std::string detail;
  std::vector<std::string> logs;

  bool operator==(const StoredVerdict& other) const {
    return category == other.category && pinpointed == other.pinpointed &&
           tests_run == other.tests_run && detail == other.detail &&
           logs == other.logs;
  }
};

struct VerdictStoreOptions {
  // Open without claiming the writer lock; all appends are dropped.
  bool read_only = false;
  // Sampled re-verification: when > 0, every Nth hit of a key (counting
  // from the first hit each process makes) reports `reverify_due`, telling
  // the caller to replay anyway and compare. 0 disables sampling — the
  // scope fingerprint is then the only staleness guard.
  size_t reverify_period = 0;
  // Compact at open when dead records exceed this fraction of live ones.
  double compact_dead_ratio = 0.5;
  // ...but never bother compacting fewer dead records than this.
  size_t compact_min_dead = 64;
};

// Counters. Snapshot via stats(); all fields are cumulative for the
// lifetime of this handle except live_records (current index size).
struct VerdictStoreStats {
  uint64_t hits = 0;             // Lookups that found a record.
  uint64_t misses = 0;           // Lookups that found nothing.
  uint64_t appends = 0;          // Records durably appended by this handle.
  uint64_t dropped_appends = 0;  // Appends discarded (read-only handle).
  uint64_t invalidations = 0;    // Tombstones written.
  uint64_t live_records = 0;     // Verdicts currently in the index.
  uint64_t loaded_records = 0;   // Verdicts recovered from disk at open.
  uint64_t dropped_bytes = 0;    // Corrupt/truncated tail ignored at open.
  uint64_t compactions = 0;      // Log rewrites (open-time + explicit).
  bool read_only = false;        // True when this handle cannot write.
};

// One pending write for AppendBatch().
struct VerdictAppend {
  uint64_t scope_id = 0;
  std::string key;
  StoredVerdict verdict;
};

class VerdictStore {
 public:
  // Opens (creating if needed) the store at `path`. Never fails hard: the
  // returned handle is always usable — worst case it behaves as an empty
  // read-only store. `status`, when non-null, reports the first
  // degradation (writer lock held elsewhere, corrupt tail dropped, bad
  // header reset) or Ok for a clean open.
  static std::shared_ptr<VerdictStore> Open(const std::string& path,
                                            VerdictStoreOptions options = {},
                                            Status* status = nullptr);
  ~VerdictStore();

  VerdictStore(const VerdictStore&) = delete;
  VerdictStore& operator=(const VerdictStore&) = delete;

  // Maps a scope fingerprint (arbitrary bytes) to a dense store-local id.
  // Ids are stable across reopen and compaction for the life of the file.
  // Thread-safe.
  uint64_t ResolveScope(std::string_view fingerprint);

  // Looks up a verdict. Lock-free; safe concurrently with appends.
  // `reverify_due`, when non-null, is set true when the sampling knob says
  // this hit should be replayed anyway and compared (see
  // VerdictStoreOptions::reverify_period).
  bool Lookup(uint64_t scope_id, std::string_view key, StoredVerdict* out,
              bool* reverify_due = nullptr) const;

  // Appends a batch of verdicts (last-wins on duplicate keys) and
  // publishes them for lookup. Returns how many records were durably
  // written — 0 on a read-only handle. Serialized internally; safe from
  // any thread.
  size_t AppendBatch(std::vector<VerdictAppend> appends);

  // Single-record convenience over AppendBatch.
  void Append(uint64_t scope_id, std::string_view key, StoredVerdict verdict);

  // Writes a tombstone for (scope_id, key) and removes it from the index.
  void Invalidate(uint64_t scope_id, std::string_view key);

  // fsync()s the log. Appends are otherwise buffered by the OS only.
  void Flush();

  // Rewrites the log with only live records (scope ids preserved).
  // No-op (Unavailable) on a read-only handle.
  Status Compact();

  VerdictStoreStats stats() const;
  size_t size() const;
  bool read_only() const { return !writable_; }
  const std::string& path() const { return path_; }

 private:
  struct Entry {
    StoredVerdict verdict;
    // Per-process hit counter driving sampled re-verification.
    mutable std::atomic<uint64_t> hits{0};
  };
  // Keys are scope_id (8 bytes little-endian) + execution key bytes.
  using Index = std::unordered_map<std::string, std::shared_ptr<Entry>>;

  VerdictStore(std::string path, VerdictStoreOptions options);

  Status OpenInternal();
  // Parses [data, data+size), filling index/fingerprints. Returns the
  // offset just past the last valid record.
  size_t LoadRecords(const char* data, size_t size, Index* index);
  // Serializes pending fingerprint interns + appends under mutex_.
  bool WriteAll(const std::string& bytes);
  Status CompactLocked();

  const std::string path_;
  const VerdictStoreOptions options_;

  // Reader-visible snapshot; swapped wholesale by writers.
  std::atomic<std::shared_ptr<const Index>> index_;

  // Writer state, all under mutex_.
  mutable std::mutex mutex_;
  int fd_ = -1;       // Data file (O_APPEND when writable).
  int lock_fd_ = -1;  // Sidecar lock file holding the flock.
  bool writable_ = false;
  std::vector<std::string> fingerprints_;          // id -> fingerprint.
  std::unordered_map<std::string, uint64_t> fingerprint_ids_;
  size_t durable_fingerprints_ = 0;  // Prefix of fingerprints_ on disk.
  size_t dead_records_ = 0;          // Overwritten/tombstoned log entries.

  // Stats (atomics: hits/misses are bumped from lock-free readers).
  mutable std::atomic<uint64_t> stat_hits_{0};
  mutable std::atomic<uint64_t> stat_misses_{0};
  std::atomic<uint64_t> stat_appends_{0};
  std::atomic<uint64_t> stat_dropped_appends_{0};
  std::atomic<uint64_t> stat_invalidations_{0};
  std::atomic<uint64_t> stat_loaded_{0};
  std::atomic<uint64_t> stat_dropped_bytes_{0};
  std::atomic<uint64_t> stat_compactions_{0};
};

}  // namespace spex

#endif  // SPEX_SUPPORT_VERDICT_STORE_H_
