#include "src/support/diagnostics.h"

#include <sstream>

namespace spex {

namespace {

const char* SeverityLabel(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kNote:
      return "note";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kError:
      return "error";
  }
  return "unknown";
}

}  // namespace

std::string Diagnostic::ToString() const {
  return loc.ToString() + ": " + SeverityLabel(severity) + ": " + message;
}

void DiagnosticEngine::Error(const SourceLoc& loc, std::string message) {
  diagnostics_.push_back({DiagSeverity::kError, loc, std::move(message)});
  ++error_count_;
}

void DiagnosticEngine::Warning(const SourceLoc& loc, std::string message) {
  diagnostics_.push_back({DiagSeverity::kWarning, loc, std::move(message)});
  ++warning_count_;
}

void DiagnosticEngine::Note(const SourceLoc& loc, std::string message) {
  diagnostics_.push_back({DiagSeverity::kNote, loc, std::move(message)});
}

std::string DiagnosticEngine::Render() const {
  std::ostringstream out;
  for (const Diagnostic& diag : diagnostics_) {
    out << diag.ToString() << "\n";
  }
  return out.str();
}

void DiagnosticEngine::Clear() {
  diagnostics_.clear();
  error_count_ = 0;
  warning_count_ = 0;
}

}  // namespace spex
