// Dominator/post-dominator trees and control-dependence analysis.
//
// Control dependence is the backbone of two of the paper's inference engines:
// data-range classification looks at the behaviour of the region controlled
// by a comparison, and control-dependency inference asks which parameter P's
// branches guard the usage sites of parameter Q (Section 2.2.4).
#ifndef SPEX_IR_DOMINANCE_H_
#define SPEX_IR_DOMINANCE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/ir/ir.h"

namespace spex {

// Forward or reverse dominator tree over one function's CFG. Unreachable
// blocks are reported as dominated by nothing and dominating nothing.
class DominatorTree {
 public:
  // post = false: classic dominators rooted at entry.
  // post = true: post-dominators rooted at a virtual exit that all Ret /
  // Unreachable / successor-less blocks lead to.
  DominatorTree(const Function& function, bool post);

  // True iff `a` dominates `b` (reflexive).
  bool Dominates(const BasicBlock* a, const BasicBlock* b) const;
  // Immediate dominator, or nullptr for the root / unreachable blocks.
  const BasicBlock* ImmediateDominator(const BasicBlock* block) const;
  bool IsReachable(const BasicBlock* block) const;

 private:
  size_t IndexOf(const BasicBlock* block) const;

  const Function& function_;
  bool post_;
  size_t n_ = 0;           // Number of real blocks.
  size_t virtual_exit_ = 0;  // Index of the virtual exit (post mode only).
  std::vector<std::vector<uint32_t>> dom_sets_;  // Bitsets, indexed by block index.
  std::vector<int> idom_;                        // -1 = none.
  std::vector<bool> reachable_;
};

// One direct control dependence: `block` executes only if `branch` takes the
// successor edge `successor_index`.
struct ControlDep {
  const Instruction* branch = nullptr;
  int successor_index = -1;

  bool operator<(const ControlDep& other) const {
    if (branch != other.branch) {
      return branch < other.branch;
    }
    return successor_index < other.successor_index;
  }
  bool operator==(const ControlDep& other) const {
    return branch == other.branch && successor_index == other.successor_index;
  }
};

class ControlDependence {
 public:
  explicit ControlDependence(const Function& function);

  // Branch edges this block is directly control-dependent on.
  const std::vector<ControlDep>& DirectDeps(const BasicBlock* block) const;

  // Transitive closure: direct deps plus the deps of the controlling
  // branches' own blocks. This is the set of conditions that must all hold
  // for `block` to execute.
  std::vector<ControlDep> TransitiveDeps(const BasicBlock* block) const;

 private:
  const Function& function_;
  std::map<const BasicBlock*, std::vector<ControlDep>> direct_;
  std::vector<ControlDep> empty_;
};

}  // namespace spex

#endif  // SPEX_IR_DOMINANCE_H_
