#include "src/ir/type.h"

namespace spex {

int IrType::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < field_names_.size(); ++i) {
    if (field_names_[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string IrType::ToString() const {
  switch (kind_) {
    case IrTypeKind::kVoid:
      return "void";
    case IrTypeKind::kBool:
      return "bool";
    case IrTypeKind::kInt:
      return (is_unsigned_ ? "u" : "i") + std::to_string(bit_width_);
    case IrTypeKind::kFloat:
      return "f64";
    case IrTypeKind::kString:
      return "str";
    case IrTypeKind::kPointer:
      return pointee_->ToString() + "*";
    case IrTypeKind::kStruct:
      return "%" + struct_name_;
  }
  return "?";
}

TypeTable::TypeTable() {
  IrType* v = NewType();
  v->kind_ = IrTypeKind::kVoid;
  void_type_ = v;
  IrType* b = NewType();
  b->kind_ = IrTypeKind::kBool;
  bool_type_ = b;
  IrType* s = NewType();
  s->kind_ = IrTypeKind::kString;
  string_type_ = s;
  IrType* f = NewType();
  f->kind_ = IrTypeKind::kFloat;
  f->bit_width_ = 64;
  float_type_ = f;
}

IrType* TypeTable::NewType() {
  storage_.emplace_back(IrType());
  return &storage_.back();
}

const IrType* TypeTable::IntType(int bit_width, bool is_unsigned) {
  auto key = std::make_pair(bit_width, is_unsigned);
  auto it = int_types_.find(key);
  if (it != int_types_.end()) {
    return it->second;
  }
  IrType* type = NewType();
  type->kind_ = IrTypeKind::kInt;
  type->bit_width_ = bit_width;
  type->is_unsigned_ = is_unsigned;
  int_types_[key] = type;
  return type;
}

const IrType* TypeTable::PointerTo(const IrType* pointee) {
  auto it = pointer_types_.find(pointee);
  if (it != pointer_types_.end()) {
    return it->second;
  }
  IrType* type = NewType();
  type->kind_ = IrTypeKind::kPointer;
  type->pointee_ = pointee;
  pointer_types_[pointee] = type;
  return type;
}

const IrType* TypeTable::StructType(const std::string& name) {
  auto it = struct_types_.find(name);
  if (it != struct_types_.end()) {
    return it->second;
  }
  IrType* type = NewType();
  type->kind_ = IrTypeKind::kStruct;
  type->struct_name_ = name;
  struct_types_[name] = type;
  return type;
}

void TypeTable::DefineStructBody(const std::string& name, std::vector<const IrType*> field_types,
                                 std::vector<std::string> field_names) {
  auto it = struct_types_.find(name);
  IrType* type = it != struct_types_.end() ? it->second : nullptr;
  if (type == nullptr) {
    StructType(name);
    type = struct_types_[name];
  }
  type->field_types_ = std::move(field_types);
  type->field_names_ = std::move(field_names);
}

const IrType* TypeTable::FindStruct(const std::string& name) const {
  auto it = struct_types_.find(name);
  return it != struct_types_.end() ? it->second : nullptr;
}

}  // namespace spex
