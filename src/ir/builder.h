// Instruction construction helper.
//
// The builder owns no IR; it appends instructions to a current insertion
// block and handles the typing rules (loads yield the pointee type, calls
// yield the declared return type, etc.).
#ifndef SPEX_IR_BUILDER_H_
#define SPEX_IR_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace spex {

class IrBuilder {
 public:
  IrBuilder(Module* module, Function* function) : module_(module), function_(function) {}

  void SetInsertPoint(BasicBlock* block) { block_ = block; }
  BasicBlock* insert_block() const { return block_; }
  Module* module() const { return module_; }
  Function* function() const { return function_; }

  Instruction* CreateAlloca(const IrType* allocated, int64_t array_size, std::string name,
                            SourceLoc loc);
  Value* CreateLoad(Value* pointer, SourceLoc loc);
  Instruction* CreateStore(Value* value, Value* pointer, SourceLoc loc);
  Value* CreateBinOp(IrBinOp op, Value* lhs, Value* rhs, SourceLoc loc);
  Value* CreateCmp(IrCmpPred pred, Value* lhs, Value* rhs, SourceLoc loc);
  Value* CreateCast(const IrType* to, Value* value, bool is_explicit, SourceLoc loc);
  Value* CreateCall(const IrType* return_type, std::string callee, std::vector<Value*> args,
                    SourceLoc loc);
  Value* CreateFieldAddr(Value* base_pointer, const IrType* struct_type, int field_index,
                         SourceLoc loc);
  Value* CreateIndexAddr(Value* base_pointer, Value* index, SourceLoc loc);
  void CreateBr(BasicBlock* target, SourceLoc loc);
  void CreateCondBr(Value* condition, BasicBlock* if_true, BasicBlock* if_false, SourceLoc loc);
  Instruction* CreateSwitch(Value* value, BasicBlock* default_target,
                            const std::vector<std::pair<int64_t, BasicBlock*>>& cases,
                            SourceLoc loc);
  void CreateRet(Value* value, SourceLoc loc);  // value may be null (void return).
  void CreateUnreachable(SourceLoc loc);

 private:
  Instruction* Append(std::unique_ptr<Instruction> instr, SourceLoc loc);
  std::unique_ptr<Instruction> New(InstrKind kind, const IrType* type);

  Module* module_;
  Function* function_;
  BasicBlock* block_ = nullptr;
};

}  // namespace spex

#endif  // SPEX_IR_BUILDER_H_
