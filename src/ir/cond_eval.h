// Small symbolic helpers over IR condition values.
//
// Used by the comparison-based mapping toolkit and the inference engines to
// answer "which branch edge is taken when this call returns 0 / this value
// equals V?" for the simple guard shapes that configuration-parsing code
// uses (strcmp chains, `!strcasecmp(...)`, `x == 0`, ...).
#ifndef SPEX_IR_COND_EVAL_H_
#define SPEX_IR_COND_EVAL_H_

#include <optional>

#include "src/ir/ir.h"

namespace spex {

// Does `value`'s operand tree contain `needle`? Bounded depth walk.
bool DependsOn(const Value* value, const Value* needle, int max_depth = 16);

// Evaluates `value` under the assumption that `symbol` has integer value
// `assumed`; every other leaf must be an integer constant. Returns nullopt
// when the expression involves anything else.
std::optional<int64_t> EvalAssuming(const Value* value, const Value* symbol, int64_t assumed,
                                    int max_depth = 16);

// For a conditional branch whose condition depends (only) on `symbol` and
// constants: the successor index taken when symbol == assumed. nullopt if
// the condition cannot be evaluated.
std::optional<int> EdgeTakenWhen(const Instruction* cond_br, const Value* symbol,
                                 int64_t assumed);

}  // namespace spex

#endif  // SPEX_IR_COND_EVAL_H_
