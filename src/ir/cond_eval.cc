#include "src/ir/cond_eval.h"

namespace spex {

bool DependsOn(const Value* value, const Value* needle, int max_depth) {
  if (value == needle) {
    return true;
  }
  if (max_depth <= 0 || value->value_kind() != ValueKind::kInstruction) {
    return false;
  }
  const auto* instr = static_cast<const Instruction*>(value);
  for (const Value* operand : instr->operands()) {
    if (DependsOn(operand, needle, max_depth - 1)) {
      return true;
    }
  }
  return false;
}

std::optional<int64_t> EvalAssuming(const Value* value, const Value* symbol, int64_t assumed,
                                    int max_depth) {
  if (max_depth <= 0) {
    return std::nullopt;
  }
  if (value == symbol) {
    return assumed;
  }
  if (value->value_kind() == ValueKind::kConstantInt) {
    return value->constant_int();
  }
  if (value->value_kind() != ValueKind::kInstruction) {
    return std::nullopt;
  }
  const auto* instr = static_cast<const Instruction*>(value);
  switch (instr->instr_kind()) {
    case InstrKind::kCast:
      return EvalAssuming(instr->operand(0), symbol, assumed, max_depth - 1);
    case InstrKind::kCmp: {
      auto lhs = EvalAssuming(instr->operand(0), symbol, assumed, max_depth - 1);
      auto rhs = EvalAssuming(instr->operand(1), symbol, assumed, max_depth - 1);
      if (!lhs.has_value() || !rhs.has_value()) {
        return std::nullopt;
      }
      switch (instr->cmp_pred()) {
        case IrCmpPred::kEq:
          return *lhs == *rhs ? 1 : 0;
        case IrCmpPred::kNe:
          return *lhs != *rhs ? 1 : 0;
        case IrCmpPred::kLt:
          return *lhs < *rhs ? 1 : 0;
        case IrCmpPred::kLe:
          return *lhs <= *rhs ? 1 : 0;
        case IrCmpPred::kGt:
          return *lhs > *rhs ? 1 : 0;
        case IrCmpPred::kGe:
          return *lhs >= *rhs ? 1 : 0;
      }
      return std::nullopt;
    }
    case InstrKind::kBinOp: {
      auto lhs = EvalAssuming(instr->operand(0), symbol, assumed, max_depth - 1);
      auto rhs = EvalAssuming(instr->operand(1), symbol, assumed, max_depth - 1);
      if (!lhs.has_value() || !rhs.has_value()) {
        return std::nullopt;
      }
      switch (instr->bin_op()) {
        case IrBinOp::kAdd:
          return *lhs + *rhs;
        case IrBinOp::kSub:
          return *lhs - *rhs;
        case IrBinOp::kMul:
          return *lhs * *rhs;
        case IrBinOp::kAnd:
          return *lhs & *rhs;
        case IrBinOp::kOr:
          return *lhs | *rhs;
        case IrBinOp::kXor:
          return *lhs ^ *rhs;
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

std::optional<int> EdgeTakenWhen(const Instruction* cond_br, const Value* symbol,
                                 int64_t assumed) {
  if (cond_br->instr_kind() != InstrKind::kCondBr) {
    return std::nullopt;
  }
  auto result = EvalAssuming(cond_br->operand(0), symbol, assumed);
  if (!result.has_value()) {
    return std::nullopt;
  }
  return *result != 0 ? 0 : 1;
}

}  // namespace spex
