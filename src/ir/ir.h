// Core IR: values, instructions, basic blocks, functions, modules.
//
// The IR is a typed, memory-form (pre-mem2reg) SSA-like representation in the
// spirit of LLVM IR, which the paper's analyses run on. Locals live behind
// Alloca slots; every read is a Load and every write a Store, which is what
// makes the inference field-sensitive: addresses are (root, field-path)
// pairs built by FieldAddr/IndexAddr.
//
// Ownership: Module owns globals, functions and constants; Function owns its
// blocks; BasicBlock owns its instructions. Raw pointers elsewhere are
// non-owning borrows with module lifetime.
#ifndef SPEX_IR_IR_H_
#define SPEX_IR_IR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/type.h"
#include "src/support/source_loc.h"

namespace spex {

class BasicBlock;
class Function;
class Module;

// ---------------------------------------------------------------------------
// Values.

enum class ValueKind {
  kConstantInt,
  kConstantFloat,
  kConstantString,
  kConstantNull,
  kGlobal,
  kArgument,
  kInstruction,
};

class Value {
 public:
  virtual ~Value() = default;

  ValueKind value_kind() const { return value_kind_; }
  const IrType* type() const { return type_; }
  const std::string& name() const { return name_; }
  uint32_t id() const { return id_; }

  bool IsConstant() const {
    return value_kind_ == ValueKind::kConstantInt || value_kind_ == ValueKind::kConstantFloat ||
           value_kind_ == ValueKind::kConstantString || value_kind_ == ValueKind::kConstantNull;
  }

  int64_t constant_int() const { return constant_int_; }
  double constant_float() const { return constant_float_; }
  const std::string& constant_string() const { return constant_string_; }

  std::string Label() const;

 protected:
  Value(ValueKind kind, const IrType* type) : value_kind_(kind), type_(type) {}

  ValueKind value_kind_;
  const IrType* type_;
  std::string name_;
  uint32_t id_ = 0;
  int64_t constant_int_ = 0;
  double constant_float_ = 0;
  std::string constant_string_;

  friend class Module;
  friend class Function;
};

// A formal parameter of a function.
class Argument : public Value {
 public:
  Argument(const IrType* type, std::string name, int index, Function* parent)
      : Value(ValueKind::kArgument, type), index_(index), parent_(parent) {
    name_ = std::move(name);
  }
  int index() const { return index_; }
  Function* parent() const { return parent_; }

 private:
  int index_;
  Function* parent_;
};

// ---------------------------------------------------------------------------
// Global variables and their initializers.

// Constant initializer tree for globals: scalars, global references
// (address-of, for mapping tables), and nested lists for arrays/structs.
struct GlobalInit {
  enum class Kind { kNone, kInt, kFloat, kString, kNull, kGlobalRef, kList };
  Kind kind = Kind::kNone;
  int64_t int_value = 0;
  double float_value = 0;
  std::string string_value;  // kString payload or kGlobalRef target name.
  std::vector<GlobalInit> elements;

  static GlobalInit Int(int64_t v);
  static GlobalInit Float(double v);
  static GlobalInit Str(std::string v);
  static GlobalInit Null();
  static GlobalInit Ref(std::string global_name);
  static GlobalInit List(std::vector<GlobalInit> items);
};

class GlobalVariable : public Value {
 public:
  // The global value itself is an address: its Value type is
  // pointer-to-value_type. A Load through it yields value_type.
  GlobalVariable(const IrType* pointer_type, const IrType* value_type, std::string name,
                 bool is_array, int64_t array_size)
      : Value(ValueKind::kGlobal, pointer_type),
        value_type_(value_type),
        is_array_(is_array),
        array_size_(array_size) {
    name_ = std::move(name);
  }

  const IrType* value_type() const { return value_type_; }
  bool is_array() const { return is_array_; }
  int64_t array_size() const { return array_size_; }
  const GlobalInit& init() const { return init_; }
  void set_init(GlobalInit init) { init_ = std::move(init); }
  const SourceLoc& loc() const { return loc_; }
  void set_loc(SourceLoc loc) { loc_ = std::move(loc); }

 private:
  const IrType* value_type_;
  bool is_array_;
  int64_t array_size_;
  GlobalInit init_;
  SourceLoc loc_;
};

// ---------------------------------------------------------------------------
// Instructions.

enum class InstrKind {
  kAlloca,
  kLoad,
  kStore,
  kBinOp,
  kCmp,
  kCast,
  kCall,
  kFieldAddr,
  kIndexAddr,
  kBr,
  kCondBr,
  kSwitch,
  kRet,
  kUnreachable,
};

enum class IrBinOp { kAdd, kSub, kMul, kDiv, kRem, kShl, kShr, kAnd, kOr, kXor };
enum class IrCmpPred { kEq, kNe, kLt, kLe, kGt, kGe };

const char* IrBinOpName(IrBinOp op);
const char* IrCmpPredName(IrCmpPred pred);
// The predicate that holds when `pred` is false (e.g. kLt -> kGe).
IrCmpPred NegateCmpPred(IrCmpPred pred);
// The predicate with operands swapped (e.g. a<b -> b>a).
IrCmpPred SwapCmpPred(IrCmpPred pred);

class Instruction : public Value {
 public:
  InstrKind instr_kind() const { return instr_kind_; }
  const SourceLoc& loc() const { return loc_; }
  BasicBlock* parent() const { return parent_; }

  const std::vector<Value*>& operands() const { return operands_; }
  Value* operand(size_t i) const { return operands_[i]; }
  size_t operand_count() const { return operands_.size(); }

  // kAlloca.
  const IrType* allocated_type() const { return allocated_type_; }
  int64_t alloca_array_size() const { return alloca_array_size_; }

  // kBinOp / kCmp.
  IrBinOp bin_op() const { return bin_op_; }
  IrCmpPred cmp_pred() const { return cmp_pred_; }

  // kCast.
  bool cast_is_explicit() const { return cast_is_explicit_; }

  // kCall: callee name; calls are direct.
  const std::string& callee() const { return callee_; }

  // kFieldAddr.
  const IrType* field_struct_type() const { return field_struct_type_; }
  int field_index() const { return field_index_; }
  const std::string& field_name() const;

  // Terminators: successor blocks.
  const std::vector<BasicBlock*>& successors() const { return successors_; }
  // kSwitch: case values parallel to successors()[1..]; successors()[0] is
  // the default target. kCondBr: successors() = {true_target, false_target}.
  const std::vector<int64_t>& switch_values() const { return switch_values_; }

  bool IsTerminator() const {
    return instr_kind_ == InstrKind::kBr || instr_kind_ == InstrKind::kCondBr ||
           instr_kind_ == InstrKind::kSwitch || instr_kind_ == InstrKind::kRet ||
           instr_kind_ == InstrKind::kUnreachable;
  }

  std::string ToString() const;

 private:
  friend class BasicBlock;
  friend class IrBuilder;

  Instruction(InstrKind kind, const IrType* type) : Value(ValueKind::kInstruction, type),
                                                    instr_kind_(kind) {}

  InstrKind instr_kind_;
  SourceLoc loc_;
  BasicBlock* parent_ = nullptr;
  std::vector<Value*> operands_;

  const IrType* allocated_type_ = nullptr;
  int64_t alloca_array_size_ = 0;
  IrBinOp bin_op_ = IrBinOp::kAdd;
  IrCmpPred cmp_pred_ = IrCmpPred::kEq;
  bool cast_is_explicit_ = false;
  std::string callee_;
  const IrType* field_struct_type_ = nullptr;
  int field_index_ = -1;
  std::vector<BasicBlock*> successors_;
  std::vector<int64_t> switch_values_;
};

// ---------------------------------------------------------------------------
// Basic blocks and functions.

class BasicBlock {
 public:
  BasicBlock(std::string name, Function* parent) : name_(std::move(name)), parent_(parent) {}

  const std::string& name() const { return name_; }
  Function* parent() const { return parent_; }
  uint32_t index() const { return index_; }  // Position within the function.

  const std::vector<std::unique_ptr<Instruction>>& instructions() const { return instructions_; }
  Instruction* terminator() const;
  bool HasTerminator() const;

  std::vector<BasicBlock*> Successors() const;
  const std::vector<BasicBlock*>& predecessors() const { return predecessors_; }

  Instruction* Append(std::unique_ptr<Instruction> instr);

 private:
  friend class Function;

  std::string name_;
  Function* parent_;
  uint32_t index_ = 0;
  std::vector<std::unique_ptr<Instruction>> instructions_;
  std::vector<BasicBlock*> predecessors_;  // Filled by Function::ComputePredecessors.
};

class Function {
 public:
  Function(std::string name, const IrType* return_type, Module* parent)
      : name_(std::move(name)), return_type_(return_type), parent_(parent) {}

  const std::string& name() const { return name_; }
  const IrType* return_type() const { return return_type_; }
  Module* parent() const { return parent_; }
  bool IsDeclaration() const { return blocks_.empty(); }

  Argument* AddArgument(const IrType* type, std::string name);
  const std::vector<std::unique_ptr<Argument>>& arguments() const { return arguments_; }

  BasicBlock* CreateBlock(std::string name);
  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const { return blocks_; }
  BasicBlock* entry() const { return blocks_.empty() ? nullptr : blocks_.front().get(); }

  // Recomputes predecessor lists and block indices; call after construction.
  void Finalize();

  uint32_t NextValueId() { return next_value_id_++; }
  // Number of ids handed out; arguments and instructions are densely
  // numbered 0..value_id_count()-1 within the function.
  uint32_t value_id_count() const { return next_value_id_; }

 private:
  std::string name_;
  const IrType* return_type_;
  Module* parent_;
  std::vector<std::unique_ptr<Argument>> arguments_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  uint32_t next_value_id_ = 0;
};

// ---------------------------------------------------------------------------
// Module.

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  TypeTable& types() { return types_; }
  const TypeTable& types() const { return types_; }

  GlobalVariable* AddGlobal(const IrType* type, std::string name, bool is_array,
                            int64_t array_size);
  GlobalVariable* FindGlobal(const std::string& name) const;
  const std::vector<std::unique_ptr<GlobalVariable>>& globals() const { return globals_; }

  Function* AddFunction(std::string name, const IrType* return_type);
  Function* FindFunction(const std::string& name) const;
  const std::vector<std::unique_ptr<Function>>& functions() const { return functions_; }

  // Interned constants (module lifetime).
  Value* ConstInt(const IrType* type, int64_t value);
  Value* ConstFloat(double value);
  Value* ConstString(std::string value);
  Value* ConstNull(const IrType* pointer_type);

  std::string Print() const;

 private:
  std::string name_;
  TypeTable types_;
  std::vector<std::unique_ptr<GlobalVariable>> globals_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::deque<std::unique_ptr<Value>> constants_;
  std::map<std::pair<const IrType*, int64_t>, Value*> int_constants_;
  std::map<std::string, Value*> string_constants_;
};

}  // namespace spex

#endif  // SPEX_IR_IR_H_
