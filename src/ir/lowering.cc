#include "src/ir/lowering.h"

#include <cassert>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/ir/builder.h"

namespace spex {

namespace {

// Return types of common C library functions, used when a MiniC program
// calls a function it never declared. The corpus declares its own prototypes
// for anything unusual; this table is just a convenience for snippets.
enum class BuiltinReturn { kInt32, kInt64, kString, kDouble, kVoid };

const std::unordered_map<std::string, BuiltinReturn>& BuiltinReturns() {
  static const auto* kTable = new std::unordered_map<std::string, BuiltinReturn>{
      {"atoi", BuiltinReturn::kInt32},     {"atol", BuiltinReturn::kInt64},
      {"strtol", BuiltinReturn::kInt64},   {"strtoll", BuiltinReturn::kInt64},
      {"strtoul", BuiltinReturn::kInt64},  {"strtod", BuiltinReturn::kDouble},
      {"sscanf", BuiltinReturn::kInt32},   {"sprintf", BuiltinReturn::kInt32},
      {"snprintf", BuiltinReturn::kInt32}, {"strcmp", BuiltinReturn::kInt32},
      {"strcasecmp", BuiltinReturn::kInt32},
      {"strncmp", BuiltinReturn::kInt32},  {"strncasecmp", BuiltinReturn::kInt32},
      {"strlen", BuiltinReturn::kInt64},   {"strchr", BuiltinReturn::kString},
      {"strstr", BuiltinReturn::kString},  {"strdup", BuiltinReturn::kString},
      {"getenv", BuiltinReturn::kString},  {"open", BuiltinReturn::kInt32},
      {"close", BuiltinReturn::kInt32},    {"read", BuiltinReturn::kInt64},
      {"write", BuiltinReturn::kInt64},    {"socket", BuiltinReturn::kInt32},
      {"bind", BuiltinReturn::kInt32},     {"listen", BuiltinReturn::kInt32},
      {"connect", BuiltinReturn::kInt32},  {"htons", BuiltinReturn::kInt32},
      {"sleep", BuiltinReturn::kInt32},    {"usleep", BuiltinReturn::kInt32},
      {"time", BuiltinReturn::kInt64},     {"exit", BuiltinReturn::kVoid},
      {"abort", BuiltinReturn::kVoid},     {"malloc", BuiltinReturn::kInt64},
      {"free", BuiltinReturn::kVoid},      {"printf", BuiltinReturn::kInt32},
      {"fprintf", BuiltinReturn::kInt32},  {"log_error", BuiltinReturn::kVoid},
      {"log_warn", BuiltinReturn::kVoid},  {"log_info", BuiltinReturn::kVoid},
      {"log_fatal", BuiltinReturn::kVoid}, {"parse_int_strict", BuiltinReturn::kInt32},
      {"invoke_handler1", BuiltinReturn::kInt32},
      {"invoke_handler2", BuiltinReturn::kInt32},
  };
  return *kTable;
}

class LoweringContext {
 public:
  LoweringContext(const TranslationUnit& unit, DiagnosticEngine* diags)
      : unit_(unit), diags_(diags), module_(std::make_unique<Module>(unit.file_name)) {}

  std::unique_ptr<Module> Lower();

 private:
  struct LocalSlot {
    Value* address = nullptr;  // The alloca.
    bool is_array = false;
  };

  const IrType* ConvertType(const AstType& ast_type);
  void LowerStructs();
  void LowerGlobals();
  GlobalInit EvalConstInit(const Expr& expr);
  void DeclareFunctions();
  void LowerFunctionBody(const FunctionDecl& decl, Function* fn);

  // Statement / expression lowering. All methods operate on builder_'s
  // current insertion block.
  void LowerStmt(const Stmt& stmt);
  void LowerBlockStmts(const std::vector<StmtPtr>& stmts);
  void LowerIf(const Stmt& stmt);
  void LowerSwitch(const Stmt& stmt);
  void LowerWhile(const Stmt& stmt);
  void LowerDoWhile(const Stmt& stmt);
  void LowerFor(const Stmt& stmt);
  void LowerLocalDecl(const VarDecl& decl);

  Value* LowerExpr(const Expr& expr);
  Value* LowerLValue(const Expr& expr);  // Returns an address (pointer-typed value).
  Value* LowerCondition(const Expr& expr);
  Value* ToBool(Value* value, const SourceLoc& loc);
  Value* Coerce(Value* value, const IrType* target, const SourceLoc& loc);
  Value* LowerCall(const Expr& expr);
  Value* LowerShortCircuit(const Expr& expr);
  Value* LowerTernary(const Expr& expr);

  // Symbol handling.
  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }
  void DefineLocal(const std::string& name, LocalSlot slot) { scopes_.back()[name] = slot; }
  const LocalSlot* FindLocal(const std::string& name) const;

  BasicBlock* NewBlock(const std::string& hint);
  bool IsArrayBase(const Expr& expr) const;

  const TranslationUnit& unit_;
  DiagnosticEngine* diags_;
  std::unique_ptr<Module> module_;

  Function* current_fn_ = nullptr;
  std::unique_ptr<IrBuilder> builder_;
  std::vector<std::map<std::string, LocalSlot>> scopes_;
  std::vector<std::pair<BasicBlock*, BasicBlock*>> loop_stack_;  // (break, continue) targets.
  int block_counter_ = 0;
};

const IrType* LoweringContext::ConvertType(const AstType& ast_type) {
  TypeTable& types = module_->types();
  switch (ast_type.kind) {
    case AstTypeKind::kVoid:
      return types.void_type();
    case AstTypeKind::kBool:
      return types.bool_type();
    case AstTypeKind::kChar:
      return types.IntType(8, ast_type.is_unsigned);
    case AstTypeKind::kShort:
      return types.IntType(16, ast_type.is_unsigned);
    case AstTypeKind::kInt:
      return types.IntType(32, ast_type.is_unsigned);
    case AstTypeKind::kLong:
      return types.IntType(64, ast_type.is_unsigned);
    case AstTypeKind::kDouble:
      return types.float_type();
    case AstTypeKind::kStruct:
      return types.StructType(ast_type.struct_name);
    case AstTypeKind::kPointer:
      if (ast_type.IsString()) {
        return types.string_type();
      }
      return types.PointerTo(ConvertType(*ast_type.pointee));
  }
  return types.void_type();
}

void LoweringContext::LowerStructs() {
  // Two passes so structs can reference each other through pointers.
  for (const auto& decl : unit_.structs) {
    module_->types().StructType(decl->name);
  }
  for (const auto& decl : unit_.structs) {
    std::vector<const IrType*> field_types;
    std::vector<std::string> field_names;
    for (const StructField& field : decl->fields) {
      field_types.push_back(ConvertType(field.type));
      field_names.push_back(field.name);
    }
    module_->types().DefineStructBody(decl->name, std::move(field_types),
                                      std::move(field_names));
  }
}

GlobalInit LoweringContext::EvalConstInit(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kIntLiteral:
      return GlobalInit::Int(expr.int_value);
    case ExprKind::kFloatLiteral:
      return GlobalInit::Float(expr.float_value);
    case ExprKind::kStringLiteral:
      return GlobalInit::Str(expr.string_value);
    case ExprKind::kNullLiteral:
      return GlobalInit::Null();
    case ExprKind::kUnary:
      if (expr.unary_op == UnaryOp::kNegate) {
        GlobalInit inner = EvalConstInit(*expr.lhs);
        if (inner.kind == GlobalInit::Kind::kInt) {
          return GlobalInit::Int(-inner.int_value);
        }
        if (inner.kind == GlobalInit::Kind::kFloat) {
          return GlobalInit::Float(-inner.float_value);
        }
      }
      if (expr.unary_op == UnaryOp::kAddressOf && expr.lhs->kind == ExprKind::kIdentifier) {
        return GlobalInit::Ref(expr.lhs->name);
      }
      break;
    case ExprKind::kIdentifier:
      // A bare identifier in a constant initializer refers to a function
      // (handler tables) or to another global's address (rare).
      return GlobalInit::Ref(expr.name);
    case ExprKind::kInitList: {
      std::vector<GlobalInit> elements;
      elements.reserve(expr.arguments.size());
      for (const auto& arg : expr.arguments) {
        elements.push_back(EvalConstInit(*arg));
      }
      return GlobalInit::List(std::move(elements));
    }
    case ExprKind::kBinary: {
      GlobalInit lhs = EvalConstInit(*expr.lhs);
      GlobalInit rhs = EvalConstInit(*expr.rhs);
      if (lhs.kind == GlobalInit::Kind::kInt && rhs.kind == GlobalInit::Kind::kInt) {
        int64_t a = lhs.int_value;
        int64_t b = rhs.int_value;
        switch (expr.binary_op) {
          case BinaryOp::kAdd:
            return GlobalInit::Int(a + b);
          case BinaryOp::kSub:
            return GlobalInit::Int(a - b);
          case BinaryOp::kMul:
            return GlobalInit::Int(a * b);
          case BinaryOp::kDiv:
            return GlobalInit::Int(b != 0 ? a / b : 0);
          case BinaryOp::kShl:
            return GlobalInit::Int(a << b);
          default:
            break;
        }
      }
      break;
    }
    default:
      break;
  }
  diags_->Error(expr.loc, "unsupported constant initializer expression");
  return GlobalInit::Int(0);
}

void LoweringContext::LowerGlobals() {
  for (const auto& decl : unit_.globals) {
    const IrType* type = ConvertType(decl->type);
    int64_t array_size = 0;
    bool is_array = decl->has_array_size;
    if (is_array) {
      array_size = decl->array_size;
    }
    GlobalInit init;
    if (decl->init != nullptr) {
      init = EvalConstInit(*decl->init);
      if (is_array && array_size < 0 && init.kind == GlobalInit::Kind::kList) {
        array_size = static_cast<int64_t>(init.elements.size());
      }
    }
    GlobalVariable* global = module_->AddGlobal(type, decl->name, is_array, array_size);
    global->set_init(std::move(init));
    global->set_loc(decl->loc);
  }
}

void LoweringContext::DeclareFunctions() {
  for (const auto& decl : unit_.functions) {
    if (module_->FindFunction(decl->name) != nullptr && decl->body == nullptr) {
      continue;  // Prototype after definition adds nothing.
    }
    Function* fn = module_->AddFunction(decl->name, ConvertType(decl->return_type));
    for (const ParamDecl& param : decl->params) {
      fn->AddArgument(ConvertType(param.type), param.name);
    }
  }
}

std::unique_ptr<Module> LoweringContext::Lower() {
  LowerStructs();
  LowerGlobals();
  DeclareFunctions();
  for (const auto& decl : unit_.functions) {
    if (decl->body == nullptr) {
      continue;
    }
    Function* fn = module_->FindFunction(decl->name);
    assert(fn != nullptr);
    if (!fn->IsDeclaration()) {
      continue;  // Duplicate definition; first one wins, error already noted.
    }
    LowerFunctionBody(*decl, fn);
    fn->Finalize();
  }
  return std::move(module_);
}

BasicBlock* LoweringContext::NewBlock(const std::string& hint) {
  return current_fn_->CreateBlock(hint + "." + std::to_string(block_counter_++));
}

const LoweringContext::LocalSlot* LoweringContext::FindLocal(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end()) {
      return &found->second;
    }
  }
  return nullptr;
}

void LoweringContext::LowerFunctionBody(const FunctionDecl& decl, Function* fn) {
  current_fn_ = fn;
  block_counter_ = 0;
  builder_ = std::make_unique<IrBuilder>(module_.get(), fn);
  BasicBlock* entry = fn->CreateBlock("entry");
  builder_->SetInsertPoint(entry);
  scopes_.clear();
  PushScope();
  for (size_t i = 0; i < decl.params.size(); ++i) {
    Argument* arg = fn->arguments()[i].get();
    Instruction* slot = builder_->CreateAlloca(arg->type(), 0, arg->name(), decl.params[i].loc);
    builder_->CreateStore(arg, slot, decl.params[i].loc);
    DefineLocal(arg->name(), LocalSlot{slot, false});
  }
  LowerStmt(*decl.body);
  // Terminate remaining open blocks: blocks that real control flow can reach
  // get an implicit return; dead continuation blocks left behind by early
  // returns/breaks get `unreachable`.
  fn->Finalize();  // Computes predecessor lists for the reachability check.
  for (const auto& block : fn->blocks()) {
    if (block->HasTerminator()) {
      continue;
    }
    builder_->SetInsertPoint(block.get());
    bool live = block.get() == fn->entry() || !block->predecessors().empty();
    if (!live) {
      builder_->CreateUnreachable(decl.loc);
    } else if (fn->return_type()->IsVoid()) {
      builder_->CreateRet(nullptr, decl.loc);
    } else {
      builder_->CreateRet(module_->ConstInt(module_->types().IntType(32, false), 0), decl.loc);
    }
  }
  PopScope();
}

void LoweringContext::LowerBlockStmts(const std::vector<StmtPtr>& stmts) {
  for (const auto& stmt : stmts) {
    LowerStmt(*stmt);
  }
}

void LoweringContext::LowerStmt(const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kBlock:
      PushScope();
      LowerBlockStmts(stmt.body);
      PopScope();
      break;
    case StmtKind::kDecl:
      LowerLocalDecl(*stmt.decl);
      break;
    case StmtKind::kExpr:
      LowerExpr(*stmt.expr);
      break;
    case StmtKind::kIf:
      LowerIf(stmt);
      break;
    case StmtKind::kSwitch:
      LowerSwitch(stmt);
      break;
    case StmtKind::kWhile:
      LowerWhile(stmt);
      break;
    case StmtKind::kDoWhile:
      LowerDoWhile(stmt);
      break;
    case StmtKind::kFor:
      LowerFor(stmt);
      break;
    case StmtKind::kReturn: {
      Value* value = nullptr;
      if (stmt.expr != nullptr) {
        value = LowerExpr(*stmt.expr);
        if (!current_fn_->return_type()->IsVoid()) {
          value = Coerce(value, current_fn_->return_type(), stmt.loc);
        }
      }
      builder_->CreateRet(value, stmt.loc);
      builder_->SetInsertPoint(NewBlock("afterret"));
      break;
    }
    case StmtKind::kBreak:
      if (loop_stack_.empty()) {
        diags_->Error(stmt.loc, "'break' outside loop or switch");
      } else {
        builder_->CreateBr(loop_stack_.back().first, stmt.loc);
        builder_->SetInsertPoint(NewBlock("afterbreak"));
      }
      break;
    case StmtKind::kContinue: {
      BasicBlock* target = nullptr;
      for (auto it = loop_stack_.rbegin(); it != loop_stack_.rend(); ++it) {
        if (it->second != nullptr) {
          target = it->second;
          break;
        }
      }
      if (target == nullptr) {
        diags_->Error(stmt.loc, "'continue' outside loop");
      } else {
        builder_->CreateBr(target, stmt.loc);
        builder_->SetInsertPoint(NewBlock("aftercontinue"));
      }
      break;
    }
  }
}

void LoweringContext::LowerLocalDecl(const VarDecl& decl) {
  const IrType* type = ConvertType(decl.type);
  int64_t array_size = decl.has_array_size ? decl.array_size : 0;
  bool is_array = decl.has_array_size;
  if (is_array && array_size < 0 && decl.init != nullptr &&
      decl.init->kind == ExprKind::kInitList) {
    array_size = static_cast<int64_t>(decl.init->arguments.size());
  }
  Instruction* slot = builder_->CreateAlloca(type, array_size, decl.name, decl.loc);
  DefineLocal(decl.name, LocalSlot{slot, is_array});
  if (decl.init != nullptr) {
    if (decl.init->kind == ExprKind::kInitList) {
      // Element-wise stores through indexaddr.
      for (size_t i = 0; i < decl.init->arguments.size(); ++i) {
        Value* index = module_->ConstInt(module_->types().IntType(64, false),
                                         static_cast<int64_t>(i));
        Value* addr = builder_->CreateIndexAddr(slot, index, decl.loc);
        Value* value = LowerExpr(*decl.init->arguments[i]);
        builder_->CreateStore(Coerce(value, type, decl.loc), addr, decl.loc);
      }
    } else {
      Value* value = LowerExpr(*decl.init);
      builder_->CreateStore(Coerce(value, type, decl.loc), slot, decl.loc);
    }
  }
}

void LoweringContext::LowerIf(const Stmt& stmt) {
  Value* condition = LowerCondition(*stmt.expr);
  BasicBlock* then_block = NewBlock("if.then");
  BasicBlock* merge = NewBlock("if.end");
  BasicBlock* else_block = stmt.else_branch != nullptr ? NewBlock("if.else") : merge;
  builder_->CreateCondBr(condition, then_block, else_block, stmt.loc);

  builder_->SetInsertPoint(then_block);
  LowerStmt(*stmt.then_branch);
  if (!builder_->insert_block()->HasTerminator()) {
    builder_->CreateBr(merge, stmt.loc);
  }
  if (stmt.else_branch != nullptr) {
    builder_->SetInsertPoint(else_block);
    LowerStmt(*stmt.else_branch);
    if (!builder_->insert_block()->HasTerminator()) {
      builder_->CreateBr(merge, stmt.loc);
    }
  }
  builder_->SetInsertPoint(merge);
}

void LoweringContext::LowerSwitch(const Stmt& stmt) {
  Value* subject = LowerExpr(*stmt.expr);
  BasicBlock* merge = NewBlock("switch.end");

  std::vector<BasicBlock*> case_blocks;
  BasicBlock* default_block = merge;
  for (size_t i = 0; i < stmt.cases.size(); ++i) {
    BasicBlock* block = NewBlock(stmt.cases[i].is_default ? "switch.default" : "switch.case");
    case_blocks.push_back(block);
    if (stmt.cases[i].is_default) {
      default_block = block;
    }
  }

  std::vector<std::pair<int64_t, BasicBlock*>> table;
  for (size_t i = 0; i < stmt.cases.size(); ++i) {
    for (int64_t value : stmt.cases[i].values) {
      table.emplace_back(value, case_blocks[i]);
    }
  }
  builder_->CreateSwitch(subject, default_block, table, stmt.loc);

  loop_stack_.emplace_back(merge, nullptr);  // break targets merge; continue passes through.
  for (size_t i = 0; i < stmt.cases.size(); ++i) {
    builder_->SetInsertPoint(case_blocks[i]);
    LowerBlockStmts(stmt.cases[i].body);
    if (!builder_->insert_block()->HasTerminator()) {
      // C-style fallthrough into the next case body, or exit on the last one.
      BasicBlock* next = (i + 1 < case_blocks.size()) ? case_blocks[i + 1] : merge;
      builder_->CreateBr(next, stmt.cases[i].loc);
    }
  }
  loop_stack_.pop_back();
  builder_->SetInsertPoint(merge);
}

void LoweringContext::LowerWhile(const Stmt& stmt) {
  BasicBlock* cond_block = NewBlock("while.cond");
  BasicBlock* body_block = NewBlock("while.body");
  BasicBlock* exit_block = NewBlock("while.end");
  builder_->CreateBr(cond_block, stmt.loc);

  builder_->SetInsertPoint(cond_block);
  Value* condition = LowerCondition(*stmt.expr);
  builder_->CreateCondBr(condition, body_block, exit_block, stmt.loc);

  builder_->SetInsertPoint(body_block);
  loop_stack_.emplace_back(exit_block, cond_block);
  LowerStmt(*stmt.loop_body);
  loop_stack_.pop_back();
  if (!builder_->insert_block()->HasTerminator()) {
    builder_->CreateBr(cond_block, stmt.loc);
  }
  builder_->SetInsertPoint(exit_block);
}

void LoweringContext::LowerDoWhile(const Stmt& stmt) {
  BasicBlock* body_block = NewBlock("do.body");
  BasicBlock* cond_block = NewBlock("do.cond");
  BasicBlock* exit_block = NewBlock("do.end");
  builder_->CreateBr(body_block, stmt.loc);

  builder_->SetInsertPoint(body_block);
  loop_stack_.emplace_back(exit_block, cond_block);
  LowerStmt(*stmt.loop_body);
  loop_stack_.pop_back();
  if (!builder_->insert_block()->HasTerminator()) {
    builder_->CreateBr(cond_block, stmt.loc);
  }

  builder_->SetInsertPoint(cond_block);
  Value* condition = LowerCondition(*stmt.expr);
  builder_->CreateCondBr(condition, body_block, exit_block, stmt.loc);
  builder_->SetInsertPoint(exit_block);
}

void LoweringContext::LowerFor(const Stmt& stmt) {
  PushScope();
  if (stmt.for_init != nullptr) {
    LowerStmt(*stmt.for_init);
  }
  BasicBlock* cond_block = NewBlock("for.cond");
  BasicBlock* body_block = NewBlock("for.body");
  BasicBlock* step_block = NewBlock("for.step");
  BasicBlock* exit_block = NewBlock("for.end");
  builder_->CreateBr(cond_block, stmt.loc);

  builder_->SetInsertPoint(cond_block);
  if (stmt.expr != nullptr) {
    Value* condition = LowerCondition(*stmt.expr);
    builder_->CreateCondBr(condition, body_block, exit_block, stmt.loc);
  } else {
    builder_->CreateBr(body_block, stmt.loc);
  }

  builder_->SetInsertPoint(body_block);
  loop_stack_.emplace_back(exit_block, step_block);
  LowerStmt(*stmt.loop_body);
  loop_stack_.pop_back();
  if (!builder_->insert_block()->HasTerminator()) {
    builder_->CreateBr(step_block, stmt.loc);
  }

  builder_->SetInsertPoint(step_block);
  if (stmt.for_step != nullptr) {
    LowerExpr(*stmt.for_step);
  }
  builder_->CreateBr(cond_block, stmt.loc);
  builder_->SetInsertPoint(exit_block);
  PopScope();
}

Value* LoweringContext::ToBool(Value* value, const SourceLoc& loc) {
  const IrType* type = value->type();
  if (type->IsBool()) {
    return value;
  }
  Value* zero = nullptr;
  TypeTable& types = module_->types();
  if (type->IsInteger()) {
    zero = module_->ConstInt(type, 0);
  } else if (type->kind() == IrTypeKind::kFloat) {
    zero = module_->ConstFloat(0.0);
  } else if (type->IsString() || type->IsPointer()) {
    zero = module_->ConstNull(type);
  } else {
    zero = module_->ConstInt(types.IntType(32, false), 0);
  }
  return builder_->CreateCmp(IrCmpPred::kNe, value, zero, loc);
}

Value* LoweringContext::Coerce(Value* value, const IrType* target, const SourceLoc& loc) {
  const IrType* from = value->type();
  if (from == target) {
    return value;
  }
  // Numeric / bool conversions become implicit casts; everything else is
  // passed through untouched (the corpus is well-typed by construction).
  bool from_num = from->IsNumeric() || from->IsBool();
  bool to_num = target->IsNumeric() || target->IsBool();
  if (from_num && to_num) {
    return builder_->CreateCast(target, value, /*is_explicit=*/false, loc);
  }
  return value;
}

Value* LoweringContext::LowerCondition(const Expr& expr) {
  Value* value = LowerExpr(expr);
  return ToBool(value, expr.loc);
}

bool LoweringContext::IsArrayBase(const Expr& expr) const {
  if (expr.kind != ExprKind::kIdentifier) {
    return false;
  }
  const LocalSlot* local = FindLocal(expr.name);
  if (local != nullptr) {
    return local->is_array;
  }
  GlobalVariable* global = module_->FindGlobal(expr.name);
  return global != nullptr && global->is_array();
}

Value* LoweringContext::LowerLValue(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kIdentifier: {
      const LocalSlot* local = FindLocal(expr.name);
      if (local != nullptr) {
        return local->address;
      }
      GlobalVariable* global = module_->FindGlobal(expr.name);
      if (global != nullptr) {
        return global;
      }
      diags_->Error(expr.loc, "unknown variable '" + expr.name + "'");
      // Recover with a fresh slot so lowering can continue.
      Instruction* slot = builder_->CreateAlloca(module_->types().IntType(64, false), 0,
                                                 expr.name, expr.loc);
      return slot;
    }
    case ExprKind::kMember: {
      Value* base = nullptr;
      if (expr.is_arrow) {
        base = LowerExpr(*expr.lhs);  // Pointer value.
      } else {
        base = LowerLValue(*expr.lhs);  // Address of the aggregate.
      }
      const IrType* base_type = base->type();
      const IrType* struct_type = nullptr;
      if (base_type->IsPointer() && base_type->pointee()->IsStruct()) {
        struct_type = base_type->pointee();
      } else if (base_type->IsStruct()) {
        struct_type = base_type;
      }
      if (struct_type == nullptr) {
        diags_->Error(expr.loc, "member access on non-struct value");
        return base;
      }
      int index = struct_type->FieldIndex(expr.name);
      if (index < 0) {
        diags_->Error(expr.loc, "no field '" + expr.name + "' in " + struct_type->ToString());
        return base;
      }
      return builder_->CreateFieldAddr(base, struct_type, index, expr.loc);
    }
    case ExprKind::kIndex: {
      Value* index = LowerExpr(*expr.rhs);
      if (IsArrayBase(*expr.lhs)) {
        Value* base = LowerLValue(*expr.lhs);
        return builder_->CreateIndexAddr(base, index, expr.loc);
      }
      // Pointer indexing: load the pointer value first.
      Value* base = LowerExpr(*expr.lhs);
      if (!base->type()->IsPointer()) {
        diags_->Error(expr.loc, "indexing a non-pointer value");
        return base;
      }
      return builder_->CreateIndexAddr(base, index, expr.loc);
    }
    case ExprKind::kUnary:
      if (expr.unary_op == UnaryOp::kDeref) {
        return LowerExpr(*expr.lhs);  // The pointer value is the address.
      }
      break;
    default:
      break;
  }
  diags_->Error(expr.loc, "expression is not assignable");
  Instruction* slot =
      builder_->CreateAlloca(module_->types().IntType(64, false), 0, "error", expr.loc);
  return slot;
}

Value* LoweringContext::LowerShortCircuit(const Expr& expr) {
  // result = lhs ? (rhs != 0) : false   for &&
  // result = lhs ? true : (rhs != 0)    for ||
  TypeTable& types = module_->types();
  Instruction* slot = builder_->CreateAlloca(types.bool_type(), 0, "sc.tmp", expr.loc);
  Value* lhs = LowerCondition(*expr.lhs);
  BasicBlock* rhs_block = NewBlock("sc.rhs");
  BasicBlock* merge = NewBlock("sc.end");
  Value* true_const = module_->ConstInt(types.bool_type(), 1);
  Value* false_const = module_->ConstInt(types.bool_type(), 0);
  if (expr.binary_op == BinaryOp::kLogicalAnd) {
    builder_->CreateStore(false_const, slot, expr.loc);
    builder_->CreateCondBr(lhs, rhs_block, merge, expr.loc);
  } else {
    builder_->CreateStore(true_const, slot, expr.loc);
    builder_->CreateCondBr(lhs, merge, rhs_block, expr.loc);
  }
  builder_->SetInsertPoint(rhs_block);
  Value* rhs = LowerCondition(*expr.rhs);
  builder_->CreateStore(rhs, slot, expr.loc);
  builder_->CreateBr(merge, expr.loc);
  builder_->SetInsertPoint(merge);
  return builder_->CreateLoad(slot, expr.loc);
}

Value* LoweringContext::LowerTernary(const Expr& expr) {
  Value* condition = LowerCondition(*expr.lhs);
  BasicBlock* then_block = NewBlock("sel.then");
  BasicBlock* else_block = NewBlock("sel.else");
  BasicBlock* merge = NewBlock("sel.end");
  builder_->CreateCondBr(condition, then_block, else_block, expr.loc);

  builder_->SetInsertPoint(then_block);
  Value* then_value = LowerExpr(*expr.rhs);
  Instruction* slot = nullptr;
  {
    // Allocate the temp in whatever type the then-value has; the else value
    // is coerced to match.
    slot = builder_->CreateAlloca(then_value->type(), 0, "sel.tmp", expr.loc);
    builder_->CreateStore(then_value, slot, expr.loc);
    builder_->CreateBr(merge, expr.loc);
  }
  builder_->SetInsertPoint(else_block);
  Value* else_value = LowerExpr(*expr.third);
  builder_->CreateStore(Coerce(else_value, then_value->type(), expr.loc), slot, expr.loc);
  builder_->CreateBr(merge, expr.loc);

  builder_->SetInsertPoint(merge);
  return builder_->CreateLoad(slot, expr.loc);
}

Value* LoweringContext::LowerCall(const Expr& expr) {
  TypeTable& types = module_->types();
  Function* callee = module_->FindFunction(expr.name);
  const IrType* return_type = nullptr;
  if (callee != nullptr) {
    return_type = callee->return_type();
  } else {
    auto it = BuiltinReturns().find(expr.name);
    if (it != BuiltinReturns().end()) {
      switch (it->second) {
        case BuiltinReturn::kInt32:
          return_type = types.IntType(32, false);
          break;
        case BuiltinReturn::kInt64:
          return_type = types.IntType(64, false);
          break;
        case BuiltinReturn::kString:
          return_type = types.string_type();
          break;
        case BuiltinReturn::kDouble:
          return_type = types.float_type();
          break;
        case BuiltinReturn::kVoid:
          return_type = types.void_type();
          break;
      }
    } else {
      return_type = types.IntType(64, false);
    }
  }
  std::vector<Value*> args;
  args.reserve(expr.arguments.size());
  for (size_t i = 0; i < expr.arguments.size(); ++i) {
    Value* arg = LowerExpr(*expr.arguments[i]);
    if (callee != nullptr && i < callee->arguments().size()) {
      arg = Coerce(arg, callee->arguments()[i]->type(), expr.loc);
    }
    args.push_back(arg);
  }
  return builder_->CreateCall(return_type, expr.name, std::move(args), expr.loc);
}

Value* LoweringContext::LowerExpr(const Expr& expr) {
  TypeTable& types = module_->types();
  switch (expr.kind) {
    case ExprKind::kIntLiteral:
      return module_->ConstInt(types.IntType(32, false), expr.int_value);
    case ExprKind::kFloatLiteral:
      return module_->ConstFloat(expr.float_value);
    case ExprKind::kStringLiteral:
      return module_->ConstString(expr.string_value);
    case ExprKind::kNullLiteral:
      return module_->ConstNull(types.string_type());
    case ExprKind::kIdentifier: {
      Value* address = LowerLValue(expr);
      if (IsArrayBase(expr)) {
        return address;  // Arrays decay to their base address.
      }
      return builder_->CreateLoad(address, expr.loc);
    }
    case ExprKind::kMember:
    case ExprKind::kIndex: {
      Value* address = LowerLValue(expr);
      return builder_->CreateLoad(address, expr.loc);
    }
    case ExprKind::kAssign: {
      Value* value = LowerExpr(*expr.rhs);
      Value* address = LowerLValue(*expr.lhs);
      const IrType* target = address->type()->IsPointer() ? address->type()->pointee() : nullptr;
      if (target != nullptr) {
        value = Coerce(value, target, expr.loc);
      }
      builder_->CreateStore(value, address, expr.loc);
      return value;
    }
    case ExprKind::kUnary: {
      switch (expr.unary_op) {
        case UnaryOp::kNegate: {
          Value* operand = LowerExpr(*expr.lhs);
          Value* zero = operand->type()->kind() == IrTypeKind::kFloat
                            ? module_->ConstFloat(0.0)
                            : module_->ConstInt(operand->type(), 0);
          return builder_->CreateBinOp(IrBinOp::kSub, zero, operand, expr.loc);
        }
        case UnaryOp::kNot: {
          Value* operand = ToBool(LowerExpr(*expr.lhs), expr.loc);
          return builder_->CreateCmp(IrCmpPred::kEq, operand,
                                     module_->ConstInt(types.bool_type(), 0), expr.loc);
        }
        case UnaryOp::kBitNot: {
          Value* operand = LowerExpr(*expr.lhs);
          return builder_->CreateBinOp(IrBinOp::kXor, operand,
                                       module_->ConstInt(operand->type(), -1), expr.loc);
        }
        case UnaryOp::kDeref: {
          Value* pointer = LowerExpr(*expr.lhs);
          if (!pointer->type()->IsPointer()) {
            diags_->Error(expr.loc, "dereference of a non-pointer value");
            return pointer;
          }
          return builder_->CreateLoad(pointer, expr.loc);
        }
        case UnaryOp::kAddressOf:
          return LowerLValue(*expr.lhs);
        case UnaryOp::kPreInc:
        case UnaryOp::kPreDec: {
          Value* address = LowerLValue(*expr.lhs);
          Value* old_value = builder_->CreateLoad(address, expr.loc);
          IrBinOp op = expr.unary_op == UnaryOp::kPreInc ? IrBinOp::kAdd : IrBinOp::kSub;
          Value* one = old_value->type()->kind() == IrTypeKind::kFloat
                           ? module_->ConstFloat(1.0)
                           : module_->ConstInt(old_value->type(), 1);
          Value* new_value = builder_->CreateBinOp(op, old_value, one, expr.loc);
          builder_->CreateStore(new_value, address, expr.loc);
          return new_value;
        }
      }
      break;
    }
    case ExprKind::kBinary: {
      if (expr.binary_op == BinaryOp::kLogicalAnd || expr.binary_op == BinaryOp::kLogicalOr) {
        return LowerShortCircuit(expr);
      }
      Value* lhs = LowerExpr(*expr.lhs);
      Value* rhs = LowerExpr(*expr.rhs);
      // Promote to a common numeric type for mixed operands.
      if (lhs->type() != rhs->type() && (lhs->type()->IsNumeric() || lhs->type()->IsBool()) &&
          (rhs->type()->IsNumeric() || rhs->type()->IsBool())) {
        const IrType* common = nullptr;
        if (lhs->type()->kind() == IrTypeKind::kFloat ||
            rhs->type()->kind() == IrTypeKind::kFloat) {
          common = types.float_type();
        } else {
          int width = 32;
          if (lhs->type()->IsInteger()) {
            width = std::max(width, lhs->type()->bit_width());
          }
          if (rhs->type()->IsInteger()) {
            width = std::max(width, rhs->type()->bit_width());
          }
          common = types.IntType(width, false);
        }
        lhs = Coerce(lhs, common, expr.loc);
        rhs = Coerce(rhs, common, expr.loc);
      }
      if (IsComparisonOp(expr.binary_op)) {
        IrCmpPred pred;
        switch (expr.binary_op) {
          case BinaryOp::kLt:
            pred = IrCmpPred::kLt;
            break;
          case BinaryOp::kLe:
            pred = IrCmpPred::kLe;
            break;
          case BinaryOp::kGt:
            pred = IrCmpPred::kGt;
            break;
          case BinaryOp::kGe:
            pred = IrCmpPred::kGe;
            break;
          case BinaryOp::kEq:
            pred = IrCmpPred::kEq;
            break;
          default:
            pred = IrCmpPred::kNe;
            break;
        }
        return builder_->CreateCmp(pred, lhs, rhs, expr.loc);
      }
      IrBinOp op;
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
          op = IrBinOp::kAdd;
          break;
        case BinaryOp::kSub:
          op = IrBinOp::kSub;
          break;
        case BinaryOp::kMul:
          op = IrBinOp::kMul;
          break;
        case BinaryOp::kDiv:
          op = IrBinOp::kDiv;
          break;
        case BinaryOp::kRem:
          op = IrBinOp::kRem;
          break;
        case BinaryOp::kShl:
          op = IrBinOp::kShl;
          break;
        case BinaryOp::kShr:
          op = IrBinOp::kShr;
          break;
        case BinaryOp::kBitAnd:
          op = IrBinOp::kAnd;
          break;
        case BinaryOp::kBitOr:
          op = IrBinOp::kOr;
          break;
        default:
          op = IrBinOp::kXor;
          break;
      }
      return builder_->CreateBinOp(op, lhs, rhs, expr.loc);
    }
    case ExprKind::kTernary:
      return LowerTernary(expr);
    case ExprKind::kCall:
      return LowerCall(expr);
    case ExprKind::kCast: {
      Value* operand = LowerExpr(*expr.lhs);
      const IrType* target = ConvertType(expr.cast_type);
      if (operand->type() == target) {
        return operand;
      }
      return builder_->CreateCast(target, operand, /*is_explicit=*/true, expr.loc);
    }
    case ExprKind::kInitList:
      diags_->Error(expr.loc, "initializer list in expression context");
      return module_->ConstInt(types.IntType(32, false), 0);
  }
  return module_->ConstInt(types.IntType(32, false), 0);
}

}  // namespace

std::unique_ptr<Module> LowerToIr(const TranslationUnit& unit, DiagnosticEngine* diags) {
  LoweringContext context(unit, diags);
  return context.Lower();
}

}  // namespace spex
