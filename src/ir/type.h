// IR type system.
//
// Types are interned per Module (see ir.h); all IrType pointers handed out by
// the TypeTable live as long as the table and compare equal by identity.
// The paper's basic-type constraints ("32-bit integer number") come straight
// from these types, so integer widths are modeled explicitly.
#ifndef SPEX_IR_TYPE_H_
#define SPEX_IR_TYPE_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

namespace spex {

enum class IrTypeKind {
  kVoid,
  kBool,
  kInt,      // width in bits + signedness
  kFloat,    // 64-bit floating point
  kString,   // char* — modeled as a first-class scalar
  kPointer,  // pointer to any other type
  kStruct,
};

class IrType {
 public:
  IrTypeKind kind() const { return kind_; }
  int bit_width() const { return bit_width_; }
  bool is_unsigned() const { return is_unsigned_; }
  const std::string& struct_name() const { return struct_name_; }
  const IrType* pointee() const { return pointee_; }

  const std::vector<const IrType*>& field_types() const { return field_types_; }
  const std::vector<std::string>& field_names() const { return field_names_; }
  int FieldIndex(const std::string& name) const;

  bool IsInteger() const { return kind_ == IrTypeKind::kInt; }
  bool IsNumeric() const { return kind_ == IrTypeKind::kInt || kind_ == IrTypeKind::kFloat; }
  bool IsString() const { return kind_ == IrTypeKind::kString; }
  bool IsPointer() const { return kind_ == IrTypeKind::kPointer; }
  bool IsStruct() const { return kind_ == IrTypeKind::kStruct; }
  bool IsBool() const { return kind_ == IrTypeKind::kBool; }
  bool IsVoid() const { return kind_ == IrTypeKind::kVoid; }

  std::string ToString() const;

 private:
  friend class TypeTable;
  IrType() = default;

  IrTypeKind kind_ = IrTypeKind::kVoid;
  int bit_width_ = 0;
  bool is_unsigned_ = false;
  std::string struct_name_;
  const IrType* pointee_ = nullptr;
  std::vector<const IrType*> field_types_;
  std::vector<std::string> field_names_;
};

// Owns and interns IrType instances. One per Module.
class TypeTable {
 public:
  TypeTable();

  const IrType* void_type() const { return void_type_; }
  const IrType* bool_type() const { return bool_type_; }
  const IrType* string_type() const { return string_type_; }
  const IrType* float_type() const { return float_type_; }

  const IrType* IntType(int bit_width, bool is_unsigned);
  const IrType* PointerTo(const IrType* pointee);
  // Declares (or returns the previously declared) struct type. Fields may be
  // filled in exactly once via DefineStructBody.
  const IrType* StructType(const std::string& name);
  void DefineStructBody(const std::string& name, std::vector<const IrType*> field_types,
                        std::vector<std::string> field_names);
  const IrType* FindStruct(const std::string& name) const;

 private:
  IrType* NewType();

  std::deque<IrType> storage_;
  const IrType* void_type_ = nullptr;
  const IrType* bool_type_ = nullptr;
  const IrType* string_type_ = nullptr;
  const IrType* float_type_ = nullptr;
  std::map<std::pair<int, bool>, const IrType*> int_types_;
  std::map<const IrType*, const IrType*> pointer_types_;
  std::map<std::string, IrType*> struct_types_;
};

}  // namespace spex

#endif  // SPEX_IR_TYPE_H_
