#include "src/ir/dominance.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace spex {

namespace {

void SetBit(std::vector<uint32_t>& bits, size_t i) { bits[i / 32] |= (1u << (i % 32)); }
bool GetBit(const std::vector<uint32_t>& bits, size_t i) {
  return (bits[i / 32] & (1u << (i % 32))) != 0;
}

// bits &= other; returns true if bits changed.
bool IntersectInto(std::vector<uint32_t>& bits, const std::vector<uint32_t>& other) {
  bool changed = false;
  for (size_t i = 0; i < bits.size(); ++i) {
    uint32_t next = bits[i] & other[i];
    if (next != bits[i]) {
      bits[i] = next;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

DominatorTree::DominatorTree(const Function& function, bool post)
    : function_(function), post_(post) {
  n_ = function.blocks().size();
  size_t total = post_ ? n_ + 1 : n_;  // +1 for the virtual exit.
  virtual_exit_ = n_;
  size_t words = (total + 31) / 32;

  // Build the edge lists in the direction of the analysis: for dominators we
  // walk predecessors; for post-dominators we walk successors (i.e. the
  // predecessors in the reversed CFG).
  std::vector<std::vector<size_t>> preds(total);
  std::vector<size_t> roots;
  if (!post_) {
    for (const auto& block : function.blocks()) {
      for (const BasicBlock* succ : block->Successors()) {
        preds[succ->index()].push_back(block->index());
      }
    }
    if (n_ > 0) {
      roots.push_back(0);
    }
  } else {
    for (const auto& block : function.blocks()) {
      auto succs = block->Successors();
      if (succs.empty()) {
        // Exit block: the virtual exit's "predecessor" in the reverse CFG.
        preds[block->index()].push_back(virtual_exit_);
      }
      for (const BasicBlock* succ : succs) {
        preds[block->index()].push_back(succ->index());
      }
    }
    roots.push_back(virtual_exit_);
  }

  // Reachability in the analysis direction.
  reachable_.assign(total, false);
  {
    std::vector<size_t> work = roots;
    // Forward reachability needs successor lists in the analysis direction,
    // which are the reverse of `preds`.
    std::vector<std::vector<size_t>> succs_dir(total);
    for (size_t to = 0; to < total; ++to) {
      for (size_t from : preds[to]) {
        succs_dir[from].push_back(to);
      }
    }
    for (size_t root : roots) {
      reachable_[root] = true;
    }
    while (!work.empty()) {
      size_t node = work.back();
      work.pop_back();
      for (size_t next : succs_dir[node]) {
        if (!reachable_[next]) {
          reachable_[next] = true;
          work.push_back(next);
        }
      }
    }
  }

  // Iterative dominator sets.
  std::vector<uint32_t> full(words, 0);
  for (size_t i = 0; i < total; ++i) {
    SetBit(full, i);
  }
  dom_sets_.assign(total, full);
  for (size_t root : roots) {
    std::vector<uint32_t> only_self(words, 0);
    SetBit(only_self, root);
    dom_sets_[root] = only_self;
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < total; ++i) {
      if (!reachable_[i] || std::find(roots.begin(), roots.end(), i) != roots.end()) {
        continue;
      }
      std::vector<uint32_t> next(words, 0xffffffffu);
      bool any_pred = false;
      for (size_t pred : preds[i]) {
        if (!reachable_[pred]) {
          continue;
        }
        any_pred = true;
        IntersectInto(next, dom_sets_[pred]);
      }
      if (!any_pred) {
        next.assign(words, 0);
      }
      SetBit(next, i);
      if (next != dom_sets_[i]) {
        dom_sets_[i] = std::move(next);
        changed = true;
      }
    }
  }
  // Unreachable blocks dominate/are dominated by nothing but themselves.
  for (size_t i = 0; i < total; ++i) {
    if (!reachable_[i]) {
      std::vector<uint32_t> only_self(words, 0);
      SetBit(only_self, i);
      dom_sets_[i] = only_self;
    }
  }

  // Immediate dominators: the unique strict dominator that is dominated by
  // all other strict dominators.
  idom_.assign(total, -1);
  for (size_t i = 0; i < total; ++i) {
    if (!reachable_[i]) {
      continue;
    }
    int best = -1;
    for (size_t cand = 0; cand < total; ++cand) {
      if (cand == i || !GetBit(dom_sets_[i], cand)) {
        continue;
      }
      if (best == -1 || GetBit(dom_sets_[cand], static_cast<size_t>(best))) {
        best = static_cast<int>(cand);
      }
    }
    idom_[i] = best;
  }
}

size_t DominatorTree::IndexOf(const BasicBlock* block) const { return block->index(); }

bool DominatorTree::Dominates(const BasicBlock* a, const BasicBlock* b) const {
  size_t ia = IndexOf(a);
  size_t ib = IndexOf(b);
  if (ia >= dom_sets_.size() || ib >= dom_sets_.size()) {
    return false;
  }
  return GetBit(dom_sets_[ib], ia);
}

const BasicBlock* DominatorTree::ImmediateDominator(const BasicBlock* block) const {
  size_t i = IndexOf(block);
  if (i >= idom_.size() || idom_[i] < 0 || static_cast<size_t>(idom_[i]) >= n_) {
    return nullptr;  // Root, virtual exit, or unreachable.
  }
  return function_.blocks()[static_cast<size_t>(idom_[i])].get();
}

bool DominatorTree::IsReachable(const BasicBlock* block) const {
  size_t i = IndexOf(block);
  return i < reachable_.size() && reachable_[i];
}

ControlDependence::ControlDependence(const Function& function) : function_(function) {
  DominatorTree postdom(function, /*post=*/true);

  // B is control-dependent on edge (A -> S) iff B post-dominates S (or B == S)
  // and B does not post-dominate A.
  for (const auto& block_a : function.blocks()) {
    Instruction* term = block_a->terminator();
    if (term == nullptr) {
      continue;
    }
    const auto& succs = term->successors();
    if (succs.size() < 2) {
      continue;  // Unconditional edges impose no control dependence.
    }
    for (size_t edge = 0; edge < succs.size(); ++edge) {
      const BasicBlock* s = succs[edge];
      for (const auto& block_b : function.blocks()) {
        const BasicBlock* b = block_b.get();
        if (!postdom.IsReachable(b) || !postdom.IsReachable(s)) {
          continue;
        }
        bool pd_succ = (b == s) || postdom.Dominates(b, s);
        bool pd_branch = postdom.Dominates(b, block_a.get());
        if (pd_succ && !pd_branch) {
          direct_[b].push_back(ControlDep{term, static_cast<int>(edge)});
        }
      }
    }
  }
}

const std::vector<ControlDep>& ControlDependence::DirectDeps(const BasicBlock* block) const {
  auto it = direct_.find(block);
  return it != direct_.end() ? it->second : empty_;
}

std::vector<ControlDep> ControlDependence::TransitiveDeps(const BasicBlock* block) const {
  std::set<ControlDep> seen;
  std::vector<const BasicBlock*> work = {block};
  std::set<const BasicBlock*> visited = {block};
  while (!work.empty()) {
    const BasicBlock* current = work.back();
    work.pop_back();
    for (const ControlDep& dep : DirectDeps(current)) {
      if (seen.insert(dep).second) {
        const BasicBlock* branch_block = dep.branch->parent();
        if (visited.insert(branch_block).second) {
          work.push_back(branch_block);
        }
      }
    }
  }
  return std::vector<ControlDep>(seen.begin(), seen.end());
}

}  // namespace spex
