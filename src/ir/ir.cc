#include "src/ir/ir.h"

#include <cassert>
#include <sstream>

#include "src/ir/builder.h"

namespace spex {

// ---------------------------------------------------------------------------
// Enum helpers.

const char* IrBinOpName(IrBinOp op) {
  switch (op) {
    case IrBinOp::kAdd:
      return "add";
    case IrBinOp::kSub:
      return "sub";
    case IrBinOp::kMul:
      return "mul";
    case IrBinOp::kDiv:
      return "div";
    case IrBinOp::kRem:
      return "rem";
    case IrBinOp::kShl:
      return "shl";
    case IrBinOp::kShr:
      return "shr";
    case IrBinOp::kAnd:
      return "and";
    case IrBinOp::kOr:
      return "or";
    case IrBinOp::kXor:
      return "xor";
  }
  return "?";
}

const char* IrCmpPredName(IrCmpPred pred) {
  switch (pred) {
    case IrCmpPred::kEq:
      return "eq";
    case IrCmpPred::kNe:
      return "ne";
    case IrCmpPred::kLt:
      return "lt";
    case IrCmpPred::kLe:
      return "le";
    case IrCmpPred::kGt:
      return "gt";
    case IrCmpPred::kGe:
      return "ge";
  }
  return "?";
}

IrCmpPred NegateCmpPred(IrCmpPred pred) {
  switch (pred) {
    case IrCmpPred::kEq:
      return IrCmpPred::kNe;
    case IrCmpPred::kNe:
      return IrCmpPred::kEq;
    case IrCmpPred::kLt:
      return IrCmpPred::kGe;
    case IrCmpPred::kLe:
      return IrCmpPred::kGt;
    case IrCmpPred::kGt:
      return IrCmpPred::kLe;
    case IrCmpPred::kGe:
      return IrCmpPred::kLt;
  }
  return pred;
}

IrCmpPred SwapCmpPred(IrCmpPred pred) {
  switch (pred) {
    case IrCmpPred::kLt:
      return IrCmpPred::kGt;
    case IrCmpPred::kLe:
      return IrCmpPred::kGe;
    case IrCmpPred::kGt:
      return IrCmpPred::kLt;
    case IrCmpPred::kGe:
      return IrCmpPred::kLe;
    default:
      return pred;  // eq / ne are symmetric.
  }
}

// ---------------------------------------------------------------------------
// GlobalInit factories.

GlobalInit GlobalInit::Int(int64_t v) {
  GlobalInit init;
  init.kind = Kind::kInt;
  init.int_value = v;
  return init;
}

GlobalInit GlobalInit::Float(double v) {
  GlobalInit init;
  init.kind = Kind::kFloat;
  init.float_value = v;
  return init;
}

GlobalInit GlobalInit::Str(std::string v) {
  GlobalInit init;
  init.kind = Kind::kString;
  init.string_value = std::move(v);
  return init;
}

GlobalInit GlobalInit::Null() {
  GlobalInit init;
  init.kind = Kind::kNull;
  return init;
}

GlobalInit GlobalInit::Ref(std::string global_name) {
  GlobalInit init;
  init.kind = Kind::kGlobalRef;
  init.string_value = std::move(global_name);
  return init;
}

GlobalInit GlobalInit::List(std::vector<GlobalInit> items) {
  GlobalInit init;
  init.kind = Kind::kList;
  init.elements = std::move(items);
  return init;
}

// ---------------------------------------------------------------------------
// Value / Instruction.

std::string Value::Label() const {
  switch (value_kind_) {
    case ValueKind::kConstantInt:
      return std::to_string(constant_int_);
    case ValueKind::kConstantFloat:
      return std::to_string(constant_float_);
    case ValueKind::kConstantString:
      return "\"" + constant_string_ + "\"";
    case ValueKind::kConstantNull:
      return "null";
    case ValueKind::kGlobal:
      return "@" + name_;
    case ValueKind::kArgument:
      return "%arg." + name_;
    case ValueKind::kInstruction:
      return "%" + std::to_string(id_);
  }
  return "?";
}

const std::string& Instruction::field_name() const {
  static const std::string kUnknown = "<field>";
  if (field_struct_type_ != nullptr && field_index_ >= 0 &&
      field_index_ < static_cast<int>(field_struct_type_->field_names().size())) {
    return field_struct_type_->field_names()[field_index_];
  }
  return kUnknown;
}

std::string Instruction::ToString() const {
  std::ostringstream out;
  if (!type_->IsVoid()) {
    out << Label() << " = ";
  }
  switch (instr_kind_) {
    case InstrKind::kAlloca:
      out << "alloca " << allocated_type_->ToString();
      if (alloca_array_size_ > 0) {
        out << " x " << alloca_array_size_;
      }
      out << "  ; " << name_;
      break;
    case InstrKind::kLoad:
      out << "load " << operands_[0]->Label();
      break;
    case InstrKind::kStore:
      out << "store " << operands_[0]->Label() << " -> " << operands_[1]->Label();
      break;
    case InstrKind::kBinOp:
      out << IrBinOpName(bin_op_) << " " << operands_[0]->Label() << ", "
          << operands_[1]->Label();
      break;
    case InstrKind::kCmp:
      out << "cmp " << IrCmpPredName(cmp_pred_) << " " << operands_[0]->Label() << ", "
          << operands_[1]->Label();
      break;
    case InstrKind::kCast:
      out << (cast_is_explicit_ ? "cast! " : "cast ") << operands_[0]->Label() << " to "
          << type_->ToString();
      break;
    case InstrKind::kCall: {
      out << "call " << callee_ << "(";
      for (size_t i = 0; i < operands_.size(); ++i) {
        if (i > 0) {
          out << ", ";
        }
        out << operands_[i]->Label();
      }
      out << ")";
      break;
    }
    case InstrKind::kFieldAddr:
      out << "fieldaddr " << operands_[0]->Label() << "." << field_name();
      break;
    case InstrKind::kIndexAddr:
      out << "indexaddr " << operands_[0]->Label() << "[" << operands_[1]->Label() << "]";
      break;
    case InstrKind::kBr:
      out << "br " << successors_[0]->name();
      break;
    case InstrKind::kCondBr:
      out << "condbr " << operands_[0]->Label() << ", " << successors_[0]->name() << ", "
          << successors_[1]->name();
      break;
    case InstrKind::kSwitch: {
      out << "switch " << operands_[0]->Label() << " default:" << successors_[0]->name();
      for (size_t i = 0; i < switch_values_.size(); ++i) {
        out << " [" << switch_values_[i] << " -> " << successors_[i + 1]->name() << "]";
      }
      break;
    }
    case InstrKind::kRet:
      out << "ret";
      if (!operands_.empty()) {
        out << " " << operands_[0]->Label();
      }
      break;
    case InstrKind::kUnreachable:
      out << "unreachable";
      break;
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// BasicBlock.

Instruction* BasicBlock::terminator() const {
  if (instructions_.empty()) {
    return nullptr;
  }
  Instruction* last = instructions_.back().get();
  return last->IsTerminator() ? last : nullptr;
}

bool BasicBlock::HasTerminator() const { return terminator() != nullptr; }

std::vector<BasicBlock*> BasicBlock::Successors() const {
  Instruction* term = terminator();
  if (term == nullptr) {
    return {};
  }
  return term->successors();
}

Instruction* BasicBlock::Append(std::unique_ptr<Instruction> instr) {
  assert(!HasTerminator() && "appending to a terminated block");
  instr->parent_ = this;
  instructions_.push_back(std::move(instr));
  return instructions_.back().get();
}

// ---------------------------------------------------------------------------
// Function.

Argument* Function::AddArgument(const IrType* type, std::string name) {
  auto arg = std::make_unique<Argument>(type, std::move(name),
                                        static_cast<int>(arguments_.size()), this);
  arg->id_ = NextValueId();
  arguments_.push_back(std::move(arg));
  return arguments_.back().get();
}

BasicBlock* Function::CreateBlock(std::string name) {
  blocks_.push_back(std::make_unique<BasicBlock>(std::move(name), this));
  return blocks_.back().get();
}

void Function::Finalize() {
  for (size_t i = 0; i < blocks_.size(); ++i) {
    blocks_[i]->index_ = static_cast<uint32_t>(i);
    blocks_[i]->predecessors_.clear();
  }
  for (const auto& block : blocks_) {
    for (BasicBlock* succ : block->Successors()) {
      succ->predecessors_.push_back(block.get());
    }
  }
}

// ---------------------------------------------------------------------------
// Module.

GlobalVariable* Module::AddGlobal(const IrType* type, std::string name, bool is_array,
                                  int64_t array_size) {
  auto global = std::make_unique<GlobalVariable>(types_.PointerTo(type), type, std::move(name),
                                                 is_array, array_size);
  globals_.push_back(std::move(global));
  return globals_.back().get();
}

GlobalVariable* Module::FindGlobal(const std::string& name) const {
  for (const auto& global : globals_) {
    if (global->name() == name) {
      return global.get();
    }
  }
  return nullptr;
}

Function* Module::AddFunction(std::string name, const IrType* return_type) {
  functions_.push_back(std::make_unique<Function>(std::move(name), return_type, this));
  return functions_.back().get();
}

Function* Module::FindFunction(const std::string& name) const {
  Function* declaration = nullptr;
  for (const auto& fn : functions_) {
    if (fn->name() == name) {
      if (!fn->IsDeclaration()) {
        return fn.get();
      }
      declaration = fn.get();
    }
  }
  return declaration;
}

namespace {

class ConstantValue : public Value {
 public:
  ConstantValue(ValueKind kind, const IrType* type) : Value(kind, type) {}

  void SetInt(int64_t v) { constant_int_ = v; }
  void SetFloat(double v) { constant_float_ = v; }
  void SetString(std::string v) { constant_string_ = std::move(v); }
};

}  // namespace

Value* Module::ConstInt(const IrType* type, int64_t value) {
  auto key = std::make_pair(type, value);
  auto it = int_constants_.find(key);
  if (it != int_constants_.end()) {
    return it->second;
  }
  auto constant = std::make_unique<ConstantValue>(ValueKind::kConstantInt, type);
  constant->SetInt(value);
  Value* result = constant.get();
  constants_.push_back(std::move(constant));
  int_constants_[key] = result;
  return result;
}

Value* Module::ConstFloat(double value) {
  auto constant = std::make_unique<ConstantValue>(ValueKind::kConstantFloat, types_.float_type());
  constant->SetFloat(value);
  Value* result = constant.get();
  constants_.push_back(std::move(constant));
  return result;
}

Value* Module::ConstString(std::string value) {
  auto it = string_constants_.find(value);
  if (it != string_constants_.end()) {
    return it->second;
  }
  auto constant = std::make_unique<ConstantValue>(ValueKind::kConstantString,
                                                  types_.string_type());
  constant->SetString(value);
  Value* result = constant.get();
  constants_.push_back(std::move(constant));
  string_constants_[std::move(value)] = result;
  return result;
}

Value* Module::ConstNull(const IrType* pointer_type) {
  auto constant = std::make_unique<ConstantValue>(ValueKind::kConstantNull, pointer_type);
  Value* result = constant.get();
  constants_.push_back(std::move(constant));
  return result;
}

std::string Module::Print() const {
  std::ostringstream out;
  out << "; module " << name_ << "\n";
  for (const auto& global : globals_) {
    out << "@" << global->name() << " : " << global->value_type()->ToString();
    if (global->is_array()) {
      out << "[" << global->array_size() << "]";
    }
    out << "\n";
  }
  for (const auto& fn : functions_) {
    if (fn->IsDeclaration()) {
      out << "declare " << fn->name() << "\n";
      continue;
    }
    out << "define " << fn->return_type()->ToString() << " " << fn->name() << "(";
    for (size_t i = 0; i < fn->arguments().size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      out << fn->arguments()[i]->type()->ToString() << " %arg." << fn->arguments()[i]->name();
    }
    out << ") {\n";
    for (const auto& block : fn->blocks()) {
      out << block->name() << ":\n";
      for (const auto& instr : block->instructions()) {
        out << "  " << instr->ToString() << "\n";
      }
    }
    out << "}\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// IrBuilder.

std::unique_ptr<Instruction> IrBuilder::New(InstrKind kind, const IrType* type) {
  return std::unique_ptr<Instruction>(new Instruction(kind, type));
}

Instruction* IrBuilder::Append(std::unique_ptr<Instruction> instr, SourceLoc loc) {
  instr->loc_ = std::move(loc);
  instr->id_ = function_->NextValueId();
  return block_->Append(std::move(instr));
}

Instruction* IrBuilder::CreateAlloca(const IrType* allocated, int64_t array_size,
                                     std::string name, SourceLoc loc) {
  auto instr = New(InstrKind::kAlloca, module_->types().PointerTo(allocated));
  instr->allocated_type_ = allocated;
  instr->alloca_array_size_ = array_size;
  instr->name_ = std::move(name);
  return Append(std::move(instr), std::move(loc));
}

Value* IrBuilder::CreateLoad(Value* pointer, SourceLoc loc) {
  assert(pointer->type()->IsPointer() && "load requires a pointer operand");
  auto instr = New(InstrKind::kLoad, pointer->type()->pointee());
  instr->operands_ = {pointer};
  return Append(std::move(instr), std::move(loc));
}

Instruction* IrBuilder::CreateStore(Value* value, Value* pointer, SourceLoc loc) {
  assert(pointer->type()->IsPointer() && "store requires a pointer operand");
  auto instr = New(InstrKind::kStore, module_->types().void_type());
  instr->operands_ = {value, pointer};
  return Append(std::move(instr), std::move(loc));
}

Value* IrBuilder::CreateBinOp(IrBinOp op, Value* lhs, Value* rhs, SourceLoc loc) {
  const IrType* type = lhs->type();
  if (rhs->type()->kind() == IrTypeKind::kFloat) {
    type = rhs->type();
  }
  auto instr = New(InstrKind::kBinOp, type);
  instr->bin_op_ = op;
  instr->operands_ = {lhs, rhs};
  return Append(std::move(instr), std::move(loc));
}

Value* IrBuilder::CreateCmp(IrCmpPred pred, Value* lhs, Value* rhs, SourceLoc loc) {
  auto instr = New(InstrKind::kCmp, module_->types().bool_type());
  instr->cmp_pred_ = pred;
  instr->operands_ = {lhs, rhs};
  return Append(std::move(instr), std::move(loc));
}

Value* IrBuilder::CreateCast(const IrType* to, Value* value, bool is_explicit, SourceLoc loc) {
  auto instr = New(InstrKind::kCast, to);
  instr->cast_is_explicit_ = is_explicit;
  instr->operands_ = {value};
  return Append(std::move(instr), std::move(loc));
}

Value* IrBuilder::CreateCall(const IrType* return_type, std::string callee,
                             std::vector<Value*> args, SourceLoc loc) {
  auto instr = New(InstrKind::kCall, return_type);
  instr->callee_ = std::move(callee);
  instr->operands_ = std::move(args);
  return Append(std::move(instr), std::move(loc));
}

Value* IrBuilder::CreateFieldAddr(Value* base_pointer, const IrType* struct_type, int field_index,
                                  SourceLoc loc) {
  assert(field_index >= 0 &&
         field_index < static_cast<int>(struct_type->field_types().size()) &&
         "field index out of range");
  const IrType* field_type = struct_type->field_types()[field_index];
  auto instr = New(InstrKind::kFieldAddr, module_->types().PointerTo(field_type));
  instr->field_struct_type_ = struct_type;
  instr->field_index_ = field_index;
  instr->operands_ = {base_pointer};
  return Append(std::move(instr), std::move(loc));
}

Value* IrBuilder::CreateIndexAddr(Value* base_pointer, Value* index, SourceLoc loc) {
  assert(base_pointer->type()->IsPointer() && "indexaddr requires a pointer base");
  auto instr = New(InstrKind::kIndexAddr, base_pointer->type());
  instr->operands_ = {base_pointer, index};
  return Append(std::move(instr), std::move(loc));
}

void IrBuilder::CreateBr(BasicBlock* target, SourceLoc loc) {
  auto instr = New(InstrKind::kBr, module_->types().void_type());
  instr->successors_ = {target};
  Append(std::move(instr), std::move(loc));
}

void IrBuilder::CreateCondBr(Value* condition, BasicBlock* if_true, BasicBlock* if_false,
                             SourceLoc loc) {
  auto instr = New(InstrKind::kCondBr, module_->types().void_type());
  instr->operands_ = {condition};
  instr->successors_ = {if_true, if_false};
  Append(std::move(instr), std::move(loc));
}

Instruction* IrBuilder::CreateSwitch(Value* value, BasicBlock* default_target,
                                     const std::vector<std::pair<int64_t, BasicBlock*>>& cases,
                                     SourceLoc loc) {
  auto instr = New(InstrKind::kSwitch, module_->types().void_type());
  instr->operands_ = {value};
  instr->successors_.push_back(default_target);
  for (const auto& [case_value, target] : cases) {
    instr->switch_values_.push_back(case_value);
    instr->successors_.push_back(target);
  }
  return Append(std::move(instr), std::move(loc));
}

void IrBuilder::CreateRet(Value* value, SourceLoc loc) {
  auto instr = New(InstrKind::kRet, module_->types().void_type());
  if (value != nullptr) {
    instr->operands_ = {value};
  }
  Append(std::move(instr), std::move(loc));
}

void IrBuilder::CreateUnreachable(SourceLoc loc) {
  auto instr = New(InstrKind::kUnreachable, module_->types().void_type());
  Append(std::move(instr), std::move(loc));
}

}  // namespace spex
