// AST-to-IR lowering.
//
// Produces the memory-form IR that all analyses and the interpreter consume.
// Lowering is deliberately unoptimized: no constant folding, no mem2reg —
// the inference engines want the raw load/store/cast structure exactly as it
// appears in the source (e.g., the "first cast" rule for basic types).
#ifndef SPEX_IR_LOWERING_H_
#define SPEX_IR_LOWERING_H_

#include <memory>

#include "src/ir/ir.h"
#include "src/lang/ast.h"
#include "src/support/diagnostics.h"

namespace spex {

// Lowers a parsed translation unit into a fresh Module. Functions without
// bodies become declarations; unknown callees are auto-declared with the
// return type from a small built-in C-library table (defaulting to i64).
std::unique_ptr<Module> LowerToIr(const TranslationUnit& unit, DiagnosticEngine* diags);

}  // namespace spex

#endif  // SPEX_IR_LOWERING_H_
