// End-to-end pipeline over corpus targets.
//
// Bundles the full SPEX flow for one synthesized system: parse + lower the
// MiniC source, run constraint inference, and (on demand) run the SPEX-INJ
// campaign.
//
// NOTE: the public entry point for new code is the spex::Session façade in
// src/api/session.h — it owns the registry/diagnostics/worker-pool/string-
// pool lifetimes and adds the user-facing ConfigChecker (static constraint
// checks plus the dynamic mode that replays user configs and reports the
// observed Table-3 reaction) and persistent campaigns whose snapshot cache
// both repeated campaigns and dynamic checks reuse. The free functions
// here are the one-shot layer underneath it, kept as thin stable shims for
// tests and existing drivers: AnalyzeTarget is what Session::LoadTarget
// runs, and RunCampaign builds a fresh (cold-cache) campaign per call,
// exactly as before the façade existed — no snapshot reuse, no dynamic
// checking. See docs/api.md for the façade's contract.
#ifndef SPEX_CORPUS_PIPELINE_H_
#define SPEX_CORPUS_PIPELINE_H_

#include <memory>

#include "src/core/engine.h"
#include "src/corpus/spec.h"
#include "src/corpus/synthesizer.h"
#include "src/design/manual_model.h"
#include "src/inject/campaign.h"

namespace spex {

struct TargetAnalysis {
  TargetBundle bundle;
  std::unique_ptr<Module> module;
  std::unique_ptr<SpexEngine> engine;
  ModuleConstraints constraints;
  ManualModel manual;
  size_t lines_of_annotation = 0;
};

// Synthesize + analyze one target. Aborts via diags on internal errors; a
// clean corpus never produces diagnostics. `engine_options` are the
// inference knobs (Session::LoadTarget forwards its SessionOptions.engine).
TargetAnalysis AnalyzeTarget(const TargetSpec& spec, const ApiRegistry& apis,
                             DiagnosticEngine* diags, SpexOptions engine_options = {});

// Generate misconfigurations from the inferred constraints and run the full
// injection campaign against the target.
CampaignSummary RunCampaign(const TargetAnalysis& analysis, CampaignOptions options = {});

// One sharded corpus run: analysis + campaign summary for a target, plus
// any diagnostics its worker collected (empty for a clean corpus).
struct CorpusCampaignResult {
  std::string target;
  TargetAnalysis analysis;
  CampaignSummary summary;
  std::string diagnostics;
};

// Fans AnalyzeTarget + RunCampaign over a worker pool, one target (and one
// TargetAnalysis) per task, so corpus-wide tables regenerate in parallel.
// Results are written into pre-sized slots: order matches `target_names`
// and every summary is identical to a serial RunCampaign. `num_workers`
// follows the CampaignOptions::num_threads convention (0 = hardware
// concurrency); `options` applies to each inner campaign and defaults to
// serial, which is the right setting when the corpus itself is sharded.
std::vector<CorpusCampaignResult> RunCorpusCampaigns(
    const std::vector<std::string>& target_names, const ApiRegistry& apis,
    CampaignOptions options = {}, size_t num_workers = 0, SpexOptions engine_options = {});

}  // namespace spex

#endif  // SPEX_CORPUS_PIPELINE_H_
