#include "src/corpus/truth.h"

#include <algorithm>

namespace spex {

namespace {

// An inferred numeric range matches the truth iff some valid interval has
// exactly the planted finite bounds.
bool RangeMatches(const RangeConstraint& inferred, const TruthRange& truth) {
  if (inferred.is_enum) {
    // Planted enumerative constraints are recorded without bounds; accept.
    return !truth.min.has_value() && !truth.max.has_value();
  }
  for (const RangeInterval& interval : inferred.ValidIntervals()) {
    bool min_ok = truth.min.has_value() ? (interval.min.has_value() && *interval.min == *truth.min)
                                        : !interval.min.has_value();
    bool max_ok = truth.max.has_value() ? (interval.max.has_value() && *interval.max == *truth.max)
                                        : !interval.max.has_value();
    if (min_ok && max_ok) {
      return true;
    }
  }
  return false;
}

}  // namespace

AccuracyReport EvaluateAccuracy(const ModuleConstraints& constraints, const GroundTruth& truth) {
  AccuracyReport report;
  for (const ParamConstraints& param : constraints.params) {
    if (param.basic_type.has_value() && param.basic_type->type != nullptr) {
      ++report.basic_type.inferred;
      auto it = truth.basic_types.find(param.param);
      if (it != truth.basic_types.end() && it->second == param.basic_type->type->ToString()) {
        ++report.basic_type.correct;
      }
    }
    for (const SemanticTypeConstraint& semantic : param.semantic_types) {
      ++report.semantic_type.inferred;
      if (truth.semantics.count({param.param, semantic.semantic}) > 0) {
        ++report.semantic_type.correct;
      }
    }
    if (param.range.has_value()) {
      ++report.range.inferred;
      auto it = truth.ranges.find(param.param);
      if (it != truth.ranges.end() && RangeMatches(*param.range, it->second)) {
        ++report.range.correct;
      }
    }
  }
  for (const ControlDepConstraint& dep : constraints.control_deps) {
    ++report.control_dep.inferred;
    if (truth.control_deps.count({dep.master, dep.dependent}) > 0) {
      ++report.control_dep.correct;
    }
  }
  for (const ValueRelConstraint& rel : constraints.value_rels) {
    ++report.value_rel.inferred;
    auto key = rel.lhs < rel.rhs ? std::make_pair(rel.lhs, rel.rhs)
                                 : std::make_pair(rel.rhs, rel.lhs);
    if (truth.value_rels.count(key) > 0) {
      ++report.value_rel.correct;
    }
  }
  return report;
}

}  // namespace spex
