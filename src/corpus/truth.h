// Ground truth for synthesized targets, and accuracy scoring against it.
//
// The synthesizer records every constraint it plants; Table 12 ("accuracy of
// constraint inference") is then measured honestly: each constraint SPEX
// infers is checked against the truth, and misattributed constraints (the
// planted pointer-alias patterns) count against accuracy exactly as the
// paper describes.
#ifndef SPEX_CORPUS_TRUTH_H_
#define SPEX_CORPUS_TRUTH_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>

#include "src/apidb/semantic_types.h"
#include "src/core/constraints.h"

namespace spex {

struct TruthRange {
  std::optional<int64_t> min;
  std::optional<int64_t> max;
};

struct GroundTruth {
  std::map<std::string, std::string> basic_types;  // param -> IrType::ToString().
  std::set<std::pair<std::string, SemanticType>> semantics;
  std::map<std::string, TruthRange> ranges;
  std::set<std::pair<std::string, std::string>> control_deps;  // (master, dependent).
  // Canonically ordered pair (lexicographically smaller name first).
  std::set<std::pair<std::string, std::string>> value_rels;
};

struct KindAccuracy {
  size_t inferred = 0;
  size_t correct = 0;
  double Ratio() const { return inferred == 0 ? 1.0 : static_cast<double>(correct) / inferred; }
};

struct AccuracyReport {
  KindAccuracy basic_type;
  KindAccuracy semantic_type;
  KindAccuracy range;
  KindAccuracy control_dep;
  KindAccuracy value_rel;
};

// Scores every inferred constraint against the truth.
AccuracyReport EvaluateAccuracy(const ModuleConstraints& constraints, const GroundTruth& truth);

}  // namespace spex

#endif  // SPEX_CORPUS_TRUTH_H_
