// Target synthesizer: TargetSpec -> runnable MiniC system + artifacts.
//
// The bundle contains everything one of the paper's evaluated systems
// contributes to the evaluation: source code, mapping annotations, a
// template configuration, a user-manual model, a functional test suite
// (SutSpec) for SPEX-INJ, and the ground-truth constraints for accuracy
// scoring. Synthesis is fully deterministic.
#ifndef SPEX_CORPUS_SYNTHESIZER_H_
#define SPEX_CORPUS_SYNTHESIZER_H_

#include <string>

#include "src/corpus/spec.h"
#include "src/corpus/truth.h"
#include "src/inject/campaign.h"

namespace spex {

struct TargetBundle {
  std::string name;
  std::string display_name;
  ConfigDialect dialect = ConfigDialect::kKeyEqualsValue;

  std::string source;           // MiniC translation unit.
  std::string annotations;      // Mapping annotations (Figure 4 style).
  std::string template_config;  // Default configuration file text.
  std::string manual_text;      // ManualModel::Parse input.
  SutSpec sut;                  // How SPEX-INJ drives this target.
  GroundTruth truth;

  size_t lines_of_code = 0;
  size_t param_count = 0;
};

TargetBundle SynthesizeTarget(const TargetSpec& spec);

}  // namespace spex

#endif  // SPEX_CORPUS_SYNTHESIZER_H_
