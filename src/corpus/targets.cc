// The seven evaluated systems (paper Table 4), modeled at roughly quarter
// scale. Mapping conventions follow Table 1: Storage-A / MySQL / PostgreSQL /
// VSFTP use structure tables, Apache uses a handler-command table, Squid is
// comparison-based, OpenLDAP is a hybrid. Parser strictness follows the
// paper's Section 5.2 observation: Storage-A / MySQL / PostgreSQL enforce
// types and ranges through their config tables, everyone else does ad-hoc
// parsing (atoi and friends).
#include "src/corpus/spec.h"

#include <cstdlib>
#include <iostream>

namespace spex {

namespace {

// Small builder so the spec tables below stay readable.
struct PB {
  ParamSpec p;
  PB(std::string key, std::string var, Archetype archetype) {
    p.key = std::move(key);
    p.var = std::move(var);
    p.archetype = archetype;
  }
  PB& Cnt(int n) {
    p.count = n;
    return *this;
  }
  PB& Def(int64_t v) {
    p.def_int = v;
    return *this;
  }
  PB& DefS(std::string v) {
    p.def_str = std::move(v);
    return *this;
  }
  PB& Range(int64_t lo, int64_t hi) {
    p.min = lo;
    p.max = hi;
    return *this;
  }
  PB& Cap(int64_t cap) {
    p.cap = cap;
    return *this;
  }
  PB& Fail(FailMode mode) {
    p.fail = mode;
    return *this;
  }
  PB& Master(std::string key) {
    p.master = std::move(key);
    return *this;
  }
  PB& Peer(std::string key) {
    p.peer = std::move(key);
    return *this;
  }
  PB& Enum(std::vector<std::string> values) {
    p.enum_values = std::move(values);
    return *this;
  }
  PB& Doc() {
    p.documented = true;
    return *this;
  }
  PB& Safe() {
    p.unsafe_parse = false;
    return *this;
  }
  PB& Warn() {
    p.warn_when_ignored = true;
    return *this;
  }
  operator ParamSpec() const { return p; }
};

TargetSpec StorageA() {
  TargetSpec t;
  t.name = "storage_a";
  t.display_name = "Storage-A";
  t.dialect = ConfigDialect::kKeyEqualsValue;
  t.uses_struct_table = true;
  t.table_parse = TableParseStyle::kStrictRange;
  t.table_shards = 3;
  t.params = {
      // Table-parsed knobs: strict parsing + declared ranges => good reactions.
      PB("raid.scrub.stripe", "raid_scrub_stripe", Archetype::kPlainInt).Cnt(34).Def(64),
      PB("wafl.readahead.chunk", "wafl_readahead_chunk", Archetype::kRangeTable)
          .Cnt(6)
          .Def(128)
          .Range(16, 4096)
          .Doc(),
      // Legacy options parsed by hand with sscanf/atoi: the silent-violation pool.
      PB("nfs.legacy.knob", "nfs_legacy_knob", Archetype::kStrictInt).Cnt(2).Def(4).Safe(),
      PB("cifs.compat.level", "cifs_compat_level", Archetype::kAdHocInt).Cnt(6).Def(2),
      // Resources. Units follow the Storage-A practice of suffix naming.
      PB("iscsi.data.file", "iscsi_data_file", Archetype::kFile)
          .Cnt(4)
          .Fail(FailMode::kLogContinue),
      PB("vol.backup.dir", "vol_backup_dir", Archetype::kDir)
          .Cnt(3)
          .Fail(FailMode::kExitPinpoint),
      PB("admin.notify.user", "admin_notify_user", Archetype::kUser)
          .Cnt(3)
          .Fail(FailMode::kExitPinpoint),
      PB("cluster.peer.host", "cluster_peer_host", Archetype::kHost)
          .Cnt(2)
          .Fail(FailMode::kLogContinue),
      PB("mgmt.listen.port", "mgmt_listen_port", Archetype::kPort)
          .Cnt(4)
          .Fail(FailMode::kExitPinpoint),
      PB("takeover.sec", "takeover_sec", Archetype::kTimeSecChecked).Cnt(8).Def(30).Doc(),
      PB("cleanup.msec", "cleanup_msec", Archetype::kTimeMsecChecked).Cnt(2).Def(200),
      PB("scrub.interval.min", "scrub_interval_min", Archetype::kTimeMinChecked).Cnt(3).Def(5),
      PB("flush.gap.usec", "flush_gap_usec", Archetype::kTimeUsecChecked).Cnt(1).Def(500),
      PB("pcs.size", "pcs_size", Archetype::kSizeBytes)
          .Cnt(5)
          .Def(65536)
          .Fail(FailMode::kExitPinpoint),
      PB("nvram.reserve.kb", "nvram_reserve_kb", Archetype::kSizeKbScaled)
          .Cnt(1)
          .Def(512)
          .Fail(FailMode::kExitPinpoint),
      // Feature toggles and their dependents: the silent-ignorance pool.
      PB("cf.mode", "cf_mode", Archetype::kBoolReject).Def(1),
      PB("dedup.enable", "dedup_enable", Archetype::kBoolReject).Def(1),
      PB("mirror.enable", "mirror_enable", Archetype::kBoolReject).Def(1),
      PB("cf.giveback.delay", "cf_giveback_delay", Archetype::kDependent)
          .Cnt(7)
          .Def(15)
          .Master("cf.mode"),
      PB("dedup.chunk.hint", "dedup_chunk_hint", Archetype::kDependent)
          .Cnt(7)
          .Def(9)
          .Master("dedup.enable"),
      PB("mirror.stripe.hint", "mirror_stripe_hint", Archetype::kDependent)
          .Cnt(6)
          .Def(3)
          .Master("mirror.enable"),
      // Enumerations.
      PB("lun.ostype", "lun_ostype", Archetype::kEnumInsensitive)
          .Cnt(8)
          .Enum({"linux", "windows", "vmware"}),
      PB("security.style", "security_style", Archetype::kEnumSensitive)
          .Cnt(2)
          .Enum({"unix", "ntfs", "mixed"}),
      // Relationships.
      PB("quota.soft.limit", "quota_soft_limit", Archetype::kRelPairChecked)
          .Cnt(3)
          .Def(4)
          .Peer("quota.hard.limit")
          .Doc(),
      PB("quota.hard.limit", "quota_hard_limit", Archetype::kPlainInt).Def(84),
      PB("cache.low.water", "cache_low_water", Archetype::kRelPair)
          .Cnt(2)
          .Def(4)
          .Peer("cache.high.water"),
      PB("cache.high.water", "cache_high_water", Archetype::kPlainInt).Def(84),
      // Aliasing pairs (accuracy degradation).
      PB("fcp.queue.depth", "fcp_queue_depth", Archetype::kAliasPair)
          .Cnt(3)
          .Def(8)
          .Range(0, 256)
          .Peer("fcp.queue.reserve"),
      PB("fcp.queue.reserve", "fcp_queue_reserve", Archetype::kPlainInt).Def(8),
      PB("ndmp.backup.name", "ndmp_backup_name", Archetype::kPlainString).Cnt(8),
  };
  return t;
}

TargetSpec Apache() {
  TargetSpec t;
  t.name = "apache";
  t.display_name = "Apache";
  t.dialect = ConfigDialect::kKeyValue;
  t.uses_struct_table = false;
  t.uses_handler_table = true;
  t.params = {
      PB("KeepAliveRequests", "keepalive_requests", Archetype::kPlainInt).Cnt(2).Def(100),
      PB("ServerAliasText", "server_alias_text", Archetype::kPlainString).Cnt(3),
      PB("ServerSignatureText", "server_signature_text", Archetype::kPlainString).Cnt(3),
      PB("ThreadLimit", "thread_limit", Archetype::kSizeBytes)
          .Def(4096)
          .Fail(FailMode::kExitMisleading),  // Figure 7(b): scoreboard alloc abort.
      PB("MaxMemFree", "max_mem_free", Archetype::kSizeKbScaled)
          .Def(2048)
          .Fail(FailMode::kExitPinpoint),  // Figure 6(b): the KB outlier.
      PB("ListenPort", "listen_port", Archetype::kPort).Fail(FailMode::kExitPinpoint),
      PB("DocumentRoot", "document_root", Archetype::kDir).Fail(FailMode::kSilentSkip),
      PB("ErrorLogFile", "error_log_file", Archetype::kFile).Fail(FailMode::kSilentSkip),
      PB("UserName", "user_name", Archetype::kUser).Fail(FailMode::kExitNoMsg),
      PB("TimeoutSec", "timeout_sec", Archetype::kTimeSec).Cnt(3).Def(60),
      PB("WorkerSlots", "worker_slots", Archetype::kCrashArrayCount).Def(8).Cap(16),
      PB("HostnameLookups", "hostname_lookups", Archetype::kBoolSilent),
      PB("ExtendedStatus", "extended_status", Archetype::kBoolReject).Def(1),
      PB("LogLevelName", "log_level_name", Archetype::kEnumSensitive)
          .Cnt(3)
          .Enum({"debug", "info", "warn", "error"}),
      PB("StatusRefreshSec", "status_refresh_sec", Archetype::kDependent)
          .Def(10)
          .Master("ExtendedStatus"),
      PB("MinSpareServers", "min_spare_servers", Archetype::kRelPair)
          .Def(4)
          .Peer("MaxSpareServers")
          .Doc(),
      PB("MaxSpareServers", "max_spare_servers", Archetype::kPlainInt).Def(84),
      PB("SendBufferSize", "send_buffer_size", Archetype::kRangeCheckPinpoint)
          .Def(8192)
          .Range(512, 1048576)
          .Doc(),
  };
  return t;
}

TargetSpec MySql() {
  TargetSpec t;
  t.name = "mysql";
  t.display_name = "MySQL";
  t.dialect = ConfigDialect::kKeyEqualsValue;
  t.uses_struct_table = true;
  t.table_parse = TableParseStyle::kStrictRange;
  t.table_shards = 9;  // Many per-module option tables: the LoA = 29 effect.
  t.params = {
      PB("net_retry_count", "net_retry_count", Archetype::kPlainInt).Cnt(18).Def(10),
      PB("innodb_io_capacity", "innodb_io_capacity", Archetype::kRangeTable)
          .Cnt(8)
          .Def(200)
          .Range(100, 100000)
          .Doc(),
      // Ad-hoc parsed legacy options: MySQL's silent-violation pool.
      PB("myisam_block_size", "myisam_block_size", Archetype::kPlainInt).Cnt(6).Def(1024),
      PB("ft_stopword_file", "ft_stopword_file", Archetype::kFile)
          .Fail(FailMode::kSilentSkip),  // Figure 3(b)/5(b).
      PB("tmp_dir", "tmp_dir", Archetype::kDir).Fail(FailMode::kExitPinpoint),
      PB("run_as_user", "run_as_user", Archetype::kUser).Fail(FailMode::kExitNoMsg),
      PB("report_host", "report_host", Archetype::kHost).Fail(FailMode::kSilentSkip),
      PB("mysql_port", "mysql_port", Archetype::kPort).Fail(FailMode::kExitPinpoint),
      PB("wait_timeout", "wait_timeout", Archetype::kTimeSec).Def(30),
      PB("net_read_timeout", "net_read_timeout", Archetype::kTimeSecChecked).Def(30).Doc(),
      PB("flush_time", "flush_time", Archetype::kTimeSecChecked).Cnt(3).Def(10).Doc(),
      PB("lock_poll_usec", "lock_poll_usec", Archetype::kTimeUsec).Cnt(2).Def(500),
      PB("key_buffer_size", "key_buffer_size", Archetype::kSizeBytes)
          .Cnt(4)
          .Def(8192)
          .Fail(FailMode::kExitPinpoint),
      // performance_schema sizing: division by the configured value (the
      // Figure 7(a) crash with `..._history_size = 0`).
      PB("perf_events_history_size", "perf_events_history_size", Archetype::kDivisorInt)
          .Def(8),
      PB("thread_stack_slots", "thread_stack_slots", Archetype::kCrashArrayCount)
          .Def(8)
          .Cap(16),
      PB("innodb_file_format_check", "innodb_file_format_check", Archetype::kEnumSensitive)
          .Enum({"Barracuda", "Antelope"}),  // Figure 6(a): the case-sensitive outlier.
      PB("concurrency_mode", "concurrency_mode", Archetype::kEnumInsensitive)
          .Cnt(6)
          .Enum({"none", "classic", "adaptive"}),
      PB("sync_binlog_enable", "sync_binlog_enable", Archetype::kBoolReject).Def(1),
      PB("binlog_expire_days", "binlog_expire_days", Archetype::kDependent)
          .Cnt(4)
          .Def(7)
          .Master("sync_binlog_enable"),
      PB("ft_min_word_len", "ft_min_word_len", Archetype::kRelPair)
          .Def(4)
          .Peer("ft_max_word_len"),  // Figure 3(f)/5(f).
      PB("ft_max_word_len", "ft_max_word_len", Archetype::kPlainInt).Def(84),
      PB("sort_buffer_ratio", "sort_buffer_ratio", Archetype::kRelPairChecked)
          .Def(4)
          .Peer("join_buffer_ratio")
          .Doc(),
      PB("join_buffer_ratio", "join_buffer_ratio", Archetype::kPlainInt).Def(84),
      PB("innodb_old_blocks_pct", "innodb_old_blocks_pct", Archetype::kAliasPair)
          .Def(37)
          .Range(5, 95)
          .Peer("innodb_old_blocks_time"),
      PB("innodb_old_blocks_time", "innodb_old_blocks_time", Archetype::kPlainInt).Def(37),
      PB("slow_query_log_name", "slow_query_log_name", Archetype::kPlainString).Cnt(4),
  };
  return t;
}

TargetSpec PostgreSql() {
  TargetSpec t;
  t.name = "postgresql";
  t.display_name = "PostgreSQL";
  t.dialect = ConfigDialect::kKeyEqualsValue;
  t.uses_struct_table = true;
  t.table_parse = TableParseStyle::kStrictRange;
  t.table_shards = 3;
  t.params = {
      PB("deadlock_timeout", "deadlock_timeout", Archetype::kRangeTable)
          .Cnt(10)
          .Def(1000)
          .Range(1, 600000)
          .Doc(),
      PB("max_wal_senders", "max_wal_senders", Archetype::kPlainInt).Cnt(14).Def(10),
      PB("data_directory", "data_directory", Archetype::kDir).Fail(FailMode::kExitPinpoint),
      PB("ident_file", "ident_file", Archetype::kFile).Fail(FailMode::kExitPinpoint),
      PB("pg_port", "pg_port", Archetype::kPort).Fail(FailMode::kExitPinpoint),
      PB("archive_host", "archive_host", Archetype::kHost).Fail(FailMode::kExitNoMsg),
      PB("statement_timeout", "statement_timeout", Archetype::kTimeMsec).Def(200),
      PB("lock_timeout", "lock_timeout", Archetype::kTimeMsecChecked).Cnt(2).Def(200).Doc(),
      PB("checkpoint_warning", "checkpoint_warning", Archetype::kTimeSecChecked)
          .Cnt(2)
          .Def(30)
          .Doc(),
      PB("shared_buffer_bytes", "shared_buffer_bytes", Archetype::kSizeBytes)
          .Def(65536)
          .Fail(FailMode::kExitPinpoint),
      PB("wal_segment_kb", "wal_segment_kb", Archetype::kSizeKbScaled)
          .Def(1024)
          .Fail(FailMode::kExitPinpoint),
      PB("log_statement_kind", "log_statement_kind", Archetype::kEnumInsensitive)
          .Cnt(8)
          .Enum({"none", "ddl", "mod", "all"}),
      PB("enable_fsync", "enable_fsync", Archetype::kBoolReject).Def(1),
      PB("archive_mode", "archive_mode", Archetype::kBoolReject).Def(1),
      // The Figure 3(e) dependency plus PostgreSQL's silent-ignorance pool.
      PB("commit_siblings", "commit_siblings", Archetype::kDependent)
          .Cnt(5)
          .Def(5)
          .Master("enable_fsync"),
      PB("archive_timeout", "archive_timeout", Archetype::kDependent)
          .Cnt(4)
          .Def(60)
          .Master("archive_mode"),
      PB("bgwriter_lru_maxpages", "bgwriter_lru_maxpages", Archetype::kRelPairChecked)
          .Def(4)
          .Peer("bgwriter_lru_budget")
          .Doc(),
      PB("bgwriter_lru_budget", "bgwriter_lru_budget", Archetype::kPlainInt).Def(84),
      PB("vacuum_cost_delay", "vacuum_cost_delay", Archetype::kAliasPair)
          .Def(10)
          .Range(0, 100)
          .Peer("vacuum_cost_limit"),
      PB("vacuum_cost_limit", "vacuum_cost_limit", Archetype::kPlainInt).Def(10),
      PB("cluster_name_text", "cluster_name_text", Archetype::kPlainString).Cnt(2),
  };
  return t;
}

TargetSpec OpenLdap() {
  TargetSpec t;
  t.name = "openldap";
  t.display_name = "OpenLDAP";
  t.dialect = ConfigDialect::kKeyValue;
  t.uses_struct_table = true;  // Hybrid: table + hand-written comparisons.
  t.table_parse = TableParseStyle::kStrictRange;
  t.params = {
      PB("sizelimit", "sizelimit", Archetype::kPlainInt).Cnt(4).Def(500),
      // Figure 2: listener-threads crashes above a hard-coded cap of 16.
      PB("listener-threads", "listener_threads", Archetype::kCrashArrayCount).Def(8).Cap(16),
      // Figure 3(d): index_intlen silently clamped to [4, 255].
      PB("index_intlen", "index_intlen", Archetype::kRangeClampSilent).Def(4).Range(4, 255),
      PB("sockbuf_max_incoming", "sockbuf_max_incoming", Archetype::kRangeCheckExit)
          .Def(262144)
          .Range(1, 4194304),
      PB("ldap_port", "ldap_port", Archetype::kPort).Fail(FailMode::kExitMisleading),
      PB("database_directory", "database_directory", Archetype::kDir)
          .Fail(FailMode::kSilentSkip),
      PB("tls_certificate_file", "tls_certificate_file", Archetype::kFile)
          .Cnt(2)
          .Fail(FailMode::kSilentSkip),
      PB("run_as_user", "ldap_run_as_user", Archetype::kUser).Fail(FailMode::kExitNoMsg),
      PB("idletimeout", "idletimeout", Archetype::kTimeSec).Cnt(2).Def(30),
      PB("cachesize_bytes", "cachesize_bytes", Archetype::kSizeBytes)
          .Def(32768)
          .Fail(FailMode::kExitNoMsg),
      PB("schemacheck", "schemacheck", Archetype::kBoolReject).Def(1),
      PB("syncrepl_retry", "syncrepl_retry", Archetype::kDependent)
          .Cnt(2)
          .Def(60)
          .Master("schemacheck"),
      // Heavy aliasing: the reason OpenLDAP has the worst accuracy (Table 12).
      PB("threads_active", "threads_active", Archetype::kAliasPair)
          .Cnt(3)
          .Def(8)
          .Range(0, 64)
          .Peer("threads_reserve"),
      PB("threads_reserve", "threads_reserve", Archetype::kPlainInt).Def(8),
      PB("rootdn_text", "rootdn_text", Archetype::kPlainString).Cnt(2),
  };
  return t;
}

TargetSpec Vsftp() {
  TargetSpec t;
  t.name = "vsftpd";
  t.display_name = "VSFTP";
  t.dialect = ConfigDialect::kKeyEqualsValue;
  t.uses_struct_table = true;
  t.table_parse = TableParseStyle::kStrictRange;
  t.params = {
      PB("accept_timeout", "accept_timeout", Archetype::kAdHocInt).Cnt(2).Def(60),
      PB("connect_retry_count", "connect_retry_count", Archetype::kPlainInt).Cnt(3).Def(3),
      // Hand-parsed options with atoi/sscanf: unsafe pool.
      PB("max_clients", "max_clients", Archetype::kStrictInt).Cnt(2).Def(64).Safe(),
      PB("pasv_min_port", "pasv_min_port", Archetype::kRelPair)
          .Def(4)
          .Peer("pasv_max_port"),
      PB("pasv_max_port", "pasv_max_port", Archetype::kPlainInt).Def(84),
      PB("listen_port", "ftp_listen_port", Archetype::kPort).Fail(FailMode::kExitNoMsg),
      PB("anon_root", "anon_root", Archetype::kDir).Cnt(2).Fail(FailMode::kSilentSkip),
      PB("banner_file", "banner_file", Archetype::kFile).Cnt(2).Fail(FailMode::kSilentSkip),
      PB("ftp_username", "ftp_username", Archetype::kUser)
          .Cnt(2)
          .Fail(FailMode::kExitNoMsg),
      PB("chown_user", "chown_user", Archetype::kUser).Fail(FailMode::kSilentSkip),
      PB("data_timeout", "data_timeout", Archetype::kTimeSec).Cnt(2).Def(30),
      PB("delay_poll_usec", "delay_poll_usec", Archetype::kTimeUsec).Def(500),
      PB("xfer_buffer", "xfer_buffer", Archetype::kSizeBytes)
          .Def(16384)
          .Fail(FailMode::kSilentSkip),  // Unchecked alloc: crash.
      PB("session_slots", "session_slots", Archetype::kCrashArrayCount).Def(8).Cap(16),
      PB("retry_spin", "retry_spin", Archetype::kHangLoop).Def(8),
      // The big boolean surface VSFTP is known for, plus its dependents: the
      // virtual_use_local_privs example of Figure 7(e).
      PB("listen_ipv4", "listen_ipv4", Archetype::kBoolReject).Def(1),
      PB("guest_enable", "guest_enable", Archetype::kBoolReject).Def(1),
      PB("virtual_use_local_privs", "virtual_use_local_privs", Archetype::kDependent)
          .Cnt(9)
          .Def(1)
          .Master("guest_enable"),
      PB("guest_username_alt", "guest_username_alt", Archetype::kDependent)
          .Cnt(8)
          .Def(3)
          .Master("listen_ipv4"),
      PB("ftpd_banner_text", "ftpd_banner_text", Archetype::kPlainString).Cnt(2),
  };
  return t;
}

TargetSpec Squid() {
  TargetSpec t;
  t.name = "squid";
  t.display_name = "Squid";
  t.dialect = ConfigDialect::kKeyValue;
  t.uses_struct_table = false;
  t.uses_comparison = true;
  t.params = {
      // Everything is hand-parsed with atoi: the silent-violation champion.
      PB("client_lifetime", "client_lifetime", Archetype::kPlainInt).Cnt(4).Def(60),
      PB("shutdown_lifetime", "shutdown_lifetime", Archetype::kStrictInt).Cnt(4).Def(30).Safe(),
      PB("visible_hostname", "visible_hostname", Archetype::kPlainString).Cnt(11),
      // Figure 6(c): boolean parameters that silently treat anything but
      // "on" as off.
      PB("memory_pools", "memory_pools", Archetype::kBoolSilent).Cnt(6).Def(1),
      PB("cache_replacement", "cache_replacement", Archetype::kEnumSensitive)
          .Cnt(6)
          .Enum({"lru", "heap", "clock"}),
      PB("http_port", "squid_http_port", Archetype::kPort).Fail(FailMode::kSilentSkip),
      // Figure 5(c): the misleading "FATAL: Cannot open ICP Port".
      PB("udp_port", "udp_port", Archetype::kPort).Fail(FailMode::kExitMisleading),
      PB("pid_filename", "pid_filename", Archetype::kFile).Cnt(2).Fail(FailMode::kSilentSkip),
      PB("coredump_dir", "coredump_dir", Archetype::kDir).Fail(FailMode::kSilentSkip),
      PB("cache_effective_user", "cache_effective_user", Archetype::kUser)
          .Fail(FailMode::kExitPinpoint),
      PB("dns_nameserver", "dns_nameserver", Archetype::kHost).Fail(FailMode::kSilentSkip),
      PB("connect_timeout", "connect_timeout", Archetype::kTimeSec).Cnt(2).Def(30),
      PB("dns_retransmit_msec", "dns_retransmit_msec", Archetype::kTimeMsec).Cnt(2).Def(200),
      PB("cache_mem_bytes", "cache_mem_bytes", Archetype::kSizeBytes)
          .Cnt(3)
          .Def(65536)
          .Fail(FailMode::kExitPinpoint),
      PB("max_mem_free_kb", "max_mem_free_kb", Archetype::kSizeKbScaled)
          .Def(512)
          .Fail(FailMode::kExitPinpoint),
      PB("store_objects_per_bucket", "store_objects_per_bucket", Archetype::kDivisorInt)
          .Def(8),
      PB("request_buffer_len", "request_buffer_len", Archetype::kRangeClampSilent)
          .Cnt(2)
          .Def(4096)
          .Range(512, 65536),
      PB("redirect_children", "redirect_children", Archetype::kHangLoop).Def(5),
      PB("icp_query_timeout", "icp_query_timeout", Archetype::kDependent)
          .Cnt(4)
          .Def(5)
          .Master("memory_pools_0"),
      PB("cache_swap_low", "cache_swap_low", Archetype::kRelPair)
          .Cnt(2)
          .Def(4)
          .Peer("cache_swap_high"),
      PB("cache_swap_high", "cache_swap_high", Archetype::kPlainInt).Def(84),
      PB("fqdn_cache_size", "fqdn_cache_size", Archetype::kAliasPair)
          .Def(1024)
          .Range(0, 16384)
          .Peer("ipcache_size"),
      PB("ipcache_size", "ipcache_size", Archetype::kPlainInt).Def(1024),
  };
  return t;
}

}  // namespace

std::vector<TargetSpec> EvaluatedTargets() {
  return {StorageA(), Apache(), MySql(), PostgreSql(), OpenLdap(), Vsftp(), Squid()};
}

const TargetSpec& FindTarget(const std::string& name) {
  static const std::vector<TargetSpec>* kTargets =
      new std::vector<TargetSpec>(EvaluatedTargets());
  for (const TargetSpec& target : *kTargets) {
    if (target.name == name) {
      return target;
    }
  }
  std::cerr << "unknown corpus target: " << name << "\n";
  std::abort();
}

}  // namespace spex
