// Corpus target specifications.
//
// Each of the paper's seven evaluated systems is modeled as a TargetSpec: a
// list of parameter archetypes (each combining a type, a planted constraint,
// a planted reaction to violations, and documentation/parsing knobs) plus
// target-level conventions (mapping style per Table 1, config dialect,
// parser strictness). The synthesizer turns a spec into MiniC source,
// annotations, a template config, a manual, a test suite and ground truth.
//
// Counts are calibrated at roughly quarter scale of the paper's systems
// (documented in EXPERIMENTS.md); the *shape* — which systems crash, where
// silent violations dominate, who has unsafe parsers — follows Table 5–12.
#ifndef SPEX_CORPUS_SPEC_H_
#define SPEX_CORPUS_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/confgen/config_file.h"

namespace spex {

// How the target reacts when a planted resource/validity check fails.
enum class FailMode {
  kSilentSkip,     // Feature silently disabled -> functional failure.
  kExitNoMsg,      // exit(1) with no message -> early termination.
  kExitMisleading, // exit(1) with a message that names no parameter.
  kExitPinpoint,   // log_error naming the parameter, then reject -> good.
  kLogContinue,    // log_warn naming the parameter, keep going -> good.
};

enum class Archetype {
  kPlainInt,            // Unconstrained int; silent wraps on bad input.
  kPlainString,         // Unconstrained string.
  kStrictInt,           // Custom parse with parse_int_strict + pinpointing.
  kAdHocInt,            // Custom parse with atoi regardless of the target's
                        // table discipline: the unsafe-API / silent pool.
  kRangeTable,          // Range declared in the mapping table; parser enforces.
  kRangeCheckPinpoint,  // Code range check, pinpointing rejection.
  kRangeCheckExit,      // Code range check, exit without message.
  kRangeClampSilent,    // Code range check, silent clamp (silent overruling).
  kDivisorInt,          // Used as divisor: 0 crashes.
  kCrashArrayCount,     // Fills a fixed-size array: big values segfault.
  kHangLoop,            // Count-down loop: negative/huge values hang.
  kPort,                // bind(); `fail` decides the reaction.
  kFile,                // open(); `fail` decides.
  kDir,                 // chdir(); `fail` decides.
  kUser,                // getpwnam(); `fail` decides.
  kHost,                // gethostbyname(); `fail` decides.
  kTimeSec,             // sleep(value) on the request path (huge -> hang).
  kTimeSecChecked,      // sleep with a pinpointing range check.
  kTimeUsec,            // usleep(value).
  kTimeUsecChecked,     // usleep with a pinpointing range check.
  kTimeMsec,            // poll_wait(value).
  kTimeMsecChecked,     // poll_wait with a pinpointing range check.
  kTimeMinScaled,       // sleep(value * 60): minutes parameter.
  kTimeMinChecked,      // Checked minutes parameter.
  kSizeBytes,           // alloc_buffer(value); `fail` decides (kSilentSkip -> crash-on-null).
  kSizeKbScaled,        // alloc_buffer(value * 1024): kilobytes parameter.
  kBoolSilent,          // on/off via strcasecmp; anything else silently off.
  kBoolReject,          // on/off via strcasecmp; anything else pinpointed+rejected.
  kEnumSensitive,       // strcmp value set; miss silently defaults.
  kEnumInsensitive,     // strcasecmp value set; miss pinpointed+rejected.
  kDependent,           // Only used when `master` (a bool param) is on.
  kRelPair,             // This (min) must stay below `peer` (max), checked on
                        // the request path only -> functional failure.
  kRelPairChecked,      // Same, but init rejects with a pinpointing message.
  kAliasPair,           // Reused-pointer clamp: the check really guards `peer`;
                        // inference misattributes it to this parameter too.
};

struct ParamSpec {
  std::string key;         // Configuration name ("listener-threads").
  std::string var;         // Variable name in source ("listener_threads").
  Archetype archetype = Archetype::kPlainInt;
  int count = 1;           // Multiplicity: expands to key_0, key_1, ...

  int64_t def_int = 8;     // Default value (template config + initializer).
  std::string def_str;     // Default for string parameters.
  int64_t min = 0;         // Range archetypes.
  int64_t max = 0;
  int64_t cap = 16;        // kCrashArrayCount array size.
  FailMode fail = FailMode::kSilentSkip;
  std::vector<std::string> enum_values;  // kEnum*/kBool* accepted values.
  std::string master;      // kDependent: controlling parameter key.
  std::string peer;        // kRelPair/kAliasPair: the other parameter key.
  bool documented = false; // Manual mentions the constraint.
  bool unsafe_parse = true;  // Custom parse uses atoi/sscanf (vs strict).
  bool warn_when_ignored = false;  // kDependent: log when ignored.
};

// How a target parses integers reached through its mapping table.
enum class TableParseStyle {
  kAtoi,         // *var = atoi(value): silent on garbage/overflow.
  kStrictRange,  // parse_int_strict + table min/max check, pinpointing.
};

struct TargetSpec {
  std::string name;         // "mysql"
  std::string display_name; // "MySQL"
  ConfigDialect dialect = ConfigDialect::kKeyEqualsValue;
  bool uses_struct_table = true;      // Structure-based mapping (Table 1).
  bool uses_handler_table = false;    // Apache-style struct(function) mapping.
  bool uses_comparison = false;       // Redis/Squid-style comparison mapping.
  TableParseStyle table_parse = TableParseStyle::kAtoi;
  // Number of int mapping tables the parameters are spread over. Real
  // systems (MySQL) keep many tables, which is why their annotation counts
  // (LoA, Table 4) are higher.
  int table_shards = 1;
  std::vector<ParamSpec> params;

  size_t TotalParams() const;
};

// The seven evaluated systems (paper Table 4), quarter scale.
std::vector<TargetSpec> EvaluatedTargets();
// Look up one target by name; aborts if unknown.
const TargetSpec& FindTarget(const std::string& name);

}  // namespace spex

#endif  // SPEX_CORPUS_SPEC_H_
