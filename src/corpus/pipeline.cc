#include "src/corpus/pipeline.h"

#include "src/ir/lowering.h"
#include "src/lang/parser.h"

namespace spex {

TargetAnalysis AnalyzeTarget(const TargetSpec& spec, const ApiRegistry& apis,
                             DiagnosticEngine* diags) {
  TargetAnalysis analysis;
  analysis.bundle = SynthesizeTarget(spec);
  auto unit = ParseSource(analysis.bundle.source, spec.name + ".c", diags);
  analysis.module = LowerToIr(*unit, diags);
  analysis.engine = std::make_unique<SpexEngine>(*analysis.module, apis);
  AnnotationFile annotations = ParseAnnotations(analysis.bundle.annotations, diags);
  analysis.lines_of_annotation = annotations.lines_of_annotation;
  analysis.constraints = analysis.engine->Run(annotations, diags);
  analysis.manual = ManualModel::Parse(analysis.bundle.manual_text, diags);
  return analysis;
}

CampaignSummary RunCampaign(const TargetAnalysis& analysis, CampaignOptions options) {
  MisconfigGenerator generator;
  std::vector<Misconfiguration> configs = generator.Generate(analysis.constraints);
  InjectionCampaign campaign(*analysis.module, analysis.bundle.sut,
                             OsSimulator::StandardEnvironment(), options);
  ConfigFile template_config =
      ConfigFile::Parse(analysis.bundle.template_config, analysis.bundle.dialect);
  return campaign.RunAll(template_config, configs);
}

}  // namespace spex
