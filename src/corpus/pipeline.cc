#include "src/corpus/pipeline.h"

#include <algorithm>
#include <atomic>

#include "src/ir/lowering.h"
#include "src/lang/parser.h"
#include "src/support/thread_pool.h"

namespace spex {

TargetAnalysis AnalyzeTarget(const TargetSpec& spec, const ApiRegistry& apis,
                             DiagnosticEngine* diags, SpexOptions engine_options) {
  TargetAnalysis analysis;
  analysis.bundle = SynthesizeTarget(spec);
  auto unit = ParseSource(analysis.bundle.source, spec.name + ".c", diags);
  analysis.module = LowerToIr(*unit, diags);
  analysis.engine = std::make_unique<SpexEngine>(*analysis.module, apis, engine_options);
  AnnotationFile annotations = ParseAnnotations(analysis.bundle.annotations, diags);
  analysis.lines_of_annotation = annotations.lines_of_annotation;
  analysis.constraints = analysis.engine->Run(annotations, diags);
  analysis.manual = ManualModel::Parse(analysis.bundle.manual_text, diags);
  return analysis;
}

CampaignSummary RunCampaign(const TargetAnalysis& analysis, CampaignOptions options) {
  MisconfigGenerator generator;
  std::vector<Misconfiguration> configs = generator.Generate(analysis.constraints);
  InjectionCampaign campaign(*analysis.module, analysis.bundle.sut,
                             OsSimulator::StandardEnvironment(), options);
  ConfigFile template_config =
      ConfigFile::Parse(analysis.bundle.template_config, analysis.bundle.dialect);
  return campaign.RunAll(template_config, configs);
}

std::vector<CorpusCampaignResult> RunCorpusCampaigns(
    const std::vector<std::string>& target_names, const ApiRegistry& apis,
    CampaignOptions options, size_t num_workers, SpexOptions engine_options) {
  std::vector<CorpusCampaignResult> results(target_names.size());
  if (target_names.empty()) {
    return results;
  }
  size_t worker_count =
      std::min(ThreadPool::ResolveThreadCount(num_workers), target_names.size());

  // Each task owns one target end to end (analysis, generation, campaign)
  // and writes its pre-sized slot; the ApiRegistry is shared read-only.
  auto run_target = [&](size_t index) {
    CorpusCampaignResult& slot = results[index];
    slot.target = target_names[index];
    DiagnosticEngine diags;
    slot.analysis = AnalyzeTarget(FindTarget(slot.target), apis, &diags, engine_options);
    slot.summary = RunCampaign(slot.analysis, options);
    if (diags.HasErrors()) {
      slot.diagnostics = diags.Render();
    }
  };

  if (worker_count <= 1) {
    for (size_t i = 0; i < target_names.size(); ++i) {
      run_target(i);
    }
    return results;
  }
  std::atomic<size_t> next_index{0};
  ThreadPool pool(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    pool.Submit([&] {
      for (size_t i = next_index.fetch_add(1); i < results.size();
           i = next_index.fetch_add(1)) {
        run_target(i);
      }
    });
  }
  pool.Wait();
  return results;
}

}  // namespace spex
