#include "src/corpus/synthesizer.h"

#include <algorithm>
#include <sstream>

#include "src/support/strings.h"

namespace spex {

namespace {

// One expanded (multiplicity-resolved) parameter.
struct GenParam {
  ParamSpec spec;
  std::string key;
  std::string var;
  bool is_string = false;
  bool comparison_parsed = false;
  bool handler_parsed = false;
  bool table_parsed = false;
  int shard = 0;  // Which int table this parameter lives in.
};

bool IsStringArchetype(Archetype archetype) {
  switch (archetype) {
    case Archetype::kPlainString:
    case Archetype::kFile:
    case Archetype::kDir:
    case Archetype::kUser:
    case Archetype::kHost:
      return true;
    default:
      return false;
  }
}

bool IsValueComparedArchetype(Archetype archetype) {
  switch (archetype) {
    case Archetype::kBoolSilent:
    case Archetype::kBoolReject:
    case Archetype::kEnumSensitive:
    case Archetype::kEnumInsensitive:
      return true;
    default:
      return false;
  }
}

std::string DefaultStringFor(const ParamSpec& spec) {
  if (!spec.def_str.empty()) {
    return spec.def_str;
  }
  switch (spec.archetype) {
    case Archetype::kFile:
      return "/etc/mime.types";
    case Archetype::kDir:
      return "/var/www";
    case Archetype::kUser:
      return "www-data";
    case Archetype::kHost:
      return "localhost";
    default:
      return "default-value";
  }
}

class Synthesis {
 public:
  explicit Synthesis(const TargetSpec& spec) : spec_(spec) {}

  TargetBundle Build();

 private:
  void ExpandParams();
  void EmitGlobals(std::ostringstream& src);
  void EmitTables(std::ostringstream& src);
  void EmitHandlers(std::ostringstream& src);
  void EmitHelpers(std::ostringstream& src);
  void EmitParseFunction(std::ostringstream& src);
  void EmitServerInit(std::ostringstream& src);
  void EmitSetupBody(std::ostringstream& src, const GenParam& param);
  void EmitTests(std::ostringstream& src);

  std::string ComparisonParseSnippet(const GenParam& param) const;
  std::string IntParseBody(const GenParam& param, const std::string& source_var) const;
  std::string FailSnippet(const GenParam& param, const std::string& detail_fmt) const;
  void RecordTruth(const GenParam& param);

  const GenParam* Find(const std::string& key) const {
    for (const GenParam& param : params_) {
      if (param.key == key) {
        return &param;
      }
    }
    return nullptr;
  }
  std::string VarOf(const std::string& key) const {
    const GenParam* param = Find(key);
    return param != nullptr ? param->var : key;
  }

  const TargetSpec& spec_;
  std::vector<GenParam> params_;
  TargetBundle bundle_;
  int next_port_ = 7100;
  int test_cost_cycle_ = 0;
};

void Synthesis::ExpandParams() {
  int shard_cursor = 0;
  for (const ParamSpec& proto : spec_.params) {
    for (int i = 0; i < proto.count; ++i) {
      GenParam param;
      param.spec = proto;
      param.key = proto.count == 1 ? proto.key : proto.key + "_" + std::to_string(i);
      param.var = proto.count == 1 ? proto.var : proto.var + "_" + std::to_string(i);
      param.is_string = IsStringArchetype(proto.archetype);
      if (proto.archetype == Archetype::kPort && proto.def_int == 8) {
        param.spec.def_int = next_port_++;
      }
      if (IsValueComparedArchetype(proto.archetype) && param.spec.enum_values.empty()) {
        param.spec.enum_values = {"on", "off"};
      }
      // Parse-path selection: value-compared and strict parameters always go
      // through custom comparison code; the rest follow the target's primary
      // convention.
      if (IsValueComparedArchetype(proto.archetype) ||
          proto.archetype == Archetype::kStrictInt ||
          proto.archetype == Archetype::kAdHocInt ||
          (!spec_.uses_struct_table && !spec_.uses_handler_table)) {
        param.comparison_parsed = true;
      } else if (spec_.uses_handler_table) {
        param.handler_parsed = true;
      } else {
        param.table_parsed = true;
        param.shard = shard_cursor++ % std::max(1, spec_.table_shards);
      }
      params_.push_back(std::move(param));
    }
  }
}

std::string Synthesis::FailSnippet(const GenParam& param, const std::string& detail_fmt) const {
  switch (param.spec.fail) {
    case FailMode::kSilentSkip:
      if (param.spec.archetype == Archetype::kSizeBytes ||
          param.spec.archetype == Archetype::kSizeKbScaled) {
        // Unchecked allocation failure: the classic null-pointer write.
        return "scratch_pool[99] = 1;";
      }
      return "ok_" + param.var + " = 0;";
    case FailMode::kExitNoMsg:
      return "exit(1);";
    case FailMode::kExitMisleading:
      return "log_fatal(\"FATAL: cannot initialize service resources\"); exit(1);";
    case FailMode::kExitPinpoint:
      return "log_error(\"" + detail_fmt + "\", " + param.var + "); return -1;";
    case FailMode::kLogContinue:
      return "log_warn(\"" + detail_fmt + "\", " + param.var + "); ok_" + param.var + " = 1;";
  }
  return "";
}

void Synthesis::EmitGlobals(std::ostringstream& src) {
  src << "int scratch_pool[8];\n";
  for (const GenParam& param : params_) {
    const ParamSpec& spec = param.spec;
    if (param.is_string) {
      src << "char *" << param.var << " = \"" << DefaultStringFor(spec) << "\";\n";
    } else {
      src << "int " << param.var << " = " << spec.def_int << ";\n";
    }
    switch (spec.archetype) {
      case Archetype::kPort:
      case Archetype::kFile:
      case Archetype::kDir:
      case Archetype::kUser:
      case Archetype::kHost:
      case Archetype::kSizeBytes:
      case Archetype::kSizeKbScaled:
        src << "int ok_" << param.var << " = 1;\n";
        break;
      case Archetype::kCrashArrayCount:
        src << "int slots_" << param.var << "[" << spec.cap << "];\n";
        break;
      case Archetype::kDivisorInt:
        src << "int stride_" << param.var << " = 1;\n";
        break;
      case Archetype::kDependent:
        src << "int tuned_" << param.var << " = 0;\n";
        break;
      default:
        break;
    }
  }
  src << "\n";
}

void Synthesis::EmitTables(std::ostringstream& src) {
  if (spec_.uses_struct_table) {
    src << "struct config_int { char *name; int *variable; int min; int max; };\n";
    src << "struct config_str { char *name; char **variable; };\n";
    int shards = std::max(1, spec_.table_shards);
    for (int shard = 0; shard < shards; ++shard) {
      src << "struct config_int int_table_" << shard << "[] = {\n";
      for (const GenParam& param : params_) {
        if (!param.table_parsed || param.is_string || param.shard != shard) {
          continue;
        }
        int64_t lo = -2000000000;
        int64_t hi = 2000000000;
        if (param.spec.archetype == Archetype::kRangeTable) {
          lo = param.spec.min;
          hi = param.spec.max;
        }
        src << "  { \"" << param.key << "\", &" << param.var << ", " << lo << ", " << hi
            << " },\n";
      }
      src << "};\n";
    }
    src << "struct config_str str_table[] = {\n";
    for (const GenParam& param : params_) {
      if (param.table_parsed && param.is_string) {
        src << "  { \"" << param.key << "\", &" << param.var << " },\n";
      }
    }
    src << "};\n\n";
  }
  if (spec_.uses_handler_table) {
    src << "struct command_rec { char *name; char *handler; };\n";
    src << "struct command_rec cmd_table[] = {\n";
    for (const GenParam& param : params_) {
      if (param.handler_parsed) {
        src << "  { \"" << param.key << "\", set_" << param.var << " },\n";
      }
    }
    src << "};\n\n";
  }
}

std::string Synthesis::IntParseBody(const GenParam& param, const std::string& source_var) const {
  const ParamSpec& spec = param.spec;
  std::ostringstream out;
  if (spec.unsafe_parse) {
    out << "    " << param.var << " = atoi(" << source_var << ");\n";
    out << "    return 0;\n";
  } else {
    out << "    int v;\n";
    out << "    if (parse_int_strict(" << source_var << ", &v) < 0) {\n";
    out << "      log_error(\"invalid value '%s' for parameter " << param.key
        << "\", " << source_var << ");\n";
    out << "      return -1;\n";
    out << "    }\n";
    out << "    " << param.var << " = v;\n";
    out << "    return 0;\n";
  }
  return out.str();
}

std::string Synthesis::ComparisonParseSnippet(const GenParam& param) const {
  const ParamSpec& spec = param.spec;
  std::ostringstream out;
  out << "  if (!strcasecmp(key, \"" << param.key << "\")) {\n";
  switch (spec.archetype) {
    case Archetype::kBoolSilent:
      // The Squid Figure 6(c) pattern: anything that is not the first
      // accepted word silently means "off".
      out << "    if (!strcasecmp(value, \"" << spec.enum_values[0] << "\")) {\n";
      out << "      " << param.var << " = 1;\n";
      out << "    } else {\n";
      out << "      " << param.var << " = 0;\n";
      out << "    }\n";
      out << "    return 0;\n";
      break;
    case Archetype::kBoolReject: {
      out << "    if (!strcasecmp(value, \"" << spec.enum_values[0] << "\")) {\n";
      out << "      " << param.var << " = 1;\n";
      out << "    } else if (!strcasecmp(value, \""
          << (spec.enum_values.size() > 1 ? spec.enum_values[1] : "off") << "\")) {\n";
      out << "      " << param.var << " = 0;\n";
      out << "    } else {\n";
      out << "      log_error(\"parameter " << param.key
          << " expects on/off, got '%s'\", value);\n";
      out << "      return -1;\n";
      out << "    }\n";
      out << "    return 0;\n";
      break;
    }
    case Archetype::kEnumSensitive:
    case Archetype::kEnumInsensitive: {
      const char* cmp = spec.archetype == Archetype::kEnumSensitive ? "strcmp" : "strcasecmp";
      for (size_t i = 0; i < spec.enum_values.size(); ++i) {
        out << (i == 0 ? "    if (!" : "    } else if (!") << cmp << "(value, \""
            << spec.enum_values[i] << "\")) {\n";
        out << "      " << param.var << " = " << i << ";\n";
      }
      if (spec.archetype == Archetype::kEnumSensitive) {
        out << "    } else {\n";
        out << "      " << param.var << " = 0;\n";  // Silent default.
        out << "    }\n";
        out << "    return 0;\n";
      } else {
        out << "    } else {\n";
        out << "      log_error(\"unknown value '%s' for parameter " << param.key
            << "\", value);\n";
        out << "      return -1;\n";
        out << "    }\n";
        out << "    return 0;\n";
      }
      break;
    }
    default:
      if (param.is_string) {
        out << "    " << param.var << " = strdup(value);\n";
        out << "    return 0;\n";
      } else if (spec.archetype == Archetype::kStrictInt || !spec.unsafe_parse) {
        GenParam strict = param;
        strict.spec.unsafe_parse = false;
        out << IntParseBody(strict, "value");
      } else {
        out << IntParseBody(param, "value");
      }
      break;
  }
  out << "  }\n";
  return out.str();
}

void Synthesis::EmitHandlers(std::ostringstream& src) {
  for (const GenParam& param : params_) {
    if (!param.handler_parsed) {
      continue;
    }
    src << "int set_" << param.var << "(char *arg) {\n";
    if (param.is_string) {
      src << "  " << param.var << " = strdup(arg);\n";
      src << "  return 0;\n";
    } else {
      src << IntParseBody(param, "arg");
    }
    src << "}\n\n";
  }
}

void Synthesis::EmitHelpers(std::ostringstream& src) {}

void Synthesis::EmitParseFunction(std::ostringstream& src) {
  src << "int handle_config_line(char *key, char *value) {\n";
  for (const GenParam& param : params_) {
    if (param.comparison_parsed) {
      src << ComparisonParseSnippet(param);
    }
  }
  if (spec_.uses_struct_table) {
    src << "  int i;\n";
    int shards = std::max(1, spec_.table_shards);
    for (int shard = 0; shard < shards; ++shard) {
      size_t rows = 0;
      for (const GenParam& param : params_) {
        rows += (param.table_parsed && !param.is_string && param.shard == shard) ? 1 : 0;
      }
      if (rows == 0) {
        continue;
      }
      src << "  for (i = 0; i < " << rows << "; i++) {\n";
      src << "    if (!strcmp(int_table_" << shard << "[i].name, key)) {\n";
      if (spec_.table_parse == TableParseStyle::kStrictRange) {
        src << "      int v;\n";
        src << "      if (parse_int_strict(value, &v) < 0) {\n";
        src << "        log_error(\"parameter %s requires an integer, got '%s'\", key, "
               "value);\n";
        src << "        return -1;\n";
        src << "      }\n";
        src << "      if (v < int_table_" << shard << "[i].min || v > int_table_" << shard
            << "[i].max) {\n";
        src << "        log_error(\"parameter %s outside its valid range\", key);\n";
        src << "        return -1;\n";
        src << "      }\n";
        src << "      *int_table_" << shard << "[i].variable = v;\n";
      } else {
        src << "      *int_table_" << shard << "[i].variable = atoi(value);\n";
      }
      src << "      return 0;\n";
      src << "    }\n";
      src << "  }\n";
    }
    size_t str_rows = 0;
    for (const GenParam& param : params_) {
      str_rows += (param.table_parsed && param.is_string) ? 1 : 0;
    }
    if (str_rows > 0) {
      src << "  for (i = 0; i < " << str_rows << "; i++) {\n";
      src << "    if (!strcmp(str_table[i].name, key)) {\n";
      src << "      *str_table[i].variable = strdup(value);\n";
      src << "      return 0;\n";
      src << "    }\n";
      src << "  }\n";
    }
  }
  if (spec_.uses_handler_table) {
    size_t rows = 0;
    for (const GenParam& param : params_) {
      rows += param.handler_parsed ? 1 : 0;
    }
    src << "  int i;\n";
    src << "  for (i = 0; i < " << rows << "; i++) {\n";
    src << "    if (!strcasecmp(cmd_table[i].name, key)) {\n";
    src << "      return invoke_handler1(cmd_table[i].handler, value);\n";
    src << "    }\n";
    src << "  }\n";
  }
  src << "  log_warn(\"unknown directive: %s\", key);\n";
  src << "  return 0;\n";
  src << "}\n\n";
}

void Synthesis::EmitServerInit(std::ostringstream& src) {
  // One setup function per parameter. Real systems validate options in the
  // module that owns them; lumping everything into one function would create
  // artificial cross-parameter control dependences (every later option would
  // "depend on" every earlier rejecting check).
  std::vector<std::string> setup_fns;
  for (const GenParam& param : params_) {
    const ParamSpec& spec = param.spec;
    const std::string& var = param.var;
    std::ostringstream body;
    EmitSetupBody(body, param);
    std::string text = body.str();
    if (text.empty()) {
      continue;
    }
    src << "int setup_" << var << "() {\n" << text << "  return 0;\n}\n\n";
    setup_fns.push_back("setup_" + var);
    (void)spec;
  }
  src << "int server_init() {\n";
  for (const std::string& fn : setup_fns) {
    src << "  if (" << fn << "() < 0) {\n    return -1;\n  }\n";
  }
  src << "  return 0;\n";
  src << "}\n\n";
}

void Synthesis::EmitSetupBody(std::ostringstream& src, const GenParam& param) {
  const ParamSpec& spec = param.spec;
  const std::string& var = param.var;
  {
    switch (spec.archetype) {
      case Archetype::kRangeClampSilent:
        src << "  if (" << var << " < " << spec.min << ") {\n";
        src << "    " << var << " = " << spec.min << ";\n";
        src << "  } else if (" << var << " > " << spec.max << ") {\n";
        src << "    " << var << " = " << spec.max << ";\n";
        src << "  }\n";
        break;
      case Archetype::kRangeCheckPinpoint:
        src << "  if (" << var << " < " << spec.min << ") {\n";
        src << "    log_error(\"" << param.key << " must be at least " << spec.min
            << ", got %d\", " << var << ");\n";
        src << "    return -1;\n";
        src << "  }\n";
        src << "  if (" << var << " > " << spec.max << ") {\n";
        src << "    log_error(\"" << param.key << " must be at most " << spec.max
            << ", got %d\", " << var << ");\n";
        src << "    return -1;\n";
        src << "  }\n";
        break;
      case Archetype::kRangeCheckExit:
        src << "  if (" << var << " < " << spec.min << ") {\n";
        src << "    exit(1);\n";
        src << "  }\n";
        src << "  if (" << var << " > " << spec.max << ") {\n";
        src << "    exit(1);\n";
        src << "  }\n";
        break;
      case Archetype::kDivisorInt:
        src << "  stride_" << var << " = 4096 / " << var << ";\n";
        break;
      case Archetype::kCrashArrayCount:
        src << "  {\n";
        src << "    int i;\n";
        src << "    for (i = 0; i < " << var << "; i++) {\n";
        src << "      slots_" << var << "[i] = 1;\n";
        src << "    }\n";
        src << "  }\n";
        break;
      case Archetype::kHangLoop:
        src << "  {\n";
        src << "    int i = " << var << ";\n";
        src << "    while (i != 0) {\n";
        src << "      i = i - 1;\n";
        src << "    }\n";
        src << "  }\n";
        break;
      case Archetype::kPort:
        src << "  {\n";
        src << "    int fd = socket();\n";
        src << "    if (bind(fd, " << var << ") < 0) {\n";
        src << "      " << FailSnippet(param, "cannot bind " + param.key + " = %d") << "\n";
        src << "    } else {\n";
        src << "      listen(fd, 64);\n";
        src << "      ok_" << var << " = 1;\n";
        src << "    }\n";
        src << "  }\n";
        break;
      case Archetype::kFile:
        src << "  if (open(" << var << ", 0) < 0) {\n";
        src << "    " << FailSnippet(param, "cannot open " + param.key + " file '%s'") << "\n";
        src << "  } else {\n";
        src << "    ok_" << var << " = 1;\n";
        src << "  }\n";
        break;
      case Archetype::kDir:
        src << "  if (chdir(" << var << ") < 0) {\n";
        src << "    " << FailSnippet(param, "cannot enter " + param.key + " directory '%s'")
            << "\n";
        src << "  } else {\n";
        src << "    ok_" << var << " = 1;\n";
        src << "  }\n";
        break;
      case Archetype::kUser:
        src << "  if (getpwnam(" << var << ") == 0) {\n";
        src << "    " << FailSnippet(param, "unknown user '%s' for " + param.key) << "\n";
        src << "  } else {\n";
        src << "    ok_" << var << " = 1;\n";
        src << "  }\n";
        break;
      case Archetype::kHost:
        src << "  if (gethostbyname(" << var << ") == 0) {\n";
        src << "    " << FailSnippet(param, "cannot resolve " + param.key + " host '%s'")
            << "\n";
        src << "  } else {\n";
        src << "    ok_" << var << " = 1;\n";
        src << "  }\n";
        break;
      case Archetype::kTimeSecChecked:
      case Archetype::kTimeUsecChecked:
      case Archetype::kTimeMsecChecked:
      case Archetype::kTimeMinChecked: {
        int64_t cap = 3600;
        if (spec.archetype == Archetype::kTimeUsecChecked) {
          cap = 1000000;
        } else if (spec.archetype == Archetype::kTimeMsecChecked) {
          cap = 600000;
        } else if (spec.archetype == Archetype::kTimeMinChecked) {
          cap = 1440;
        }
        src << "  if (" << var << " < 0) {\n";
        src << "    log_error(\"" << param.key << " must not be negative, got %d\", " << var
            << ");\n";
        src << "    return -1;\n";
        src << "  }\n";
        src << "  if (" << var << " > " << cap << ") {\n";
        src << "    log_error(\"" << param.key << " must be at most " << cap << ", got %d\", "
            << var << ");\n";
        src << "    return -1;\n";
        src << "  }\n";
        break;
      }
      case Archetype::kSizeBytes:
        src << "  {\n";
        src << "    long h = alloc_buffer(" << var << ");\n";
        src << "    if (h == 0) {\n";
        src << "      " << FailSnippet(param, "cannot allocate " + param.key + " = %d bytes")
            << "\n";
        src << "    } else {\n";
        src << "      ok_" << var << " = 1;\n";
        src << "    }\n";
        src << "  }\n";
        break;
      case Archetype::kSizeKbScaled:
        src << "  {\n";
        src << "    long h = alloc_buffer(" << var << " * 1024);\n";
        src << "    if (h == 0) {\n";
        src << "      " << FailSnippet(param, "cannot allocate " + param.key + " = %d KB")
            << "\n";
        src << "    } else {\n";
        src << "      ok_" << var << " = 1;\n";
        src << "    }\n";
        src << "  }\n";
        break;
      case Archetype::kDependent: {
        std::string master_var = VarOf(spec.master);
        src << "  if (" << master_var << " != 0) {\n";
        src << "    tuned_" << var << " = " << var << " + 1;\n";
        src << "  }";
        if (spec.warn_when_ignored) {
          src << " else {\n";
          src << "    log_warn(\"" << param.key << " has no effect while " << spec.master
              << " is disabled\");\n";
          src << "  }\n";
        } else {
          src << "\n";
        }
        break;
      }
      case Archetype::kRelPairChecked: {
        std::string peer_var = VarOf(spec.peer);
        src << "  if (" << var << " >= " << peer_var << ") {\n";
        src << "    log_error(\"" << param.key << " must be less than " << spec.peer
            << "\");\n";
        src << "    return -1;\n";
        src << "  }\n";
        break;
      }
      case Archetype::kAliasPair: {
        std::string peer_var = VarOf(spec.peer);
        src << "  {\n";
        src << "    int *cur = &" << var << ";\n";
        src << "    cur = &" << peer_var << ";\n";
        src << "    if (*cur > " << spec.max << ") {\n";
        src << "      *cur = " << spec.max << ";\n";
        src << "    }\n";
        src << "  }\n";
        break;
      }
      default:
        break;
    }
  }
}

void Synthesis::EmitTests(std::ostringstream& src) {
  auto add_test = [this](const std::string& fn) {
    TestCase test;
    test.name = fn;
    test.function = fn;
    test.cost_hint = 1 + (test_cost_cycle_++ % 5);
    bundle_.sut.tests.push_back(std::move(test));
  };

  src << "int test_startup() {\n  return 1;\n}\n\n";
  add_test("test_startup");

  for (const GenParam& param : params_) {
    const ParamSpec& spec = param.spec;
    const std::string& var = param.var;
    std::string fn = "test_" + var;
    switch (spec.archetype) {
      case Archetype::kPort:
      case Archetype::kFile:
      case Archetype::kDir:
      case Archetype::kUser:
      case Archetype::kHost:
      case Archetype::kSizeBytes:
      case Archetype::kSizeKbScaled:
        src << "int " << fn << "() {\n  return ok_" << var << ";\n}\n\n";
        add_test(fn);
        break;
      case Archetype::kTimeSec:
      case Archetype::kTimeSecChecked:
        src << "int " << fn << "() {\n  sleep(" << var << ");\n  return 1;\n}\n\n";
        add_test(fn);
        break;
      case Archetype::kTimeUsec:
      case Archetype::kTimeUsecChecked:
        src << "int " << fn << "() {\n  usleep(" << var << ");\n  return 1;\n}\n\n";
        add_test(fn);
        break;
      case Archetype::kTimeMsec:
      case Archetype::kTimeMsecChecked:
        src << "int " << fn << "() {\n  poll_wait(" << var << ");\n  return 1;\n}\n\n";
        add_test(fn);
        break;
      case Archetype::kTimeMinScaled:
      case Archetype::kTimeMinChecked:
        src << "int " << fn << "() {\n  sleep(" << var << " * 60);\n  return 1;\n}\n\n";
        add_test(fn);
        break;
      case Archetype::kRelPair:
      case Archetype::kRelPairChecked: {
        std::string peer_var = VarOf(spec.peer);
        src << "int " << fn << "() {\n";
        src << "  int len = (" << var << " + " << peer_var << ") / 2;\n";
        src << "  if (len >= " << var << " && len < " << peer_var << ") {\n";
        src << "    return 1;\n";
        src << "  }\n";
        src << "  return 0;\n";
        src << "}\n\n";
        add_test(fn);
        break;
      }
      default:
        break;
    }
  }
}

void Synthesis::RecordTruth(const GenParam& param) {
  const ParamSpec& spec = param.spec;
  GroundTruth& truth = bundle_.truth;
  bool value_compared = IsValueComparedArchetype(spec.archetype);
  truth.basic_types[param.key] = (param.is_string || value_compared) ? "str" : "i32";

  switch (spec.archetype) {
    case Archetype::kPort:
      truth.semantics.insert({param.key, SemanticType::kPort});
      break;
    case Archetype::kFile:
      truth.semantics.insert({param.key, SemanticType::kFilePath});
      break;
    case Archetype::kDir:
      truth.semantics.insert({param.key, SemanticType::kDirPath});
      break;
    case Archetype::kUser:
      truth.semantics.insert({param.key, SemanticType::kUserName});
      break;
    case Archetype::kHost:
      truth.semantics.insert({param.key, SemanticType::kHostname});
      break;
    case Archetype::kTimeSec:
    case Archetype::kTimeSecChecked:
    case Archetype::kTimeUsec:
    case Archetype::kTimeUsecChecked:
    case Archetype::kTimeMsec:
    case Archetype::kTimeMsecChecked:
    case Archetype::kTimeMinScaled:
    case Archetype::kTimeMinChecked:
      truth.semantics.insert({param.key, SemanticType::kTime});
      break;
    case Archetype::kSizeBytes:
    case Archetype::kSizeKbScaled:
      truth.semantics.insert({param.key, SemanticType::kSize});
      break;
    case Archetype::kBoolSilent:
    case Archetype::kBoolReject:
      truth.semantics.insert({param.key, SemanticType::kBoolean});
      truth.ranges[param.key] = TruthRange{};  // Enumerative, no bounds.
      break;
    case Archetype::kEnumSensitive:
    case Archetype::kEnumInsensitive:
      truth.ranges[param.key] = TruthRange{};
      break;
    default:
      break;
  }
  switch (spec.archetype) {
    case Archetype::kRangeTable:
    case Archetype::kRangeCheckPinpoint:
    case Archetype::kRangeCheckExit:
    case Archetype::kRangeClampSilent:
      truth.ranges[param.key] = TruthRange{spec.min, spec.max};
      break;
    case Archetype::kTimeSecChecked:
      truth.ranges[param.key] = TruthRange{0, 3600};
      break;
    case Archetype::kTimeUsecChecked:
      truth.ranges[param.key] = TruthRange{0, 1000000};
      break;
    case Archetype::kTimeMsecChecked:
      truth.ranges[param.key] = TruthRange{0, 600000};
      break;
    case Archetype::kTimeMinChecked:
      truth.ranges[param.key] = TruthRange{0, 1440};
      break;
    case Archetype::kAliasPair:
      // The clamp really constrains the *peer*; this parameter has no range.
      // SPEX will misattribute it to both — the Table 12 inaccuracy source.
      truth.ranges[spec.peer] = TruthRange{std::nullopt, spec.max};
      break;
    default:
      break;
  }
  if (spec_.uses_struct_table && param.table_parsed && !param.is_string &&
      spec_.table_parse == TableParseStyle::kStrictRange &&
      spec.archetype != Archetype::kRangeTable &&
      truth.ranges.find(param.key) == truth.ranges.end()) {
    // Strict targets declare the catch-all range for every table parameter
    // without a narrower constraint of its own. (Alias-pair victims are
    // deliberately NOT given truth beyond this: the narrower clamp SPEX
    // attributes to them is the planted false positive.)
    truth.ranges[param.key] = TruthRange{-2000000000, 2000000000};
  }
  if (spec.archetype == Archetype::kDependent) {
    truth.control_deps.insert({spec.master, param.key});
  }
  if (spec.archetype == Archetype::kRelPair || spec.archetype == Archetype::kRelPairChecked) {
    auto key = param.key < spec.peer ? std::make_pair(param.key, spec.peer)
                                     : std::make_pair(spec.peer, param.key);
    truth.value_rels.insert(key);
  }
}

TargetBundle Synthesis::Build() {
  bundle_.name = spec_.name;
  bundle_.display_name = spec_.display_name;
  bundle_.dialect = spec_.dialect;
  ExpandParams();

  std::ostringstream src;
  src << "// Synthesized corpus target: " << spec_.display_name << "\n";
  src << "// Generated by spex::SynthesizeTarget — do not hand-edit.\n\n";
  EmitGlobals(src);
  EmitTables(src);
  EmitHandlers(src);
  EmitHelpers(src);
  EmitParseFunction(src);
  EmitServerInit(src);
  EmitTests(src);
  bundle_.source = src.str();
  bundle_.lines_of_code =
      static_cast<size_t>(std::count(bundle_.source.begin(), bundle_.source.end(), '\n'));
  bundle_.param_count = params_.size();

  // Annotations.
  std::ostringstream ann;
  ann << "# Mapping annotations for " << spec_.display_name << "\n";
  if (spec_.uses_struct_table) {
    int shards = std::max(1, spec_.table_shards);
    for (int shard = 0; shard < shards; ++shard) {
      ann << "@STRUCT int_table_" << shard << " { par = 0, var = 1";
      if (spec_.table_parse == TableParseStyle::kStrictRange) {
        ann << ", min = 2, max = 3";
      }
      ann << " }\n";
    }
    ann << "@STRUCT str_table { par = 0, var = 1 }\n";
  }
  if (spec_.uses_handler_table) {
    ann << "@STRUCT cmd_table { par = 0, func = 1, arg = 0 }\n";
  }
  bool any_comparison = false;
  for (const GenParam& param : params_) {
    any_comparison = any_comparison || param.comparison_parsed;
  }
  if (any_comparison) {
    ann << "@PARSER handle_config_line { par = arg0, var = arg1 }\n";
  }
  bundle_.annotations = ann.str();

  // Template configuration.
  ConfigFile config(spec_.dialect);
  config.AppendComment(spec_.display_name + " default configuration (synthesized)");
  for (const GenParam& param : params_) {
    if (param.is_string) {
      config.Set(param.key, DefaultStringFor(param.spec));
    } else if (param.spec.archetype == Archetype::kBoolSilent ||
               param.spec.archetype == Archetype::kBoolReject) {
      config.Set(param.key, param.spec.def_int != 0 ? "on" : "off");
    } else if (IsValueComparedArchetype(param.spec.archetype)) {
      size_t index = static_cast<size_t>(param.spec.def_int) % param.spec.enum_values.size();
      config.Set(param.key, param.spec.enum_values[index]);
    } else {
      config.Set(param.key, std::to_string(param.spec.def_int));
    }
  }
  bundle_.template_config = config.Serialize();

  // Manual model + ground truth + SUT storage map.
  std::ostringstream manual;
  manual << "# " << spec_.display_name << " manual model\n";
  for (const GenParam& param : params_) {
    RecordTruth(param);
    bundle_.sut.param_storage[param.key] = param.var;
    std::vector<std::string> facts = {"basic_type"};
    if (param.spec.documented) {
      switch (param.spec.archetype) {
        case Archetype::kRangeTable:
        case Archetype::kRangeCheckPinpoint:
        case Archetype::kRangeCheckExit:
        case Archetype::kRangeClampSilent:
        case Archetype::kTimeSecChecked:
          facts.push_back("range");
          break;
        case Archetype::kDependent:
          facts.push_back("ctrl_dep");
          break;
        case Archetype::kRelPair:
        case Archetype::kRelPairChecked:
          facts.push_back("value_rel");
          break;
        default:
          facts.push_back("range");
          break;
      }
    }
    manual << param.key << ": " << JoinStrings(facts, ", ") << "\n";
  }
  bundle_.manual_text = manual.str();
  bundle_.sut.parse_function = "handle_config_line";
  bundle_.sut.init_function = "server_init";
  return std::move(bundle_);
}

}  // namespace

TargetBundle SynthesizeTarget(const TargetSpec& spec) {
  Synthesis synthesis(spec);
  return synthesis.Build();
}

size_t TargetSpec::TotalParams() const {
  size_t total = 0;
  for (const ParamSpec& param : params) {
    total += static_cast<size_t>(param.count);
  }
  return total;
}

}  // namespace spex
