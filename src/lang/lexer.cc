#include "src/lang/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace spex {

namespace {

const std::unordered_map<std::string_view, TokenKind>& KeywordMap() {
  static const auto* kMap = new std::unordered_map<std::string_view, TokenKind>{
      {"void", TokenKind::kKwVoid},         {"bool", TokenKind::kKwBool},
      {"char", TokenKind::kKwChar},         {"short", TokenKind::kKwShort},
      {"int", TokenKind::kKwInt},           {"long", TokenKind::kKwLong},
      {"double", TokenKind::kKwDouble},     {"unsigned", TokenKind::kKwUnsigned},
      {"struct", TokenKind::kKwStruct},     {"static", TokenKind::kKwStatic},
      {"const", TokenKind::kKwConst},       {"extern", TokenKind::kKwExtern},
      {"if", TokenKind::kKwIf},             {"else", TokenKind::kKwElse},
      {"switch", TokenKind::kKwSwitch},     {"case", TokenKind::kKwCase},
      {"default", TokenKind::kKwDefault},   {"while", TokenKind::kKwWhile},
      {"do", TokenKind::kKwDo},             {"for", TokenKind::kKwFor},
      {"return", TokenKind::kKwReturn},     {"break", TokenKind::kKwBreak},
      {"continue", TokenKind::kKwContinue}, {"true", TokenKind::kKwTrue},
      {"false", TokenKind::kKwFalse},       {"NULL", TokenKind::kKwNull},
  };
  return *kMap;
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of file";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kIntLiteral:
      return "integer literal";
    case TokenKind::kFloatLiteral:
      return "float literal";
    case TokenKind::kStringLiteral:
      return "string literal";
    case TokenKind::kCharLiteral:
      return "char literal";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kAssign:
      return "'='";
    default:
      return "token";
  }
}

Lexer::Lexer(std::string_view source, std::string file_name, DiagnosticEngine* diags)
    : source_(source), file_name_(std::move(file_name)), diags_(diags) {}

char Lexer::Peek(size_t offset) const {
  if (pos_ + offset >= source_.size()) {
    return '\0';
  }
  return source_[pos_ + offset];
}

char Lexer::Advance() {
  char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::Match(char expected) {
  if (AtEnd() || source_[pos_] != expected) {
    return false;
  }
  Advance();
  return true;
}

SourceLoc Lexer::CurrentLoc() const { return SourceLoc{file_name_, line_, column_}; }

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      Advance();
    } else if (c == '/' && Peek(1) == '/') {
      while (!AtEnd() && Peek() != '\n') {
        Advance();
      }
    } else if (c == '/' && Peek(1) == '*') {
      SourceLoc start = CurrentLoc();
      Advance();
      Advance();
      bool closed = false;
      while (!AtEnd()) {
        if (Peek() == '*' && Peek(1) == '/') {
          Advance();
          Advance();
          closed = true;
          break;
        }
        Advance();
      }
      if (!closed) {
        diags_->Error(start, "unterminated block comment");
      }
    } else {
      break;
    }
  }
}

Token Lexer::MakeToken(TokenKind kind, std::string text) {
  Token token;
  token.kind = kind;
  token.text = std::move(text);
  return token;
}

Token Lexer::LexIdentifierOrKeyword() {
  std::string text;
  while (!AtEnd() &&
         (std::isalnum(static_cast<unsigned char>(Peek())) != 0 || Peek() == '_')) {
    text.push_back(Advance());
  }
  auto it = KeywordMap().find(text);
  if (it != KeywordMap().end()) {
    return MakeToken(it->second, std::move(text));
  }
  return MakeToken(TokenKind::kIdentifier, std::move(text));
}

Token Lexer::LexNumber() {
  std::string text;
  bool is_float = false;
  bool is_hex = false;
  if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
    is_hex = true;
    text.push_back(Advance());
    text.push_back(Advance());
    while (!AtEnd() && std::isxdigit(static_cast<unsigned char>(Peek())) != 0) {
      text.push_back(Advance());
    }
  } else {
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
      text.push_back(Advance());
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))) != 0) {
      is_float = true;
      text.push_back(Advance());
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        text.push_back(Advance());
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      char next = Peek(1);
      char next2 = Peek(2);
      if (std::isdigit(static_cast<unsigned char>(next)) != 0 ||
          ((next == '+' || next == '-') && std::isdigit(static_cast<unsigned char>(next2)) != 0)) {
        is_float = true;
        text.push_back(Advance());
        if (Peek() == '+' || Peek() == '-') {
          text.push_back(Advance());
        }
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
          text.push_back(Advance());
        }
      }
    }
  }
  // Swallow C integer suffixes (L, UL, LL ...) without recording them; MiniC
  // treats all integer literals as 64-bit signed values.
  while (Peek() == 'L' || Peek() == 'l' || Peek() == 'U' || Peek() == 'u') {
    Advance();
  }

  Token token;
  if (is_float) {
    token = MakeToken(TokenKind::kFloatLiteral, text);
    token.float_value = std::strtod(text.c_str(), nullptr);
  } else {
    token = MakeToken(TokenKind::kIntLiteral, text);
    token.int_value =
        static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, is_hex ? 16 : 10));
  }
  return token;
}

Token Lexer::LexString() {
  SourceLoc start = CurrentLoc();
  Advance();  // opening quote
  std::string value;
  while (!AtEnd() && Peek() != '"') {
    char c = Advance();
    if (c == '\\' && !AtEnd()) {
      char esc = Advance();
      switch (esc) {
        case 'n':
          value.push_back('\n');
          break;
        case 't':
          value.push_back('\t');
          break;
        case 'r':
          value.push_back('\r');
          break;
        case '0':
          value.push_back('\0');
          break;
        case '\\':
          value.push_back('\\');
          break;
        case '"':
          value.push_back('"');
          break;
        default:
          value.push_back(esc);
          break;
      }
    } else {
      value.push_back(c);
    }
  }
  if (AtEnd()) {
    diags_->Error(start, "unterminated string literal");
  } else {
    Advance();  // closing quote
  }
  return MakeToken(TokenKind::kStringLiteral, std::move(value));
}

Token Lexer::LexChar() {
  SourceLoc start = CurrentLoc();
  Advance();  // opening quote
  int64_t value = 0;
  if (!AtEnd()) {
    char c = Advance();
    if (c == '\\' && !AtEnd()) {
      char esc = Advance();
      switch (esc) {
        case 'n':
          value = '\n';
          break;
        case 't':
          value = '\t';
          break;
        case '0':
          value = 0;
          break;
        case '\\':
          value = '\\';
          break;
        case '\'':
          value = '\'';
          break;
        default:
          value = esc;
          break;
      }
    } else {
      value = c;
    }
  }
  if (!Match('\'')) {
    diags_->Error(start, "unterminated character literal");
  }
  Token token = MakeToken(TokenKind::kCharLiteral, "");
  token.int_value = value;
  return token;
}

std::vector<Token> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    SkipWhitespaceAndComments();
    SourceLoc loc = CurrentLoc();
    if (AtEnd()) {
      Token eof = MakeToken(TokenKind::kEof, "");
      eof.loc = loc;
      tokens.push_back(eof);
      break;
    }
    char c = Peek();
    Token token;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      token = LexIdentifierOrKeyword();
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      token = LexNumber();
    } else if (c == '"') {
      token = LexString();
    } else if (c == '\'') {
      token = LexChar();
    } else {
      Advance();
      switch (c) {
        case '(':
          token = MakeToken(TokenKind::kLParen, "(");
          break;
        case ')':
          token = MakeToken(TokenKind::kRParen, ")");
          break;
        case '{':
          token = MakeToken(TokenKind::kLBrace, "{");
          break;
        case '}':
          token = MakeToken(TokenKind::kRBrace, "}");
          break;
        case '[':
          token = MakeToken(TokenKind::kLBracket, "[");
          break;
        case ']':
          token = MakeToken(TokenKind::kRBracket, "]");
          break;
        case ';':
          token = MakeToken(TokenKind::kSemicolon, ";");
          break;
        case ',':
          token = MakeToken(TokenKind::kComma, ",");
          break;
        case ':':
          token = MakeToken(TokenKind::kColon, ":");
          break;
        case '?':
          token = MakeToken(TokenKind::kQuestion, "?");
          break;
        case '.':
          token = MakeToken(TokenKind::kDot, ".");
          break;
        case '~':
          token = MakeToken(TokenKind::kTilde, "~");
          break;
        case '^':
          token = MakeToken(TokenKind::kCaret, "^");
          break;
        case '+':
          if (Match('+')) {
            token = MakeToken(TokenKind::kPlusPlus, "++");
          } else if (Match('=')) {
            token = MakeToken(TokenKind::kPlusAssign, "+=");
          } else {
            token = MakeToken(TokenKind::kPlus, "+");
          }
          break;
        case '-':
          if (Match('>')) {
            token = MakeToken(TokenKind::kArrow, "->");
          } else if (Match('-')) {
            token = MakeToken(TokenKind::kMinusMinus, "--");
          } else if (Match('=')) {
            token = MakeToken(TokenKind::kMinusAssign, "-=");
          } else {
            token = MakeToken(TokenKind::kMinus, "-");
          }
          break;
        case '*':
          token = Match('=') ? MakeToken(TokenKind::kStarAssign, "*=")
                             : MakeToken(TokenKind::kStar, "*");
          break;
        case '/':
          token = Match('=') ? MakeToken(TokenKind::kSlashAssign, "/=")
                             : MakeToken(TokenKind::kSlash, "/");
          break;
        case '%':
          token = MakeToken(TokenKind::kPercent, "%");
          break;
        case '&':
          token = Match('&') ? MakeToken(TokenKind::kAmpAmp, "&&")
                             : MakeToken(TokenKind::kAmp, "&");
          break;
        case '|':
          token = Match('|') ? MakeToken(TokenKind::kPipePipe, "||")
                             : MakeToken(TokenKind::kPipe, "|");
          break;
        case '!':
          token = Match('=') ? MakeToken(TokenKind::kNotEqual, "!=")
                             : MakeToken(TokenKind::kBang, "!");
          break;
        case '=':
          token = Match('=') ? MakeToken(TokenKind::kEqual, "==")
                             : MakeToken(TokenKind::kAssign, "=");
          break;
        case '<':
          if (Match('=')) {
            token = MakeToken(TokenKind::kLessEqual, "<=");
          } else if (Match('<')) {
            token = MakeToken(TokenKind::kShiftLeft, "<<");
          } else {
            token = MakeToken(TokenKind::kLess, "<");
          }
          break;
        case '>':
          if (Match('=')) {
            token = MakeToken(TokenKind::kGreaterEqual, ">=");
          } else if (Match('>')) {
            token = MakeToken(TokenKind::kShiftRight, ">>");
          } else {
            token = MakeToken(TokenKind::kGreater, ">");
          }
          break;
        default:
          diags_->Error(loc, std::string("unexpected character '") + c + "'");
          continue;
      }
    }
    token.loc = loc;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace spex
