#include "src/lang/parser.h"

#include <cassert>
#include <functional>

#include "src/lang/lexer.h"

namespace spex {

namespace {

// Binary operator precedence, higher binds tighter. Assignment and ternary
// are handled outside this table.
int BinaryPrecedence(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPipePipe:
      return 1;
    case TokenKind::kAmpAmp:
      return 2;
    case TokenKind::kPipe:
      return 3;
    case TokenKind::kCaret:
      return 4;
    case TokenKind::kAmp:
      return 5;
    case TokenKind::kEqual:
    case TokenKind::kNotEqual:
      return 6;
    case TokenKind::kLess:
    case TokenKind::kLessEqual:
    case TokenKind::kGreater:
    case TokenKind::kGreaterEqual:
      return 7;
    case TokenKind::kShiftLeft:
    case TokenKind::kShiftRight:
      return 8;
    case TokenKind::kPlus:
    case TokenKind::kMinus:
      return 9;
    case TokenKind::kStar:
    case TokenKind::kSlash:
    case TokenKind::kPercent:
      return 10;
    default:
      return -1;
  }
}

BinaryOp TokenToBinaryOp(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPipePipe:
      return BinaryOp::kLogicalOr;
    case TokenKind::kAmpAmp:
      return BinaryOp::kLogicalAnd;
    case TokenKind::kPipe:
      return BinaryOp::kBitOr;
    case TokenKind::kCaret:
      return BinaryOp::kBitXor;
    case TokenKind::kAmp:
      return BinaryOp::kBitAnd;
    case TokenKind::kEqual:
      return BinaryOp::kEq;
    case TokenKind::kNotEqual:
      return BinaryOp::kNe;
    case TokenKind::kLess:
      return BinaryOp::kLt;
    case TokenKind::kLessEqual:
      return BinaryOp::kLe;
    case TokenKind::kGreater:
      return BinaryOp::kGt;
    case TokenKind::kGreaterEqual:
      return BinaryOp::kGe;
    case TokenKind::kShiftLeft:
      return BinaryOp::kShl;
    case TokenKind::kShiftRight:
      return BinaryOp::kShr;
    case TokenKind::kPlus:
      return BinaryOp::kAdd;
    case TokenKind::kMinus:
      return BinaryOp::kSub;
    case TokenKind::kStar:
      return BinaryOp::kMul;
    case TokenKind::kSlash:
      return BinaryOp::kDiv;
    case TokenKind::kPercent:
      return BinaryOp::kRem;
    default:
      assert(false && "not a binary operator token");
      return BinaryOp::kAdd;
  }
}

bool IsTypeKeyword(TokenKind kind) {
  switch (kind) {
    case TokenKind::kKwVoid:
    case TokenKind::kKwBool:
    case TokenKind::kKwChar:
    case TokenKind::kKwShort:
    case TokenKind::kKwInt:
    case TokenKind::kKwLong:
    case TokenKind::kKwDouble:
    case TokenKind::kKwUnsigned:
    case TokenKind::kKwStruct:
      return true;
    default:
      return false;
  }
}

ExprPtr MakeIntLiteral(int64_t value, SourceLoc loc) {
  auto expr = std::make_unique<Expr>();
  expr->kind = ExprKind::kIntLiteral;
  expr->int_value = value;
  expr->loc = std::move(loc);
  return expr;
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, std::string file_name, DiagnosticEngine* diags)
    : tokens_(std::move(tokens)), file_name_(std::move(file_name)), diags_(diags) {
  assert(!tokens_.empty() && tokens_.back().Is(TokenKind::kEof));
}

const Token& Parser::Peek(size_t offset) const {
  size_t index = pos_ + offset;
  if (index >= tokens_.size()) {
    return tokens_.back();
  }
  return tokens_[index];
}

const Token& Parser::Advance() {
  const Token& token = Peek();
  if (pos_ + 1 < tokens_.size()) {
    ++pos_;
  }
  return token;
}

bool Parser::Match(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

const Token& Parser::Expect(TokenKind kind, const char* context) {
  if (Check(kind)) {
    return Advance();
  }
  diags_->Error(Peek().loc, std::string("expected ") + TokenKindName(kind) + " " + context +
                                ", found '" + Peek().text + "'");
  return Peek();
}

void Parser::SynchronizeToplevel() {
  while (!Check(TokenKind::kEof)) {
    if (Match(TokenKind::kSemicolon)) {
      return;
    }
    if (Check(TokenKind::kRBrace)) {
      Advance();
      return;
    }
    Advance();
  }
}

void Parser::SynchronizeStatement() {
  while (!Check(TokenKind::kEof) && !Check(TokenKind::kRBrace)) {
    if (Match(TokenKind::kSemicolon)) {
      return;
    }
    Advance();
  }
}

bool Parser::AtTypeStart() const {
  if (IsTypeKeyword(Peek().kind)) {
    return true;
  }
  // A previously declared struct name used directly as a type (C++-style).
  return Peek().Is(TokenKind::kIdentifier) && struct_names_.count(Peek().text) > 0;
}

bool Parser::LooksLikeDeclaration() const {
  if (Peek().Is(TokenKind::kKwStatic) || Peek().Is(TokenKind::kKwConst) ||
      Peek().Is(TokenKind::kKwExtern)) {
    return true;
  }
  if (IsTypeKeyword(Peek().kind)) {
    return true;
  }
  // `StructName identifier` or `StructName* identifier`.
  if (Peek().Is(TokenKind::kIdentifier) && struct_names_.count(Peek().text) > 0) {
    const Token& next = Peek(1);
    return next.Is(TokenKind::kIdentifier) || next.Is(TokenKind::kStar);
  }
  return false;
}

AstType Parser::ParseType() {
  AstType type;
  if (Match(TokenKind::kKwConst)) {
    // `const` is accepted and discarded; MiniC has no const semantics.
  }
  if (Match(TokenKind::kKwUnsigned)) {
    type.is_unsigned = true;
    type.kind = AstTypeKind::kInt;  // Bare `unsigned`.
  }
  switch (Peek().kind) {
    case TokenKind::kKwVoid:
      Advance();
      type.kind = AstTypeKind::kVoid;
      break;
    case TokenKind::kKwBool:
      Advance();
      type.kind = AstTypeKind::kBool;
      break;
    case TokenKind::kKwChar:
      Advance();
      type.kind = AstTypeKind::kChar;
      break;
    case TokenKind::kKwShort:
      Advance();
      type.kind = AstTypeKind::kShort;
      break;
    case TokenKind::kKwInt:
      Advance();
      type.kind = AstTypeKind::kInt;
      break;
    case TokenKind::kKwLong:
      Advance();
      type.kind = AstTypeKind::kLong;
      Match(TokenKind::kKwLong);  // `long long`.
      Match(TokenKind::kKwInt);   // `long int`.
      break;
    case TokenKind::kKwDouble:
      Advance();
      type.kind = AstTypeKind::kDouble;
      break;
    case TokenKind::kKwStruct: {
      Advance();
      type.kind = AstTypeKind::kStruct;
      const Token& name = Expect(TokenKind::kIdentifier, "after 'struct'");
      type.struct_name = name.text;
      break;
    }
    case TokenKind::kIdentifier:
      if (struct_names_.count(Peek().text) > 0) {
        type.kind = AstTypeKind::kStruct;
        type.struct_name = Advance().text;
        break;
      }
      [[fallthrough]];
    default:
      if (!type.is_unsigned) {
        diags_->Error(Peek().loc, "expected type, found '" + Peek().text + "'");
      }
      break;
  }
  if (Match(TokenKind::kKwConst)) {
    // `int const` — also discarded.
  }
  while (Match(TokenKind::kStar)) {
    AstType pointer;
    pointer.kind = AstTypeKind::kPointer;
    pointer.pointee = std::make_shared<AstType>(std::move(type));
    type = std::move(pointer);
    Match(TokenKind::kKwConst);
  }
  return type;
}

std::unique_ptr<StructDecl> Parser::ParseStructDecl() {
  SourceLoc loc = Peek().loc;
  Expect(TokenKind::kKwStruct, "at struct declaration");
  auto decl = std::make_unique<StructDecl>();
  decl->loc = loc;
  decl->name = Expect(TokenKind::kIdentifier, "as struct name").text;
  struct_names_.insert(decl->name);
  Expect(TokenKind::kLBrace, "to open struct body");
  while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEof)) {
    StructField field;
    field.loc = Peek().loc;
    field.type = ParseType();
    field.name = Expect(TokenKind::kIdentifier, "as field name").text;
    if (Match(TokenKind::kLBracket)) {
      const Token& size = Expect(TokenKind::kIntLiteral, "as field array size");
      field.has_array_size = true;
      field.array_size = size.int_value;
      Expect(TokenKind::kRBracket, "to close field array size");
    }
    Expect(TokenKind::kSemicolon, "after struct field");
    decl->fields.push_back(std::move(field));
  }
  Expect(TokenKind::kRBrace, "to close struct body");
  Expect(TokenKind::kSemicolon, "after struct declaration");
  return decl;
}

std::unique_ptr<FunctionDecl> Parser::ParseFunctionRest(AstType return_type, std::string name,
                                                        bool is_static, SourceLoc loc) {
  auto fn = std::make_unique<FunctionDecl>();
  fn->return_type = std::move(return_type);
  fn->name = std::move(name);
  fn->is_static = is_static;
  fn->loc = std::move(loc);
  Expect(TokenKind::kLParen, "to open parameter list");
  if (!Check(TokenKind::kRParen)) {
    if (Check(TokenKind::kKwVoid) && Peek(1).Is(TokenKind::kRParen)) {
      Advance();  // `(void)`
    } else {
      while (true) {
        ParamDecl param;
        param.loc = Peek().loc;
        param.type = ParseType();
        if (Check(TokenKind::kIdentifier)) {
          param.name = Advance().text;
        }
        fn->params.push_back(std::move(param));
        if (!Match(TokenKind::kComma)) {
          break;
        }
      }
    }
  }
  Expect(TokenKind::kRParen, "to close parameter list");
  if (Match(TokenKind::kSemicolon)) {
    return fn;  // Prototype only.
  }
  fn->body = ParseBlock();
  return fn;
}

std::unique_ptr<VarDecl> Parser::ParseVarDeclRest(AstType type, std::string name, bool is_static,
                                                  SourceLoc loc) {
  auto decl = std::make_unique<VarDecl>();
  decl->type = std::move(type);
  decl->name = std::move(name);
  decl->is_static = is_static;
  decl->loc = std::move(loc);
  if (Match(TokenKind::kLBracket)) {
    decl->has_array_size = true;
    if (Check(TokenKind::kIntLiteral)) {
      decl->array_size = Advance().int_value;
    } else {
      decl->array_size = -1;  // Size comes from the initializer.
    }
    Expect(TokenKind::kRBracket, "to close array size");
  }
  if (Match(TokenKind::kAssign)) {
    decl->init = ParseInitializer();
  }
  Expect(TokenKind::kSemicolon, "after variable declaration");
  return decl;
}

std::unique_ptr<TranslationUnit> Parser::ParseTranslationUnit() {
  auto unit = std::make_unique<TranslationUnit>();
  unit->file_name = file_name_;
  while (!Check(TokenKind::kEof)) {
    size_t before = pos_;
    bool is_static = false;
    while (true) {
      if (Match(TokenKind::kKwStatic)) {
        is_static = true;
      } else if (Match(TokenKind::kKwExtern) || Match(TokenKind::kKwConst)) {
        // Accepted, no semantic effect in MiniC.
      } else {
        break;
      }
    }
    if (Check(TokenKind::kKwStruct) && Peek(1).Is(TokenKind::kIdentifier) &&
        Peek(2).Is(TokenKind::kLBrace)) {
      unit->structs.push_back(ParseStructDecl());
      continue;
    }
    if (!AtTypeStart()) {
      diags_->Error(Peek().loc, "expected declaration, found '" + Peek().text + "'");
      SynchronizeToplevel();
      continue;
    }
    SourceLoc loc = Peek().loc;
    AstType type = ParseType();
    const Token& name_token = Expect(TokenKind::kIdentifier, "as declaration name");
    std::string name = name_token.text;
    if (Check(TokenKind::kLParen)) {
      unit->functions.push_back(ParseFunctionRest(std::move(type), std::move(name), is_static, loc));
    } else {
      unit->globals.push_back(ParseVarDeclRest(std::move(type), std::move(name), is_static, loc));
    }
    if (pos_ == before) {
      // Defensive: guarantee forward progress on malformed input.
      Advance();
    }
  }
  return unit;
}

StmtPtr Parser::ParseBlock() {
  auto block = std::make_unique<Stmt>();
  block->kind = StmtKind::kBlock;
  block->loc = Peek().loc;
  Expect(TokenKind::kLBrace, "to open block");
  while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEof)) {
    size_t before = pos_;
    block->body.push_back(ParseStatement());
    if (pos_ == before) {
      Advance();
    }
  }
  Expect(TokenKind::kRBrace, "to close block");
  return block;
}

StmtPtr Parser::ParseStatement() {
  switch (Peek().kind) {
    case TokenKind::kLBrace:
      return ParseBlock();
    case TokenKind::kKwIf:
      return ParseIf();
    case TokenKind::kKwSwitch:
      return ParseSwitch();
    case TokenKind::kKwWhile:
      return ParseWhile();
    case TokenKind::kKwDo:
      return ParseDoWhile();
    case TokenKind::kKwFor:
      return ParseFor();
    case TokenKind::kKwReturn: {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kReturn;
      stmt->loc = Advance().loc;
      if (!Check(TokenKind::kSemicolon)) {
        stmt->expr = ParseExpr();
      }
      Expect(TokenKind::kSemicolon, "after return");
      return stmt;
    }
    case TokenKind::kKwBreak: {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kBreak;
      stmt->loc = Advance().loc;
      Expect(TokenKind::kSemicolon, "after break");
      return stmt;
    }
    case TokenKind::kKwContinue: {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kContinue;
      stmt->loc = Advance().loc;
      Expect(TokenKind::kSemicolon, "after continue");
      return stmt;
    }
    case TokenKind::kSemicolon: {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kBlock;  // Empty statement.
      stmt->loc = Advance().loc;
      return stmt;
    }
    default:
      break;
  }
  if (LooksLikeDeclaration()) {
    bool is_static = false;
    while (Match(TokenKind::kKwStatic)) {
      is_static = true;
    }
    SourceLoc loc = Peek().loc;
    AstType type = ParseType();
    std::string name = Expect(TokenKind::kIdentifier, "as local variable name").text;
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDecl;
    stmt->loc = loc;
    stmt->decl = ParseVarDeclRest(std::move(type), std::move(name), is_static, loc);
    return stmt;
  }
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kExpr;
  stmt->loc = Peek().loc;
  stmt->expr = ParseExpr();
  Expect(TokenKind::kSemicolon, "after expression");
  return stmt;
}

StmtPtr Parser::ParseIf() {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kIf;
  stmt->loc = Advance().loc;  // 'if'
  Expect(TokenKind::kLParen, "after 'if'");
  stmt->expr = ParseExpr();
  Expect(TokenKind::kRParen, "after if condition");
  stmt->then_branch = ParseStatement();
  if (Match(TokenKind::kKwElse)) {
    stmt->else_branch = ParseStatement();
  }
  return stmt;
}

StmtPtr Parser::ParseSwitch() {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kSwitch;
  stmt->loc = Advance().loc;  // 'switch'
  Expect(TokenKind::kLParen, "after 'switch'");
  stmt->expr = ParseExpr();
  Expect(TokenKind::kRParen, "after switch subject");
  Expect(TokenKind::kLBrace, "to open switch body");
  while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEof)) {
    SwitchCase switch_case;
    switch_case.loc = Peek().loc;
    // Collect consecutive labels that share a body.
    bool saw_label = false;
    while (true) {
      if (Check(TokenKind::kKwCase)) {
        Advance();
        bool negative = Match(TokenKind::kMinus);
        const Token& value = Expect(TokenKind::kIntLiteral, "as case label");
        switch_case.values.push_back(negative ? -value.int_value : value.int_value);
        Expect(TokenKind::kColon, "after case label");
        saw_label = true;
      } else if (Check(TokenKind::kKwDefault)) {
        Advance();
        Expect(TokenKind::kColon, "after 'default'");
        switch_case.is_default = true;
        saw_label = true;
      } else {
        break;
      }
    }
    if (!saw_label) {
      diags_->Error(Peek().loc, "expected 'case' or 'default' in switch body");
      SynchronizeStatement();
      continue;
    }
    while (!Check(TokenKind::kKwCase) && !Check(TokenKind::kKwDefault) &&
           !Check(TokenKind::kRBrace) && !Check(TokenKind::kEof)) {
      size_t before = pos_;
      switch_case.body.push_back(ParseStatement());
      if (pos_ == before) {
        Advance();
      }
    }
    stmt->cases.push_back(std::move(switch_case));
  }
  Expect(TokenKind::kRBrace, "to close switch body");
  return stmt;
}

StmtPtr Parser::ParseWhile() {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kWhile;
  stmt->loc = Advance().loc;  // 'while'
  Expect(TokenKind::kLParen, "after 'while'");
  stmt->expr = ParseExpr();
  Expect(TokenKind::kRParen, "after while condition");
  stmt->loop_body = ParseStatement();
  return stmt;
}

StmtPtr Parser::ParseDoWhile() {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kDoWhile;
  stmt->loc = Advance().loc;  // 'do'
  stmt->loop_body = ParseStatement();
  Expect(TokenKind::kKwWhile, "after do-while body");
  Expect(TokenKind::kLParen, "after 'while'");
  stmt->expr = ParseExpr();
  Expect(TokenKind::kRParen, "after do-while condition");
  Expect(TokenKind::kSemicolon, "after do-while");
  return stmt;
}

StmtPtr Parser::ParseFor() {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kFor;
  stmt->loc = Advance().loc;  // 'for'
  Expect(TokenKind::kLParen, "after 'for'");
  if (!Check(TokenKind::kSemicolon)) {
    if (LooksLikeDeclaration()) {
      SourceLoc loc = Peek().loc;
      AstType type = ParseType();
      std::string name = Expect(TokenKind::kIdentifier, "as loop variable").text;
      auto init = std::make_unique<Stmt>();
      init->kind = StmtKind::kDecl;
      init->loc = loc;
      init->decl = ParseVarDeclRest(std::move(type), std::move(name), false, loc);
      stmt->for_init = std::move(init);
    } else {
      auto init = std::make_unique<Stmt>();
      init->kind = StmtKind::kExpr;
      init->loc = Peek().loc;
      init->expr = ParseExpr();
      Expect(TokenKind::kSemicolon, "after for-init");
      stmt->for_init = std::move(init);
    }
  } else {
    Advance();  // ';'
  }
  if (!Check(TokenKind::kSemicolon)) {
    stmt->expr = ParseExpr();
  }
  Expect(TokenKind::kSemicolon, "after for-condition");
  if (!Check(TokenKind::kRParen)) {
    stmt->for_step = ParseExpr();
  }
  Expect(TokenKind::kRParen, "to close for header");
  stmt->loop_body = ParseStatement();
  return stmt;
}

ExprPtr Parser::ParseExpr() { return ParseAssignment(); }

ExprPtr Parser::ParseAssignment() {
  ExprPtr lhs = ParseTernary();
  TokenKind kind = Peek().kind;
  if (kind == TokenKind::kAssign || kind == TokenKind::kPlusAssign ||
      kind == TokenKind::kMinusAssign || kind == TokenKind::kStarAssign ||
      kind == TokenKind::kSlashAssign) {
    SourceLoc loc = Advance().loc;
    ExprPtr rhs = ParseAssignment();  // Right-associative.
    if (kind != TokenKind::kAssign) {
      // Desugar `a op= b` into `a = a op b`. The lowering re-evaluates the
      // lhs; MiniC lvalues have no side effects so this is sound.
      auto op_expr = std::make_unique<Expr>();
      op_expr->kind = ExprKind::kBinary;
      op_expr->loc = loc;
      switch (kind) {
        case TokenKind::kPlusAssign:
          op_expr->binary_op = BinaryOp::kAdd;
          break;
        case TokenKind::kMinusAssign:
          op_expr->binary_op = BinaryOp::kSub;
          break;
        case TokenKind::kStarAssign:
          op_expr->binary_op = BinaryOp::kMul;
          break;
        default:
          op_expr->binary_op = BinaryOp::kDiv;
          break;
      }
      // Clone the lhs structurally for the re-read. Only simple lvalues
      // (identifier / member / index / deref) occur here.
      std::function<ExprPtr(const Expr&)> clone = [&clone](const Expr& e) -> ExprPtr {
        auto copy = std::make_unique<Expr>();
        copy->kind = e.kind;
        copy->loc = e.loc;
        copy->int_value = e.int_value;
        copy->float_value = e.float_value;
        copy->string_value = e.string_value;
        copy->name = e.name;
        copy->unary_op = e.unary_op;
        copy->binary_op = e.binary_op;
        copy->is_arrow = e.is_arrow;
        copy->cast_type = e.cast_type;
        if (e.lhs) {
          copy->lhs = clone(*e.lhs);
        }
        if (e.rhs) {
          copy->rhs = clone(*e.rhs);
        }
        if (e.third) {
          copy->third = clone(*e.third);
        }
        for (const auto& arg : e.arguments) {
          copy->arguments.push_back(clone(*arg));
        }
        return copy;
      };
      op_expr->lhs = clone(*lhs);
      op_expr->rhs = std::move(rhs);
      rhs = std::move(op_expr);
    }
    auto assign = std::make_unique<Expr>();
    assign->kind = ExprKind::kAssign;
    assign->loc = loc;
    assign->lhs = std::move(lhs);
    assign->rhs = std::move(rhs);
    return assign;
  }
  return lhs;
}

ExprPtr Parser::ParseTernary() {
  ExprPtr cond = ParseBinary(1);
  if (Match(TokenKind::kQuestion)) {
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::kTernary;
    expr->loc = cond->loc;
    expr->lhs = std::move(cond);
    expr->rhs = ParseAssignment();
    Expect(TokenKind::kColon, "in ternary expression");
    expr->third = ParseAssignment();
    return expr;
  }
  return cond;
}

ExprPtr Parser::ParseBinary(int min_precedence) {
  ExprPtr lhs = ParseUnary();
  while (true) {
    int precedence = BinaryPrecedence(Peek().kind);
    if (precedence < min_precedence) {
      return lhs;
    }
    TokenKind op_token = Peek().kind;
    SourceLoc loc = Advance().loc;
    ExprPtr rhs = ParseBinary(precedence + 1);
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::kBinary;
    expr->binary_op = TokenToBinaryOp(op_token);
    expr->loc = loc;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    lhs = std::move(expr);
  }
}

ExprPtr Parser::ParseUnary() {
  SourceLoc loc = Peek().loc;
  switch (Peek().kind) {
    case TokenKind::kMinus: {
      Advance();
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUnary;
      expr->unary_op = UnaryOp::kNegate;
      expr->loc = loc;
      expr->lhs = ParseUnary();
      return expr;
    }
    case TokenKind::kBang: {
      Advance();
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUnary;
      expr->unary_op = UnaryOp::kNot;
      expr->loc = loc;
      expr->lhs = ParseUnary();
      return expr;
    }
    case TokenKind::kTilde: {
      Advance();
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUnary;
      expr->unary_op = UnaryOp::kBitNot;
      expr->loc = loc;
      expr->lhs = ParseUnary();
      return expr;
    }
    case TokenKind::kStar: {
      Advance();
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUnary;
      expr->unary_op = UnaryOp::kDeref;
      expr->loc = loc;
      expr->lhs = ParseUnary();
      return expr;
    }
    case TokenKind::kAmp: {
      Advance();
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUnary;
      expr->unary_op = UnaryOp::kAddressOf;
      expr->loc = loc;
      expr->lhs = ParseUnary();
      return expr;
    }
    case TokenKind::kPlusPlus:
    case TokenKind::kMinusMinus: {
      bool increment = Peek().Is(TokenKind::kPlusPlus);
      Advance();
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUnary;
      expr->unary_op = increment ? UnaryOp::kPreInc : UnaryOp::kPreDec;
      expr->loc = loc;
      expr->lhs = ParseUnary();
      return expr;
    }
    case TokenKind::kLParen: {
      // Disambiguate a cast `(type) expr` from a parenthesized expression.
      const Token& next = Peek(1);
      bool is_cast = IsTypeKeyword(next.kind) ||
                     (next.Is(TokenKind::kIdentifier) && struct_names_.count(next.text) > 0 &&
                      (Peek(2).Is(TokenKind::kStar) || Peek(2).Is(TokenKind::kRParen)));
      if (is_cast) {
        Advance();  // '('
        AstType type = ParseType();
        Expect(TokenKind::kRParen, "to close cast");
        auto expr = std::make_unique<Expr>();
        expr->kind = ExprKind::kCast;
        expr->cast_type = std::move(type);
        expr->loc = loc;
        expr->lhs = ParseUnary();
        return expr;
      }
      return ParsePostfix();
    }
    default:
      return ParsePostfix();
  }
}

ExprPtr Parser::ParsePostfix() {
  ExprPtr expr = ParsePrimary();
  while (true) {
    if (Check(TokenKind::kLParen) && expr->kind == ExprKind::kIdentifier) {
      Advance();
      auto call = std::make_unique<Expr>();
      call->kind = ExprKind::kCall;
      call->name = expr->name;
      call->loc = expr->loc;
      if (!Check(TokenKind::kRParen)) {
        while (true) {
          call->arguments.push_back(ParseAssignment());
          if (!Match(TokenKind::kComma)) {
            break;
          }
        }
      }
      Expect(TokenKind::kRParen, "to close call arguments");
      expr = std::move(call);
    } else if (Check(TokenKind::kDot) || Check(TokenKind::kArrow)) {
      bool arrow = Peek().Is(TokenKind::kArrow);
      SourceLoc loc = Advance().loc;
      auto member = std::make_unique<Expr>();
      member->kind = ExprKind::kMember;
      member->is_arrow = arrow;
      member->loc = loc;
      member->name = Expect(TokenKind::kIdentifier, "as member name").text;
      member->lhs = std::move(expr);
      expr = std::move(member);
    } else if (Check(TokenKind::kLBracket)) {
      SourceLoc loc = Advance().loc;
      auto index = std::make_unique<Expr>();
      index->kind = ExprKind::kIndex;
      index->loc = loc;
      index->lhs = std::move(expr);
      index->rhs = ParseExpr();
      Expect(TokenKind::kRBracket, "to close index");
      expr = std::move(index);
    } else if (Check(TokenKind::kPlusPlus) || Check(TokenKind::kMinusMinus)) {
      // Postfix ++/-- is parsed as its prefix form: MiniC programs never use
      // the value of a postfix increment.
      bool increment = Peek().Is(TokenKind::kPlusPlus);
      SourceLoc loc = Advance().loc;
      auto unary = std::make_unique<Expr>();
      unary->kind = ExprKind::kUnary;
      unary->unary_op = increment ? UnaryOp::kPreInc : UnaryOp::kPreDec;
      unary->loc = loc;
      unary->lhs = std::move(expr);
      expr = std::move(unary);
    } else {
      return expr;
    }
  }
}

ExprPtr Parser::ParsePrimary() {
  SourceLoc loc = Peek().loc;
  switch (Peek().kind) {
    case TokenKind::kIntLiteral: {
      const Token& token = Advance();
      return MakeIntLiteral(token.int_value, loc);
    }
    case TokenKind::kCharLiteral: {
      const Token& token = Advance();
      return MakeIntLiteral(token.int_value, loc);
    }
    case TokenKind::kFloatLiteral: {
      const Token& token = Advance();
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kFloatLiteral;
      expr->float_value = token.float_value;
      expr->loc = loc;
      return expr;
    }
    case TokenKind::kStringLiteral: {
      const Token& token = Advance();
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kStringLiteral;
      expr->string_value = token.text;
      expr->loc = loc;
      return expr;
    }
    case TokenKind::kKwTrue:
      Advance();
      return MakeIntLiteral(1, loc);
    case TokenKind::kKwFalse:
      Advance();
      return MakeIntLiteral(0, loc);
    case TokenKind::kKwNull: {
      Advance();
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kNullLiteral;
      expr->loc = loc;
      return expr;
    }
    case TokenKind::kIdentifier: {
      const Token& token = Advance();
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kIdentifier;
      expr->name = token.text;
      expr->loc = loc;
      return expr;
    }
    case TokenKind::kLParen: {
      Advance();
      ExprPtr inner = ParseExpr();
      Expect(TokenKind::kRParen, "to close parenthesized expression");
      return inner;
    }
    default:
      diags_->Error(loc, "expected expression, found '" + Peek().text + "'");
      Advance();
      return MakeIntLiteral(0, loc);
  }
}

ExprPtr Parser::ParseInitializer() {
  if (Check(TokenKind::kLBrace)) {
    SourceLoc loc = Advance().loc;
    auto list = std::make_unique<Expr>();
    list->kind = ExprKind::kInitList;
    list->loc = loc;
    if (!Check(TokenKind::kRBrace)) {
      while (true) {
        list->arguments.push_back(ParseInitializer());
        if (!Match(TokenKind::kComma)) {
          break;
        }
        if (Check(TokenKind::kRBrace)) {
          break;  // Trailing comma.
        }
      }
    }
    Expect(TokenKind::kRBrace, "to close initializer list");
    return list;
  }
  return ParseAssignment();
}

std::unique_ptr<TranslationUnit> ParseSource(std::string_view source, std::string file_name,
                                             DiagnosticEngine* diags) {
  Lexer lexer(source, file_name, diags);
  Parser parser(lexer.Tokenize(), file_name, diags);
  return parser.ParseTranslationUnit();
}

}  // namespace spex
