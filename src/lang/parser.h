// Recursive-descent parser for MiniC.
#ifndef SPEX_LANG_PARSER_H_
#define SPEX_LANG_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/token.h"
#include "src/support/diagnostics.h"

namespace spex {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string file_name, DiagnosticEngine* diags);

  // Parses the whole token stream. Always returns a TranslationUnit; on
  // errors it contains whatever parsed cleanly and the DiagnosticEngine
  // carries the details.
  std::unique_ptr<TranslationUnit> ParseTranslationUnit();

 private:
  const Token& Peek(size_t offset = 0) const;
  const Token& Advance();
  bool Check(TokenKind kind) const { return Peek().Is(kind); }
  bool Match(TokenKind kind);
  const Token& Expect(TokenKind kind, const char* context);
  void SynchronizeToplevel();
  void SynchronizeStatement();

  bool AtTypeStart() const;
  bool LooksLikeDeclaration() const;

  AstType ParseType();
  std::unique_ptr<StructDecl> ParseStructDecl();
  std::unique_ptr<FunctionDecl> ParseFunctionRest(AstType return_type, std::string name,
                                                  bool is_static, SourceLoc loc);
  std::unique_ptr<VarDecl> ParseVarDeclRest(AstType type, std::string name, bool is_static,
                                            SourceLoc loc);

  StmtPtr ParseStatement();
  StmtPtr ParseBlock();
  StmtPtr ParseIf();
  StmtPtr ParseSwitch();
  StmtPtr ParseWhile();
  StmtPtr ParseDoWhile();
  StmtPtr ParseFor();

  ExprPtr ParseExpr();  // Full expression including assignment.
  ExprPtr ParseAssignment();
  ExprPtr ParseTernary();
  ExprPtr ParseBinary(int min_precedence);
  ExprPtr ParseUnary();
  ExprPtr ParsePostfix();
  ExprPtr ParsePrimary();
  ExprPtr ParseInitializer();

  std::vector<Token> tokens_;
  std::string file_name_;
  DiagnosticEngine* diags_;
  size_t pos_ = 0;
  std::unordered_set<std::string> struct_names_;
};

// Convenience: lex + parse a source string in one call.
std::unique_ptr<TranslationUnit> ParseSource(std::string_view source, std::string file_name,
                                             DiagnosticEngine* diags);

}  // namespace spex

#endif  // SPEX_LANG_PARSER_H_
