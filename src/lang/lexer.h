// MiniC lexer.
#ifndef SPEX_LANG_LEXER_H_
#define SPEX_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/lang/token.h"
#include "src/support/diagnostics.h"

namespace spex {

class Lexer {
 public:
  // `file_name` is recorded in every token's SourceLoc.
  Lexer(std::string_view source, std::string file_name, DiagnosticEngine* diags);

  // Tokenizes the whole input. The returned vector always ends with a kEof
  // token. Lexical errors are reported to the DiagnosticEngine and the
  // offending characters skipped.
  std::vector<Token> Tokenize();

 private:
  char Peek(size_t offset = 0) const;
  char Advance();
  bool Match(char expected);
  bool AtEnd() const { return pos_ >= source_.size(); }
  SourceLoc CurrentLoc() const;

  void SkipWhitespaceAndComments();
  Token LexIdentifierOrKeyword();
  Token LexNumber();
  Token LexString();
  Token LexChar();
  Token MakeToken(TokenKind kind, std::string text);

  std::string source_;
  std::string file_name_;
  DiagnosticEngine* diags_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t column_ = 1;
};

}  // namespace spex

#endif  // SPEX_LANG_LEXER_H_
