// Abstract syntax tree for MiniC.
//
// The AST is deliberately close to C's surface syntax: the mapping toolkits
// (structure/comparison/container, Section 2.2.1 of the paper) and the
// AST-to-IR lowering both walk it. Ownership is by unique_ptr from parents to
// children; nodes are immutable after parsing.
#ifndef SPEX_LANG_AST_H_
#define SPEX_LANG_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/support/source_loc.h"

namespace spex {

// ---------------------------------------------------------------------------
// Types (syntactic).

enum class AstTypeKind {
  kVoid,
  kBool,
  kChar,
  kShort,
  kInt,
  kLong,
  kDouble,
  kStruct,
  kPointer,
};

struct AstType {
  AstTypeKind kind = AstTypeKind::kInt;
  bool is_unsigned = false;
  std::string struct_name;            // kStruct only.
  std::shared_ptr<AstType> pointee;   // kPointer only.

  bool IsString() const {
    return kind == AstTypeKind::kPointer && pointee && pointee->kind == AstTypeKind::kChar;
  }
  bool IsInteger() const {
    return kind == AstTypeKind::kChar || kind == AstTypeKind::kShort ||
           kind == AstTypeKind::kInt || kind == AstTypeKind::kLong;
  }
  std::string ToString() const;

  static AstType MakeInt() {
    AstType t;
    t.kind = AstTypeKind::kInt;
    return t;
  }
  static AstType MakePointerTo(AstType inner) {
    AstType t;
    t.kind = AstTypeKind::kPointer;
    t.pointee = std::make_shared<AstType>(std::move(inner));
    return t;
  }
  static AstType MakeString() {
    AstType c;
    c.kind = AstTypeKind::kChar;
    return MakePointerTo(std::move(c));
  }
};

// ---------------------------------------------------------------------------
// Expressions.

enum class ExprKind {
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kNullLiteral,
  kIdentifier,
  kUnary,
  kBinary,
  kAssign,
  kTernary,
  kCall,
  kMember,   // base.field or base->field
  kIndex,    // base[index]
  kCast,     // (type) expr
  kInitList  // { e0, e1, ... } — only inside declarations.
};

enum class UnaryOp { kNegate, kNot, kBitNot, kDeref, kAddressOf, kPreInc, kPreDec };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,
  kShl,
  kShr,
  kBitAnd,
  kBitOr,
  kBitXor,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kLogicalAnd,
  kLogicalOr,
};

// True for <, <=, >, >=, ==, != — the comparison subset that feeds range and
// relationship inference.
bool IsComparisonOp(BinaryOp op);
const char* BinaryOpSpelling(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kIntLiteral;
  SourceLoc loc;

  // Literals.
  int64_t int_value = 0;
  double float_value = 0;
  std::string string_value;

  // kIdentifier: name; kCall: callee name; kMember: field name.
  std::string name;

  UnaryOp unary_op = UnaryOp::kNegate;
  BinaryOp binary_op = BinaryOp::kAdd;
  bool is_arrow = false;  // kMember: '->' vs '.'

  AstType cast_type;  // kCast.

  ExprPtr lhs;                     // kUnary operand, kBinary/kAssign lhs, kMember/kIndex base,
                                   // kTernary condition, kCast operand.
  ExprPtr rhs;                     // kBinary/kAssign rhs, kIndex index, kTernary true-expr.
  ExprPtr third;                   // kTernary false-expr.
  std::vector<ExprPtr> arguments;  // kCall args, kInitList elements.
};

// ---------------------------------------------------------------------------
// Statements.

enum class StmtKind {
  kBlock,
  kDecl,
  kExpr,
  kIf,
  kSwitch,
  kWhile,
  kDoWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct VarDecl {
  AstType type;
  std::string name;
  bool has_array_size = false;
  int64_t array_size = 0;  // Valid when has_array_size; -1 = size from initializer.
  ExprPtr init;            // May be an kInitList.
  bool is_static = false;
  SourceLoc loc;
};

struct SwitchCase {
  bool is_default = false;
  std::vector<int64_t> values;      // Constant case labels (several labels may share a body).
  std::vector<std::string> string_values;  // For switch-on-string extension; unused by parser.
  std::vector<StmtPtr> body;
  SourceLoc loc;
};

struct Stmt {
  StmtKind kind = StmtKind::kExpr;
  SourceLoc loc;

  std::vector<StmtPtr> body;  // kBlock statements.
  std::unique_ptr<VarDecl> decl;
  ExprPtr expr;  // kExpr expression, kIf/kWhile/kDoWhile condition, kReturn value,
                 // kSwitch subject, kFor condition.
  StmtPtr then_branch;
  StmtPtr else_branch;
  std::vector<SwitchCase> cases;

  // kFor only.
  StmtPtr for_init;  // A kDecl or kExpr statement, or null.
  ExprPtr for_step;
  StmtPtr loop_body;  // kWhile/kDoWhile/kFor body.
};

// ---------------------------------------------------------------------------
// Top-level declarations.

struct StructField {
  AstType type;
  std::string name;
  bool has_array_size = false;
  int64_t array_size = 0;
  SourceLoc loc;
};

struct StructDecl {
  std::string name;
  std::vector<StructField> fields;
  SourceLoc loc;

  // Index of the field with this name, or -1.
  int FieldIndex(const std::string& field_name) const;
};

struct ParamDecl {
  AstType type;
  std::string name;
  SourceLoc loc;
};

struct FunctionDecl {
  AstType return_type;
  std::string name;
  std::vector<ParamDecl> params;
  StmtPtr body;  // Null for a forward declaration / extern prototype.
  bool is_static = false;
  SourceLoc loc;
};

struct TranslationUnit {
  std::string file_name;
  std::vector<std::unique_ptr<StructDecl>> structs;
  std::vector<std::unique_ptr<VarDecl>> globals;
  std::vector<std::unique_ptr<FunctionDecl>> functions;

  const StructDecl* FindStruct(const std::string& name) const;
  const FunctionDecl* FindFunction(const std::string& name) const;
  const VarDecl* FindGlobal(const std::string& name) const;
};

}  // namespace spex

#endif  // SPEX_LANG_AST_H_
