// Token definitions for MiniC, the C-like input language of the pipeline.
//
// MiniC stands in for the C/C++ front-end (Clang in the paper): it is rich
// enough to express every code pattern the paper's analyses consume —
// struct-array configuration tables, strcmp dispatch chains, getter calls,
// guard branches, switch statements, casts, and library calls.
#ifndef SPEX_LANG_TOKEN_H_
#define SPEX_LANG_TOKEN_H_

#include <cstdint>
#include <string>

#include "src/support/source_loc.h"

namespace spex {

enum class TokenKind {
  kEof,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kCharLiteral,

  // Keywords.
  kKwVoid,
  kKwBool,
  kKwChar,
  kKwShort,
  kKwInt,
  kKwLong,
  kKwDouble,
  kKwUnsigned,
  kKwStruct,
  kKwStatic,
  kKwConst,
  kKwExtern,
  kKwIf,
  kKwElse,
  kKwSwitch,
  kKwCase,
  kKwDefault,
  kKwWhile,
  kKwDo,
  kKwFor,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  kKwTrue,
  kKwFalse,
  kKwNull,

  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemicolon,
  kComma,
  kColon,
  kQuestion,
  kDot,
  kArrow,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kAmpAmp,
  kPipe,
  kPipePipe,
  kCaret,
  kTilde,
  kBang,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kEqual,
  kNotEqual,
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kShiftLeft,
  kShiftRight,
  kPlusPlus,
  kMinusMinus,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;        // Raw spelling (identifier name, literal body).
  int64_t int_value = 0;   // For kIntLiteral / kCharLiteral.
  double float_value = 0;  // For kFloatLiteral.
  SourceLoc loc;

  bool Is(TokenKind k) const { return kind == k; }
};

// Human-readable token-kind name, used in parser diagnostics.
const char* TokenKindName(TokenKind kind);

}  // namespace spex

#endif  // SPEX_LANG_TOKEN_H_
