#include "src/lang/ast.h"

namespace spex {

std::string AstType::ToString() const {
  std::string base;
  switch (kind) {
    case AstTypeKind::kVoid:
      base = "void";
      break;
    case AstTypeKind::kBool:
      base = "bool";
      break;
    case AstTypeKind::kChar:
      base = "char";
      break;
    case AstTypeKind::kShort:
      base = "short";
      break;
    case AstTypeKind::kInt:
      base = "int";
      break;
    case AstTypeKind::kLong:
      base = "long";
      break;
    case AstTypeKind::kDouble:
      base = "double";
      break;
    case AstTypeKind::kStruct:
      base = "struct " + struct_name;
      break;
    case AstTypeKind::kPointer:
      base = (pointee ? pointee->ToString() : "void") + "*";
      break;
  }
  if (is_unsigned && kind != AstTypeKind::kPointer && kind != AstTypeKind::kStruct) {
    base = "unsigned " + base;
  }
  return base;
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kEq:
    case BinaryOp::kNe:
      return true;
    default:
      return false;
  }
}

const char* BinaryOpSpelling(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kRem:
      return "%";
    case BinaryOp::kShl:
      return "<<";
    case BinaryOp::kShr:
      return ">>";
    case BinaryOp::kBitAnd:
      return "&";
    case BinaryOp::kBitOr:
      return "|";
    case BinaryOp::kBitXor:
      return "^";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLogicalAnd:
      return "&&";
    case BinaryOp::kLogicalOr:
      return "||";
  }
  return "?";
}

int StructDecl::FieldIndex(const std::string& field_name) const {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == field_name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const StructDecl* TranslationUnit::FindStruct(const std::string& name) const {
  for (const auto& s : structs) {
    if (s->name == name) {
      return s.get();
    }
  }
  return nullptr;
}

const FunctionDecl* TranslationUnit::FindFunction(const std::string& name) const {
  // Prefer a definition over a prototype.
  const FunctionDecl* proto = nullptr;
  for (const auto& f : functions) {
    if (f->name == name) {
      if (f->body != nullptr) {
        return f.get();
      }
      proto = f.get();
    }
  }
  return proto;
}

const VarDecl* TranslationUnit::FindGlobal(const std::string& name) const {
  for (const auto& g : globals) {
    if (g->name == name) {
      return g.get();
    }
  }
  return nullptr;
}

}  // namespace spex
