#include "src/api/config_checker.h"

#include <algorithm>
#include <cctype>

#include "src/support/strings.h"

namespace spex {

const char* ViolationCategoryName(ViolationCategory category) {
  switch (category) {
    case ViolationCategory::kBasicType:
      return "type";
    case ViolationCategory::kRange:
      return "range";
    case ViolationCategory::kUnit:
      return "unit";
    case ViolationCategory::kCase:
      return "case";
    case ViolationCategory::kControlDep:
      return "control-dep";
    case ViolationCategory::kValueRel:
      return "value-rel";
    case ViolationCategory::kUnknownParam:
      return "unknown-param";
    case ViolationCategory::kDynamicReaction:
      return "dynamic";
    case ViolationCategory::kPermission:
      return "permission";
  }
  return "?";
}

std::string Violation::ToString() const {
  std::string out = file + ":" + std::to_string(line) + ": [" +
                    ViolationCategoryName(category) + "] " + param;
  if (!value.empty()) {
    out += " = " + value;
  }
  out += ": " + message;
  if (!override_note.empty()) {
    out += " [" + override_note + "]";
  }
  if (reaction.has_value()) {
    out += " | observed: " + std::string(ReactionCategoryName(*reaction));
    if (!prediction.empty()) {
      out += " — " + prediction;
    }
  }
  return out;
}

std::optional<int64_t> EffectiveConfigInt(std::string_view value) {
  auto strict = ParseInt64(value);
  if (strict.has_value()) {
    return strict;
  }
  static const char* kTruthy[] = {"on", "yes", "true", "enable", "enabled"};
  static const char* kFalsy[] = {"off", "no", "false", "disable", "disabled"};
  for (const char* word : kTruthy) {
    if (EqualsIgnoreCase(value, word)) {
      return 1;
    }
  }
  for (const char* word : kFalsy) {
    if (EqualsIgnoreCase(value, word)) {
      return 0;
    }
  }
  return std::nullopt;
}

std::optional<uint32_t> ParseOctalMode(std::string_view text) {
  text = TrimWhitespace(text);
  if (text.empty() || text.size() > 7) {
    return std::nullopt;  // Longest sensible spelling: "0007777".
  }
  uint32_t mode = 0;
  for (char c : text) {
    if (c < '0' || c > '7') {
      return std::nullopt;
    }
    mode = (mode << 3) | static_cast<uint32_t>(c - '0');
    if (mode > 07777) {
      return std::nullopt;
    }
  }
  return mode;
}

std::optional<SuffixedConfigValue> ParseSuffixedConfigValue(std::string_view text) {
  text = TrimWhitespace(text);
  size_t digits = 0;
  if (digits < text.size() && (text[digits] == '-' || text[digits] == '+')) {
    ++digits;
  }
  size_t first_digit = digits;
  while (digits < text.size() && std::isdigit(static_cast<unsigned char>(text[digits]))) {
    ++digits;
  }
  if (digits == first_digit || digits == text.size()) {
    return std::nullopt;  // No number, or no suffix.
  }
  auto magnitude = ParseInt64(text.substr(0, digits));
  if (!magnitude.has_value()) {
    return std::nullopt;
  }
  std::string suffix = ToLowerCopy(TrimWhitespace(text.substr(digits)));
  SuffixedConfigValue value;
  value.magnitude = *magnitude;
  if (suffix == "us") {
    value.time_unit = TimeUnit::kMicroseconds;
  } else if (suffix == "ms") {
    value.time_unit = TimeUnit::kMilliseconds;
  } else if (suffix == "s" || suffix == "sec") {
    value.time_unit = TimeUnit::kSeconds;
  } else if (suffix == "min") {
    value.time_unit = TimeUnit::kMinutes;
  } else if (suffix == "h") {
    value.time_unit = TimeUnit::kHours;
  } else if (suffix == "b") {
    value.size_unit = SizeUnit::kBytes;
  } else if (suffix == "k" || suffix == "kb") {
    value.size_unit = SizeUnit::kKilobytes;
  } else if (suffix == "m") {
    // Ambiguous: minutes (the name TimeUnitName itself prints for
    // TimeUnit::kMinutes) or megabytes. Record both; CheckUnitSuffix picks
    // the interpretation matching the parameter's inferred unit kind.
    value.time_unit = TimeUnit::kMinutes;
    value.size_unit = SizeUnit::kMegabytes;
  } else if (suffix == "mb") {
    value.size_unit = SizeUnit::kMegabytes;
  } else if (suffix == "g" || suffix == "gb") {
    value.size_unit = SizeUnit::kGigabytes;
  } else {
    return std::nullopt;  // Unknown suffix: plain garbage, not a unit.
  }
  return value;
}

namespace {

bool HoldsCmp(int64_t lhs, IrCmpPred pred, int64_t rhs) {
  switch (pred) {
    case IrCmpPred::kEq:
      return lhs == rhs;
    case IrCmpPred::kNe:
      return lhs != rhs;
    case IrCmpPred::kLt:
      return lhs < rhs;
    case IrCmpPred::kLe:
      return lhs <= rhs;
    case IrCmpPred::kGt:
      return lhs > rhs;
    case IrCmpPred::kGe:
      return lhs >= rhs;
  }
  return false;
}

std::string DescribeValidRanges(const RangeConstraint& range) {
  if (range.is_enum) {
    std::string out = "accepted values: ";
    bool first = true;
    for (const std::string& accepted : range.enum_strings) {
      out += (first ? "" : ", ") + ("'" + accepted + "'");
      first = false;
    }
    for (int64_t accepted : range.enum_ints) {
      out += (first ? "" : ", ") + std::to_string(accepted);
      first = false;
    }
    return out;
  }
  std::string out = "accepted range: ";
  bool first = true;
  for (const RangeInterval& interval : range.ValidIntervals()) {
    out += (first ? "" : ", ") + interval.ToString();
    first = false;
  }
  return out;
}

class Checker {
 public:
  Checker(const ModuleConstraints& constraints, const ConfigFile& config,
          std::string_view file_name)
      : constraints_(constraints), config_(config), file_(file_name) {}

  std::vector<Violation> Run() {
    for (const ConfigEntry& entry : config_.entries()) {
      if (entry.kind == ConfigEntry::Kind::kSetting) {
        CheckSetting(entry);
      }
    }
    CheckControlDeps();
    CheckValueRels();
    // Violations are emitted per-setting in file order, then cross-param;
    // a stable sort by line folds the cross-param findings into file order
    // without disturbing per-line emission order.
    std::stable_sort(violations_.begin(), violations_.end(),
                     [](const Violation& a, const Violation& b) { return a.line < b.line; });
    return std::move(violations_);
  }

 private:
  void Report(ViolationCategory category, const std::string& param, const std::string& value,
              uint32_t line, std::string message, SourceLoc constraint_loc) {
    Violation violation;
    violation.category = category;
    violation.param = param;
    violation.value = value;
    violation.file = std::string(file_);
    violation.line = line;
    violation.message = std::move(message);
    violation.constraint_loc = constraint_loc;
    violations_.push_back(std::move(violation));
  }

  void CheckSetting(const ConfigEntry& entry) {
    const ParamConstraints* param = constraints_.FindParam(entry.key);
    if (param == nullptr) {
      CheckUnknownKey(entry);
      return;
    }
    if (param->permission.has_value()) {
      // Mode parameters are octal: "644" means 0644, and the generic
      // decimal checks below would misread it — permission checking
      // replaces them wholesale.
      CheckPermissionValue(entry, *param);
      return;
    }
    if (param->range.has_value() && param->range->is_enum &&
        !param->range->enum_strings.empty()) {
      CheckEnumValue(entry, *param);
      return;  // Word-valued parameter: numeric checks do not apply.
    }
    CheckNumericValue(entry, *param);
  }

  void CheckUnknownKey(const ConfigEntry& entry) {
    // A key differing only in case from a real parameter is the classic
    // config typo; anything else is reported without a guess.
    for (const ParamConstraints& param : constraints_.params) {
      if (EqualsIgnoreCase(param.param, entry.key)) {
        Report(ViolationCategory::kUnknownParam, entry.key, entry.value, entry.line,
               "unknown parameter — did you mean '" + param.param + "'? (names are "
               "case-sensitive)",
               param.loc);
        return;
      }
    }
    Report(ViolationCategory::kUnknownParam, entry.key, entry.value, entry.line,
           "unknown parameter (no constraint was inferred for this name)", SourceLoc());
  }

  void CheckEnumValue(const ConfigEntry& entry, const ParamConstraints& param) {
    const RangeConstraint& range = *param.range;
    for (const std::string& accepted : range.enum_strings) {
      if (accepted == entry.value) {
        return;  // Exact hit.
      }
    }
    // Near-miss in case only: fine for case-insensitive parameters, the
    // paper's Figure 6(a) trap for everyone else.
    for (const std::string& accepted : range.enum_strings) {
      if (EqualsIgnoreCase(accepted, entry.value)) {
        if (param.case_sensitivity == CaseSensitivity::kInsensitive) {
          return;
        }
        Report(ViolationCategory::kCase, entry.key, entry.value, entry.line,
               "'" + entry.value + "' differs only in case from accepted '" + accepted +
                   "', and this parameter's values are compared case-sensitively",
               range.loc);
        return;
      }
    }
    auto numeric = ParseInt64(entry.value);
    if (numeric.has_value() &&
        std::find(range.enum_ints.begin(), range.enum_ints.end(), *numeric) !=
            range.enum_ints.end()) {
      return;
    }
    Report(ViolationCategory::kRange, entry.key, entry.value, entry.line,
           "value not in the accepted set (" + DescribeValidRanges(range) + ")", range.loc);
  }

  void CheckNumericValue(const ConfigEntry& entry, const ParamConstraints& param) {
    const IrType* type =
        param.basic_type.has_value() ? param.basic_type->type : nullptr;
    bool integer_param = type != nullptr && (type->IsInteger() || type->IsBool());
    auto strict = ParseInt64(entry.value);

    if (!strict.has_value()) {
      auto suffixed = ParseSuffixedConfigValue(entry.value);
      if (suffixed.has_value()) {
        CheckUnitSuffix(entry, param, *suffixed, integer_param);
        return;
      }
      if (!integer_param) {
        return;  // String/float parameter: any text is type-correct here.
      }
      // Boolean-shaped parameters accept the usual on/off words even when
      // no enum range was inferred — EffectiveInt reads them as 1/0, and
      // flagging "on" as non-numeric would contradict the cross-parameter
      // checks in the same report.
      if ((type->IsBool() || param.HasSemantic(SemanticType::kBoolean)) &&
          EffectiveConfigInt(entry.value).has_value()) {
        return;
      }
      SourceLoc loc = param.basic_type->loc;
      if (ParseDouble(entry.value).has_value()) {
        Report(ViolationCategory::kBasicType, entry.key, entry.value, entry.line,
               "fractional value for an integer parameter (an atoi-style parser would "
               "silently truncate it)",
               loc);
      } else {
        Report(ViolationCategory::kBasicType, entry.key, entry.value, entry.line,
               "'" + entry.value + "' is not a number, but this parameter takes an integer",
               loc);
      }
      return;
    }

    if (integer_param) {
      SourceLoc loc = param.basic_type->loc;
      if (type->is_unsigned() && *strict < 0) {
        Report(ViolationCategory::kBasicType, entry.key, entry.value, entry.line,
               "negative value for an unsigned integer parameter", loc);
        return;
      }
      if (type->bit_width() <= 32) {
        int64_t max = type->is_unsigned() ? 4294967295LL : 2147483647LL;
        int64_t min = type->is_unsigned() ? 0 : -2147483648LL;
        if (*strict > max || *strict < min) {
          Report(ViolationCategory::kBasicType, entry.key, entry.value, entry.line,
                 "value does not fit the parameter's " + std::to_string(type->bit_width()) +
                     "-bit representation",
                 loc);
          return;
        }
      }
    }

    if (param.range.has_value() && !param.range->is_enum) {
      const RangeConstraint& range = *param.range;
      std::vector<RangeInterval> valid = range.ValidIntervals();
      bool accepted = valid.empty();
      for (const RangeInterval& interval : valid) {
        if (interval.Contains(*strict)) {
          accepted = true;
          break;
        }
      }
      if (!accepted) {
        Report(ViolationCategory::kRange, entry.key, entry.value, entry.line,
               "value outside the accepted range (" + DescribeValidRanges(range) + ")",
               range.loc);
      }
    } else if (param.range.has_value() && param.range->is_enum &&
               !param.range->enum_ints.empty()) {
      const RangeConstraint& range = *param.range;
      if (std::find(range.enum_ints.begin(), range.enum_ints.end(), *strict) ==
          range.enum_ints.end()) {
        Report(ViolationCategory::kRange, entry.key, entry.value, entry.line,
               "value not in the accepted set (" + DescribeValidRanges(range) + ")",
               range.loc);
      }
    }
  }

  static std::string OctalModeString(uint32_t bits) {
    std::string out;
    do {
      out.insert(out.begin(), static_cast<char>('0' + (bits & 7)));
      bits >>= 3;
    } while (bits != 0);
    return "0" + out;
  }

  void CheckPermissionValue(const ConfigEntry& entry, const ParamConstraints& param) {
    const PermissionConstraint& policy = *param.permission;
    auto mode = ParseOctalMode(entry.value);
    if (!mode.has_value()) {
      Report(ViolationCategory::kPermission, entry.key, entry.value, entry.line,
             "'" + entry.value + "' is not an octal permission mode (want e.g. 0644; digits "
             "0-7 only, at most 07777)",
             policy.loc);
      return;
    }
    // Both directions are misconfigurations (the survey literature's point):
    // granting too much exposes the system, granting too little breaks it.
    uint32_t granted_forbidden = *mode & policy.forbidden_bits;
    if (granted_forbidden != 0) {
      Report(ViolationCategory::kPermission, entry.key, entry.value, entry.line,
             "mode " + OctalModeString(*mode) + " is too permissive: it grants " +
                 OctalModeString(granted_forbidden) +
                 ", which this parameter must not allow (policy forbids " +
                 OctalModeString(policy.forbidden_bits) + ")",
             policy.loc);
      return;
    }
    uint32_t missing_required = policy.required_bits & ~*mode;
    if (missing_required != 0) {
      Report(ViolationCategory::kPermission, entry.key, entry.value, entry.line,
             "mode " + OctalModeString(*mode) + " is too restrictive: it drops " +
                 OctalModeString(missing_required) +
                 ", without which the system cannot use what it protects (policy requires " +
                 OctalModeString(policy.required_bits) + ")",
             policy.loc);
    }
  }

  void CheckUnitSuffix(const ConfigEntry& entry, const ParamConstraints& param,
                       const SuffixedConfigValue& suffixed, bool integer_param) {
    // A "500ms"-style value. The synthesized parsers (like most real ones)
    // read integers with atoi/strtol, so the suffix never survives parsing
    // — the question is only how to explain the problem to the user.
    if (suffixed.time_unit != TimeUnit::kNone && param.time_unit != TimeUnit::kNone) {
      const SemanticTypeConstraint* semantic = param.FindSemantic(SemanticType::kTime);
      SourceLoc loc = semantic != nullptr ? semantic->loc : param.loc;
      if (suffixed.time_unit != param.time_unit) {
        Report(ViolationCategory::kUnit, entry.key, entry.value, entry.line,
               std::string("value is given in '") + TimeUnitName(suffixed.time_unit) +
                   "' but this parameter is in '" + TimeUnitName(param.time_unit) +
                   "' — the scale would be silently wrong",
               loc);
      } else {
        Report(ViolationCategory::kUnit, entry.key, entry.value, entry.line,
               std::string("this parameter is already in '") + TimeUnitName(param.time_unit) +
                   "'; write the plain number (the suffix would be silently dropped)",
               loc);
      }
      return;
    }
    if (suffixed.size_unit != SizeUnit::kNone && param.size_unit != SizeUnit::kNone) {
      const SemanticTypeConstraint* semantic = param.FindSemantic(SemanticType::kSize);
      SourceLoc loc = semantic != nullptr ? semantic->loc : param.loc;
      if (suffixed.size_unit != param.size_unit) {
        Report(ViolationCategory::kUnit, entry.key, entry.value, entry.line,
               std::string("value is given in '") + SizeUnitName(suffixed.size_unit) +
                   "' but this parameter is in '" + SizeUnitName(param.size_unit) +
                   "' — the scale would be silently wrong",
               loc);
      } else {
        Report(ViolationCategory::kUnit, entry.key, entry.value, entry.line,
               std::string("this parameter is already in '") + SizeUnitName(param.size_unit) +
                   "'; write the plain number (the suffix would be silently dropped)",
               loc);
      }
      return;
    }
    if (integer_param) {
      // The Figure 5(a) "9G" case: a unit suffix on a plain-number
      // parameter, which an unsafe parser reads as just "9".
      Report(ViolationCategory::kBasicType, entry.key, entry.value, entry.line,
             "unit-suffixed value for a plain integer parameter — an atoi-style parser "
             "would silently read it as " + std::to_string(suffixed.magnitude),
             param.basic_type->loc);
    }
  }

  void CheckControlDeps() {
    for (const ControlDepConstraint& dep : constraints_.control_deps) {
      auto dependent_value = config_.Get(dep.dependent);
      auto master_value = config_.Get(dep.master);
      if (!dependent_value.has_value() || !master_value.has_value()) {
        continue;  // Not set, or master's default is unknown: nothing to say.
      }
      auto master_int = EffectiveConfigInt(*master_value);
      if (!master_int.has_value() || HoldsCmp(*master_int, dep.pred, dep.value)) {
        continue;
      }
      Report(ViolationCategory::kControlDep, dep.dependent, *dependent_value,
             config_.LineOf(dep.dependent),
             "setting has no effect: it is only consulted when " + dep.master + " " +
                 IrCmpPredName(dep.pred) + " " + std::to_string(dep.value) + ", and " +
                 dep.master + " is '" + *master_value + "'",
             dep.loc);
    }
  }

  void CheckValueRels() {
    for (const ValueRelConstraint& rel : constraints_.value_rels) {
      auto lhs_value = config_.Get(rel.lhs);
      auto rhs_value = config_.Get(rel.rhs);
      if (!lhs_value.has_value() || !rhs_value.has_value()) {
        continue;
      }
      auto lhs_int = EffectiveConfigInt(*lhs_value);
      auto rhs_int = EffectiveConfigInt(*rhs_value);
      if (!lhs_int.has_value() || !rhs_int.has_value() ||
          HoldsCmp(*lhs_int, rel.pred, *rhs_int)) {
        continue;
      }
      Report(ViolationCategory::kValueRel, rel.lhs, *lhs_value, config_.LineOf(rel.lhs),
             "configuration must satisfy " + rel.lhs + " " + IrCmpPredName(rel.pred) + " " +
                 rel.rhs + " (" + rel.lhs + " = " + *lhs_value + ", " + rel.rhs + " = " +
                 *rhs_value + ")",
             rel.loc);
    }
  }

  const ModuleConstraints& constraints_;
  const ConfigFile& config_;
  std::string_view file_;
  std::vector<Violation> violations_;
};

}  // namespace

std::vector<Violation> CheckConfigFile(const ModuleConstraints& constraints,
                                       const ConfigFile& config, std::string_view file_name) {
  return Checker(constraints, config, file_name).Run();
}

std::vector<Violation> CheckConfigText(const ModuleConstraints& constraints,
                                       std::string_view config_text, ConfigDialect dialect,
                                       std::string_view file_name) {
  return CheckConfigFile(constraints, ConfigFile::Parse(config_text, dialect), file_name);
}

}  // namespace spex
