#include "src/api/batch_check.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/api/dynamic_check.h"
#include "src/support/strings.h"

namespace spex {

double BatchSummary::DedupRatio() const {
  if (total_suspects == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(unique_replays) / static_cast<double>(total_suspects);
}

Status ValidateConfigText(std::string_view text, ConfigDialect dialect) {
  uint32_t line_number = 0;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    ++line_number;
    std::string_view line = TrimWhitespace(raw_line);
    if (line.empty() || line[0] == '#' || line[0] == ';') {
      continue;
    }
    if (dialect != ConfigDialect::kKeyEqualsValue) {
      continue;  // Bare directives are legal key-value dialect.
    }
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": settings line has no '='");
    }
    if (TrimWhitespace(line.substr(0, eq)).empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": settings line has an empty key");
    }
  }
  return Status::Ok();
}

BatchSummary RunBatchCheck(const ModuleConstraints& constraints,
                           const ConfigFile& template_config, ConfigDialect dialect,
                           InjectionCampaign* campaign, ThreadPool* pool,
                           std::span<const ConfigInput> configs, const BatchOptions& options,
                           BatchObserver* observer) {
  const size_t count = configs.size();
  if (observer != nullptr) {
    observer->OnBatchBegin(count);
  }
  const bool dynamic = campaign != nullptr && options.check.mode == CheckMode::kDynamic;

  // --- Phase 1 (sharded): parse, static check and suspect extraction are
  // independent per config — pure functions into pre-sized slots. A config
  // that fails validation is contained right here: its slot carries the
  // error and contributes nothing downstream, so the poisoned entry is
  // invisible to every other config's phases (dedup, replay, fan-out).
  struct PerConfig {
    ConfigFile parsed;
    std::vector<Violation> violations;
    std::vector<Misconfiguration> suspects;
    std::vector<size_t> unique_index;  // Parallel to suspects.
    Status status;
  };
  std::vector<PerConfig> state(count);
  auto analyze_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      PerConfig& slot = state[i];
      slot.status = ValidateConfigText(configs[i].text, dialect);
      if (!slot.status.ok()) {
        continue;
      }
      slot.parsed = ConfigFile::Parse(configs[i].text, dialect);
      slot.violations = CheckConfigFile(constraints, slot.parsed, configs[i].name);
      if (dynamic) {
        slot.suspects =
            BuildDynamicSuspects(constraints, template_config, slot.parsed, slot.violations);
      }
    }
  };
  const size_t requested_workers =
      options.num_threads == 0 && pool != nullptr
          ? pool->size()
          : ThreadPool::ResolveThreadCount(
                options.num_threads < 0 ? 1 : static_cast<size_t>(options.num_threads));
  if (pool == nullptr) {
    analyze_range(0, count);
  } else {
    pool->ShardRange(count, requested_workers, analyze_range);
  }

  // --- Phase 2 (driver thread): dedup suspects across configs by
  // execution identity. First occurrence becomes the representative the
  // campaign replays; everyone else records its unique index.
  std::vector<Misconfiguration> unique;
  std::vector<size_t> use_count;
  std::unordered_map<std::string, size_t> index_of;
  for (PerConfig& slot : state) {
    slot.unique_index.reserve(slot.suspects.size());
    for (const Misconfiguration& suspect : slot.suspects) {
      auto [it, inserted] = index_of.emplace(SuspectExecutionKey(suspect), unique.size());
      if (inserted) {
        unique.push_back(suspect);
        use_count.push_back(0);
      }
      slot.unique_index.push_back(it->second);
      ++use_count[it->second];
    }
  }

  // --- Phase 3: each unique execution replays exactly once, through the
  // campaign's persistent snapshot cache (and, when a verdict store is
  // attached, only when the store has never seen the execution).
  //
  // With a pool and >1 workers the shards are submitted *without* a
  // barrier: phase 4 starts finalizing configs as soon as the shards
  // covering *their* unique executions land, so batch latency is
  // dominated by the slowest chain of unique replays a config actually
  // needs, not by the whole batch's slowest shard. The serial path keeps
  // the single blocking call.
  std::vector<InjectionResult> unique_results(unique.size());
  ReplayStats replay_stats;
  ReplayLimits limits;
  limits.cancel = options.check.cancel;
  limits.per_replay_deadline = options.check.deadline;

  const bool pipelined =
      dynamic && !unique.empty() && pool != nullptr && requested_workers > 1;
  size_t shard_count = 0;
  std::vector<size_t> shard_begin;  // shard j covers [begin[j], begin[j+1]).
  std::vector<ReplayStats> shard_stats;
  std::vector<uint8_t> shard_done;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::atomic<size_t> shards_running{0};

  if (dynamic && !unique.empty() && !pipelined) {
    // The per-replay deadline applies to each *unique* execution — a
    // deduplicated replay that times out reports kDeadlineExceeded to
    // every config that contributed it, exactly as N independent
    // timed-out checks would.
    unique_results = campaign->ReplayExternal(template_config, unique,
                                              options.check.use_parse_snapshot, nullptr, 1,
                                              limits, &replay_stats);
  } else if (pipelined) {
    shard_count = std::min(requested_workers, unique.size());
    shard_begin.resize(shard_count + 1);
    const size_t base = unique.size() / shard_count;
    const size_t extra = unique.size() % shard_count;
    size_t pos = 0;
    for (size_t j = 0; j < shard_count; ++j) {
      shard_begin[j] = pos;
      pos += base + (j < extra ? 1 : 0);
    }
    shard_begin[shard_count] = pos;
    shard_stats.resize(shard_count);
    shard_done.assign(shard_count, 0);
    shards_running.store(shard_count, std::memory_order_release);
    for (size_t j = 0; j < shard_count; ++j) {
      // Each shard is an independent serial ReplayExternal call — that
      // entry point is explicitly safe from any number of threads, and
      // per-slot writes into unique_results are disjoint by construction.
      pool->Submit([&, j] {
        std::vector<Misconfiguration> slice(unique.begin() + shard_begin[j],
                                            unique.begin() + shard_begin[j + 1]);
        std::vector<InjectionResult> part = campaign->ReplayExternal(
            template_config, slice, options.check.use_parse_snapshot, nullptr, 1, limits,
            &shard_stats[j]);
        std::move(part.begin(), part.end(), unique_results.begin() + shard_begin[j]);
        {
          std::lock_guard<std::mutex> lock(done_mutex);
          shard_done[j] = 1;
        }
        shards_running.fetch_sub(1, std::memory_order_acq_rel);
        done_cv.notify_all();
      });
    }
  }
  auto shard_of = [&](size_t unique_idx) {
    return static_cast<size_t>(std::upper_bound(shard_begin.begin(), shard_begin.end(),
                                                unique_idx) -
                               shard_begin.begin()) -
           1;
  };

  // --- Phase 4 (driver thread, batch order): fan each unique verdict out
  // to the configs that contributed it, attach reactions, stream the
  // report. Serial on purpose: observer callbacks are ordered and the
  // fan-out is copies, not execution. On the pipelined path each config
  // waits only for the shards holding *its* unique executions.
  BatchSummary summary;
  summary.configs_checked = count;
  summary.reports.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    PerConfig& slot = state[i];
    if (!slot.suspects.empty()) {
      if (pipelined) {
        std::unique_lock<std::mutex> lock(done_mutex);
        for (size_t unique_idx : slot.unique_index) {
          const size_t shard = shard_of(unique_idx);
          done_cv.wait(lock, [&] { return shard_done[shard] != 0; });
        }
      }
      std::vector<InjectionResult> results;
      results.reserve(slot.suspects.size());
      size_t timed_out = 0;
      for (size_t j = 0; j < slot.suspects.size(); ++j) {
        results.push_back(
            ReattributeResult(unique_results[slot.unique_index[j]], slot.suspects[j]));
        if (results.back().category == ReactionCategory::kDeadlineExceeded) {
          ++timed_out;
        }
      }
      AttachReactions(slot.suspects, results, slot.parsed, configs[i].name, &slot.violations);
      for (const InjectionResult& result : results) {
        ++summary.reactions_by_category[static_cast<size_t>(result.category)];
      }
      if (timed_out > 0) {
        // The config's static findings and in-budget verdicts stand; the
        // status says the dynamic picture is incomplete and why.
        slot.status = Status::DeadlineExceeded(
            std::to_string(timed_out) + " of " + std::to_string(slot.suspects.size()) +
            " suspect replays exceeded the request budget");
      }
    }

    ConfigReport report;
    report.index = i;
    report.name = configs[i].name;
    report.suspects = slot.suspects.size();
    report.status = std::move(slot.status);
    for (size_t unique_idx : slot.unique_index) {
      if (use_count[unique_idx] > 1) {
        ++report.shared_replays;
      }
    }
    report.violations = std::move(slot.violations);

    summary.total_suspects += report.suspects;
    summary.total_violations += report.violations.size();
    if (!report.violations.empty()) {
      ++summary.configs_with_violations;
    }
    if (!report.status.ok()) {
      ++summary.configs_with_errors;
    }
    for (const Violation& violation : report.violations) {
      ++summary.violations_by_category[static_cast<size_t>(violation.category)];
    }
    if (observer != nullptr) {
      observer->OnConfigChecked(i, report);
    }
    summary.reports.push_back(std::move(report));
    if (pipelined && shards_running.load(std::memory_order_acquire) > 0) {
      // This config's report went out while replays were still running
      // elsewhere in the batch: finalization genuinely overlapped.
      ++summary.finalized_overlapped;
    }
  }
  if (pipelined) {
    // Every unique execution belongs to some config, so all shards are
    // done by now; the Wait() drains the pool queue so the pool is quiet
    // before the caller releases its serialization (header contract).
    {
      std::unique_lock<std::mutex> lock(done_mutex);
      done_cv.wait(lock, [&] {
        return std::all_of(shard_done.begin(), shard_done.end(),
                           [](uint8_t done) { return done != 0; });
      });
    }
    pool->Wait();
    for (const ReplayStats& shard : shard_stats) {
      replay_stats.store_hits += shard.store_hits;
      replay_stats.store_misses += shard.store_misses;
      replay_stats.store_appends += shard.store_appends;
      replay_stats.store_reverified += shard.store_reverified;
      replay_stats.store_mismatches += shard.store_mismatches;
    }
  }
  // A unique execution served from the persistent store never replayed:
  // a fully warm re-check reports unique_replays == 0 (and DedupRatio 1.0).
  summary.unique_replays = unique.size() - replay_stats.store_hits;
  summary.store_hits = replay_stats.store_hits;
  summary.store_misses = replay_stats.store_misses;
  summary.store_appends = replay_stats.store_appends;
  if (observer != nullptr) {
    observer->OnBatchEnd(summary);
  }
  return summary;
}

}  // namespace spex
