#include "src/api/batch_check.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "src/api/dynamic_check.h"
#include "src/support/strings.h"

namespace spex {

namespace {

// Length-prefixed field encoding for the execution key: config keys and
// values are untrusted free text, so no separator character is safe —
// "<length>:<bytes>" is unambiguous for any content.
void AppendField(std::string* key, std::string_view field) {
  *key += std::to_string(field.size());
  *key += ':';
  *key += field;
}

}  // namespace

double BatchSummary::DedupRatio() const {
  if (total_suspects == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(unique_replays) / static_cast<double>(total_suspects);
}

std::string SuspectExecutionKey(const Misconfiguration& suspect) {
  // Every replay-observable input, nothing else: the applied settings in
  // application order (they fix the applied config and the snapshot
  // key-set), the numeric intent (the silent-violation comparison point)
  // and the ignore expectation (the silent-ignorance branch selector).
  // Label-only fields (kind, rule, constraint_loc) are deliberately
  // absent — ReattributeResult restores them per client after the shared
  // replay.
  std::string key;
  key.reserve(suspect.param.size() + suspect.value.size() + 24);
  AppendField(&key, suspect.param);
  AppendField(&key, suspect.value);
  for (const auto& [extra_key, extra_value] : suspect.extra_settings) {
    AppendField(&key, extra_key);
    AppendField(&key, extra_value);
  }
  AppendField(&key, suspect.intended_numeric.has_value()
                        ? std::to_string(*suspect.intended_numeric)
                        : "~");
  key += suspect.expect_ignored ? '1' : '0';
  return key;
}

Status ValidateConfigText(std::string_view text, ConfigDialect dialect) {
  uint32_t line_number = 0;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    ++line_number;
    std::string_view line = TrimWhitespace(raw_line);
    if (line.empty() || line[0] == '#' || line[0] == ';') {
      continue;
    }
    if (dialect != ConfigDialect::kKeyEqualsValue) {
      continue;  // Bare directives are legal key-value dialect.
    }
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": settings line has no '='");
    }
    if (TrimWhitespace(line.substr(0, eq)).empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": settings line has an empty key");
    }
  }
  return Status::Ok();
}

BatchSummary RunBatchCheck(const ModuleConstraints& constraints,
                           const ConfigFile& template_config, ConfigDialect dialect,
                           InjectionCampaign* campaign, ThreadPool* pool,
                           std::span<const ConfigInput> configs, const BatchOptions& options,
                           BatchObserver* observer) {
  const size_t count = configs.size();
  if (observer != nullptr) {
    observer->OnBatchBegin(count);
  }
  const bool dynamic = campaign != nullptr && options.check.mode == CheckMode::kDynamic;

  // --- Phase 1 (sharded): parse, static check and suspect extraction are
  // independent per config — pure functions into pre-sized slots. A config
  // that fails validation is contained right here: its slot carries the
  // error and contributes nothing downstream, so the poisoned entry is
  // invisible to every other config's phases (dedup, replay, fan-out).
  struct PerConfig {
    ConfigFile parsed;
    std::vector<Violation> violations;
    std::vector<Misconfiguration> suspects;
    std::vector<size_t> unique_index;  // Parallel to suspects.
    Status status;
  };
  std::vector<PerConfig> state(count);
  auto analyze_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      PerConfig& slot = state[i];
      slot.status = ValidateConfigText(configs[i].text, dialect);
      if (!slot.status.ok()) {
        continue;
      }
      slot.parsed = ConfigFile::Parse(configs[i].text, dialect);
      slot.violations = CheckConfigFile(constraints, slot.parsed, configs[i].name);
      if (dynamic) {
        slot.suspects =
            BuildDynamicSuspects(constraints, template_config, slot.parsed, slot.violations);
      }
    }
  };
  const size_t requested_workers =
      options.num_threads == 0 && pool != nullptr
          ? pool->size()
          : ThreadPool::ResolveThreadCount(
                options.num_threads < 0 ? 1 : static_cast<size_t>(options.num_threads));
  if (pool == nullptr) {
    analyze_range(0, count);
  } else {
    pool->ShardRange(count, requested_workers, analyze_range);
  }

  // --- Phase 2 (driver thread): dedup suspects across configs by
  // execution identity. First occurrence becomes the representative the
  // campaign replays; everyone else records its unique index.
  std::vector<Misconfiguration> unique;
  std::vector<size_t> use_count;
  std::unordered_map<std::string, size_t> index_of;
  for (PerConfig& slot : state) {
    slot.unique_index.reserve(slot.suspects.size());
    for (const Misconfiguration& suspect : slot.suspects) {
      auto [it, inserted] = index_of.emplace(SuspectExecutionKey(suspect), unique.size());
      if (inserted) {
        unique.push_back(suspect);
        use_count.push_back(0);
      }
      slot.unique_index.push_back(it->second);
      ++use_count[it->second];
    }
  }

  // --- Phase 3 (sharded): each unique execution replays exactly once,
  // through the campaign's persistent snapshot cache.
  std::vector<InjectionResult> unique_results;
  if (dynamic && !unique.empty()) {
    // Shard width is re-resolved for this phase: a 2-config batch can
    // still carry 20 unique suspects, and the replays are the expensive
    // part (ReplayExternal re-clamps to the unique count internally).
    // The per-replay deadline applies to each *unique* execution — a
    // deduplicated replay that times out reports kDeadlineExceeded to
    // every config that contributed it, exactly as N independent timed-out
    // checks would.
    ReplayLimits limits;
    limits.cancel = options.check.cancel;
    limits.per_replay_deadline = options.check.deadline;
    unique_results =
        campaign->ReplayExternal(template_config, unique, options.check.use_parse_snapshot,
                                 pool, requested_workers, limits);
  }

  // --- Phase 4 (driver thread, batch order): fan each unique verdict out
  // to the configs that contributed it, attach reactions, stream the
  // report. Serial on purpose: observer callbacks are ordered and the
  // fan-out is copies, not execution.
  BatchSummary summary;
  summary.configs_checked = count;
  summary.unique_replays = unique.size();
  summary.reports.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    PerConfig& slot = state[i];
    if (!slot.suspects.empty()) {
      std::vector<InjectionResult> results;
      results.reserve(slot.suspects.size());
      size_t timed_out = 0;
      for (size_t j = 0; j < slot.suspects.size(); ++j) {
        results.push_back(
            ReattributeResult(unique_results[slot.unique_index[j]], slot.suspects[j]));
        if (results.back().category == ReactionCategory::kDeadlineExceeded) {
          ++timed_out;
        }
      }
      AttachReactions(slot.suspects, results, slot.parsed, configs[i].name, &slot.violations);
      for (const InjectionResult& result : results) {
        ++summary.reactions_by_category[static_cast<size_t>(result.category)];
      }
      if (timed_out > 0) {
        // The config's static findings and in-budget verdicts stand; the
        // status says the dynamic picture is incomplete and why.
        slot.status = Status::DeadlineExceeded(
            std::to_string(timed_out) + " of " + std::to_string(slot.suspects.size()) +
            " suspect replays exceeded the request budget");
      }
    }

    ConfigReport report;
    report.index = i;
    report.name = configs[i].name;
    report.suspects = slot.suspects.size();
    report.status = std::move(slot.status);
    for (size_t unique_idx : slot.unique_index) {
      if (use_count[unique_idx] > 1) {
        ++report.shared_replays;
      }
    }
    report.violations = std::move(slot.violations);

    summary.total_suspects += report.suspects;
    summary.total_violations += report.violations.size();
    if (!report.violations.empty()) {
      ++summary.configs_with_violations;
    }
    if (!report.status.ok()) {
      ++summary.configs_with_errors;
    }
    for (const Violation& violation : report.violations) {
      ++summary.violations_by_category[static_cast<size_t>(violation.category)];
    }
    if (observer != nullptr) {
      observer->OnConfigChecked(i, report);
    }
    summary.reports.push_back(std::move(report));
  }
  if (observer != nullptr) {
    observer->OnBatchEnd(summary);
  }
  return summary;
}

}  // namespace spex
