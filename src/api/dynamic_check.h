// Dynamic configuration checking: replay a user's config through the
// interpreter and report what the system will *actually do* with it.
//
// The static ConfigChecker (config_checker.h) tells the user which inferred
// constraint a setting violates. The paper's end state goes further: the
// vendor ships the checker inside the product, so the user is told the
// observed consequence — "this value will be silently clamped to 65536",
// "the server will exit without mentioning this line" — in the Table-3
// reaction vocabulary the injection campaign already speaks. This header is
// the glue between the two worlds:
//
//   1. BuildDynamicSuspects diffs the user's config against the target's
//      template and turns each deviating setting into a replayable
//      Misconfiguration (replayed in isolation plus its cross-parameter
//      partners, so every verdict is attributable to its own setting).
//   2. InjectionCampaign::ReplayExternal replays the suspects from the
//      campaign's persistent snapshot cache (or ground truth).
//   3. AttachReactions folds the observed reactions back into the static
//      Violation list — and surfaces vulnerabilities the static pass could
//      not see as kDynamicReaction violations.
//
// Target::CheckConfig(text, file, CheckOptions{.mode = CheckMode::kDynamic})
// runs the whole loop; these functions are exposed for tests and for
// embedders that drive a campaign directly.
#ifndef SPEX_API_DYNAMIC_CHECK_H_
#define SPEX_API_DYNAMIC_CHECK_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/api/config_checker.h"
#include "src/inject/campaign.h"

namespace spex {

// Builds one replayable Misconfiguration per *suspect* setting of
// `config`: a setting whose value deviates from `template_config` (new key,
// or changed value). Each suspect replays in isolation on the template —
// per-setting attribution stays honest even when another setting in the
// same file crashes the system — except for its cross-parameter partners
// (a control-dep master, a value-rel peer), whose user values ride along
// in extra_settings because the finding only manifests with them applied.
// The resulting key-sets mirror the campaign generator's, so checks after
// RunCampaign replay from already-built snapshots. Deviations that exactly
// match one of the
// parameter's accepted enum words are replayed only when the static pass
// flagged them (a handler-mapped word like "json" -> 1 exercises the same
// path the template already proved; replaying it would only misread the
// mapping as a silent violation). Numeric intent (Misconfiguration::
// intended_numeric) is derived the way a user means the value: strict
// integers as-is, boolean words as 1/0, unit-suffixed values converted
// into the parameter's inferred unit (or the base unit when none was
// inferred) — that is what makes the silent-violation comparison honest.
// Pure function; safe to call concurrently.
std::vector<Misconfiguration> BuildDynamicSuspects(
    const ModuleConstraints& constraints, const ConfigFile& template_config,
    const ConfigFile& config, const std::vector<Violation>& static_violations);

// One-sentence "what the system will do with this setting" message for an
// observed reaction ("the system will silently use a different effective
// value (configured 99 but effective value is 64)").
std::string DescribeReaction(const InjectionResult& result);

// Folds observed reactions into the static violation list: every violation
// whose parameter matches a suspect gains the reaction/evidence/prediction
// fields, and a suspect with a vulnerability reaction but no static
// violation appends a new kDynamicReaction violation (line-addressed into
// `config`, which must be the user's parsed file). `results` must be
// parallel to `suspects` (ReplayExternal's contract). Re-sorts the list by
// line so dynamic-only findings land in file order.
void AttachReactions(const std::vector<Misconfiguration>& suspects,
                     const std::vector<InjectionResult>& results, const ConfigFile& config,
                     std::string_view file_name, std::vector<Violation>* violations);

}  // namespace spex

#endif  // SPEX_API_DYNAMIC_CHECK_H_
