#include "src/api/config_set.h"

#include <algorithm>
#include <filesystem>
#include <unordered_map>
#include <unordered_set>

#include "src/support/strings.h"

namespace spex {

const char* ConfigSetErrorKindName(ConfigSetError::Kind kind) {
  switch (kind) {
    case ConfigSetError::Kind::kMissingInclude:
      return "missing-include";
    case ConfigSetError::Kind::kIncludeCycle:
      return "include-cycle";
    case ConfigSetError::Kind::kDepthExceeded:
      return "depth-exceeded";
    case ConfigSetError::Kind::kTooManyFiles:
      return "too-many-files";
  }
  return "?";
}

std::string ConfigSetError::ToString() const {
  std::string at = file.empty() ? std::string("<root>")
                                : file + ":" + std::to_string(line);
  switch (kind) {
    case Kind::kMissingInclude:
      return at + ": missing include: '" + target + "' could not be loaded";
    case Kind::kIncludeCycle:
      return at + ": include cycle: '" + target + "' is already being included";
    case Kind::kDepthExceeded:
      return at + ": include chain too deep at '" + target + "'";
    case Kind::kTooManyFiles:
      return at + ": too many files in include tree (expansion stopped at '" + target + "')";
  }
  return at + ": ?";
}

const SettingProvenance* ResolvedConfigSet::FindProvenance(std::string_view key) const {
  for (const SettingProvenance& prov : provenance) {
    if (prov.key == key) {
      return &prov;
    }
  }
  return nullptr;
}

MemoryConfigSetSource::MemoryConfigSetSource(std::span<const ConfigInput> files) {
  for (const ConfigInput& file : files) {
    files_.emplace(file.name, file.text);  // First occurrence of a name wins.
  }
}

std::optional<std::string> MemoryConfigSetSource::Load(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<std::vector<std::string>> MemoryConfigSetSource::ListDir(const std::string& dir) {
  std::string prefix = dir + "/";
  std::vector<std::string> names;
  // files_ is an ordered map, so the result is already name-sorted.
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    names.push_back(it->first);
  }
  if (names.empty()) {
    return std::nullopt;  // A memory "directory" exists iff it has files.
  }
  return names;
}

bool ParseIncludeDirective(const ConfigEntry& entry, bool* is_dir, std::string* operand) {
  if (entry.kind != ConfigEntry::Kind::kSetting) {
    return false;
  }
  std::string_view word = entry.key;
  std::string_view rest = entry.value;
  if (entry.value.empty()) {
    // key=value dialect: `include "x"` has no '=', so the whole line landed
    // in the key. Split it back into directive word + operand.
    size_t space = word.find_first_of(" \t");
    if (space != std::string_view::npos) {
      rest = TrimWhitespace(word.substr(space + 1));
      word = word.substr(0, space);
    }
  }
  bool dir = false;
  if (word == "include") {
    dir = false;
  } else if (word == "include_dir" || word == "includedir") {
    dir = true;
  } else {
    return false;
  }
  std::string_view target = TrimWhitespace(rest);
  if (target.size() >= 2 &&
      ((target.front() == '"' && target.back() == '"') ||
       (target.front() == '\'' && target.back() == '\'') ||
       (target.front() == '<' && target.back() == '>'))) {
    target = target.substr(1, target.size() - 2);
  }
  *is_dir = dir;
  *operand = std::string(target);
  return true;
}

std::string JoinIncludePath(std::string_view including_file, std::string_view operand) {
  if (operand.empty() || operand.front() == '/') {
    return std::string(operand);
  }
  std::filesystem::path base(including_file);
  std::filesystem::path joined = base.parent_path() / std::filesystem::path(operand);
  return joined.lexically_normal().generic_string();
}

namespace {

// Depth-first include expansion with per-fault containment. One instance
// resolves one root; all state is local, so concurrent resolutions never
// share anything but the (read-only) source.
class SetResolver {
 public:
  SetResolver(ConfigSetSource& source, ConfigDialect dialect, const ConfigSetOptions& options)
      : source_(source), dialect_(dialect), options_(options) {}

  ResolvedConfigSet Run(const std::string& root_name) {
    out_.name = root_name;
    ExpandFile(root_name, /*from_file=*/"", /*from_line=*/0, /*depth=*/0);
    // Materialize the effective config: each key once, at the position of
    // its first assignment, carrying the value of its last.
    ConfigFile effective(dialect_);
    for (const SettingProvenance& prov : out_.provenance) {
      effective.Set(prov.key, prov.winner.value);
    }
    out_.effective = std::move(effective);
    return std::move(out_);
  }

 private:
  void AddError(ConfigSetError::Kind kind, const std::string& file, uint32_t line,
                const std::string& target) {
    ConfigSetError error;
    error.kind = kind;
    error.file = file;
    error.line = line;
    error.target = target;
    out_.errors.push_back(std::move(error));
  }

  void Apply(const std::string& file, const ConfigEntry& entry) {
    auto it = key_index_.find(entry.key);
    if (it == key_index_.end()) {
      SettingProvenance prov;
      prov.key = entry.key;
      prov.winner = SettingOrigin{file, entry.line, entry.value};
      key_index_.emplace(entry.key, out_.provenance.size());
      out_.provenance.push_back(std::move(prov));
      return;
    }
    SettingProvenance& prov = out_.provenance[it->second];
    prov.shadowed.push_back(std::move(prov.winner));
    prov.winner = SettingOrigin{file, entry.line, entry.value};
  }

  void ExpandFile(const std::string& name, const std::string& from_file, uint32_t from_line,
                  size_t depth) {
    if (expansion_stopped_) {
      return;
    }
    if (depth > options_.max_include_depth) {
      AddError(ConfigSetError::Kind::kDepthExceeded, from_file, from_line, name);
      return;
    }
    if (stack_.count(name) > 0) {
      AddError(ConfigSetError::Kind::kIncludeCycle, from_file, from_line, name);
      return;
    }
    if (out_.files_resolved >= options_.max_files) {
      // Include-bomb guard: one record, then stop expanding entirely —
      // a bomb would otherwise flood the error list too.
      AddError(ConfigSetError::Kind::kTooManyFiles, from_file, from_line, name);
      expansion_stopped_ = true;
      return;
    }
    std::optional<std::string> text = source_.Load(name);
    if (!text.has_value()) {
      AddError(ConfigSetError::Kind::kMissingInclude, from_file, from_line, name);
      return;
    }
    ++out_.files_resolved;
    stack_.insert(name);
    ConfigFile file = ConfigFile::Parse(*text, dialect_);
    for (const ConfigEntry& entry : file.entries()) {
      if (entry.kind != ConfigEntry::Kind::kSetting) {
        continue;
      }
      bool is_dir = false;
      std::string operand;
      if (!ParseIncludeDirective(entry, &is_dir, &operand)) {
        Apply(name, entry);
        continue;
      }
      if (operand.empty()) {
        AddError(ConfigSetError::Kind::kMissingInclude, name, entry.line, "");
        continue;
      }
      std::string target = JoinIncludePath(name, operand);
      if (!is_dir) {
        ExpandFile(target, name, entry.line, depth + 1);
        continue;
      }
      std::optional<std::vector<std::string>> listed = source_.ListDir(target);
      if (!listed.has_value()) {
        AddError(ConfigSetError::Kind::kMissingInclude, name, entry.line, target);
        continue;
      }
      for (const std::string& child : *listed) {
        ExpandFile(child, name, entry.line, depth + 1);
      }
    }
    stack_.erase(name);
  }

  ConfigSetSource& source_;
  ConfigDialect dialect_;
  ConfigSetOptions options_;
  ResolvedConfigSet out_;
  std::unordered_map<std::string, size_t> key_index_;
  std::unordered_set<std::string> stack_;
  bool expansion_stopped_ = false;
};

}  // namespace

ResolvedConfigSet ResolveConfigSet(const std::string& root_name, ConfigSetSource& source,
                                   ConfigDialect dialect, const ConfigSetOptions& options) {
  return SetResolver(source, dialect, options).Run(root_name);
}

ResolvedConfigSet ResolveConfigSet(std::span<const ConfigInput> files, ConfigDialect dialect,
                                   const ConfigSetOptions& options) {
  MemoryConfigSetSource source(files);
  std::string root = files.empty() ? std::string("<empty>") : files.front().name;
  return ResolveConfigSet(root, source, dialect, options);
}

namespace {

std::string OriginRef(const SettingOrigin& origin) {
  return origin.file + ":" + std::to_string(origin.line);
}

void AppendNote(std::string* note, std::string text) {
  if (!note->empty()) {
    *note += "; ";
  }
  *note += std::move(text);
}

}  // namespace

void RewriteViolationsWithProvenance(const ResolvedConfigSet& set,
                                     const ModuleConstraints& constraints,
                                     std::vector<Violation>* violations) {
  for (Violation& violation : *violations) {
    const SettingProvenance* prov = set.FindProvenance(violation.param);
    if (prov == nullptr) {
      continue;  // Not a key of this set (defensive; should not happen).
    }
    violation.file = prov->winner.file;
    violation.line = prov->winner.line;
    std::string note;
    for (const SettingOrigin& shadow : prov->shadowed) {
      AppendNote(&note, "overridden at " + OriginRef(shadow) + " (earlier value '" +
                            shadow.value + "')");
    }
    // Cross-parameter findings: name the file the peer resolved from when
    // it is not the same file as the primary — the whole point of checking
    // the set instead of its fragments.
    if (violation.category == ViolationCategory::kValueRel) {
      for (const ValueRelConstraint& rel : constraints.value_rels) {
        if (rel.lhs != violation.param) {
          continue;
        }
        const SettingProvenance* peer = set.FindProvenance(rel.rhs);
        if (peer != nullptr && peer->winner.file != prov->winner.file) {
          AppendNote(&note, "cross-file: " + rel.rhs + " = '" + peer->winner.value +
                                "' resolves from " + OriginRef(peer->winner));
        }
      }
    } else if (violation.category == ViolationCategory::kControlDep) {
      for (const ControlDepConstraint& dep : constraints.control_deps) {
        if (dep.dependent != violation.param) {
          continue;
        }
        const SettingProvenance* peer = set.FindProvenance(dep.master);
        if (peer != nullptr && peer->winner.file != prov->winner.file) {
          AppendNote(&note, "cross-file: " + dep.master + " = '" + peer->winner.value +
                                "' resolves from " + OriginRef(peer->winner));
        }
      }
    }
    violation.override_note = std::move(note);
  }
}

namespace {

// Minimal strict JSON scanner for the one shape the /check endpoint
// accepts. Hand-rolled on purpose: the boundary wants a parser whose
// worst case on hostile input is a clean kInvalidArgument, and the repo
// takes no third-party dependencies.
class SetJsonParser {
 public:
  explicit SetJsonParser(std::string_view text) : text_(text) {}

  Status Parse(ConfigSetInput* out) {
    SkipSpace();
    if (!Consume('{')) {
      return Bad("expected '{'");
    }
    SkipSpace();
    std::string key;
    Status status = ParseString(&key);
    if (!status.ok()) {
      return status;
    }
    if (key != "files") {
      return Bad("expected a \"files\" key");
    }
    SkipSpace();
    if (!Consume(':')) {
      return Bad("expected ':' after \"files\"");
    }
    SkipSpace();
    if (!Consume('[')) {
      return Bad("expected '[' to open the files array");
    }
    SkipSpace();
    if (!Consume(']')) {
      while (true) {
        ConfigInput file;
        status = ParseFile(&file);
        if (!status.ok()) {
          return status;
        }
        out->files.push_back(std::move(file));
        SkipSpace();
        if (Consume(',')) {
          SkipSpace();
          continue;
        }
        if (Consume(']')) {
          break;
        }
        return Bad("expected ',' or ']' in the files array");
      }
    }
    SkipSpace();
    if (!Consume('}')) {
      return Bad("expected '}' to close the request");
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Bad("trailing bytes after the request object");
    }
    if (out->files.empty()) {
      return Bad("\"files\" must name at least one file");
    }
    out->name = out->files.front().name;
    return Status::Ok();
  }

 private:
  Status ParseFile(ConfigInput* out) {
    SkipSpace();
    if (!Consume('{')) {
      return Bad("expected '{' to open a file object");
    }
    bool saw_name = false;
    bool saw_text = false;
    SkipSpace();
    if (!Consume('}')) {
      while (true) {
        SkipSpace();
        std::string key;
        Status status = ParseString(&key);
        if (!status.ok()) {
          return status;
        }
        SkipSpace();
        if (!Consume(':')) {
          return Bad("expected ':' in a file object");
        }
        SkipSpace();
        std::string value;
        status = ParseString(&value);
        if (!status.ok()) {
          return status;
        }
        if (key == "name") {
          out->name = std::move(value);
          saw_name = true;
        } else if (key == "text") {
          out->text = std::move(value);
          saw_text = true;
        } else {
          return Bad("unknown file field \"" + key + "\" (want name/text)");
        }
        SkipSpace();
        if (Consume(',')) {
          continue;
        }
        if (Consume('}')) {
          break;
        }
        return Bad("expected ',' or '}' in a file object");
      }
    }
    if (!saw_name || out->name.empty()) {
      return Bad("every file needs a non-empty \"name\"");
    }
    if (!saw_text) {
      return Bad("every file needs a \"text\" field");
    }
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Bad("expected a string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return Status::Ok();
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out->push_back(escape);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Bad("truncated \\u escape");
          }
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            char hex = text_[pos_++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<uint32_t>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<uint32_t>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<uint32_t>(hex - 'A' + 10);
            } else {
              return Bad("bad hex digit in \\u escape");
            }
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Bad(std::string("unknown escape '\\") + escape + "'");
      }
    }
    return Bad("unterminated string");
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Bad(std::string what) const {
    return Status::InvalidArgument("config-set body: " + std::move(what) + " at byte " +
                                   std::to_string(pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ParseConfigSetJson(std::string_view body, ConfigSetInput* out) {
  *out = ConfigSetInput{};
  return SetJsonParser(body).Parse(out);
}

}  // namespace spex
