// User-facing configuration checker: validate a concrete config file
// against inferred constraints *before* it reaches the target system.
//
// This is the paper's end goal ("do not blame users"): SPEX infers the
// constraints from source code, and a vendor-embedded checker flags the
// violating line of the user's config file with an explanation — instead
// of letting the system crash, exit, or silently misbehave at runtime.
// Five violation categories are checked statically, mirroring the
// constraint taxonomy of Section 2.1: basic type, data range, unit scale,
// case sensitivity, and control dependency (plus value relationships and
// unknown-parameter typo detection, which fall out of the same data).
//
// Checking is a pure read over ModuleConstraints: any number of threads
// may check configs against the same constraints concurrently (the
// spex::Session TSan smoke test does exactly that).
#ifndef SPEX_API_CONFIG_CHECKER_H_
#define SPEX_API_CONFIG_CHECKER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/confgen/config_file.h"
#include "src/core/constraints.h"

namespace spex {

enum class ViolationCategory {
  kBasicType,     // Value does not parse as the parameter's basic type.
  kRange,         // Value outside the accepted numeric/enumerated range.
  kUnit,          // Unit-suffixed value for a plain-number parameter, or
                  // a suffix in the wrong scale (ms where seconds expected).
  kCase,          // Differs only in case from an accepted value of a
                  // case-sensitive parameter.
  kControlDep,    // Dependent parameter set while its master disables it.
  kValueRel,      // Violates an inferred cross-parameter relationship.
  kUnknownParam,  // Key matches no inferred parameter (likely a typo).
};

const char* ViolationCategoryName(ViolationCategory category);

// One file/line-addressable finding against a user's config file.
struct Violation {
  ViolationCategory category = ViolationCategory::kBasicType;
  std::string param;   // The offending key (primary parameter).
  std::string value;   // The value as written by the user.
  std::string file;    // Config file name as passed to the checker.
  uint32_t line = 0;   // 1-based line of the offending setting.
  std::string message; // Human-facing explanation with the expected form.
  SourceLoc constraint_loc;  // Where in the target's source the constraint
                             // was inferred (for "fix the code" reports).

  // "server.conf:12: [range] worker_threads = 99: <message>"
  std::string ToString() const;
};

// Checks every setting of `config` against `constraints`. Violations are
// reported in file order (then per-key category order), so output is
// deterministic and diffable.
std::vector<Violation> CheckConfigFile(const ModuleConstraints& constraints,
                                       const ConfigFile& config, std::string_view file_name);

// Convenience overload: parse `config_text` in `dialect`, then check.
std::vector<Violation> CheckConfigText(const ModuleConstraints& constraints,
                                       std::string_view config_text, ConfigDialect dialect,
                                       std::string_view file_name);

}  // namespace spex

#endif  // SPEX_API_CONFIG_CHECKER_H_
