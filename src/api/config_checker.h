// User-facing configuration checker: validate a concrete config file
// against inferred constraints *before* it reaches the target system.
//
// This is the paper's end goal ("do not blame users"): SPEX infers the
// constraints from source code, and a vendor-embedded checker flags the
// violating line of the user's config file with an explanation — instead
// of letting the system crash, exit, or silently misbehave at runtime.
// Five violation categories are checked statically, mirroring the
// constraint taxonomy of Section 2.1: basic type, data range, unit scale,
// case sensitivity, and control dependency (plus value relationships and
// unknown-parameter typo detection, which fall out of the same data).
//
// On top of the static pass, Target::CheckConfig has a *dynamic* mode
// (CheckMode::kDynamic): the settings that deviate from the target's
// template are replayed through the interpreter + simulated OS from the
// injection campaign's snapshot cache, and each Violation additionally
// carries the observed Table-3 reaction — what the system will actually do
// with the bad setting — plus the log evidence of the replay. The dynamic
// machinery lives in src/api/dynamic_check.h; this header only defines the
// mode/option types and the verdict-carrying fields of Violation.
//
// Static checking is a pure read over ModuleConstraints: any number of
// threads may check configs against the same constraints concurrently (the
// spex::Session TSan smoke test does exactly that).
#ifndef SPEX_API_CONFIG_CHECKER_H_
#define SPEX_API_CONFIG_CHECKER_H_

#include <chrono>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/confgen/config_file.h"
#include "src/core/constraints.h"
#include "src/inject/reaction.h"
#include "src/support/cancellation.h"

namespace spex {

enum class ViolationCategory {
  kBasicType,        // Value does not parse as the parameter's basic type.
  kRange,            // Value outside the accepted numeric/enumerated range.
  kUnit,             // Unit-suffixed value for a plain-number parameter, or
                     // a suffix in the wrong scale (ms where seconds expected).
  kCase,             // Differs only in case from an accepted value of a
                     // case-sensitive parameter.
  kControlDep,       // Dependent parameter set while its master disables it.
  kValueRel,         // Violates an inferred cross-parameter relationship.
  kUnknownParam,     // Key matches no inferred parameter (likely a typo).
  kDynamicReaction,  // Passed every static constraint, but the dynamic
                     // replay observed a Table-3 vulnerability reaction.
  kPermission,       // Octal-mode/ACL parameter outside its permission
                     // policy: grants bits the code treats as dangerous
                     // (too permissive) or drops bits the system needs to
                     // function (too restrictive), or is not a mode at all.
};

inline constexpr size_t kViolationCategoryCount = 9;
static_assert(kViolationCategoryCount ==
                  static_cast<size_t>(ViolationCategory::kPermission) + 1,
              "keep kViolationCategoryCount in sync with the enum — arrays "
              "indexed by static_cast<size_t>(category) are sized by it");

const char* ViolationCategoryName(ViolationCategory category);

// How Target::CheckConfig examines a config file.
enum class CheckMode {
  // Constraint checks only (the default): pure read, no execution.
  kStatic,
  // Static checks *plus* a replay of the user's template-delta through the
  // interpreter: every Violation gains the observed ReactionCategory, and
  // vulnerabilities the static pass cannot see (silent clamps, late
  // failures) are reported as kDynamicReaction violations.
  kDynamic,
};

// Options for Target::CheckConfig. Value type, freely copyable; one
// options struct may serve any number of concurrent checks.
struct CheckOptions {
  CheckMode mode = CheckMode::kStatic;
  // Dynamic mode only: replay from the campaign's persistent snapshot
  // cache (default) or force a ground-truth full replay per suspect.
  // Verdicts are bit-identical either way — the flag exists so tests and
  // embedders can prove exactly that.
  bool use_parse_snapshot = true;
  // Dynamic mode only: per-suspect replay budget (0 = unlimited). A replay
  // that exceeds it is cut off at the interpreter's next cancellation poll
  // and reported with ReactionCategory::kDeadlineExceeded — a verdict about
  // the *check's* time budget, never conflated with the target hanging.
  // The budget restarts per suspect, so one pathological setting cannot
  // starve the verdicts of its file-mates.
  std::chrono::nanoseconds deadline{0};
  // Borrowed request-wide kill switch (may be null; must outlive the
  // check). Firing it — from any thread, at any time — converts every
  // replay not yet finished to kDeadlineExceeded; static results produced
  // so far are returned as-is. This is how a serving layer detaches a
  // check whose client has gone away.
  const CancelToken* cancel = nullptr;
};

// One file/line-addressable finding against a user's config file.
struct Violation {
  ViolationCategory category = ViolationCategory::kBasicType;
  std::string param;   // The offending key (primary parameter).
  std::string value;   // The value as written by the user.
  std::string file;    // Config file name as passed to the checker.
  uint32_t line = 0;   // 1-based line of the offending setting.
  std::string message; // Human-facing explanation with the expected form.
  SourceLoc constraint_loc;  // Where in the target's source the constraint
                             // was inferred (for "fix the code" reports).
  // Multi-file checks only (src/api/config_set.h): the assignments this
  // setting's effective value overrode ("overridden at base.conf:5 ...")
  // and, for cross-parameter findings, the file the peer parameter
  // resolved from. Empty for single-file checks — the field is additive,
  // so a flattened-set violation stays bit-identical to its single-file
  // twin in every other field.
  std::string override_note;

  // --- Dynamic-mode verdict (nullopt/empty after a static-only check).
  // The Table-3 reaction observed when the user's delta was replayed
  // through the interpreter; IsVulnerability(*reaction) says whether the
  // system mishandles the setting.
  std::optional<ReactionCategory> reaction;
  // Replay observable behind the verdict: trap reason, failing test, or
  // the effective value the system silently substituted.
  std::string reaction_detail;
  // Log lines the system emitted during the replay (pinpointing evidence,
  // or the absence that makes a reaction "silent").
  std::vector<std::string> evidence_logs;
  // One-sentence "what the system will do with this setting" message.
  std::string prediction;

  // "server.conf:12: [range] worker_threads = 99: <message>"; dynamic
  // verdicts append " | observed: <reaction> — <prediction>".
  std::string ToString() const;
};

// Checks every setting of `config` against `constraints` — the static
// pass. Violations are reported in file order (then per-key category
// order), so output is deterministic and diffable.
std::vector<Violation> CheckConfigFile(const ModuleConstraints& constraints,
                                       const ConfigFile& config, std::string_view file_name);

// Numeric meaning of a config value: a strict integer, or a boolean word
// ("on"/"off"/"yes"/"no"...) as 1/0, else nullopt. Shared by the static
// cross-parameter checks and the dynamic suspect builder (a replayed "off"
// must carry intent 0, or a well-behaved boolean parser would be
// misreported as silently accepting garbage).
std::optional<int64_t> EffectiveConfigInt(std::string_view value);

// A value of the form `<integer><unit-suffix>` ("500ms", "9G", "2 min").
// Parsers built on atoi silently drop the suffix, so these are exactly the
// inputs where a pre-flight unit check — and a dynamic replay with the
// right numeric intent — saves the user. The bare "m" suffix is ambiguous
// (minutes or megabytes): both fields are set and the consumer picks the
// interpretation matching the parameter's inferred unit kind.
struct SuffixedConfigValue {
  int64_t magnitude = 0;
  TimeUnit time_unit = TimeUnit::kNone;
  SizeUnit size_unit = SizeUnit::kNone;
};

// nullopt for plain numbers, plain text, and unknown suffixes.
std::optional<SuffixedConfigValue> ParseSuffixedConfigValue(std::string_view text);

// A Unix permission mode as users write them: octal digits, optional
// leading zeros ("644", "0644", "02755"), at most the 12 mode bits
// (07777). nullopt for anything else — including decimal-looking values
// with digits 8/9, which an octal-expecting parser would reject or,
// worse, strtol-with-base-8 would silently truncate.
std::optional<uint32_t> ParseOctalMode(std::string_view text);

// Convenience overload: parse `config_text` in `dialect`, then check.
std::vector<Violation> CheckConfigText(const ModuleConstraints& constraints,
                                       std::string_view config_text, ConfigDialect dialect,
                                       std::string_view file_name);

}  // namespace spex

#endif  // SPEX_API_CONFIG_CHECKER_H_
