#include "src/api/dynamic_check.h"

#include <algorithm>
#include <unordered_set>

namespace spex {

namespace {

int64_t TimeUnitInMicros(TimeUnit unit) {
  switch (unit) {
    case TimeUnit::kMicroseconds:
      return 1;
    case TimeUnit::kMilliseconds:
      return 1'000;
    case TimeUnit::kSeconds:
      return 1'000'000;
    case TimeUnit::kMinutes:
      return 60'000'000;
    case TimeUnit::kHours:
      return 3'600'000'000LL;
    case TimeUnit::kNone:
      break;
  }
  return 1'000'000;  // Treat unitless as seconds, the common config base.
}

int64_t SizeUnitInBytes(SizeUnit unit) {
  switch (unit) {
    case SizeUnit::kBytes:
      return 1;
    case SizeUnit::kKilobytes:
      return 1024;
    case SizeUnit::kMegabytes:
      return 1024 * 1024;
    case SizeUnit::kGigabytes:
      return 1024LL * 1024 * 1024;
    case SizeUnit::kNone:
      break;
  }
  return 1;  // Treat unitless as bytes.
}

// `magnitude * factor / divisor` with overflow detection — config text is
// untrusted input, and "9999999999h" must not be signed-overflow UB inside
// the checker. nullopt when the user's intent has no int64 representation
// (which also correctly suppresses the silent-violation comparison).
std::optional<int64_t> ScaledIntent(int64_t magnitude, int64_t factor, int64_t divisor) {
  int64_t scaled = 0;
  if (__builtin_mul_overflow(magnitude, factor, &scaled)) {
    return std::nullopt;
  }
  return scaled / divisor;
}

// What a user writing `value` means numerically, in the parameter's own
// unit. A "500ms" on a seconds parameter means 0 (integer scale-down): the
// honest comparison point for the silent-violation check, since the parser
// will read 500 and be off by the scale factor.
std::optional<int64_t> IntendedNumeric(const ParamConstraints* param, const std::string& value) {
  auto effective = EffectiveConfigInt(value);
  if (effective.has_value()) {
    return effective;
  }
  auto suffixed = ParseSuffixedConfigValue(value);
  if (!suffixed.has_value()) {
    return std::nullopt;
  }
  TimeUnit param_time = param != nullptr ? param->time_unit : TimeUnit::kNone;
  SizeUnit param_size = param != nullptr ? param->size_unit : SizeUnit::kNone;
  // Prefer the interpretation matching the parameter's inferred unit kind
  // (the bare "m" suffix is both minutes and megabytes).
  if (suffixed->time_unit != TimeUnit::kNone &&
      (param_time != TimeUnit::kNone || suffixed->size_unit == SizeUnit::kNone)) {
    return ScaledIntent(suffixed->magnitude, TimeUnitInMicros(suffixed->time_unit),
                        TimeUnitInMicros(param_time));
  }
  if (suffixed->size_unit != SizeUnit::kNone) {
    return ScaledIntent(suffixed->magnitude, SizeUnitInBytes(suffixed->size_unit),
                        param_size != SizeUnit::kNone ? SizeUnitInBytes(param_size) : 1);
  }
  return std::nullopt;
}

bool IsAcceptedEnumWord(const ParamConstraints* param, const std::string& value) {
  if (param == nullptr || !param->range.has_value() || !param->range->is_enum) {
    return false;
  }
  const std::vector<std::string>& accepted = param->range->enum_strings;
  return std::find(accepted.begin(), accepted.end(), value) != accepted.end();
}

}  // namespace

std::vector<Misconfiguration> BuildDynamicSuspects(
    const ModuleConstraints& constraints, const ConfigFile& template_config,
    const ConfigFile& config, const std::vector<Violation>& static_violations) {
  // One first-occurrence user setting plus what the static pass said about
  // it (matching on param *and* value — with duplicate keys, a violation
  // about a later occurrence's value must not adopt the replayed value's
  // identity).
  struct DeltaSetting {
    std::string key;
    std::string value;
    const Violation* flagged = nullptr;  // First matching static violation.
    bool control_dep = false;
    bool value_rel = false;
  };
  auto annotate = [&](DeltaSetting* delta) {
    for (const Violation& violation : static_violations) {
      if (violation.param != delta->key || violation.value != delta->value) {
        continue;
      }
      if (delta->flagged == nullptr) {
        delta->flagged = &violation;
      }
      delta->control_dep |= violation.category == ViolationCategory::kControlDep;
      delta->value_rel |= violation.category == ViolationCategory::kValueRel;
    }
  };

  // The user's delta: first-occurrence settings whose value deviates from
  // the template (ConfigFile::Get resolves duplicates to the first setting,
  // matching what the replayed parse applies). A template-valued setting
  // is still a delta when the static pass flagged it — a dependent equal
  // to its template default is as silently ignored as any other value
  // once the user's master disables it, and the verdict contract promises
  // every violation its observed reaction.
  std::vector<DeltaSetting> deltas;
  std::unordered_set<std::string> seen;
  seen.reserve(config.entries().size());
  for (const ConfigEntry& entry : config.entries()) {
    if (entry.kind != ConfigEntry::Kind::kSetting || !seen.insert(entry.key).second) {
      continue;
    }
    DeltaSetting delta;
    delta.key = entry.key;
    delta.value = entry.value;
    annotate(&delta);
    auto template_value = template_config.Get(entry.key);
    if (template_value.has_value() && *template_value == entry.value &&
        delta.flagged == nullptr) {
      continue;  // Matches the known-good baseline and nobody flagged it.
    }
    deltas.push_back(std::move(delta));
  }

  std::vector<Misconfiguration> suspects;
  suspects.reserve(deltas.size());
  for (const DeltaSetting& delta : deltas) {
    const std::string& key = delta.key;
    const std::string& value = delta.value;
    const ParamConstraints* param = constraints.FindParam(key);
    bool control_dep = delta.control_dep;
    bool value_rel = delta.value_rel;
    const Violation* flagged = delta.flagged;
    if (flagged == nullptr && IsAcceptedEnumWord(param, value)) {
      // A statically-clean enum word ("json") exercises the handler path
      // the template already proved; its handler-mapped storage (1) would
      // only misread as a silent violation of the word.
      continue;
    }

    Misconfiguration suspect;
    suspect.param = key;
    suspect.value = value;
    if (control_dep) {
      suspect.kind = ViolationKind::kControlDep;
    } else if (value_rel) {
      suspect.kind = ViolationKind::kValueRel;
    } else if (flagged != nullptr && flagged->category == ViolationCategory::kRange) {
      suspect.kind = ViolationKind::kRange;
    } else {
      suspect.kind = ViolationKind::kBasicType;
    }
    suspect.rule = flagged != nullptr
                       ? std::string("user-config delta flagged as ") +
                             ViolationCategoryName(flagged->category)
                       : "user-config delta";
    // A dependent set while its master disables it — and an unknown key no
    // handler claims — should be *consumed* or called out; silence is the
    // Table-3 ignorance row.
    suspect.expect_ignored = control_dep || param == nullptr;
    suspect.intended_numeric = IntendedNumeric(param, value);
    if (param != nullptr) {
      suspect.constraint_loc = param->loc;
    }
    if (flagged != nullptr && flagged->constraint_loc.IsValid()) {
      suspect.constraint_loc = flagged->constraint_loc;
    }
    suspects.push_back(std::move(suspect));
  }

  // Each suspect replays in isolation — one bad setting must not smear its
  // reaction (a crash, say) over every other finding in the file — except
  // for its cross-parameter partners, which are the point of the finding:
  // a flagged dependent replays with the user's master value (the
  // ignorance only manifests while the master disables it), a flagged
  // relationship lhs replays with the user's rhs. This mirrors the
  // campaign generator's key-sets exactly, so a post-RunCampaign dynamic
  // check finds every suspect's prefix snapshot already built.
  for (Misconfiguration& suspect : suspects) {
    auto add_partner = [&](const std::string& partner) {
      if (partner == suspect.param) {
        return;
      }
      auto user_value = config.Get(partner);
      if (!user_value.has_value()) {
        return;
      }
      for (const auto& [key, value] : suspect.extra_settings) {
        if (key == partner) {
          return;
        }
      }
      suspect.extra_settings.emplace_back(partner, *user_value);
    };
    if (suspect.kind == ViolationKind::kControlDep) {
      for (const ControlDepConstraint& dep : constraints.control_deps) {
        if (dep.dependent == suspect.param) {
          add_partner(dep.master);
        }
      }
    }
    if (suspect.kind == ViolationKind::kValueRel) {
      for (const ValueRelConstraint& rel : constraints.value_rels) {
        if (rel.lhs == suspect.param) {
          add_partner(rel.rhs);
        }
      }
    }
  }
  return suspects;
}

std::string DescribeReaction(const InjectionResult& result) {
  std::string detail = result.detail.empty() ? "" : " (" + result.detail + ")";
  switch (result.category) {
    case ReactionCategory::kCrashHang:
      return "the system will crash or hang" + detail;
    case ReactionCategory::kEarlyTermination:
      return "the system will terminate at startup without pinpointing this setting" + detail;
    case ReactionCategory::kFunctionalFailure:
      return "the system will start, then fail later without pinpointing this setting" +
             detail;
    case ReactionCategory::kSilentViolation:
      return "the system will silently use a different value than configured" + detail;
    case ReactionCategory::kSilentIgnorance:
      return "the system will silently ignore this setting" + detail;
    case ReactionCategory::kGoodReaction:
      return "the system detects this setting and pinpoints it in its error message" + detail;
    case ReactionCategory::kNoIssue:
      return "the system tolerates this setting" + detail;
    case ReactionCategory::kDeadlineExceeded:
      return "the check ran out of time before observing the system's reaction" + detail;
  }
  return detail;
}

void AttachReactions(const std::vector<Misconfiguration>& suspects,
                     const std::vector<InjectionResult>& results, const ConfigFile& config,
                     std::string_view file_name, std::vector<Violation>* violations) {
  size_t count = std::min(suspects.size(), results.size());
  for (size_t i = 0; i < count; ++i) {
    const Misconfiguration& suspect = suspects[i];
    const InjectionResult& result = results[i];
    std::string prediction = DescribeReaction(result);
    bool matched = false;
    for (Violation& violation : *violations) {
      // Match on param *and* value: with duplicate keys in the user's
      // file, only the first occurrence is replayed (ConfigFile::Get
      // semantics), and a violation flagging a later occurrence's value
      // must not inherit a verdict observed for a different value.
      if (violation.param != suspect.param || violation.value != suspect.value) {
        continue;
      }
      violation.reaction = result.category;
      violation.reaction_detail = result.detail;
      violation.evidence_logs = result.logs;
      violation.prediction = prediction;
      matched = true;
    }
    if (matched || !IsVulnerability(result.category)) {
      continue;
    }
    // The static pass had nothing to say, yet the system mishandles the
    // setting — the finding only a dynamic replay can produce.
    Violation violation;
    violation.category = ViolationCategory::kDynamicReaction;
    violation.param = suspect.param;
    violation.value = suspect.value;
    violation.file = std::string(file_name);
    violation.line = config.LineOf(suspect.param);
    violation.message =
        "setting satisfies every inferred constraint, but replaying it shows the system "
        "mishandling it";
    violation.constraint_loc = result.vulnerability_loc;
    violation.reaction = result.category;
    violation.reaction_detail = result.detail;
    violation.evidence_logs = result.logs;
    violation.prediction = std::move(prediction);
    violations->push_back(std::move(violation));
  }
  std::stable_sort(violations->begin(), violations->end(),
                   [](const Violation& a, const Violation& b) { return a.line < b.line; });
}

}  // namespace spex
