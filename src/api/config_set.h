// Multi-file configuration sets: includes, overrides, provenance.
//
// Real fleets rarely ship one flat config file. They layer them: a base
// file `include`s site- and host-specific fragments, later assignments
// override earlier ones, and the value the system actually runs with may
// come from a file three includes away from where the operator is
// looking. The paper's checker (and everything above it in this repo)
// checks one file at a time; this layer resolves an ordered *set* of
// files into the one flattened effective config the target would see,
// while remembering where every winning and shadowed assignment came
// from — so a violation can point at conf.d/override.conf:2 instead of
// "somewhere in your include tree".
//
// Resolution semantics (deliberately the common-denominator of Apache/
// Squid/MySQL-style loaders):
//   - Files are expanded depth-first in directive order: an `include`
//     applies the included file's assignments at the point of the
//     directive, then continues with the including file.
//   - `include "file"` / `include file` / `include = file` all name one
//     file (quotes optional); `include_dir dir` applies every loadable
//     file under `dir` in sorted name order. Operands resolve relative
//     to the *including* file's directory.
//   - Last assignment wins. The effective config holds each key once, at
//     the position of its first assignment, with the value of its last —
//     exactly what ConfigFile::Set would have produced replaying the
//     assignments in order.
//   - Faults are contained per set, never fatal: a missing include, an
//     include cycle, a too-deep chain or an include bomb each produce a
//     ConfigSetError record and resolution continues with what it has.
//     Only an unloadable *root* leaves the set unresolved.
//
// The companion check path, Target::CheckConfigSet (src/api/session.h),
// feeds the flattened configs through CheckConfigBatch, so a suspect's
// execution identity is the *effective* value: two fleets that differ
// only in include structure deduplicate to the same replay. Checking a
// resolved set is bit-identical to checking its serialized effective
// config as a single file — same violations, same verdicts, same batch
// counters, at every thread count — except that violations are
// re-addressed to the winning assignment's file:line and annotated with
// the assignments they override (tests/config_set_test.cc proves this
// differentially).
//
// Thread-safety: resolution is a pure function of the source; distinct
// ResolveConfigSet calls may run concurrently (a ConfigSetSource shared
// across threads must itself be thread-safe — both implementations here
// are read-only after construction).
#ifndef SPEX_API_CONFIG_SET_H_
#define SPEX_API_CONFIG_SET_H_

#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/batch_check.h"
#include "src/confgen/config_file.h"
#include "src/support/status.h"

namespace spex {

// One contained resolution fault. `file`:`line` address the directive
// that failed (empty file for a fault on the root itself); `target` is
// what the directive named.
struct ConfigSetError {
  enum class Kind {
    kMissingInclude,  // Named file/dir not loadable (or empty operand).
    kIncludeCycle,    // Target is already on the expansion stack.
    kDepthExceeded,   // Include chain deeper than max_include_depth.
    kTooManyFiles,    // Expansion hit max_files (include bomb guard).
  };
  Kind kind = Kind::kMissingInclude;
  std::string file;
  uint32_t line = 0;
  std::string target;

  // "base.conf:3: include cycle: 'a.conf' is already being included".
  std::string ToString() const;
};

const char* ConfigSetErrorKindName(ConfigSetError::Kind kind);

// One assignment as written in one source file.
struct SettingOrigin {
  std::string file;
  uint32_t line = 0;
  std::string value;
};

// Where a key's effective value came from, and every assignment it
// overrode (in resolution order — earliest first).
struct SettingProvenance {
  std::string key;
  SettingOrigin winner;
  std::vector<SettingOrigin> shadowed;
};

// Containment limits for one resolution. Freely copyable.
struct ConfigSetOptions {
  size_t max_include_depth = 16;
  size_t max_files = 256;
};

// The flattened result of resolving one root file.
struct ResolvedConfigSet {
  std::string name;      // Root file name; the report identity downstream.
  ConfigFile effective;  // Flattened last-wins config (settings only).
  // One entry per effective key, in effective-file order.
  std::vector<SettingProvenance> provenance;
  std::vector<ConfigSetError> errors;
  size_t files_resolved = 0;

  // False only when the root itself could not be loaded — every other
  // fault is contained and leaves a (partial) effective config.
  bool resolved() const { return files_resolved > 0; }
  const SettingProvenance* FindProvenance(std::string_view key) const;
};

// Where the resolver loads files from. Load returns the file's text or
// nullopt; ListDir returns the loadable names directly under `dir` in
// sorted order, or nullopt when `dir` itself is not listable. Names
// passed in are already joined relative to the including file.
class ConfigSetSource {
 public:
  virtual ~ConfigSetSource() = default;
  virtual std::optional<std::string> Load(const std::string& name) = 0;
  virtual std::optional<std::vector<std::string>> ListDir(const std::string& dir) = 0;
};

// In-memory source over a fixed set of named files (tests, spexcheckd
// request bodies). A "directory" is the set of names under `dir` + "/".
class MemoryConfigSetSource : public ConfigSetSource {
 public:
  explicit MemoryConfigSetSource(std::span<const ConfigInput> files);

  std::optional<std::string> Load(const std::string& name) override;
  std::optional<std::vector<std::string>> ListDir(const std::string& dir) override;

 private:
  std::map<std::string, std::string> files_;
};

// One multi-file config for Target::CheckConfigSet: files[0] is the root,
// the rest are the loadable set its includes may name. `name` overrides
// the report identity (defaults to the root file's name).
struct ConfigSetInput {
  std::string name;
  std::vector<ConfigInput> files;
};

// Resolves `root_name` through `source`. Never throws, never crashes on
// hostile input: every fault is an error record on the result.
ResolvedConfigSet ResolveConfigSet(const std::string& root_name, ConfigSetSource& source,
                                   ConfigDialect dialect, const ConfigSetOptions& options = {});

// Convenience: resolve files[0] against an in-memory source of `files`.
ResolvedConfigSet ResolveConfigSet(std::span<const ConfigInput> files, ConfigDialect dialect,
                                   const ConfigSetOptions& options = {});

// Detects the include-directive spelling of a parsed entry in either
// dialect (`include "x"`, `include x`, `include = x`; same for
// include_dir). Quotes/angle brackets around the operand are stripped.
// Returns true with *is_dir and *operand set; an empty operand is still
// a directive (the resolver reports it as a missing include).
bool ParseIncludeDirective(const ConfigEntry& entry, bool* is_dir, std::string* operand);

// Lexically joins an include operand against the including file's
// directory ("conf.d/a.conf" + "../base.conf" -> "base.conf"); absolute
// operands pass through. Pure string math, no filesystem access.
std::string JoinIncludePath(std::string_view including_file, std::string_view operand);

// Re-addresses violations produced by checking `set.effective` as a
// single file: file/line become the winning assignment's origin, and
// `Violation::override_note` gains the shadowed assignments plus — for
// cross-parameter findings — the file the peer parameter resolved from
// when it differs. Every other field is left bit-identical.
void RewriteViolationsWithProvenance(const ResolvedConfigSet& set,
                                     const ModuleConstraints& constraints,
                                     std::vector<Violation>* violations);

// Parses a spexcheckd /check config-set body:
//   {"files":[{"name":"base.conf","text":"a = 1\n"}, ...]}
// Strict about shape, tolerant about whitespace; standard JSON string
// escapes (incl. \uXXXX) are decoded. kInvalidArgument names the first
// offense; hostile input never crashes (tests/parser_robustness_test.cc).
Status ParseConfigSetJson(std::string_view body, ConfigSetInput* out);

}  // namespace spex

#endif  // SPEX_API_CONFIG_SET_H_
