#include "src/api/session.h"

#include <utility>

#include "src/api/dynamic_check.h"
#include "src/ir/lowering.h"
#include "src/lang/parser.h"
#include "src/support/hashing.h"
#include "src/support/verdict_store.h"

namespace spex {

Session::Session(SessionOptions options)
    : options_(std::move(options)),
      apis_(ApiRegistry::BuiltinC()),
      boundary_epoch_(BoundaryStringPool()) {
  if (!options_.custom_api_spec.empty()) {
    apis_.ImportSpec(options_.custom_api_spec, &diags_);
  }
}

Session::~Session() = default;

ThreadPool* Session::worker_pool() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(
        ThreadPool::ResolveThreadCount(options_.campaign_threads));
  }
  return pool_.get();
}

bool Session::ok() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !diags_.HasErrors();
}

std::string Session::RenderDiagnostics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return diags_.Render();
}

Target* Session::LoadSource(std::string_view source, std::string_view annotations,
                            std::string_view name, ConfigDialect dialect, SutSpec sut,
                            std::string_view template_config) {
  TargetAnalysis analysis;
  analysis.bundle.name = std::string(name);
  analysis.bundle.display_name = std::string(name);
  analysis.bundle.dialect = dialect;
  analysis.bundle.source = std::string(source);
  analysis.bundle.annotations = std::string(annotations);
  analysis.bundle.sut = std::move(sut);
  analysis.bundle.template_config = std::string(template_config);

  std::lock_guard<std::mutex> lock(mutex_);
  // Failure is per load: diagnostics accumulate for reporting, but a bad
  // load must not poison later loads of valid sources.
  size_t errors_before = diags_.error_count();
  auto failed = [&] { return diags_.error_count() > errors_before; };
  auto unit = ParseSource(analysis.bundle.source, analysis.bundle.name, &diags_);
  if (failed()) {
    return nullptr;
  }
  analysis.module = LowerToIr(*unit, &diags_);
  if (failed()) {
    return nullptr;
  }
  analysis.engine = std::make_unique<SpexEngine>(*analysis.module, apis_, options_.engine);
  AnnotationFile annotation_file = ParseAnnotations(analysis.bundle.annotations, &diags_);
  analysis.lines_of_annotation = annotation_file.lines_of_annotation;
  analysis.constraints = analysis.engine->Run(annotation_file, &diags_);
  if (failed()) {
    return nullptr;
  }
  targets_.push_back(
      std::unique_ptr<Target>(new Target(this, std::move(analysis))));
  return targets_.back().get();
}

Target* Session::LoadTarget(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t errors_before = diags_.error_count();
  TargetAnalysis analysis = AnalyzeTarget(FindTarget(name), apis_, &diags_, options_.engine);
  if (diags_.error_count() > errors_before) {
    return nullptr;
  }
  targets_.push_back(
      std::unique_ptr<Target>(new Target(this, std::move(analysis))));
  return targets_.back().get();
}

std::vector<CorpusCampaignResult> Session::RunCorpusCampaigns(
    const std::vector<std::string>& target_names, CampaignOptions options,
    size_t num_workers) {
  // Corpus runs respect the session's resource contract: serialized with
  // every other campaign, and capped at SessionOptions::campaign_threads
  // unless the caller asks for a specific worker count.
  std::lock_guard<std::mutex> lock(campaign_serial_mutex_);
  if (num_workers == 0) {
    num_workers = options_.campaign_threads;
  }
  return spex::RunCorpusCampaigns(target_names, apis_, options, num_workers,
                                  options_.engine);
}

Target::Target(Session* session, TargetAnalysis analysis)
    : session_(session),
      analysis_(std::move(analysis)),
      template_config_(ConfigFile::Parse(analysis_.bundle.template_config,
                                         analysis_.bundle.dialect)) {}

std::vector<Violation> Target::CheckConfig(std::string_view config_text,
                                           std::string_view file_name) const {
  return CheckConfigText(analysis_.constraints, config_text, analysis_.bundle.dialect,
                         file_name);
}

bool Target::SupportsDynamicCheck() const {
  return template_config_.SettingCount() > 0 && analysis_.module != nullptr &&
         analysis_.module->FindFunction(analysis_.bundle.sut.parse_function) != nullptr &&
         analysis_.module->FindFunction(analysis_.bundle.sut.init_function) != nullptr;
}

std::shared_ptr<InjectionCampaign> Target::EnsureCampaign() {
  std::lock_guard<std::mutex> lock(campaign_mutex_);
  if (campaign_ == nullptr) {
    // First dynamic check before any RunCampaign: default options, so a
    // later default RunCampaign reuses this campaign (and its snapshots).
    campaign_ = std::make_shared<InjectionCampaign>(*analysis_.module, analysis_.bundle.sut,
                                                    OsSimulator::StandardEnvironment(),
                                                    campaign_options_);
    if (verdict_store_ != nullptr) {
      campaign_->AttachVerdictStore(verdict_store_, StoreScopeLocked());
    }
  }
  return campaign_;
}

namespace {

// One scope field, length-prefixed like the execution key itself: target
// sources and SUT specs are free text, so no separator is safe.
void AppendScopeField(std::string* scope, std::string_view field) {
  *scope += std::to_string(field.size());
  *scope += ':';
  *scope += field;
}

}  // namespace

std::string Target::StoreScopeLocked() const {
  // Everything that could change a replay's verdict besides the template
  // (the campaign folds the template in per call) — a change to any of
  // these lands stored verdicts in a fresh scope, so they re-check cold.
  // Deliberately absent: num_threads, use_parse_snapshot, worker_pool —
  // the bit-identity machinery guarantees verdicts do not depend on them.
  // Sources can be large, so they enter as stable 64-bit digests.
  const TargetBundle& bundle = analysis_.bundle;
  std::string scope = "spex-scope-v1|";
  AppendScopeField(&scope, bundle.name);
  scope += std::to_string(static_cast<int>(bundle.dialect));
  scope += '|';
  scope += std::to_string(Fnv1a64(bundle.source));
  scope += '|';
  scope += std::to_string(Fnv1a64(bundle.annotations));
  scope += '|';
  AppendScopeField(&scope, bundle.sut.parse_function);
  AppendScopeField(&scope, bundle.sut.init_function);
  scope += std::to_string(bundle.sut.tests.size());
  for (const TestCase& test : bundle.sut.tests) {
    AppendScopeField(&scope, test.name);
    AppendScopeField(&scope, test.function);
    scope += std::to_string(test.expected);
    scope += ',';
    scope += std::to_string(test.cost_hint);
    scope += ';';
  }
  for (const auto& [param, storage] : bundle.sut.param_storage) {
    AppendScopeField(&scope, param);
    AppendScopeField(&scope, storage);
  }
  scope += campaign_options_.stop_at_first_failure ? '1' : '0';
  scope += campaign_options_.sort_tests_by_cost ? '1' : '0';
  scope += std::to_string(campaign_options_.interp.max_steps);
  scope += ',';
  scope += std::to_string(campaign_options_.interp.max_call_depth);
  return scope;
}

void Target::AttachVerdictStore(std::shared_ptr<VerdictStore> store) {
  std::lock_guard<std::mutex> lock(campaign_mutex_);
  verdict_store_ = std::move(store);
  if (campaign_ != nullptr) {
    campaign_->AttachVerdictStore(verdict_store_, StoreScopeLocked());
  }
}

std::shared_ptr<VerdictStore> Target::verdict_store() {
  std::lock_guard<std::mutex> lock(campaign_mutex_);
  return verdict_store_;
}

std::vector<Violation> Target::CheckConfig(std::string_view config_text,
                                           std::string_view file_name,
                                           const CheckOptions& options) {
  ConfigFile config = ConfigFile::Parse(config_text, analysis_.bundle.dialect);
  std::vector<Violation> violations =
      CheckConfigFile(analysis_.constraints, config, file_name);
  if (options.mode != CheckMode::kDynamic || !SupportsDynamicCheck()) {
    return violations;
  }
  std::vector<Misconfiguration> suspects =
      BuildDynamicSuspects(analysis_.constraints, template_config_, config, violations);
  if (suspects.empty()) {
    return violations;
  }
  // The shared_ptr keeps the campaign (and the probe context + snapshot
  // pools the replay touches) alive even if another thread swaps the
  // target's campaign for one with different options mid-check.
  std::shared_ptr<InjectionCampaign> campaign = EnsureCampaign();
  ReplayLimits limits;
  limits.cancel = options.cancel;
  limits.per_replay_deadline = options.deadline;
  std::vector<InjectionResult> results = campaign->ReplayExternal(
      template_config_, suspects, options.use_parse_snapshot, nullptr, 1, limits);
  AttachReactions(suspects, results, config, file_name, &violations);
  return violations;
}

BatchSummary Target::CheckConfigBatch(std::span<const ConfigInput> configs,
                                      const BatchOptions& options, BatchObserver* observer) {
  // Dynamic batches share the target's persistent campaign (and its
  // snapshot cache) with single checks and RunCampaign; targets that
  // cannot be driven dynamically degrade to the static result per config,
  // exactly like CheckConfig.
  const bool dynamic = options.check.mode == CheckMode::kDynamic && SupportsDynamicCheck();
  std::shared_ptr<InjectionCampaign> campaign;
  if (dynamic) {
    campaign = EnsureCampaign();
  }
  if (options.num_threads != 1) {
    // Sharded batches Wait() on the shared pool, which drains its whole
    // queue — take the session-wide campaign serialization lock, exactly
    // like RunCampaign.
    std::lock_guard<std::mutex> lock(session_->campaign_serial_mutex_);
    return RunBatchCheck(analysis_.constraints, template_config_, dialect(), campaign.get(),
                         session_->worker_pool(), configs, options, observer);
  }
  return RunBatchCheck(analysis_.constraints, template_config_, dialect(), campaign.get(),
                       nullptr, configs, options, observer);
}

BatchSummary Target::CheckConfigSet(std::span<const ConfigSetInput> sets,
                                    const BatchOptions& options, BatchObserver* observer,
                                    std::vector<ResolvedConfigSet>* resolutions,
                                    const ConfigSetOptions& set_options) {
  std::vector<ResolvedConfigSet> local;
  std::vector<ResolvedConfigSet>& resolved = resolutions != nullptr ? *resolutions : local;
  resolved.clear();
  resolved.reserve(sets.size());
  for (const ConfigSetInput& set : sets) {
    ResolvedConfigSet resolution = ResolveConfigSet(set.files, dialect(), set_options);
    if (!set.name.empty()) {
      resolution.name = set.name;
    }
    resolved.push_back(std::move(resolution));
  }
  return CheckResolvedConfigSets(resolved, options, observer);
}

BatchSummary Target::CheckResolvedConfigSets(std::span<const ResolvedConfigSet> sets,
                                             const BatchOptions& options,
                                             BatchObserver* observer) {
  std::vector<ConfigInput> effective;
  effective.reserve(sets.size());
  for (const ResolvedConfigSet& resolution : sets) {
    effective.push_back(ConfigInput{resolution.name, resolution.effective.Serialize()});
  }
  // The batch sees only the flattened configs, so dedup across sets keys
  // on effective values exactly as it does for single files. The observer
  // is withheld here and replayed below: reports stream only after their
  // violations have been re-addressed to winning-assignment origins.
  BatchSummary summary = CheckConfigBatch(effective, options, nullptr);
  for (size_t i = 0; i < summary.reports.size() && i < sets.size(); ++i) {
    ConfigReport& report = summary.reports[i];
    const ResolvedConfigSet& resolution = sets[i];
    if (!resolution.resolved()) {
      if (report.status.ok()) {
        ++summary.configs_with_errors;
      }
      std::string detail = resolution.errors.empty() ? std::string("no files resolved")
                                                     : resolution.errors.front().ToString();
      report.status =
          Status::InvalidArgument("config set '" + resolution.name + "' unresolvable: " + detail);
      continue;  // An empty effective config produced no violations to rewrite.
    }
    RewriteViolationsWithProvenance(resolution, analysis_.constraints, &report.violations);
  }
  if (observer != nullptr) {
    observer->OnBatchBegin(summary.reports.size());
    for (const ConfigReport& report : summary.reports) {
      observer->OnConfigChecked(report.index, report);
    }
    observer->OnBatchEnd(summary);
  }
  return summary;
}

const std::vector<Misconfiguration>& Target::MisconfigsLocked() {
  if (!misconfigs_ready_) {
    MisconfigGenerator generator;
    misconfigs_ = generator.Generate(analysis_.constraints);
    misconfigs_ready_ = true;
  }
  return misconfigs_;
}

const std::vector<Misconfiguration>& Target::Misconfigurations() {
  std::lock_guard<std::mutex> lock(campaign_mutex_);
  return MisconfigsLocked();
}

CampaignSummary Target::RunCampaign(CampaignOptions options, CampaignObserver* observer) {
  // Parallel campaigns run on the session's shared pool; everything else
  // about the campaign (snapshot cache, worker contexts) is per-target
  // state that persists across calls so later batches reuse the cached
  // prefixes. Campaigns are serialized session-wide: the shared pool's
  // Wait() drains its whole queue, so two concurrent campaigns on one
  // pool would block on each other's tasks anyway.
  std::lock_guard<std::mutex> session_lock(session_->campaign_serial_mutex_);
  if (options.num_threads != 1) {
    options.worker_pool = session_->worker_pool();
  }
  InjectionCampaign* campaign = nullptr;
  {
    // campaign_mutex_ is released before RunAll so observer callbacks (and
    // other threads) may call Misconfigurations()/campaign_cache_stats()
    // mid-campaign without deadlocking; campaign_/misconfigs_ are stable
    // for the duration because campaign_serial_mutex_ is held.
    std::lock_guard<std::mutex> lock(campaign_mutex_);
    MisconfigsLocked();
    if (campaign_ == nullptr || !campaign_options_.SameBehavior(options)) {
      // Swapping options discards the old campaign's snapshot cache; a
      // dynamic check still replaying on it holds its own shared_ptr, so
      // the swap is safe (the old campaign dies with the last check).
      campaign_ = std::make_shared<InjectionCampaign>(
          *analysis_.module, analysis_.bundle.sut, OsSimulator::StandardEnvironment(),
          options);
      campaign_options_ = options;
      if (verdict_store_ != nullptr) {
        // Re-derive the scope: campaign knobs are part of it, so a
        // campaign with different behaviour reads/writes its own scope.
        campaign_->AttachVerdictStore(verdict_store_, StoreScopeLocked());
      }
    }
    campaign = campaign_.get();
  }
  return campaign->RunAll(template_config_, misconfigs_, observer);
}

CampaignCacheStats Target::campaign_cache_stats() {
  std::lock_guard<std::mutex> lock(campaign_mutex_);
  return campaign_ != nullptr ? campaign_->cache_stats() : CampaignCacheStats{};
}

}  // namespace spex
