// spex::Session — the stable embeddable API over the whole pipeline.
//
// The paper's tool is meant to live *inside* a vendor's process: infer
// constraints once, then check every user config (and re-run injection
// campaigns) for as long as the service is up. Every consumer used to
// hand-wire parse -> lower -> annotate -> SpexEngine::Run -> RunCampaign;
// Session owns that wiring plus the long-lived resources none of the
// one-shot entry points could: the ApiRegistry, the DiagnosticEngine, the
// shared campaign worker pool, and a boundary string-pool epoch so interned
// boundary strings are reclaimed when the session ends.
//
//   spex::Session session;
//   spex::Target* target = session.LoadTarget("squid");          // or LoadSource(...)
//   const spex::ModuleConstraints& c = target->InferConstraints();
//   for (const spex::Violation& v : target->CheckConfig(user_conf, "user.conf"))
//     std::cerr << v.ToString() << "\n";                          // pre-flight checker
//   spex::CheckOptions dynamic{spex::CheckMode::kDynamic};       // observed reactions
//   for (const spex::Violation& v : target->CheckConfig(user_conf, "user.conf", dynamic))
//     std::cerr << v.ToString() << "\n";   // "... | observed: silent violation — ..."
//   spex::CampaignSummary s = target->RunCampaign();              // SPEX-INJ
//
// Thread-safety: a loaded Target's analysis is immutable, so any number of
// threads may call InferConstraints()/CheckConfig() on the same Target (or
// different Targets) concurrently — in *either* check mode: static checks
// are pure reads, and dynamic checks replay on campaign-owned probe
// contexts over an internally synchronized snapshot cache. LoadSource()/
// LoadTarget()/ok()/RenderDiagnostics() are internally synchronized.
// RunCampaign() is serialized *session-wide* (all campaigns share the
// session's worker pool, whose Wait() drains the whole queue); concurrent
// RunCampaign calls are safe but run one at a time.
#ifndef SPEX_API_SESSION_H_
#define SPEX_API_SESSION_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/batch_check.h"
#include "src/api/config_checker.h"
#include "src/api/config_set.h"
#include "src/corpus/pipeline.h"
#include "src/matrix/matrix_check.h"
#include "src/support/string_pool.h"
#include "src/support/thread_pool.h"

namespace spex {

class Target;

struct SessionOptions {
  // Constraint-inference knobs (confidence threshold etc.).
  SpexOptions engine;
  // Worker pool shared by every campaign this session runs: 0 = hardware
  // concurrency. The pool is created lazily on the first parallel campaign.
  size_t campaign_threads = 0;
  // Extra ApiRegistry declarations (the Storage-A mechanism), parsed on
  // top of the built-in C surface at construction.
  std::string custom_api_spec;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Loads a target from MiniC source plus mapping annotations. `sut` and
  // `template_config` may be left empty when only InferConstraints()/
  // CheckConfig() are needed; RunCampaign additionally requires both (the
  // SUT's driver functions and the baseline config every injection mutates
  // — without a template, campaigns would run against an empty config).
  // Returns null and records diagnostics on parse/lowering errors; on
  // success the Target is owned by the session and the pointer is stable
  // for its lifetime.
  Target* LoadSource(std::string_view source, std::string_view annotations,
                     std::string_view name = "target.c",
                     ConfigDialect dialect = ConfigDialect::kKeyEqualsValue, SutSpec sut = {},
                     std::string_view template_config = {});

  // Loads one of the synthesized corpus targets ("mysql", "squid", ...).
  Target* LoadTarget(const std::string& name);

  // Version-matrix checking: every config in `configs` checked against
  // every version in `versions` ("which upgrade breaks whose config").
  // Each version loads as a session-owned Target (corpus name or
  // LoadSource triple — src/matrix/version_set.h) and its column runs as
  // one CheckConfigBatch, so every cell is bit-identical to an
  // independent fleet check of that version and each column keeps the
  // batch layer's cross-config dedup. Adjacent checked columns are
  // diffed into per-config regression/fix/changed-reaction/stable
  // transitions (src/matrix/matrix_diff.h). With options.store attached,
  // every version gets its own store scope automatically, so a warm
  // matrix refresh after one version bump replays only the bumped
  // column. Version load failures are contained per column; `observer`
  // streams cells/columns/transitions on the calling thread.
  //
  // Thread-safety follows CheckConfigBatch: serial columns
  // (options.num_threads == 1) may run concurrently with anything;
  // sharded columns serialize session-wide with campaigns and other
  // sharded batches.
  MatrixSummary CheckMatrix(std::span<const TargetVersion> versions,
                            std::span<const ConfigInput> configs,
                            const MatrixOptions& options = {},
                            MatrixObserver* observer = nullptr);

  // Sharded corpus regeneration through the session's registry and engine
  // options: one analysis + campaign per target name, fanned over
  // `num_workers` (0 = SessionOptions::campaign_threads, whose own 0 means
  // hardware concurrency). Serialized with the session's other campaigns.
  std::vector<CorpusCampaignResult> RunCorpusCampaigns(
      const std::vector<std::string>& target_names, CampaignOptions options = {},
      size_t num_workers = 0);

  const ApiRegistry& apis() const { return apis_; }
  const SessionOptions& options() const { return options_; }
  // Diagnostics accumulate across loads for reporting, but failure is per
  // load: a bad source returns nullptr from its own Load* call without
  // poisoning later loads. ok() is cumulative ("did any load fail").
  bool ok() const;
  std::string RenderDiagnostics() const;

  // The shared campaign pool (created on first use). Exposed for embedders
  // that want to run their own fan-outs on session-owned threads.
  ThreadPool* worker_pool();

 private:
  friend class Target;

  SessionOptions options_;
  ApiRegistry apis_;
  DiagnosticEngine diags_;
  // Ties boundary-pool growth to the session: RtValue::Str interning done
  // on behalf of this session is reclaimed when the last session closes.
  StringPoolEpoch boundary_epoch_;
  // Guards diags_, targets_ growth and pool creation (mutable: the const
  // diagnostic accessors lock it too).
  mutable std::mutex mutex_;
  // Serializes RunCampaign across all of this session's targets.
  std::mutex campaign_serial_mutex_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Target>> targets_;
};

// A loaded-and-analyzed system: constraints plus everything needed to
// check configs and run injection campaigns against it. Owned by (and
// never outliving) its Session.
class Target {
 public:
  const std::string& name() const { return analysis_.bundle.name; }
  ConfigDialect dialect() const { return analysis_.bundle.dialect; }
  // Full analysis access for table/bench consumers (bundle, engine, manual).
  const TargetAnalysis& analysis() const { return analysis_; }

  // The inferred constraint set (computed at load; immutable afterwards).
  const ModuleConstraints& InferConstraints() const { return analysis_.constraints; }

  // The paper's user-facing checker: flag type, range, unit, case and
  // control-dependency violations in a concrete config file, each with the
  // offending file:line and the source location of the constraint. Pure
  // read — safe from any number of threads concurrently.
  std::vector<Violation> CheckConfig(std::string_view config_text,
                                     std::string_view file_name = "config") const;

  // Mode-selecting overload. CheckMode::kStatic behaves exactly like the
  // two-argument form; CheckMode::kDynamic additionally replays the
  // settings that deviate from the target's template through the
  // interpreter + simulated OS — restoring the injection campaign's
  // per-key-set prefix snapshots where available — and attaches the
  // observed Table-3 reaction, log evidence and a "what the system will
  // do" prediction to each Violation (plus kDynamicReaction findings for
  // vulnerabilities the static pass cannot see). Dynamic verdicts are
  // bit-identical to a ground-truth full replay: the campaign's per-run
  // hazard check and first-use verification gate every snapshot shortcut.
  //
  // Dynamic checks share the target's persistent campaign, so a check
  // after RunCampaign() (or after an earlier check of the same keys)
  // replays from warm snapshots without building new ones; a check with no
  // campaign yet lazily creates one with default CampaignOptions. Targets
  // loaded without a template or without a SUT driver surface (parse/init
  // functions) silently degrade to the static result — there is nothing to
  // replay against. Safe from any number of threads concurrently (on one
  // shared Target or across Targets), and concurrently with RunCampaign().
  //
  // Deliberately non-const (even in kStatic mode): dynamic mode
  // materializes the target's persistent campaign, the same mutation
  // RunCampaign performs. Callers holding a const Target* use the
  // two-argument overload — the static check is the only mode a const
  // handle can express.
  std::vector<Violation> CheckConfig(std::string_view config_text, std::string_view file_name,
                                     const CheckOptions& options);

  // Fleet checking: checks every config in `configs` against this target
  // in one pass. Per config this is exactly CheckConfig(text, name,
  // options.check) — same violations, same observed reactions, bit-
  // identical at every options.num_threads — but suspects are
  // deduplicated *across* configs by execution identity, so each unique
  // user mistake replays once and its Table-3 verdict fans out to every
  // config that contributed it (BatchSummary::unique_replays vs.
  // total_suspects; see src/api/batch_check.h for the identity
  // guarantee). `observer` streams one OnConfigChecked per config, on the
  // calling thread, in batch order.
  //
  // Thread-safety: serial batches (num_threads == 1, the default) follow
  // the dynamic-CheckConfig contract — any number may run concurrently,
  // including concurrently with RunCampaign. Sharded batches
  // (num_threads != 1) run phases on the session worker pool and are
  // therefore serialized session-wide with campaigns and other sharded
  // batches, like RunCampaign itself.
  BatchSummary CheckConfigBatch(std::span<const ConfigInput> configs,
                                const BatchOptions& options = {},
                                BatchObserver* observer = nullptr);

  // Multi-file fleet checking: each ConfigSetInput is an include tree
  // (files[0] the root) that is resolved to its flattened effective
  // config (src/api/config_set.h) and then checked through
  // CheckConfigBatch — so a suspect's execution identity is the
  // *effective* value, and two sets differing only in include structure
  // deduplicate to the same replay. Per set the result is bit-identical
  // to checking the serialized effective config as a single file (same
  // violations, verdicts and counters, at every options.num_threads),
  // except that each violation's file/line point at the *winning*
  // assignment's origin and `override_note` records what it shadowed.
  // Resolution faults (missing includes, cycles, depth/file caps) are
  // contained per set: they land on the set's ResolvedConfigSet (written
  // to `resolutions` when non-null, batch order) and checking continues
  // with the partial effective config; only a set whose root cannot be
  // loaded carries kInvalidArgument in its report. `observer` streams
  // per-set reports on the calling thread in batch order — after the
  // whole batch, since provenance rewriting happens batch-wide.
  // Thread-safety matches CheckConfigBatch.
  BatchSummary CheckConfigSet(std::span<const ConfigSetInput> sets,
                              const BatchOptions& options = {},
                              BatchObserver* observer = nullptr,
                              std::vector<ResolvedConfigSet>* resolutions = nullptr,
                              const ConfigSetOptions& set_options = {});

  // As CheckConfigSet, but over sets the caller already resolved (e.g.
  // spexcheck's --include-roots, which resolves against the filesystem
  // rather than an in-memory file list). Same guarantees and observer
  // contract; the resolution step is simply the caller's.
  BatchSummary CheckResolvedConfigSets(std::span<const ResolvedConfigSet> sets,
                                       const BatchOptions& options = {},
                                       BatchObserver* observer = nullptr);

  // SPEX-INJ through the façade: generates misconfigurations from the
  // inferred constraints (once, cached) and runs the campaign. The
  // campaign object persists across calls with the same options, so
  // repeated campaigns reuse prefix snapshots instead of rebuilding them;
  // `observer` streams per-run results. Serialized session-wide (campaigns
  // share the session's worker pool).
  CampaignSummary RunCampaign(CampaignOptions options = {},
                              CampaignObserver* observer = nullptr);

  // Cache counters of the persistent campaign (zeros before the first
  // RunCampaign) — lets embedders verify snapshot reuse across batches.
  CampaignCacheStats campaign_cache_stats();

  // Attaches a persistent cross-run verdict store (src/support/
  // verdict_store.h): dynamic checks and batches consult it before
  // replaying and append fresh verdicts after, so a re-check of an
  // unchanged fleet replays only never-before-seen executions. The store
  // is scoped by a fingerprint of everything that could change a verdict
  // — target source, annotations, SUT spec, template, campaign knobs — so
  // an edited target lands in a fresh scope and re-checks cold; stale
  // verdicts are structurally unreachable. Pass nullptr to detach.
  // Thread-safe; takes effect for checks that start after the call.
  void AttachVerdictStore(std::shared_ptr<VerdictStore> store);
  std::shared_ptr<VerdictStore> verdict_store();

  // The generated misconfiguration batch (same order as the legacy
  // MisconfigGenerator path, so façade campaigns are bit-identical).
  const std::vector<Misconfiguration>& Misconfigurations();

 private:
  friend class Session;

  Target(Session* session, TargetAnalysis analysis);
  // Generates the batch on first use; caller holds campaign_mutex_.
  const std::vector<Misconfiguration>& MisconfigsLocked();
  // The persistent campaign (created with default options on first use);
  // dynamic checks hold a shared_ptr so a concurrent RunCampaign that
  // swaps the campaign (changed options) cannot pull it out from under a
  // replay in flight.
  std::shared_ptr<InjectionCampaign> EnsureCampaign();
  // True when the target can be driven dynamically: a non-empty template
  // plus a module that defines the SUT's parse and init functions.
  bool SupportsDynamicCheck() const;
  // The verdict-store scope for this target under the current campaign
  // options — every verdict-affecting input folded into one string.
  // Caller holds campaign_mutex_.
  std::string StoreScopeLocked() const;

  Session* session_;
  TargetAnalysis analysis_;
  ConfigFile template_config_;

  std::mutex campaign_mutex_;  // Guards the members below.
  bool misconfigs_ready_ = false;
  std::vector<Misconfiguration> misconfigs_;
  CampaignOptions campaign_options_;
  std::shared_ptr<InjectionCampaign> campaign_;
  std::shared_ptr<VerdictStore> verdict_store_;
};

}  // namespace spex

#endif  // SPEX_API_SESSION_H_
