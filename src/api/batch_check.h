// Fleet-scale configuration checking: one target, N user configs, each
// unique execution replayed once.
//
// The paper's end state is a vendor running the checker against the whole
// user base, not one file at a time. Real misconfiguration corpora are
// heavily duplicated — thousands of users copy the same broken snippet
// from the same forum post — so the fleet checker's job is to pay for
// each *unique* mistake once: suspects are extracted per config (the same
// BuildDynamicSuspects diff the single-config checker uses), deduplicated
// across configs by execution identity, replayed once per unique
// execution (sharded over the session worker pool), and the observed
// Table-3 verdict is fanned out to every config that contributed the
// suspect. Verdicts are bit-identical to N independent CheckConfig calls
// at every thread count — see the dedup identity guarantee below.
//
// The dedup identity guarantee: two suspects share one replay iff every
// replay-observable input matches — primary setting (param, value), the
// extra settings applied with it (content *and* application order; these
// determine both the applied config and the snapshot key-set), the
// numeric intent behind the value, and the ignore expectation. Those are
// exactly the Misconfiguration fields the campaign's execution and
// classification read; fields that only label the finding (kind, rule,
// constraint source location) are re-attributed per client by
// ReattributeResult instead of splitting the key, so a fanned-out result
// is field-for-field what a dedicated replay would have produced.
//
// Target::CheckConfigBatch (src/api/session.h) runs the whole loop; the
// types and the engine live here so tests and custom drivers can reach
// them without a Session.
#ifndef SPEX_API_BATCH_CHECK_H_
#define SPEX_API_BATCH_CHECK_H_

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/api/config_checker.h"
#include "src/inject/campaign.h"
#include "src/support/status.h"

namespace spex {

// One user configuration in a fleet batch. Plain value type: `name` is
// the report identity (file name, user id, ...), `text` the raw config
// content in the target's dialect.
struct ConfigInput {
  std::string name;
  std::string text;
};

// Options for one batch check. Freely copyable.
struct BatchOptions {
  // Mode and snapshot knob, applied to every config in the batch (the
  // same CheckOptions a single CheckConfig call takes).
  CheckOptions check;
  // Sharding: 1 = serial on the calling thread (the default), 0 = the
  // session worker pool at its full width, N = N shards on the pool.
  // Verdicts and report order are identical for every value.
  int num_threads = 1;
};

// Per-config result: the same Violation list a dedicated
// CheckConfig(text, name, options) call would return, plus the config's
// share of the batch bookkeeping.
struct ConfigReport {
  size_t index = 0;    // Position in the batch (== callback index).
  std::string name;    // ConfigInput::name, echoed for self-contained logs.
  std::vector<Violation> violations;
  // Replayable deviations this config contributed (0 in static mode).
  size_t suspects = 0;
  // Of those, how many were served by an execution another config in the
  // batch also needed — the per-config view of cross-config dedup.
  size_t shared_replays = 0;
  // Containment verdict. Errors are per-config, never per-batch: a config
  // that fails validation (kInvalidArgument — see ValidateConfigText) or
  // whose replays ran out of budget (kDeadlineExceeded) carries the error
  // here, and every *other* config's report is bit-identical to what it
  // would be with the poisoned config absent from the batch. An
  // kInvalidArgument config contributes no violations and no suspects; a
  // deadline-exceeded config keeps its static violations and whatever
  // verdicts completed in time.
  Status status;
};

// Batch-wide rollup. `reports` holds every ConfigReport in batch order;
// the counters are what a fleet dashboard plots.
struct BatchSummary {
  size_t configs_checked = 0;
  size_t configs_with_violations = 0;
  // Configs whose report carries a non-ok status (invalid input, replay
  // budget exhausted). Always <= configs_checked; a caller deciding
  // "did anything get checked at all" compares the two.
  size_t configs_with_errors = 0;
  size_t total_violations = 0;
  // Violations by static category, indexed by
  // static_cast<size_t>(ViolationCategory).
  std::array<size_t, kViolationCategoryCount> violations_by_category{};
  // Observed Table-3 verdicts across every (config, suspect) replay
  // fan-out, indexed by static_cast<size_t>(ReactionCategory); the
  // entries sum to total_suspects. All zero in static mode.
  std::array<size_t, kReactionCategoryCount> reactions_by_category{};
  // Suspect executions requested across all configs vs. actually replayed
  // after cross-config dedup *and* persistent-store hits: a unique
  // execution served from the verdict store is not a replay, so a fully
  // warm re-check reports unique_replays == 0.
  size_t total_suspects = 0;
  size_t unique_replays = 0;
  // Persistent verdict-store accounting (all zero when the target has no
  // store attached): unique executions served from disk without a replay,
  // looked up and missed (replayed live), and appended after the batch.
  size_t store_hits = 0;
  size_t store_misses = 0;
  size_t store_appends = 0;
  // Configs whose finalization (verdict fan-out + report streaming)
  // completed while at least one replay shard was still running — the
  // observable that proves per-config finalization is pipelined behind
  // the replays rather than barriered after them. Always 0 on the serial
  // path (there is nothing to overlap with).
  size_t finalized_overlapped = 0;
  // Fraction of suspect replays saved by dedup + store: 1 - unique/total
  // (0.0 for an empty or static batch). ~0.7 on a fleet where 70% of
  // users share their misconfigurations; 1.0 on a fully warm re-check.
  double DedupRatio() const;

  std::vector<ConfigReport> reports;
};

// Streaming per-config callbacks — the fleet-scale complement to the
// batch summary (progress reporting, early alerting, JSON-lines writers).
// Callbacks arrive on the driver thread, strictly in batch order
// (`index` == 0, 1, ...), after the config's verdicts are final; the
// report reference is valid only during the call (the same object lands
// in BatchSummary::reports afterwards).
class BatchObserver {
 public:
  virtual ~BatchObserver() = default;
  virtual void OnBatchBegin(size_t total_configs) { (void)total_configs; }
  virtual void OnConfigChecked(size_t index, const ConfigReport& report) {
    (void)index;
    (void)report;
  }
  virtual void OnBatchEnd(const BatchSummary& summary) { (void)summary; }
};

// The execution identity two suspects must share to be served by one
// replay — SuspectExecutionKey — lives in src/inject/campaign.h now: the
// persistent VerdictStore keys on the same identity, so the key belongs
// next to the replay engine both consumers share.

// Syntactic admission check for untrusted config text. ConfigFile::Parse
// is deliberately lenient (a campaign replays whatever the user wrote);
// a *service* boundary wants the opposite: reject text that cannot mean
// anything in the dialect before paying for analysis. kKeyEqualsValue
// flags a settings line with no '=' or an empty key; kKeyValue accepts
// bare directives (Apache/Squid-style flag settings are legal). Returns
// Status::Ok or kInvalidArgument naming the first offending line.
Status ValidateConfigText(std::string_view text, ConfigDialect dialect);

// The batch engine behind Target::CheckConfigBatch. `campaign` carries
// the persistent snapshot cache and may be null for static-only batches
// (it is also ignored when options.check.mode is kStatic); `pool` may be
// null for serial runs. The caller owns serialization of pool-using
// batches against other pool clients (spex::Target holds its session's
// campaign serialization mutex). Every config is checked against
// `constraints` + `template_config` exactly as a dedicated
// Target::CheckConfig call would check it.
BatchSummary RunBatchCheck(const ModuleConstraints& constraints,
                           const ConfigFile& template_config, ConfigDialect dialect,
                           InjectionCampaign* campaign, ThreadPool* pool,
                           std::span<const ConfigInput> configs, const BatchOptions& options,
                           BatchObserver* observer);

}  // namespace spex

#endif  // SPEX_API_BATCH_CHECK_H_
