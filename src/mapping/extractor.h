// Parameter-to-variable mapping extraction: the three template toolkits.
//
// Given the annotations (annotations.h) and a lowered module, extraction
// produces one MappedParam per configuration parameter: its name, how it is
// mapped (Table 1's conventions), and the data-flow seeds the inference
// engines start from.
#ifndef SPEX_MAPPING_EXTRACTOR_H_
#define SPEX_MAPPING_EXTRACTOR_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/dataflow.h"
#include "src/apidb/api_registry.h"
#include "src/ir/dominance.h"
#include "src/ir/ir.h"
#include "src/mapping/annotations.h"

namespace spex {

enum class MappingStyle { kStructureDirect, kStructureFunction, kComparison, kContainer };

const char* MappingStyleName(MappingStyle style);

struct MappedParam {
  std::string name;
  MappingStyle style = MappingStyle::kStructureDirect;
  DataflowSeeds seeds;
  // Direct storage global (structure-direct mapping only).
  const GlobalVariable* storage = nullptr;
  // Declared range from the mapping table, when the table carries min/max
  // fields (the PostgreSQL/MySQL/Storage-A practice from Section 5.2).
  std::optional<int64_t> table_min;
  std::optional<int64_t> table_max;
  SourceLoc loc;
};

class MappingExtractor {
 public:
  MappingExtractor(const Module& module, const AnalysisContext& context,
                   const ApiRegistry& apis)
      : module_(module), context_(context), apis_(apis) {}

  // Runs every annotation's toolkit; mappings are returned sorted by
  // parameter name, duplicates (same name from hybrid conventions) merged.
  std::vector<MappedParam> Extract(const AnnotationFile& file, DiagnosticEngine* diags);

 private:
  void ExtractStructDirect(const MappingAnnotation& annotation,
                           std::vector<MappedParam>* out, DiagnosticEngine* diags);
  void ExtractStructFunction(const MappingAnnotation& annotation,
                             std::vector<MappedParam>* out, DiagnosticEngine* diags);
  void ExtractComparison(const MappingAnnotation& annotation, std::vector<MappedParam>* out,
                         DiagnosticEngine* diags);
  void ExtractContainer(const MappingAnnotation& annotation, std::vector<MappedParam>* out,
                        DiagnosticEngine* diags);

  // The alloca backing argument `arg_index` (lowering stores every argument
  // into a named slot in the entry block).
  const Instruction* FindArgSlot(const Function& fn, int arg_index) const;
  // All loads realizing an annotated arg reference (`arg0`, `arg0[1]`).
  std::vector<const Value*> FindArgRefLoads(const Function& fn, const ArgRef& ref) const;

  const ControlDependence& ControlDepsFor(const Function& fn);

  const Module& module_;
  const AnalysisContext& context_;
  const ApiRegistry& apis_;
  std::map<const Function*, std::unique_ptr<ControlDependence>> control_deps_;
};

}  // namespace spex

#endif  // SPEX_MAPPING_EXTRACTOR_H_
