// Annotation language for parameter-to-variable mapping (paper Figure 4).
//
// Developers annotate the mapping *interface*, not every mapping pair:
//
//   @STRUCT ConfigureNamesInt { par = 0, var = 1 }            # direct
//   @STRUCT ConfigureNamesInt { par = 0, var = 1, min = 2, max = 3 }
//   @STRUCT core_cmds         { par = 0, func = 1, arg = 1 }  # via handler fn
//   @PARSER load_server_config { par = arg0, var = arg1 }     # comparison
//   @PARSER load_config_argv   { par = arg0[0], var = arg0[1] }
//   @GETTER get_i32            { par = 0, var = ret }         # container
//
// Lines starting with '#' are comments. The number of '@' lines is the
// "lines of annotation" (LoA) reported in Table 4.
#ifndef SPEX_MAPPING_ANNOTATIONS_H_
#define SPEX_MAPPING_ANNOTATIONS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/diagnostics.h"

namespace spex {

enum class AnnotationKind { kStructDirect, kStructFunction, kParser, kGetter };

// A reference to a value inside a function: argument `arg_index`, optionally
// subscripted once (`arg0[1]` for argv-style parsers).
struct ArgRef {
  int arg_index = -1;
  bool has_subscript = false;
  int64_t subscript = 0;
};

struct MappingAnnotation {
  AnnotationKind kind = AnnotationKind::kStructDirect;
  std::string target;  // Struct-table global name, parser or getter function name.

  // kStructDirect / kStructFunction: field indices within a table row.
  int par_field = -1;
  int var_field = -1;   // kStructDirect: field holding &variable.
  int func_field = -1;  // kStructFunction: field holding the handler.
  int handler_arg = -1; // kStructFunction: handler argument carrying the value.
  int min_field = -1;   // Optional declared-range fields.
  int max_field = -1;

  // kParser.
  ArgRef parser_par;
  ArgRef parser_var;

  // kGetter.
  int getter_key_arg = -1;  // Argument index carrying the parameter name.

  SourceLoc loc;
};

struct AnnotationFile {
  std::vector<MappingAnnotation> annotations;
  size_t lines_of_annotation = 0;  // LoA in Table 4.
};

// Parses an annotation text. Parse errors are reported to `diags`;
// well-formed lines are still returned.
AnnotationFile ParseAnnotations(std::string_view text, DiagnosticEngine* diags);

}  // namespace spex

#endif  // SPEX_MAPPING_ANNOTATIONS_H_
