#include "src/mapping/annotations.h"

#include "src/support/strings.h"

namespace spex {

namespace {

std::optional<ArgRef> ParseArgRef(std::string_view token) {
  token = TrimWhitespace(token);
  if (!StartsWith(token, "arg")) {
    return std::nullopt;
  }
  token.remove_prefix(3);
  ArgRef ref;
  size_t bracket = token.find('[');
  std::string_view index_part = token;
  if (bracket != std::string_view::npos) {
    if (token.back() != ']') {
      return std::nullopt;
    }
    index_part = token.substr(0, bracket);
    auto subscript = ParseInt64(token.substr(bracket + 1, token.size() - bracket - 2));
    if (!subscript.has_value()) {
      return std::nullopt;
    }
    ref.has_subscript = true;
    ref.subscript = *subscript;
  }
  auto index = ParseInt64(index_part);
  if (!index.has_value()) {
    return std::nullopt;
  }
  ref.arg_index = static_cast<int>(*index);
  return ref;
}

// Parses the `key = value, key = value` body between braces into pairs.
std::vector<std::pair<std::string, std::string>> ParseBody(std::string_view body) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const std::string& entry : SplitString(body, ',')) {
    auto eq = entry.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    pairs.emplace_back(std::string(TrimWhitespace(entry.substr(0, eq))),
                       std::string(TrimWhitespace(entry.substr(eq + 1))));
  }
  return pairs;
}

}  // namespace

AnnotationFile ParseAnnotations(std::string_view text, DiagnosticEngine* diags) {
  AnnotationFile file;
  uint32_t line_number = 0;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    ++line_number;
    std::string_view line = TrimWhitespace(raw_line);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    SourceLoc loc{"<annotations>", line_number, 1};
    if (line[0] != '@') {
      diags->Error(loc, "annotation lines must start with '@'");
      continue;
    }
    ++file.lines_of_annotation;

    size_t open_brace = line.find('{');
    size_t close_brace = line.rfind('}');
    if (open_brace == std::string_view::npos || close_brace == std::string_view::npos ||
        close_brace < open_brace) {
      diags->Error(loc, "annotation missing '{...}' body");
      continue;
    }
    auto head = SplitWhitespace(line.substr(0, open_brace));
    if (head.size() != 2) {
      diags->Error(loc, "expected '@KIND <target> { ... }'");
      continue;
    }
    auto body = ParseBody(line.substr(open_brace + 1, close_brace - open_brace - 1));

    MappingAnnotation annotation;
    annotation.target = head[1];
    annotation.loc = loc;

    auto get = [&body](const std::string& key) -> std::optional<std::string> {
      for (const auto& [k, v] : body) {
        if (k == key) {
          return v;
        }
      }
      return std::nullopt;
    };
    auto get_int = [&](const std::string& key) -> std::optional<int> {
      auto value = get(key);
      if (!value.has_value()) {
        return std::nullopt;
      }
      auto parsed = ParseInt64(*value);
      if (!parsed.has_value()) {
        return std::nullopt;
      }
      return static_cast<int>(*parsed);
    };

    if (head[0] == "@STRUCT") {
      auto par = get_int("par");
      if (!par.has_value()) {
        diags->Error(loc, "@STRUCT requires 'par = <field index>'");
        continue;
      }
      annotation.par_field = *par;
      auto func = get_int("func");
      if (func.has_value()) {
        annotation.kind = AnnotationKind::kStructFunction;
        annotation.func_field = *func;
        auto arg = get_int("arg");
        if (!arg.has_value()) {
          diags->Error(loc, "@STRUCT with 'func' requires 'arg = <handler arg index>'");
          continue;
        }
        annotation.handler_arg = *arg;
      } else {
        annotation.kind = AnnotationKind::kStructDirect;
        auto var = get_int("var");
        if (!var.has_value()) {
          diags->Error(loc, "@STRUCT requires 'var = <field index>' (or 'func = ...')");
          continue;
        }
        annotation.var_field = *var;
        annotation.min_field = get_int("min").value_or(-1);
        annotation.max_field = get_int("max").value_or(-1);
      }
    } else if (head[0] == "@PARSER") {
      annotation.kind = AnnotationKind::kParser;
      auto par = get("par");
      auto var = get("var");
      if (!par.has_value() || !var.has_value()) {
        diags->Error(loc, "@PARSER requires 'par = argN' and 'var = argN'");
        continue;
      }
      auto par_ref = ParseArgRef(*par);
      auto var_ref = ParseArgRef(*var);
      if (!par_ref.has_value() || !var_ref.has_value()) {
        diags->Error(loc, "@PARSER arg references must look like 'arg0' or 'arg0[1]'");
        continue;
      }
      annotation.parser_par = *par_ref;
      annotation.parser_var = *var_ref;
    } else if (head[0] == "@GETTER") {
      annotation.kind = AnnotationKind::kGetter;
      auto par = get_int("par");
      auto var = get("var");
      if (!par.has_value() || !var.has_value() || *var != "ret") {
        diags->Error(loc, "@GETTER requires 'par = <arg index>, var = ret'");
        continue;
      }
      annotation.getter_key_arg = *par;
    } else {
      diags->Error(loc, "unknown annotation kind '" + head[0] + "'");
      continue;
    }
    file.annotations.push_back(std::move(annotation));
  }
  return file;
}

}  // namespace spex
