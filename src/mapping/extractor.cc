#include "src/mapping/extractor.h"

#include <algorithm>
#include <set>

namespace spex {

const char* MappingStyleName(MappingStyle style) {
  switch (style) {
    case MappingStyle::kStructureDirect:
      return "struct";
    case MappingStyle::kStructureFunction:
      return "struct(function)";
    case MappingStyle::kComparison:
      return "comparison";
    case MappingStyle::kContainer:
      return "container";
  }
  return "?";
}

namespace {

// Does `value`'s operand tree contain `needle`? Bounded walk.
bool DependsOn(const Value* value, const Value* needle, int depth = 0) {
  if (value == needle) {
    return true;
  }
  if (depth > 16 || value->value_kind() != ValueKind::kInstruction) {
    return false;
  }
  const auto* instr = static_cast<const Instruction*>(value);
  for (const Value* operand : instr->operands()) {
    if (DependsOn(operand, needle, depth + 1)) {
      return true;
    }
  }
  return false;
}

// Evaluates a boolean condition under the assumption that `call` returned 0
// (string-compare match). Returns nullopt if the condition involves anything
// non-constant other than `call`.
std::optional<int64_t> EvalAssumingZero(const Value* value, const Value* call, int depth = 0) {
  if (depth > 16) {
    return std::nullopt;
  }
  if (value == call) {
    return 0;
  }
  if (value->value_kind() == ValueKind::kConstantInt) {
    return value->constant_int();
  }
  if (value->value_kind() != ValueKind::kInstruction) {
    return std::nullopt;
  }
  const auto* instr = static_cast<const Instruction*>(value);
  switch (instr->instr_kind()) {
    case InstrKind::kCast:
      return EvalAssumingZero(instr->operand(0), call, depth + 1);
    case InstrKind::kCmp: {
      auto lhs = EvalAssumingZero(instr->operand(0), call, depth + 1);
      auto rhs = EvalAssumingZero(instr->operand(1), call, depth + 1);
      if (!lhs.has_value() || !rhs.has_value()) {
        return std::nullopt;
      }
      switch (instr->cmp_pred()) {
        case IrCmpPred::kEq:
          return *lhs == *rhs ? 1 : 0;
        case IrCmpPred::kNe:
          return *lhs != *rhs ? 1 : 0;
        case IrCmpPred::kLt:
          return *lhs < *rhs ? 1 : 0;
        case IrCmpPred::kLe:
          return *lhs <= *rhs ? 1 : 0;
        case IrCmpPred::kGt:
          return *lhs > *rhs ? 1 : 0;
        case IrCmpPred::kGe:
          return *lhs >= *rhs ? 1 : 0;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

const ControlDependence& MappingExtractor::ControlDepsFor(const Function& fn) {
  auto it = control_deps_.find(&fn);
  if (it == control_deps_.end()) {
    it = control_deps_.emplace(&fn, std::make_unique<ControlDependence>(fn)).first;
  }
  return *it->second;
}

const Instruction* MappingExtractor::FindArgSlot(const Function& fn, int arg_index) const {
  if (arg_index < 0 || static_cast<size_t>(arg_index) >= fn.arguments().size()) {
    return nullptr;
  }
  const Argument* arg = fn.arguments()[static_cast<size_t>(arg_index)].get();
  const BasicBlock* entry = fn.entry();
  if (entry == nullptr) {
    return nullptr;
  }
  for (const auto& instr : entry->instructions()) {
    if (instr->instr_kind() == InstrKind::kStore && instr->operand(0) == arg) {
      const Value* target = instr->operand(1);
      if (target->value_kind() == ValueKind::kInstruction &&
          static_cast<const Instruction*>(target)->instr_kind() == InstrKind::kAlloca) {
        return static_cast<const Instruction*>(target);
      }
    }
  }
  return nullptr;
}

std::vector<const Value*> MappingExtractor::FindArgRefLoads(const Function& fn,
                                                            const ArgRef& ref) const {
  std::vector<const Value*> result;
  const Instruction* slot = FindArgSlot(fn, ref.arg_index);
  if (slot == nullptr) {
    return result;
  }
  for (const auto& block : fn.blocks()) {
    for (const auto& instr : block->instructions()) {
      if (instr->instr_kind() != InstrKind::kLoad) {
        continue;
      }
      const Value* address = instr->operand(0);
      if (!ref.has_subscript) {
        if (address == slot) {
          result.push_back(instr.get());
        }
        continue;
      }
      // argN[M]: load of indexaddr(load(slot), M).
      if (address->value_kind() != ValueKind::kInstruction) {
        continue;
      }
      const auto* index_addr = static_cast<const Instruction*>(address);
      if (index_addr->instr_kind() != InstrKind::kIndexAddr) {
        continue;
      }
      const Value* index = index_addr->operand(1);
      if (index->value_kind() != ValueKind::kConstantInt ||
          index->constant_int() != ref.subscript) {
        continue;
      }
      const Value* base = index_addr->operand(0);
      if (base->value_kind() == ValueKind::kInstruction &&
          static_cast<const Instruction*>(base)->instr_kind() == InstrKind::kLoad &&
          static_cast<const Instruction*>(base)->operand(0) == slot) {
        result.push_back(instr.get());
      }
    }
  }
  return result;
}

void MappingExtractor::ExtractStructDirect(const MappingAnnotation& annotation,
                                           std::vector<MappedParam>* out,
                                           DiagnosticEngine* diags) {
  const GlobalVariable* table = module_.FindGlobal(annotation.target);
  if (table == nullptr) {
    diags->Error(annotation.loc, "@STRUCT: no global named '" + annotation.target + "'");
    return;
  }
  if (table->init().kind != GlobalInit::Kind::kList) {
    diags->Error(annotation.loc, "@STRUCT: '" + annotation.target + "' has no table initializer");
    return;
  }
  for (const GlobalInit& row : table->init().elements) {
    if (row.kind != GlobalInit::Kind::kList) {
      continue;
    }
    auto field = [&row](int index) -> const GlobalInit* {
      if (index < 0 || static_cast<size_t>(index) >= row.elements.size()) {
        return nullptr;
      }
      return &row.elements[static_cast<size_t>(index)];
    };
    const GlobalInit* name_field = field(annotation.par_field);
    const GlobalInit* var_field = field(annotation.var_field);
    if (name_field == nullptr || name_field->kind != GlobalInit::Kind::kString ||
        var_field == nullptr || var_field->kind != GlobalInit::Kind::kGlobalRef) {
      continue;  // Sentinel rows ({NULL, ...}) terminate real-world tables.
    }
    const GlobalVariable* storage = module_.FindGlobal(var_field->string_value);
    if (storage == nullptr) {
      diags->Warning(annotation.loc, "@STRUCT row '" + name_field->string_value +
                                         "' references unknown global '" +
                                         var_field->string_value + "'");
      continue;
    }
    MappedParam param;
    param.name = name_field->string_value;
    param.style = MappingStyle::kStructureDirect;
    param.storage = storage;
    MemLoc loc;
    loc.root = storage;
    param.seeds.locations.push_back(loc);
    param.loc = storage->loc();
    const GlobalInit* min_field = field(annotation.min_field);
    const GlobalInit* max_field = field(annotation.max_field);
    if (min_field != nullptr && min_field->kind == GlobalInit::Kind::kInt) {
      param.table_min = min_field->int_value;
    }
    if (max_field != nullptr && max_field->kind == GlobalInit::Kind::kInt) {
      param.table_max = max_field->int_value;
    }
    out->push_back(std::move(param));
  }
}

void MappingExtractor::ExtractStructFunction(const MappingAnnotation& annotation,
                                             std::vector<MappedParam>* out,
                                             DiagnosticEngine* diags) {
  const GlobalVariable* table = module_.FindGlobal(annotation.target);
  if (table == nullptr || table->init().kind != GlobalInit::Kind::kList) {
    diags->Error(annotation.loc,
                 "@STRUCT(func): no table global named '" + annotation.target + "'");
    return;
  }
  for (const GlobalInit& row : table->init().elements) {
    if (row.kind != GlobalInit::Kind::kList) {
      continue;
    }
    if (annotation.par_field < 0 ||
        static_cast<size_t>(annotation.par_field) >= row.elements.size() ||
        annotation.func_field < 0 ||
        static_cast<size_t>(annotation.func_field) >= row.elements.size()) {
      continue;
    }
    const GlobalInit& name_field = row.elements[static_cast<size_t>(annotation.par_field)];
    const GlobalInit& func_field = row.elements[static_cast<size_t>(annotation.func_field)];
    if (name_field.kind != GlobalInit::Kind::kString ||
        func_field.kind != GlobalInit::Kind::kGlobalRef) {
      continue;
    }
    const Function* handler = module_.FindFunction(func_field.string_value);
    if (handler == nullptr || handler->IsDeclaration()) {
      diags->Warning(annotation.loc, "@STRUCT(func) row '" + name_field.string_value +
                                         "' references unknown handler '" +
                                         func_field.string_value + "'");
      continue;
    }
    if (annotation.handler_arg < 0 ||
        static_cast<size_t>(annotation.handler_arg) >= handler->arguments().size()) {
      diags->Warning(annotation.loc, "@STRUCT(func): handler '" + handler->name() +
                                         "' has no argument " +
                                         std::to_string(annotation.handler_arg));
      continue;
    }
    MappedParam param;
    param.name = name_field.string_value;
    param.style = MappingStyle::kStructureFunction;
    param.seeds.values.push_back(
        handler->arguments()[static_cast<size_t>(annotation.handler_arg)].get());
    param.loc = SourceLoc{module_.name(), annotation.loc.line, 1};
    out->push_back(std::move(param));
  }
}

void MappingExtractor::ExtractComparison(const MappingAnnotation& annotation,
                                         std::vector<MappedParam>* out,
                                         DiagnosticEngine* diags) {
  const Function* parser = module_.FindFunction(annotation.target);
  if (parser == nullptr || parser->IsDeclaration()) {
    diags->Error(annotation.loc, "@PARSER: no function named '" + annotation.target + "'");
    return;
  }
  std::vector<const Value*> par_loads = FindArgRefLoads(*parser, annotation.parser_par);
  if (par_loads.empty()) {
    diags->Warning(annotation.loc,
                   "@PARSER: no reads of the parameter-name argument were found");
    return;
  }
  std::set<const Value*> par_set(par_loads.begin(), par_loads.end());
  const ControlDependence& cdeps = ControlDepsFor(*parser);

  for (const auto& block : parser->blocks()) {
    for (const auto& instr : block->instructions()) {
      if (instr->instr_kind() != InstrKind::kCall) {
        continue;
      }
      const ApiSpec* spec = apis_.Find(instr->callee());
      if (spec == nullptr || !spec->IsStringCompare()) {
        continue;
      }
      // One operand must read the name argument, another must be a string
      // constant: that constant is the parameter name.
      bool uses_par = false;
      const Value* name_constant = nullptr;
      for (const Value* operand : instr->operands()) {
        if (par_set.count(operand) > 0) {
          uses_par = true;
        } else if (operand->value_kind() == ValueKind::kConstantString) {
          name_constant = operand;
        }
      }
      if (!uses_par || name_constant == nullptr) {
        continue;
      }
      // Find the branch edge taken when the comparison matches (returns 0).
      const Instruction* match_branch = nullptr;
      int match_edge = -1;
      for (const auto& candidate_block : parser->blocks()) {
        const Instruction* term = candidate_block->terminator();
        if (term == nullptr || term->instr_kind() != InstrKind::kCondBr) {
          continue;
        }
        const Value* condition = term->operand(0);
        if (!DependsOn(condition, instr.get())) {
          continue;
        }
        auto result = EvalAssumingZero(condition, instr.get());
        if (result.has_value()) {
          match_branch = term;
          match_edge = (*result != 0) ? 0 : 1;
          break;
        }
      }
      if (match_branch == nullptr) {
        continue;
      }
      // Seeds: reads of the value argument inside the matched region.
      ControlDep want{match_branch, match_edge};
      MappedParam param;
      param.name = name_constant->constant_string();
      param.style = MappingStyle::kComparison;
      param.loc = instr->loc();
      std::vector<const Value*> var_loads = FindArgRefLoads(*parser, annotation.parser_var);
      for (const Value* load : var_loads) {
        const auto* load_instr = static_cast<const Instruction*>(load);
        auto deps = cdeps.TransitiveDeps(load_instr->parent());
        if (std::find(deps.begin(), deps.end(), want) != deps.end()) {
          param.seeds.values.push_back(load);
        }
      }
      // Global stores inside the matched region are this parameter's
      // storage even when the stored value is a constant rather than the
      // value string itself — the boolean idiom `*var = 1` / `*var = 0`
      // assigns by control flow, not data flow.
      for (const auto& region_block : parser->blocks()) {
        auto deps = cdeps.TransitiveDeps(region_block.get());
        if (std::find(deps.begin(), deps.end(), want) == deps.end()) {
          continue;
        }
        for (const auto& region_instr : region_block->instructions()) {
          if (region_instr->instr_kind() != InstrKind::kStore) {
            continue;
          }
          auto loc = context_.ResolveAddress(region_instr->operand(1));
          if (loc.has_value() && loc->root->value_kind() == ValueKind::kGlobal) {
            param.seeds.locations.push_back(*loc);
          }
        }
      }
      if (!param.seeds.values.empty() || !param.seeds.locations.empty()) {
        out->push_back(std::move(param));
      }
    }
  }
}

void MappingExtractor::ExtractContainer(const MappingAnnotation& annotation,
                                        std::vector<MappedParam>* out,
                                        DiagnosticEngine* diags) {
  const auto& sites = context_.CallSitesOf(annotation.target);
  if (sites.empty()) {
    diags->Warning(annotation.loc,
                   "@GETTER: no calls to '" + annotation.target + "' were found");
    return;
  }
  for (const Instruction* call : sites) {
    if (annotation.getter_key_arg < 0 ||
        static_cast<size_t>(annotation.getter_key_arg) >= call->operand_count()) {
      continue;
    }
    const Value* key = call->operand(static_cast<size_t>(annotation.getter_key_arg));
    if (key->value_kind() != ValueKind::kConstantString) {
      continue;  // Dynamic keys cannot be mapped statically.
    }
    MappedParam param;
    param.name = key->constant_string();
    param.style = MappingStyle::kContainer;
    param.seeds.values.push_back(call);
    param.loc = call->loc();
    out->push_back(std::move(param));
  }
}

std::vector<MappedParam> MappingExtractor::Extract(const AnnotationFile& file,
                                                   DiagnosticEngine* diags) {
  std::vector<MappedParam> result;
  for (const MappingAnnotation& annotation : file.annotations) {
    switch (annotation.kind) {
      case AnnotationKind::kStructDirect:
        ExtractStructDirect(annotation, &result, diags);
        break;
      case AnnotationKind::kStructFunction:
        ExtractStructFunction(annotation, &result, diags);
        break;
      case AnnotationKind::kParser:
        ExtractComparison(annotation, &result, diags);
        break;
      case AnnotationKind::kGetter:
        ExtractContainer(annotation, &result, diags);
        break;
    }
  }
  // Merge duplicates (hybrid conventions can surface one parameter twice)
  // and order deterministically by name.
  std::sort(result.begin(), result.end(),
            [](const MappedParam& a, const MappedParam& b) { return a.name < b.name; });
  std::vector<MappedParam> merged;
  for (MappedParam& param : result) {
    if (!merged.empty() && merged.back().name == param.name) {
      MappedParam& target = merged.back();
      for (const Value* seed : param.seeds.values) {
        target.seeds.values.push_back(seed);
      }
      for (const MemLoc& loc : param.seeds.locations) {
        target.seeds.locations.push_back(loc);
      }
      if (target.storage == nullptr) {
        target.storage = param.storage;
      }
      if (!target.table_min.has_value()) {
        target.table_min = param.table_min;
      }
      if (!target.table_max.has_value()) {
        target.table_max = param.table_max;
      }
      continue;
    }
    merged.push_back(std::move(param));
  }
  return merged;
}

}  // namespace spex
