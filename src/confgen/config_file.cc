#include "src/confgen/config_file.h"

#include <sstream>

#include "src/support/strings.h"

namespace spex {

const char* ConfigDialectName(ConfigDialect dialect) {
  switch (dialect) {
    case ConfigDialect::kKeyEqualsValue:
      return "key=value";
    case ConfigDialect::kKeyValue:
      return "key-value";
  }
  return "?";
}

std::optional<ConfigDialect> ParseConfigDialectName(std::string_view name) {
  if (name == "key=value") {
    return ConfigDialect::kKeyEqualsValue;
  }
  if (name == "key-value") {
    return ConfigDialect::kKeyValue;
  }
  return std::nullopt;
}

std::string SupportedConfigDialectNames() {
  return std::string(ConfigDialectName(ConfigDialect::kKeyEqualsValue)) + ", " +
         ConfigDialectName(ConfigDialect::kKeyValue);
}

ConfigFile ConfigFile::Parse(std::string_view text, ConfigDialect dialect) {
  ConfigFile file(dialect);
  uint32_t line_number = 0;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    ++line_number;
    std::string_view line = TrimWhitespace(raw_line);
    ConfigEntry entry;
    entry.line = line_number;
    if (line.empty()) {
      entry.kind = ConfigEntry::Kind::kBlank;
      file.entries_.push_back(std::move(entry));
      continue;
    }
    if (line[0] == '#' || line[0] == ';') {
      entry.kind = ConfigEntry::Kind::kComment;
      entry.raw = std::string(line);
      file.entries_.push_back(std::move(entry));
      continue;
    }
    entry.kind = ConfigEntry::Kind::kSetting;
    if (dialect == ConfigDialect::kKeyEqualsValue) {
      size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        entry.key = std::string(TrimWhitespace(line));
      } else {
        entry.key = std::string(TrimWhitespace(line.substr(0, eq)));
        entry.value = std::string(TrimWhitespace(line.substr(eq + 1)));
      }
    } else {
      size_t space = line.find_first_of(" \t");
      if (space == std::string_view::npos) {
        entry.key = std::string(line);
      } else {
        entry.key = std::string(line.substr(0, space));
        entry.value = std::string(TrimWhitespace(line.substr(space + 1)));
      }
    }
    file.entries_.push_back(std::move(entry));
  }
  // Drop a single trailing blank produced by a final newline.
  if (!file.entries_.empty() && file.entries_.back().kind == ConfigEntry::Kind::kBlank) {
    file.entries_.pop_back();
  }
  return file;
}

std::optional<std::string> ConfigFile::Get(std::string_view key) const {
  for (const ConfigEntry& entry : entries_) {
    if (entry.kind == ConfigEntry::Kind::kSetting && entry.key == key) {
      return entry.value;
    }
  }
  return std::nullopt;
}

uint32_t ConfigFile::LineOf(std::string_view key) const {
  for (const ConfigEntry& entry : entries_) {
    if (entry.kind == ConfigEntry::Kind::kSetting && entry.key == key) {
      return entry.line;
    }
  }
  return 0;
}

void ConfigFile::Set(std::string_view key, std::string_view value) {
  for (ConfigEntry& entry : entries_) {
    if (entry.kind == ConfigEntry::Kind::kSetting && entry.key == key) {
      entry.value = std::string(value);
      return;
    }
  }
  ConfigEntry entry;
  entry.kind = ConfigEntry::Kind::kSetting;
  entry.key = std::string(key);
  entry.value = std::string(value);
  entry.line = entries_.empty() ? 1 : entries_.back().line + 1;
  entries_.push_back(std::move(entry));
}

bool ConfigFile::Remove(std::string_view key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->kind == ConfigEntry::Kind::kSetting && it->key == key) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

void ConfigFile::AppendComment(std::string_view text) {
  ConfigEntry entry;
  entry.kind = ConfigEntry::Kind::kComment;
  entry.raw = "# " + std::string(text);
  entry.line = entries_.empty() ? 1 : entries_.back().line + 1;
  entries_.push_back(std::move(entry));
}

size_t ConfigFile::SettingCount() const {
  size_t count = 0;
  for (const ConfigEntry& entry : entries_) {
    if (entry.kind == ConfigEntry::Kind::kSetting) {
      ++count;
    }
  }
  return count;
}

std::string ConfigFile::Serialize() const {
  std::ostringstream out;
  for (const ConfigEntry& entry : entries_) {
    switch (entry.kind) {
      case ConfigEntry::Kind::kBlank:
        out << "\n";
        break;
      case ConfigEntry::Kind::kComment:
        out << entry.raw << "\n";
        break;
      case ConfigEntry::Kind::kSetting:
        if (dialect_ == ConfigDialect::kKeyEqualsValue) {
          out << entry.key << " = " << entry.value << "\n";
        } else {
          out << entry.key << " " << entry.value << "\n";
        }
        break;
    }
  }
  return out.str();
}

}  // namespace spex
