// Configuration-file abstract representation (AR).
//
// SPEX-INJ mutates a template configuration file into test configurations
// (Section 3.1; the paper reuses ConfErr's parser for this). The AR keeps
// comments, blank lines and entry order so a serialized mutation looks like
// something a user actually wrote.
#ifndef SPEX_CONFGEN_CONFIG_FILE_H_
#define SPEX_CONFGEN_CONFIG_FILE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spex {

enum class ConfigDialect {
  kKeyEqualsValue,  // `key = value`   (MySQL/PostgreSQL-style)
  kKeyValue,        // `key value`     (Apache/Squid-style)
};

// Canonical user-facing name ("key=value" / "key-value").
const char* ConfigDialectName(ConfigDialect dialect);

// Parses a user-supplied dialect name; nullopt for anything unknown.
std::optional<ConfigDialect> ParseConfigDialectName(std::string_view name);

// "key=value, key-value" — the single source of truth for every "unknown
// dialect" error message (spexcheck's --dialect, tools that grow one later).
std::string SupportedConfigDialectNames();

struct ConfigEntry {
  enum class Kind { kSetting, kComment, kBlank };
  Kind kind = Kind::kSetting;
  std::string key;
  std::string value;
  std::string raw;  // Comments/blank lines verbatim.
  uint32_t line = 0;
};

class ConfigFile {
 public:
  ConfigFile() = default;
  explicit ConfigFile(ConfigDialect dialect) : dialect_(dialect) {}

  static ConfigFile Parse(std::string_view text, ConfigDialect dialect);

  ConfigDialect dialect() const { return dialect_; }
  const std::vector<ConfigEntry>& entries() const { return entries_; }

  std::optional<std::string> Get(std::string_view key) const;
  // Line number of a key's setting (for error reports), 0 if absent.
  uint32_t LineOf(std::string_view key) const;
  // Overwrites the first setting of `key`, or appends one.
  void Set(std::string_view key, std::string_view value);
  bool Remove(std::string_view key);
  void AppendComment(std::string_view text);

  size_t SettingCount() const;
  std::string Serialize() const;

 private:
  ConfigDialect dialect_ = ConfigDialect::kKeyEqualsValue;
  std::vector<ConfigEntry> entries_;
};

}  // namespace spex

#endif  // SPEX_CONFGEN_CONFIG_FILE_H_
