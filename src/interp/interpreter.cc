#include "src/interp/interpreter.h"

#include <algorithm>
#include <cmath>

#include "src/support/strings.h"

namespace spex {

// ---------------------------------------------------------------------------
// RtValue helpers.

RtValue RtValue::Int(int64_t v) {
  RtValue value;
  value.kind = Kind::kInt;
  value.i = v;
  return value;
}

RtValue RtValue::Float(double v) {
  RtValue value;
  value.kind = Kind::kFloat;
  value.f = v;
  return value;
}

RtValue RtValue::Str(std::string v) {
  RtValue value;
  value.kind = Kind::kString;
  value.s = std::move(v);
  return value;
}

RtValue RtValue::Null() {
  RtValue value;
  value.kind = Kind::kNull;
  return value;
}

RtValue RtValue::FnRef(std::string name) {
  RtValue value;
  value.kind = Kind::kFnRef;
  value.s = std::move(name);
  return value;
}

bool RtValue::IsTruthy() const {
  switch (kind) {
    case Kind::kInt:
      return i != 0;
    case Kind::kFloat:
      return f != 0;
    case Kind::kString:
      return true;  // Non-null pointer.
    case Kind::kNull:
      return false;
    case Kind::kAddr:
    case Kind::kFnRef:
      return true;
  }
  return false;
}

int64_t RtValue::AsInt() const {
  switch (kind) {
    case Kind::kInt:
      return i;
    case Kind::kFloat:
      return static_cast<int64_t>(f);
    default:
      return 0;
  }
}

double RtValue::AsFloat() const {
  switch (kind) {
    case Kind::kFloat:
      return f;
    case Kind::kInt:
      return static_cast<double>(i);
    default:
      return 0;
  }
}

std::string RtValue::ToDebugString() const {
  switch (kind) {
    case Kind::kInt:
      return std::to_string(i);
    case Kind::kFloat:
      return std::to_string(f);
    case Kind::kString:
      return "\"" + s + "\"";
    case Kind::kNull:
      return "null";
    case Kind::kAddr:
      return "<addr>";
    case Kind::kFnRef:
      return "<fn " + s + ">";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Construction and global initialization.

Interpreter::Interpreter(const Module& module, OsSimulator* os, InterpOptions options)
    : module_(module), os_(os), options_(options) {
  BuildModuleIndex();
  BuildInitImage();
  Reset();
}

void Interpreter::BuildModuleIndex() {
  functions_by_name_.reserve(module_.functions().size());
  for (const auto& fn : module_.functions()) {
    // Like Module::FindFunction, a definition wins over a declaration of
    // the same name. (Among multiple declarations the first wins here, the
    // last there — unobservable, since callers only check IsDeclaration().)
    auto [it, inserted] = functions_by_name_.emplace(fn->name(), fn.get());
    if (!inserted && it->second->IsDeclaration() && !fn->IsDeclaration()) {
      it->second = fn.get();
    }
  }
  const auto& globals = module_.globals();
  globals_by_name_.reserve(globals.size());
  global_slot_.reserve(globals.size());
  global_bounds_.reserve(globals.size());
  for (size_t i = 0; i < globals.size(); ++i) {
    const GlobalVariable* global = globals[i].get();
    globals_by_name_.emplace(global->name(), global);
    global_slot_.emplace(global, static_cast<int32_t>(i));
    global_bounds_.push_back(global->is_array() ? global->array_size() : 0);
  }
  global_read_.assign(globals.size(), 0);
}

const Function* Interpreter::LookupFunction(const std::string& name) const {
  auto it = functions_by_name_.find(name);
  return it != functions_by_name_.end() ? it->second : nullptr;
}

const GlobalVariable* Interpreter::LookupGlobal(const std::string& name) const {
  auto it = globals_by_name_.find(name);
  return it != globals_by_name_.end() ? it->second : nullptr;
}

int32_t Interpreter::GlobalSlotOf(const Value* root) const {
  auto it = global_slot_.find(root);
  return it != global_slot_.end() ? it->second : -1;
}

void Interpreter::Reset() {
  global_scalars_ = init_scalars_;
  cells_ = init_cells_;
  std::fill(global_read_.begin(), global_read_.end(), 0);
  alloca_bounds_.clear();
  logs_.clear();
  steps_ = 0;
  next_frame_id_ = 0;
  call_depth_ = 0;
}

RtValue Interpreter::DefaultValueFor(const IrType* type) const {
  if (type == nullptr) {
    return RtValue::Int(0);
  }
  switch (type->kind()) {
    case IrTypeKind::kFloat:
      return RtValue::Float(0);
    case IrTypeKind::kString:
    case IrTypeKind::kPointer:
      return RtValue::Null();
    default:
      return RtValue::Int(0);
  }
}

namespace {

RtValue InitToValue(const GlobalInit& init) {
  switch (init.kind) {
    case GlobalInit::Kind::kInt:
      return RtValue::Int(init.int_value);
    case GlobalInit::Kind::kFloat:
      return RtValue::Float(init.float_value);
    case GlobalInit::Kind::kString:
      return RtValue::Str(init.string_value);
    case GlobalInit::Kind::kNull:
      return RtValue::Null();
    default:
      return RtValue::Int(0);
  }
}

}  // namespace

void Interpreter::BuildInitImage() {
  init_scalars_.reserve(module_.globals().size());
  for (const auto& global : module_.globals()) {
    init_scalars_.push_back(DefaultValueFor(global->value_type()));
    const GlobalInit& init = global->init();

    auto leaf_value = [this](const GlobalInit& leaf) -> RtValue {
      if (leaf.kind == GlobalInit::Kind::kGlobalRef) {
        // Address of another global, or a function reference.
        const GlobalVariable* target = LookupGlobal(leaf.string_value);
        if (target != nullptr) {
          RtValue addr;
          addr.kind = RtValue::Kind::kAddr;
          addr.frame = -1;
          addr.root = target;
          return addr;
        }
        return RtValue::FnRef(leaf.string_value);
      }
      return InitToValue(leaf);
    };
    auto store_leaf = [this, &global, &leaf_value](std::vector<int64_t> path,
                                                   const GlobalInit& leaf) {
      CellKey key;
      key.frame = -1;
      key.root = global.get();
      key.path = std::move(path);
      init_cells_[std::move(key)] = leaf_value(leaf);
    };

    if (init.kind == GlobalInit::Kind::kNone) {
      continue;  // Scalar slot already holds the type default.
    }
    if (init.kind != GlobalInit::Kind::kList) {
      init_scalars_.back() = leaf_value(init);
      continue;
    }
    // Array and/or struct initializer.
    const IrType* type = global->value_type();
    for (size_t i = 0; i < init.elements.size(); ++i) {
      const GlobalInit& element = init.elements[i];
      if (element.kind == GlobalInit::Kind::kList) {
        // Struct row (possibly inside an array).
        for (size_t j = 0; j < element.elements.size(); ++j) {
          store_leaf({static_cast<int64_t>(i), static_cast<int64_t>(j)},
                     element.elements[j]);
        }
      } else if (global->is_array()) {
        store_leaf({static_cast<int64_t>(i)}, element);
      } else if (type->IsStruct()) {
        // Struct initializer without nesting: field i.
        store_leaf({static_cast<int64_t>(i)}, element);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Memory.

void Interpreter::CheckBounds(const Value* root, int32_t slot,
                              const std::vector<int64_t>& path, const Instruction* at) const {
  if (path.empty()) {
    return;
  }
  int64_t bound = 0;
  if (slot >= 0) {
    bound = global_bounds_[static_cast<size_t>(slot)];
  } else {
    auto it = alloca_bounds_.find(root);
    bound = it != alloca_bounds_.end() ? it->second : 0;
  }
  if (bound <= 0) {
    return;
  }
  int64_t index = path.front();
  if (index < 0 || index >= bound) {
    throw TrapError("Segmentation fault (array index " + std::to_string(index) +
                    " out of bounds 0.." + std::to_string(bound - 1) + " at " +
                    (at != nullptr ? at->loc().ToString() : "<unknown>") + ")");
  }
}

RtValue Interpreter::DefaultCellValue(const Value* root,
                                      const std::vector<int64_t>& path) const {
  const IrType* type = nullptr;
  if (root->value_kind() == ValueKind::kGlobal) {
    type = static_cast<const GlobalVariable*>(root)->value_type();
  } else if (root->value_kind() == ValueKind::kInstruction) {
    type = static_cast<const Instruction*>(root)->allocated_type();
  }
  for (size_t i = 0; i < path.size() && type != nullptr; ++i) {
    if (type->IsStruct()) {
      size_t field = static_cast<size_t>(path[i]);
      type = field < type->field_types().size() ? type->field_types()[field] : nullptr;
    }
    // Array steps keep the element type (arrays are typed by their element).
  }
  return DefaultValueFor(type);
}

RtValue Interpreter::LoadCell(const RtValue& addr, const Instruction* at) {
  if (addr.kind == RtValue::Kind::kNull) {
    throw TrapError("Segmentation fault (null pointer dereference)");
  }
  if (addr.kind != RtValue::Kind::kAddr) {
    throw TrapError("Segmentation fault (load through non-pointer value)");
  }
  int32_t slot = addr.frame == -1 ? GlobalSlotOf(addr.root) : -1;
  CheckBounds(addr.root, slot, addr.path, at);
  if (slot >= 0) {
    global_read_[static_cast<size_t>(slot)] = 1;
    if (addr.path.empty()) {
      return global_scalars_[static_cast<size_t>(slot)];
    }
  }
  CellKey key;
  key.frame = addr.frame;
  key.root = addr.root;
  key.path = addr.path;
  auto it = cells_.find(key);
  if (it != cells_.end()) {
    return it->second;
  }
  // Untouched cell: default by leaf type when derivable.
  return DefaultCellValue(addr.root, addr.path);
}

void Interpreter::StoreCell(const RtValue& addr, RtValue value, const Instruction* at) {
  if (addr.kind == RtValue::Kind::kNull) {
    throw TrapError("Segmentation fault (null pointer write)");
  }
  if (addr.kind != RtValue::Kind::kAddr) {
    throw TrapError("Segmentation fault (store through non-pointer value)");
  }
  int32_t slot = addr.frame == -1 ? GlobalSlotOf(addr.root) : -1;
  CheckBounds(addr.root, slot, addr.path, at);
  if (slot >= 0 && addr.path.empty()) {
    global_scalars_[static_cast<size_t>(slot)] = std::move(value);
    return;
  }
  CellKey key;
  key.frame = addr.frame;
  key.root = addr.root;
  key.path = addr.path;
  cells_[std::move(key)] = std::move(value);
}

// ---------------------------------------------------------------------------
// Execution.

void Interpreter::Step() {
  if (++steps_ > options_.max_steps) {
    throw HangError();
  }
}

CallOutcome Interpreter::Call(const std::string& function, std::vector<RtValue> args) {
  CallOutcome outcome;
  const Function* fn = LookupFunction(function);
  if (fn == nullptr || fn->IsDeclaration()) {
    outcome.status = CallOutcome::Status::kTrap;
    outcome.trap_reason = "no such function: " + function;
    return outcome;
  }
  try {
    outcome.return_value = RunFunction(*fn, std::move(args));
    outcome.status = CallOutcome::Status::kOk;
  } catch (const ExitRequest& exit_request) {
    outcome.status = CallOutcome::Status::kExit;
    outcome.exit_code = exit_request.code();
  } catch (const TrapError& trap) {
    outcome.status = CallOutcome::Status::kTrap;
    outcome.trap_reason = trap.reason();
  } catch (const HangError&) {
    outcome.status = CallOutcome::Status::kHang;
    outcome.trap_reason = "step budget exhausted";
  }
  call_depth_ = 0;
  return outcome;
}

RtValue Interpreter::Eval(Frame& frame, const Value* value) {
  switch (value->value_kind()) {
    case ValueKind::kConstantInt:
      return RtValue::Int(value->constant_int());
    case ValueKind::kConstantFloat:
      return RtValue::Float(value->constant_float());
    case ValueKind::kConstantString:
      return RtValue::Str(value->constant_string());
    case ValueKind::kConstantNull:
      return RtValue::Null();
    case ValueKind::kGlobal: {
      RtValue addr;
      addr.kind = RtValue::Kind::kAddr;
      addr.frame = -1;
      addr.root = value;
      return addr;
    }
    case ValueKind::kArgument:
    case ValueKind::kInstruction: {
      uint32_t id = value->id();
      return id < frame.regs.size() ? frame.regs[id] : RtValue::Int(0);
    }
  }
  return RtValue::Int(0);
}

RtValue Interpreter::RunFunction(const Function& fn, std::vector<RtValue> args) {
  if (++call_depth_ > options_.max_call_depth) {
    --call_depth_;
    throw TrapError("Segmentation fault (stack overflow)");
  }
  Frame frame;
  frame.fn = &fn;
  frame.id = next_frame_id_++;
  if (!frame_pool_.empty()) {
    frame.regs = std::move(frame_pool_.back());
    frame_pool_.pop_back();
  }
  frame.regs.assign(fn.value_id_count(), RtValue());
  for (size_t i = 0; i < fn.arguments().size(); ++i) {
    frame.regs[fn.arguments()[i]->id()] =
        i < args.size() ? std::move(args[i]) : DefaultValueFor(fn.arguments()[i]->type());
  }

  const BasicBlock* block = fn.entry();
  RtValue result = DefaultValueFor(fn.return_type());
  while (block != nullptr) {
    const BasicBlock* next = nullptr;
    for (const auto& instr_ptr : block->instructions()) {
      const Instruction* instr = instr_ptr.get();
      Step();
      switch (instr->instr_kind()) {
        case InstrKind::kAlloca: {
          alloca_bounds_.emplace(instr, instr->alloca_array_size());
          RtValue addr;
          addr.kind = RtValue::Kind::kAddr;
          addr.frame = frame.id;
          addr.root = instr;
          frame.regs[instr->id()] = addr;
          break;
        }
        case InstrKind::kLoad:
          frame.regs[instr->id()] = LoadCell(Eval(frame, instr->operand(0)), instr);
          break;
        case InstrKind::kStore:
          StoreCell(Eval(frame, instr->operand(1)), Eval(frame, instr->operand(0)), instr);
          break;
        case InstrKind::kBinOp: {
          RtValue lhs = Eval(frame, instr->operand(0));
          RtValue rhs = Eval(frame, instr->operand(1));
          if (lhs.kind == RtValue::Kind::kFloat || rhs.kind == RtValue::Kind::kFloat) {
            double a = lhs.AsFloat();
            double b = rhs.AsFloat();
            double out = 0;
            switch (instr->bin_op()) {
              case IrBinOp::kAdd:
                out = a + b;
                break;
              case IrBinOp::kSub:
                out = a - b;
                break;
              case IrBinOp::kMul:
                out = a * b;
                break;
              case IrBinOp::kDiv:
                if (b == 0) {
                  throw TrapError("Floating point exception (division by zero)");
                }
                out = a / b;
                break;
              default:
                out = 0;
                break;
            }
            frame.regs[instr->id()] = RtValue::Float(out);
            break;
          }
          int64_t a = lhs.AsInt();
          int64_t b = rhs.AsInt();
          int64_t out = 0;
          switch (instr->bin_op()) {
            case IrBinOp::kAdd:
              out = a + b;
              break;
            case IrBinOp::kSub:
              out = a - b;
              break;
            case IrBinOp::kMul:
              out = a * b;
              break;
            case IrBinOp::kDiv:
              if (b == 0) {
                throw TrapError("Floating point exception (integer division by zero)");
              }
              out = a / b;
              break;
            case IrBinOp::kRem:
              if (b == 0) {
                throw TrapError("Floating point exception (integer division by zero)");
              }
              out = a % b;
              break;
            case IrBinOp::kShl:
              out = b >= 64 ? 0 : a << b;
              break;
            case IrBinOp::kShr:
              out = b >= 64 ? 0 : a >> b;
              break;
            case IrBinOp::kAnd:
              out = a & b;
              break;
            case IrBinOp::kOr:
              out = a | b;
              break;
            case IrBinOp::kXor:
              out = a ^ b;
              break;
          }
          frame.regs[instr->id()] = RtValue::Int(out);
          break;
        }
        case InstrKind::kCmp: {
          RtValue lhs = Eval(frame, instr->operand(0));
          RtValue rhs = Eval(frame, instr->operand(1));
          bool result_bool = false;
          bool string_side = lhs.kind == RtValue::Kind::kString ||
                             rhs.kind == RtValue::Kind::kString ||
                             lhs.kind == RtValue::Kind::kNull ||
                             rhs.kind == RtValue::Kind::kNull;
          if (string_side) {
            bool lhs_null = lhs.kind == RtValue::Kind::kNull;
            bool rhs_null = rhs.kind == RtValue::Kind::kNull;
            int order;
            if (lhs_null || rhs_null) {
              order = (lhs_null && rhs_null) ? 0 : (lhs_null ? -1 : 1);
            } else {
              order = lhs.s.compare(rhs.s);
              order = order < 0 ? -1 : (order > 0 ? 1 : 0);
            }
            switch (instr->cmp_pred()) {
              case IrCmpPred::kEq:
                result_bool = order == 0;
                break;
              case IrCmpPred::kNe:
                result_bool = order != 0;
                break;
              case IrCmpPred::kLt:
                result_bool = order < 0;
                break;
              case IrCmpPred::kLe:
                result_bool = order <= 0;
                break;
              case IrCmpPred::kGt:
                result_bool = order > 0;
                break;
              case IrCmpPred::kGe:
                result_bool = order >= 0;
                break;
            }
          } else if (lhs.kind == RtValue::Kind::kFloat || rhs.kind == RtValue::Kind::kFloat) {
            double a = lhs.AsFloat();
            double b = rhs.AsFloat();
            switch (instr->cmp_pred()) {
              case IrCmpPred::kEq:
                result_bool = a == b;
                break;
              case IrCmpPred::kNe:
                result_bool = a != b;
                break;
              case IrCmpPred::kLt:
                result_bool = a < b;
                break;
              case IrCmpPred::kLe:
                result_bool = a <= b;
                break;
              case IrCmpPred::kGt:
                result_bool = a > b;
                break;
              case IrCmpPred::kGe:
                result_bool = a >= b;
                break;
            }
          } else {
            int64_t a = lhs.AsInt();
            int64_t b = rhs.AsInt();
            switch (instr->cmp_pred()) {
              case IrCmpPred::kEq:
                result_bool = a == b;
                break;
              case IrCmpPred::kNe:
                result_bool = a != b;
                break;
              case IrCmpPred::kLt:
                result_bool = a < b;
                break;
              case IrCmpPred::kLe:
                result_bool = a <= b;
                break;
              case IrCmpPred::kGt:
                result_bool = a > b;
                break;
              case IrCmpPred::kGe:
                result_bool = a >= b;
                break;
            }
          }
          frame.regs[instr->id()] = RtValue::Int(result_bool ? 1 : 0);
          break;
        }
        case InstrKind::kCast: {
          RtValue operand = Eval(frame, instr->operand(0));
          const IrType* to = instr->type();
          if (to->kind() == IrTypeKind::kFloat) {
            frame.regs[instr->id()] = RtValue::Float(operand.AsFloat());
          } else if (to->IsBool()) {
            frame.regs[instr->id()] = RtValue::Int(operand.IsTruthy() ? 1 : 0);
          } else if (to->IsInteger()) {
            int64_t v = operand.AsInt();
            // Integer truncation — this is where 9000000000 silently becomes
            // an overflowed 32-bit value (paper Figure 5(a)).
            switch (to->bit_width()) {
              case 8:
                v = static_cast<int8_t>(v);
                break;
              case 16:
                v = static_cast<int16_t>(v);
                break;
              case 32:
                v = static_cast<int32_t>(v);
                break;
              default:
                break;
            }
            frame.regs[instr->id()] = RtValue::Int(v);
          } else {
            frame.regs[instr->id()] = operand;
          }
          break;
        }
        case InstrKind::kCall:
          frame.regs[instr->id()] = ExecCall(frame, instr);
          break;
        case InstrKind::kFieldAddr: {
          RtValue base = Eval(frame, instr->operand(0));
          if (base.kind == RtValue::Kind::kNull) {
            throw TrapError("Segmentation fault (null pointer field access)");
          }
          if (base.kind != RtValue::Kind::kAddr) {
            throw TrapError("Segmentation fault (field access on non-pointer)");
          }
          base.path.push_back(instr->field_index());
          frame.regs[instr->id()] = base;
          break;
        }
        case InstrKind::kIndexAddr: {
          RtValue base = Eval(frame, instr->operand(0));
          if (base.kind == RtValue::Kind::kNull) {
            throw TrapError("Segmentation fault (null pointer indexing)");
          }
          if (base.kind != RtValue::Kind::kAddr) {
            throw TrapError("Segmentation fault (indexing a non-pointer)");
          }
          RtValue index = Eval(frame, instr->operand(1));
          base.path.push_back(index.AsInt());
          frame.regs[instr->id()] = base;
          break;
        }
        case InstrKind::kBr:
          next = instr->successors()[0];
          break;
        case InstrKind::kCondBr: {
          RtValue condition = Eval(frame, instr->operand(0));
          next = condition.IsTruthy() ? instr->successors()[0] : instr->successors()[1];
          break;
        }
        case InstrKind::kSwitch: {
          RtValue subject = Eval(frame, instr->operand(0));
          next = instr->successors()[0];  // default
          for (size_t i = 0; i < instr->switch_values().size(); ++i) {
            if (instr->switch_values()[i] == subject.AsInt()) {
              next = instr->successors()[i + 1];
              break;
            }
          }
          break;
        }
        case InstrKind::kRet: {
          --call_depth_;
          RtValue ret = instr->operand_count() == 1 ? Eval(frame, instr->operand(0)) : result;
          frame_pool_.push_back(std::move(frame.regs));
          return ret;
        }
        case InstrKind::kUnreachable:
          throw TrapError("Segmentation fault (unreachable code executed)");
      }
      if (next != nullptr) {
        break;
      }
    }
    block = next;
  }
  --call_depth_;
  frame_pool_.push_back(std::move(frame.regs));
  return result;
}

RtValue Interpreter::ExecCall(Frame& frame, const Instruction* instr) {
  std::vector<RtValue> args;
  args.reserve(instr->operand_count());
  for (size_t i = 0; i < instr->operand_count(); ++i) {
    args.push_back(Eval(frame, instr->operand(i)));
  }
  const Function* callee = LookupFunction(instr->callee());
  if (callee != nullptr && !callee->IsDeclaration()) {
    return RunFunction(*callee, std::move(args));
  }
  return Intrinsic(instr->callee(), args, instr);
}

// ---------------------------------------------------------------------------
// Logging.

void Interpreter::AppendLog(std::string level, const std::string& message) {
  logs_.push_back(level + ": " + message);
}

std::string Interpreter::FormatMessage(const std::string& format,
                                       const std::vector<RtValue>& args,
                                       size_t first_arg) const {
  std::string out;
  size_t arg_index = first_arg;
  for (size_t i = 0; i < format.size(); ++i) {
    if (format[i] != '%' || i + 1 >= format.size()) {
      out.push_back(format[i]);
      continue;
    }
    // Accept %d %i %s %u and the l-prefixed variants.
    size_t j = i + 1;
    while (j < format.size() && format[j] == 'l') {
      ++j;
    }
    if (j < format.size() &&
        (format[j] == 'd' || format[j] == 'i' || format[j] == 'u' || format[j] == 's')) {
      if (arg_index < args.size()) {
        const RtValue& arg = args[arg_index++];
        if (format[j] == 's') {
          out += arg.kind == RtValue::Kind::kNull ? "(null)" : arg.s;
        } else {
          out += std::to_string(arg.AsInt());
        }
      }
      i = j;
    } else {
      out.push_back(format[i]);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Intrinsics (simulated C library + OS surface).

namespace {

// C-style prefix integer parse (what atoi/strtol do with garbage input).
int64_t ParsePrefixInt(const std::string& text) {
  size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) {
    ++i;
  }
  bool negative = false;
  if (i < text.size() && (text[i] == '-' || text[i] == '+')) {
    negative = text[i] == '-';
    ++i;
  }
  int64_t value = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
    value = value * 10 + (text[i] - '0');
    ++i;
  }
  return negative ? -value : value;
}

}  // namespace

RtValue Interpreter::Intrinsic(const std::string& name, std::vector<RtValue>& args,
                               const Instruction* instr) {
  auto need_string = [&](size_t index) -> const std::string& {
    if (index >= args.size() || args[index].kind == RtValue::Kind::kNull) {
      throw TrapError("Segmentation fault (null string passed to " + name + ")");
    }
    if (args[index].kind != RtValue::Kind::kString) {
      throw TrapError("Segmentation fault (non-string passed to " + name + ")");
    }
    return args[index].s;
  };
  auto arg_int = [&](size_t index) -> int64_t {
    return index < args.size() ? args[index].AsInt() : 0;
  };

  // --- Strings.
  if (name == "strcmp" || name == "strcasecmp") {
    const std::string& a = need_string(0);
    const std::string& b = need_string(1);
    int order;
    if (name == "strcmp") {
      order = a.compare(b);
    } else {
      std::string la = ToLowerCopy(a);
      std::string lb = ToLowerCopy(b);
      order = la.compare(lb);
    }
    return RtValue::Int(order < 0 ? -1 : (order > 0 ? 1 : 0));
  }
  if (name == "strncmp" || name == "strncasecmp") {
    std::string a = need_string(0).substr(0, static_cast<size_t>(arg_int(2)));
    std::string b = need_string(1).substr(0, static_cast<size_t>(arg_int(2)));
    if (name == "strncasecmp") {
      a = ToLowerCopy(a);
      b = ToLowerCopy(b);
    }
    int order = a.compare(b);
    return RtValue::Int(order < 0 ? -1 : (order > 0 ? 1 : 0));
  }
  if (name == "strlen") {
    return RtValue::Int(static_cast<int64_t>(need_string(0).size()));
  }
  if (name == "strdup" || name == "canonicalize_path" || name == "tolower_str" ||
      name == "toupper_str") {
    std::string s = need_string(0);
    if (name == "tolower_str") {
      s = ToLowerCopy(s);
    } else if (name == "toupper_str") {
      s = ToUpperCopy(s);
    } else if (name == "canonicalize_path") {
      s = ReplaceAll(std::move(s), "//", "/");
    }
    return RtValue::Str(std::move(s));
  }
  if (name == "strchr") {
    const std::string& s = need_string(0);
    char c = static_cast<char>(arg_int(1));
    size_t pos = s.find(c);
    return pos == std::string::npos ? RtValue::Null() : RtValue::Str(s.substr(pos));
  }
  if (name == "strstr") {
    const std::string& s = need_string(0);
    const std::string& sub = need_string(1);
    size_t pos = s.find(sub);
    return pos == std::string::npos ? RtValue::Null() : RtValue::Str(s.substr(pos));
  }

  // --- Conversions.
  if (name == "atoi") {
    // Classic atoi: parses a prefix, wraps silently on 32-bit overflow.
    return RtValue::Int(static_cast<int32_t>(ParsePrefixInt(need_string(0))));
  }
  if (name == "atol" || name == "strtol" || name == "strtoll" || name == "strtoul") {
    return RtValue::Int(ParsePrefixInt(need_string(0)));
  }
  if (name == "strtod") {
    const std::string& s = need_string(0);
    return RtValue::Float(std::strtod(s.c_str(), nullptr));
  }
  if (name == "sscanf") {
    // Supported form: sscanf(text, "%d"-like, &out). Parses a prefix; on
    // total mismatch returns 0 and leaves the output untouched (the
    // undefined-on-garbage behaviour Figure 6(d) warns about).
    const std::string& text = need_string(0);
    size_t i = 0;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    bool has_digits = i < text.size() && (std::isdigit(static_cast<unsigned char>(text[i])) != 0 ||
                                          ((text[i] == '-' || text[i] == '+') &&
                                           i + 1 < text.size() &&
                                           std::isdigit(static_cast<unsigned char>(text[i + 1])) != 0));
    if (!has_digits) {
      return RtValue::Int(0);
    }
    if (args.size() >= 3 && args[2].kind == RtValue::Kind::kAddr) {
      StoreCell(args[2], RtValue::Int(ParsePrefixInt(text)), instr);
    }
    return RtValue::Int(1);
  }
  if (name == "parse_int_strict") {
    // The safe-API alternative: whole-string parse with error reporting.
    const std::string& text = need_string(0);
    auto parsed = ParseInt64(text);
    if (!parsed.has_value()) {
      return RtValue::Int(-1);
    }
    if (args.size() >= 2 && args[1].kind == RtValue::Kind::kAddr) {
      StoreCell(args[1], RtValue::Int(*parsed), instr);
    }
    return RtValue::Int(0);
  }

  // --- Filesystem.
  if (name == "open" || name == "fopen") {
    const std::string& path = need_string(0);
    if (os_->DirectoryExists(path)) {
      return RtValue::Int(-1);  // EISDIR
    }
    if (!os_->FileExists(path) || !os_->IsReadable(path)) {
      return name == "open" ? RtValue::Int(-1) : RtValue::Int(0);
    }
    return RtValue::Int(3);
  }
  if (name == "opendir") {
    return RtValue::Int(os_->DirectoryExists(need_string(0)) ? 3 : 0);
  }
  if (name == "access" || name == "stat_file") {
    const std::string& path = need_string(0);
    bool exists = os_->FileExists(path) || os_->DirectoryExists(path);
    return RtValue::Int(exists ? 0 : -1);
  }
  if (name == "unlink") {
    return RtValue::Int(os_->RemoveFile(need_string(0)) ? 0 : -1);
  }
  if (name == "mkdir") {
    os_->AddDirectory(need_string(0));
    return RtValue::Int(0);
  }
  if (name == "chdir" || name == "chroot") {
    return RtValue::Int(os_->DirectoryExists(need_string(0)) ? 0 : -1);
  }
  if (name == "chown") {
    const std::string& path = need_string(0);
    const std::string& user = need_string(1);
    bool ok = (os_->FileExists(path) || os_->DirectoryExists(path)) && os_->UserExists(user);
    return RtValue::Int(ok ? 0 : -1);
  }
  if (name == "chmod" || name == "umask") {
    return RtValue::Int(0);
  }
  if (name == "close" || name == "read" || name == "write" || name == "free") {
    return RtValue::Int(0);
  }

  // --- Network.
  if (name == "socket") {
    return RtValue::Int(3);
  }
  if (name == "bind") {
    return RtValue::Int(os_->PortAvailable(arg_int(1)) ? 0 : -1);
  }
  if (name == "listen") {
    return RtValue::Int(0);
  }
  if (name == "connect") {
    bool ok = args.size() >= 3 && args[1].kind == RtValue::Kind::kString &&
              os_->ResolvesHost(args[1].s) && arg_int(2) >= 1 && arg_int(2) <= 65535;
    return RtValue::Int(ok ? 0 : -1);
  }
  if (name == "htons" || name == "ntohs" || name == "set_port") {
    // 16-bit truncation: port 70000 silently becomes 4464.
    return RtValue::Int(arg_int(0) & 0xFFFF);
  }
  if (name == "htonl" || name == "ntohl") {
    return RtValue::Int(arg_int(0) & 0xFFFFFFFFLL);
  }
  if (name == "inet_addr") {
    const std::string& text = need_string(0);
    return RtValue::Int(os_->IsValidIpAddress(text) ? 0x7f000001 : -1);
  }
  if (name == "inet_aton") {
    return RtValue::Int(os_->IsValidIpAddress(need_string(0)) ? 1 : 0);
  }
  if (name == "gethostbyname") {
    return RtValue::Int(os_->ResolvesHost(need_string(0)) ? 1 : 0);
  }

  // --- Users.
  if (name == "getpwnam") {
    return RtValue::Int(os_->UserExists(need_string(0)) ? 1 : 0);
  }
  if (name == "getgrnam") {
    return RtValue::Int(os_->GroupExists(need_string(0)) ? 1 : 0);
  }
  if (name == "setuid_user") {
    return RtValue::Int(os_->UserExists(need_string(0)) ? 0 : -1);
  }

  // --- Time. Virtual sleeping burns steps so that absurd durations are
  // detected as hangs (100 steps per simulated second).
  if (name == "sleep" || name == "alarm") {
    int64_t seconds = std::max<int64_t>(0, arg_int(0));
    os_->AdvanceClock(seconds);
    steps_ += std::min<int64_t>(seconds, 1'000'000) * 100;
    if (steps_ > options_.max_steps) {
      throw HangError();
    }
    return RtValue::Int(0);
  }
  if (name == "usleep") {
    int64_t usec = std::max<int64_t>(0, arg_int(0));
    os_->AdvanceClock(usec / 1'000'000);
    steps_ += std::min<int64_t>(usec / 10'000, 100'000'000);
    if (steps_ > options_.max_steps) {
      throw HangError();
    }
    return RtValue::Int(0);
  }
  if (name == "poll_wait" || name == "set_timeout_ms") {
    int64_t msec = std::max<int64_t>(0, arg_int(0));
    os_->AdvanceClock(msec / 1000);
    steps_ += std::min<int64_t>(msec / 10, 100'000'000);
    if (steps_ > options_.max_steps) {
      throw HangError();
    }
    return RtValue::Int(0);
  }
  if (name == "time") {
    return RtValue::Int(os_->now());
  }

  // --- Memory.
  if (name == "malloc" || name == "alloc_buffer") {
    return RtValue::Int(os_->TryAllocate(arg_int(0)));
  }
  if (name == "set_buffer_size") {
    return RtValue::Int(0);
  }

  // --- Process control.
  if (name == "exit" || name == "_exit") {
    throw ExitRequest(arg_int(0));
  }
  if (name == "abort") {
    throw TrapError("Segmentation fault (abort)");
  }
  if (name == "daemonize") {
    return RtValue::Int(0);
  }

  // --- Logging.
  if (name == "printf") {
    AppendLog("OUT", FormatMessage(need_string(0), args, 1));
    return RtValue::Int(0);
  }
  if (name == "fprintf") {
    AppendLog("OUT", FormatMessage(need_string(1), args, 2));
    return RtValue::Int(0);
  }
  if (name == "sprintf") {
    // sprintf(out_ignored, fmt, ...) — MiniC uses it only as the unsafe-API
    // example; formatting result is discarded.
    return RtValue::Int(0);
  }
  if (name == "log_info" || name == "log_warn" || name == "log_error" || name == "log_fatal") {
    std::string level = name == "log_info"   ? "INFO"
                        : name == "log_warn" ? "WARN"
                        : name == "log_error" ? "ERROR"
                                              : "FATAL";
    AppendLog(level, FormatMessage(need_string(0), args, 1));
    return RtValue::Int(0);
  }

  // --- Indirect handler invocation (configuration dispatch tables).
  if (name == "invoke_handler1" || name == "invoke_handler2") {
    if (args.empty() || args[0].kind != RtValue::Kind::kFnRef) {
      throw TrapError("Segmentation fault (call through non-function value)");
    }
    const Function* handler = LookupFunction(args[0].s);
    if (handler == nullptr || handler->IsDeclaration()) {
      throw TrapError("Segmentation fault (call through dangling handler '" + args[0].s + "')");
    }
    std::vector<RtValue> handler_args(args.begin() + 1, args.end());
    return RunFunction(*handler, std::move(handler_args));
  }

  throw TrapError("unresolved external function: " + name);
}

std::optional<RtValue> Interpreter::ReadGlobal(const std::string& name) const {
  const GlobalVariable* global = LookupGlobal(name);
  if (global == nullptr) {
    return std::nullopt;
  }
  return global_scalars_[static_cast<size_t>(GlobalSlotOf(global))];
}

void Interpreter::WriteGlobal(const std::string& name, RtValue value) {
  const GlobalVariable* global = LookupGlobal(name);
  if (global == nullptr) {
    return;
  }
  global_scalars_[static_cast<size_t>(GlobalSlotOf(global))] = std::move(value);
}

bool Interpreter::GlobalWasRead(const std::string& name) const {
  const GlobalVariable* global = LookupGlobal(name);
  if (global == nullptr) {
    return false;
  }
  return global_read_[static_cast<size_t>(GlobalSlotOf(global))] != 0;
}

}  // namespace spex
