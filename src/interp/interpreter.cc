#include "src/interp/interpreter.h"

#include <algorithm>
#include <cmath>

#include "src/support/strings.h"

namespace spex {

// ---------------------------------------------------------------------------
// RtValue helpers.

namespace {

const std::string& EmptyString() {
  static const std::string* kEmpty = new std::string();
  return *kEmpty;
}

}  // namespace

RtValue RtValue::Int(int64_t v) {
  RtValue value;
  value.kind = Kind::kInt;
  value.i = v;
  return value;
}

RtValue RtValue::Float(double v) {
  RtValue value;
  value.kind = Kind::kFloat;
  value.f = v;
  return value;
}

RtValue RtValue::Str(std::string_view v) {
  StringPool& pool = BoundaryStringPool();
  RtValue value;
  value.kind = Kind::kString;
  value.sp = pool.InternPtr(v, &value.sym);
  return value;
}

RtValue RtValue::Null() {
  RtValue value;
  value.kind = Kind::kNull;
  return value;
}

RtValue RtValue::FnRef(std::string_view name) {
  StringPool& pool = BoundaryStringPool();
  RtValue value;
  value.kind = Kind::kFnRef;
  value.sp = pool.InternPtr(name, &value.sym);
  return value;
}

RtValue RtValue::PooledStr(const std::string* sp, Symbol sym) {
  RtValue value;
  value.kind = Kind::kString;
  value.sp = sp;
  value.sym = sym;
  return value;
}

RtValue RtValue::PooledFnRef(const std::string* sp, Symbol sym) {
  RtValue value;
  value.kind = Kind::kFnRef;
  value.sp = sp;
  value.sym = sym;
  return value;
}

const std::string& RtValue::str() const { return sp != nullptr ? *sp : EmptyString(); }

bool RtValue::IsTruthy() const {
  switch (kind) {
    case Kind::kInt:
      return i != 0;
    case Kind::kFloat:
      return f != 0;
    case Kind::kString:
      return true;  // Non-null pointer.
    case Kind::kNull:
      return false;
    case Kind::kAddr:
    case Kind::kFnRef:
      return true;
  }
  return false;
}

int64_t RtValue::AsInt() const {
  switch (kind) {
    case Kind::kInt:
      return i;
    case Kind::kFloat:
      return static_cast<int64_t>(f);
    default:
      return 0;
  }
}

double RtValue::AsFloat() const {
  switch (kind) {
    case Kind::kFloat:
      return f;
    case Kind::kInt:
      return static_cast<double>(i);
    default:
      return 0;
  }
}

std::string RtValue::ToDebugString() const {
  switch (kind) {
    case Kind::kInt:
      return std::to_string(i);
    case Kind::kFloat:
      return std::to_string(f);
    case Kind::kString:
      return "\"" + str() + "\"";
    case Kind::kNull:
      return "null";
    case Kind::kAddr:
      return "<addr>";
    case Kind::kFnRef:
      return "<fn " + str() + ">";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Construction and global initialization.

Interpreter::Interpreter(const Module& module, OsSimulator* os, InterpOptions options)
    : module_(module), os_(os), options_(options) {
  BuildModuleIndex();
  BuildInitImage();
  Reset();
}

RtValue Interpreter::InternedString(std::string_view text) {
  Symbol sym = pool_.Intern(text);
  return RtValue::PooledStr(pool_.StablePtr(sym), sym);
}

namespace {

// Name -> intrinsic id; built once, consulted by ResolveCallSite the first
// time each call instruction executes.
using IntrinsicTable = std::unordered_map<std::string_view, uint8_t>;

}  // namespace

void Interpreter::BuildModuleIndex() {
  functions_by_name_.reserve(module_.functions().size());
  for (const auto& fn : module_.functions()) {
    // Like Module::FindFunction, a definition wins over a declaration of
    // the same name. (Among multiple declarations the first wins here, the
    // last there — unobservable, since callers only check IsDeclaration().)
    auto [it, inserted] = functions_by_name_.emplace(fn->name(), fn.get());
    if (!inserted && it->second->IsDeclaration() && !fn->IsDeclaration()) {
      it->second = fn.get();
    }
  }
  const auto& globals = module_.globals();
  globals_by_name_.reserve(globals.size());
  global_slot_.reserve(globals.size());
  global_bounds_.reserve(globals.size());
  for (size_t i = 0; i < globals.size(); ++i) {
    const GlobalVariable* global = globals[i].get();
    globals_by_name_.emplace(global->name(), global);
    global_slot_.emplace(global, static_cast<int32_t>(i));
    global_bounds_.push_back(global->is_array() ? global->array_size() : 0);
  }
  global_read_stamps_.assign(globals.size(), 0);
  global_write_stamps_.assign(globals.size(), 0);
}

// Lazily resolves one call instruction to a defined function or an
// intrinsic id. Resolution is cached per instruction in call_sites_, so the
// name hash and the (one-time) table lookup are paid once per call site,
// not once per executed call — and never for code that does not run, which
// keeps interpreter startup free of a whole-module walk.
Interpreter::CallSite Interpreter::ResolveCallSite(const Instruction* instr) {
  static const IntrinsicTable* kIntrinsics = [] {
    auto* table = new IntrinsicTable{
        {"strcmp", uint8_t(IntrinsicId::kStrcmp)},
        {"strcasecmp", uint8_t(IntrinsicId::kStrcasecmp)},
        {"strncmp", uint8_t(IntrinsicId::kStrncmp)},
        {"strncasecmp", uint8_t(IntrinsicId::kStrncasecmp)},
        {"strlen", uint8_t(IntrinsicId::kStrlen)},
        {"strdup", uint8_t(IntrinsicId::kStrdup)},
        {"canonicalize_path", uint8_t(IntrinsicId::kCanonicalizePath)},
        {"tolower_str", uint8_t(IntrinsicId::kTolowerStr)},
        {"toupper_str", uint8_t(IntrinsicId::kToupperStr)},
        {"strchr", uint8_t(IntrinsicId::kStrchr)},
        {"strstr", uint8_t(IntrinsicId::kStrstr)},
        {"atoi", uint8_t(IntrinsicId::kAtoi)},
        {"atol", uint8_t(IntrinsicId::kAtol)},
        {"strtol", uint8_t(IntrinsicId::kAtol)},
        {"strtoll", uint8_t(IntrinsicId::kAtol)},
        {"strtoul", uint8_t(IntrinsicId::kAtol)},
        {"strtod", uint8_t(IntrinsicId::kStrtod)},
        {"sscanf", uint8_t(IntrinsicId::kSscanf)},
        {"parse_int_strict", uint8_t(IntrinsicId::kParseIntStrict)},
        {"open", uint8_t(IntrinsicId::kOpen)},
        {"fopen", uint8_t(IntrinsicId::kFopen)},
        {"opendir", uint8_t(IntrinsicId::kOpendir)},
        {"access", uint8_t(IntrinsicId::kAccess)},
        {"stat_file", uint8_t(IntrinsicId::kAccess)},
        {"unlink", uint8_t(IntrinsicId::kUnlink)},
        {"mkdir", uint8_t(IntrinsicId::kMkdir)},
        {"chdir", uint8_t(IntrinsicId::kChdir)},
        {"chroot", uint8_t(IntrinsicId::kChdir)},
        {"chown", uint8_t(IntrinsicId::kChown)},
        {"chmod", uint8_t(IntrinsicId::kRetZero)},
        {"umask", uint8_t(IntrinsicId::kRetZero)},
        {"close", uint8_t(IntrinsicId::kRetZero)},
        {"read", uint8_t(IntrinsicId::kRetZero)},
        {"write", uint8_t(IntrinsicId::kRetZero)},
        {"free", uint8_t(IntrinsicId::kRetZero)},
        {"listen", uint8_t(IntrinsicId::kRetZero)},
        {"set_buffer_size", uint8_t(IntrinsicId::kRetZero)},
        {"daemonize", uint8_t(IntrinsicId::kRetZero)},
        {"socket", uint8_t(IntrinsicId::kSocket)},
        {"bind", uint8_t(IntrinsicId::kBind)},
        {"connect", uint8_t(IntrinsicId::kConnect)},
        {"htons", uint8_t(IntrinsicId::kHtons)},
        {"ntohs", uint8_t(IntrinsicId::kHtons)},
        {"set_port", uint8_t(IntrinsicId::kHtons)},
        {"htonl", uint8_t(IntrinsicId::kHtonl)},
        {"ntohl", uint8_t(IntrinsicId::kHtonl)},
        {"inet_addr", uint8_t(IntrinsicId::kInetAddr)},
        {"inet_aton", uint8_t(IntrinsicId::kInetAton)},
        {"gethostbyname", uint8_t(IntrinsicId::kGethostbyname)},
        {"getpwnam", uint8_t(IntrinsicId::kGetpwnam)},
        {"getgrnam", uint8_t(IntrinsicId::kGetgrnam)},
        {"setuid_user", uint8_t(IntrinsicId::kSetuidUser)},
        {"sleep", uint8_t(IntrinsicId::kSleep)},
        {"alarm", uint8_t(IntrinsicId::kSleep)},
        {"usleep", uint8_t(IntrinsicId::kUsleep)},
        {"poll_wait", uint8_t(IntrinsicId::kPollWait)},
        {"set_timeout_ms", uint8_t(IntrinsicId::kPollWait)},
        {"time", uint8_t(IntrinsicId::kTime)},
        {"malloc", uint8_t(IntrinsicId::kMalloc)},
        {"alloc_buffer", uint8_t(IntrinsicId::kMalloc)},
        {"exit", uint8_t(IntrinsicId::kExit)},
        {"_exit", uint8_t(IntrinsicId::kExit)},
        {"abort", uint8_t(IntrinsicId::kAbort)},
        {"printf", uint8_t(IntrinsicId::kPrintf)},
        {"fprintf", uint8_t(IntrinsicId::kFprintf)},
        {"sprintf", uint8_t(IntrinsicId::kSprintf)},
        {"log_info", uint8_t(IntrinsicId::kLogInfo)},
        {"log_warn", uint8_t(IntrinsicId::kLogWarn)},
        {"log_error", uint8_t(IntrinsicId::kLogError)},
        {"log_fatal", uint8_t(IntrinsicId::kLogFatal)},
        {"invoke_handler1", uint8_t(IntrinsicId::kInvokeHandler)},
        {"invoke_handler2", uint8_t(IntrinsicId::kInvokeHandler)},
    };
    return table;
  }();

  CallSite site;
  const Function* callee = LookupFunction(instr->callee());
  if (callee != nullptr && !callee->IsDeclaration()) {
    site.function = callee;
  } else {
    auto it = kIntrinsics->find(instr->callee());
    site.intrinsic = it != kIntrinsics->end() ? IntrinsicId(it->second) : IntrinsicId::kNone;
  }
  return call_sites_.emplace(instr, site).first->second;
}

const Function* Interpreter::LookupFunction(const std::string& name) const {
  auto it = functions_by_name_.find(name);
  return it != functions_by_name_.end() ? it->second : nullptr;
}

const GlobalVariable* Interpreter::LookupGlobal(const std::string& name) const {
  auto it = globals_by_name_.find(name);
  return it != globals_by_name_.end() ? it->second : nullptr;
}

int32_t Interpreter::GlobalSlotOf(const Value* root) const {
  auto it = global_slot_.find(root);
  return it != global_slot_.end() ? it->second : -1;
}

void Interpreter::Reset() {
  global_scalars_ = init_scalars_;
  cells_ = init_cells_;
  std::fill(global_read_stamps_.begin(), global_read_stamps_.end(), 0);
  std::fill(global_write_stamps_.begin(), global_write_stamps_.end(), 0);
  alloca_bounds_.clear();
  logs_.clear();
  active_frames_.clear();
  steps_ = 0;
  next_frame_id_ = 0;
  os_ops_ = 0;
  stale_cell_ops_ = 0;
  access_stamp_ = 1;
  call_depth_ = 0;
}

Interpreter::Snapshot Interpreter::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.scalars_ = global_scalars_;
  snapshot.cells_ = cells_;
  snapshot.read_stamps_ = global_read_stamps_;
  snapshot.write_stamps_ = global_write_stamps_;
  snapshot.alloca_bounds_ = alloca_bounds_;
  snapshot.logs_ = logs_;
  snapshot.steps_ = steps_;
  snapshot.next_frame_id_ = next_frame_id_;
  snapshot.os_ops_ = os_ops_;
  snapshot.stale_cell_ops_ = stale_cell_ops_;
  snapshot.access_stamp_ = access_stamp_;
  return snapshot;
}

void Interpreter::RestoreSnapshot(const Snapshot& snapshot) {
  global_scalars_ = snapshot.scalars_;
  cells_ = snapshot.cells_;
  global_read_stamps_ = snapshot.read_stamps_;
  global_write_stamps_ = snapshot.write_stamps_;
  alloca_bounds_ = snapshot.alloca_bounds_;
  logs_ = snapshot.logs_;
  steps_ = snapshot.steps_;
  next_frame_id_ = snapshot.next_frame_id_;
  os_ops_ = snapshot.os_ops_;
  stale_cell_ops_ = snapshot.stale_cell_ops_;
  access_stamp_ = snapshot.access_stamp_;
  active_frames_.clear();
  call_depth_ = 0;
}

RtValue Interpreter::DefaultValueFor(const IrType* type) const {
  if (type == nullptr) {
    return RtValue::Int(0);
  }
  switch (type->kind()) {
    case IrTypeKind::kFloat:
      return RtValue::Float(0);
    case IrTypeKind::kString:
    case IrTypeKind::kPointer:
      return RtValue::Null();
    default:
      return RtValue::Int(0);
  }
}

void Interpreter::BuildInitImage() {
  init_scalars_.reserve(module_.globals().size());
  for (const auto& global : module_.globals()) {
    init_scalars_.push_back(DefaultValueFor(global->value_type()));
    const GlobalInit& init = global->init();

    auto leaf_value = [this](const GlobalInit& leaf) -> RtValue {
      switch (leaf.kind) {
        case GlobalInit::Kind::kInt:
          return RtValue::Int(leaf.int_value);
        case GlobalInit::Kind::kFloat:
          return RtValue::Float(leaf.float_value);
        case GlobalInit::Kind::kString: {
          Symbol sym = pool_.Intern(leaf.string_value);
          return RtValue::PooledStr(pool_.StablePtr(sym), sym);
        }
        case GlobalInit::Kind::kNull:
          return RtValue::Null();
        case GlobalInit::Kind::kGlobalRef: {
          // Address of another global, or a function reference.
          const GlobalVariable* target = LookupGlobal(leaf.string_value);
          if (target != nullptr) {
            RtValue addr;
            addr.kind = RtValue::Kind::kAddr;
            addr.frame = -1;
            addr.root = target;
            return addr;
          }
          Symbol sym = pool_.Intern(leaf.string_value);
          return RtValue::PooledFnRef(pool_.StablePtr(sym), sym);
        }
        default:
          return RtValue::Int(0);
      }
    };
    auto store_leaf = [this, &global, &leaf_value](std::vector<int64_t> path,
                                                   const GlobalInit& leaf) {
      CellKey key;
      key.frame = -1;
      key.root = global.get();
      key.path = std::move(path);
      init_cells_[std::move(key)] = leaf_value(leaf);
    };

    if (init.kind == GlobalInit::Kind::kNone) {
      continue;  // Scalar slot already holds the type default.
    }
    if (init.kind != GlobalInit::Kind::kList) {
      init_scalars_.back() = leaf_value(init);
      continue;
    }
    // Array and/or struct initializer.
    const IrType* type = global->value_type();
    for (size_t i = 0; i < init.elements.size(); ++i) {
      const GlobalInit& element = init.elements[i];
      if (element.kind == GlobalInit::Kind::kList) {
        // Struct row (possibly inside an array).
        for (size_t j = 0; j < element.elements.size(); ++j) {
          store_leaf({static_cast<int64_t>(i), static_cast<int64_t>(j)},
                     element.elements[j]);
        }
      } else if (global->is_array()) {
        store_leaf({static_cast<int64_t>(i)}, element);
      } else if (type->IsStruct()) {
        // Struct initializer without nesting: field i.
        store_leaf({static_cast<int64_t>(i)}, element);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Memory.

void Interpreter::CheckBounds(const Value* root, int32_t slot,
                              const std::vector<int64_t>& path, const Instruction* at) const {
  if (path.empty()) {
    return;
  }
  int64_t bound = 0;
  if (slot >= 0) {
    bound = global_bounds_[static_cast<size_t>(slot)];
  } else {
    auto it = alloca_bounds_.find(root);
    bound = it != alloca_bounds_.end() ? it->second : 0;
  }
  if (bound <= 0) {
    return;
  }
  int64_t index = path.front();
  if (index < 0 || index >= bound) {
    throw TrapError("Segmentation fault (array index " + std::to_string(index) +
                    " out of bounds 0.." + std::to_string(bound - 1) + " at " +
                    (at != nullptr ? at->loc().ToString() : "<unknown>") + ")");
  }
}

RtValue Interpreter::DefaultCellValue(const Value* root,
                                      const std::vector<int64_t>& path) const {
  const IrType* type = nullptr;
  if (root->value_kind() == ValueKind::kGlobal) {
    type = static_cast<const GlobalVariable*>(root)->value_type();
  } else if (root->value_kind() == ValueKind::kInstruction) {
    type = static_cast<const Instruction*>(root)->allocated_type();
  }
  for (size_t i = 0; i < path.size() && type != nullptr; ++i) {
    if (type->IsStruct()) {
      size_t field = static_cast<size_t>(path[i]);
      type = field < type->field_types().size() ? type->field_types()[field] : nullptr;
    }
    // Array steps keep the element type (arrays are typed by their element).
  }
  return DefaultValueFor(type);
}

void Interpreter::NoteFrameCellAccess(int64_t frame) {
  if (!active_frames_.empty() && active_frames_.back() == frame) {
    return;  // Own frame: the overwhelmingly common case.
  }
  if (std::find(active_frames_.begin(), active_frames_.end(), frame) != active_frames_.end()) {
    return;  // A live caller's frame (address passed down the call chain).
  }
  ++stale_cell_ops_;  // Escaped &local from a completed call.
}

RtValue Interpreter::LoadCell(const RtValue& addr, const Instruction* at) {
  if (addr.kind == RtValue::Kind::kNull) {
    throw TrapError("Segmentation fault (null pointer dereference)");
  }
  if (addr.kind != RtValue::Kind::kAddr) {
    throw TrapError("Segmentation fault (load through non-pointer value)");
  }
  int32_t slot = addr.frame == -1 ? GlobalSlotOf(addr.root) : -1;
  CheckBounds(addr.root, slot, addr.path, at);
  if (addr.frame != -1) {
    NoteFrameCellAccess(addr.frame);
  }
  if (slot >= 0) {
    global_read_stamps_[static_cast<size_t>(slot)] = access_stamp_;
    if (addr.path.empty()) {
      return global_scalars_[static_cast<size_t>(slot)];
    }
  }
  CellKey key;
  key.frame = addr.frame;
  key.root = addr.root;
  key.path = addr.path;
  auto it = cells_.find(key);
  if (it != cells_.end()) {
    return it->second;
  }
  // Untouched cell: default by leaf type when derivable.
  return DefaultCellValue(addr.root, addr.path);
}

void Interpreter::StoreCell(const RtValue& addr, RtValue value, const Instruction* at) {
  if (addr.kind == RtValue::Kind::kNull) {
    throw TrapError("Segmentation fault (null pointer write)");
  }
  if (addr.kind != RtValue::Kind::kAddr) {
    throw TrapError("Segmentation fault (store through non-pointer value)");
  }
  int32_t slot = addr.frame == -1 ? GlobalSlotOf(addr.root) : -1;
  CheckBounds(addr.root, slot, addr.path, at);
  if (addr.frame != -1) {
    NoteFrameCellAccess(addr.frame);
  }
  if (slot >= 0) {
    global_write_stamps_[static_cast<size_t>(slot)] = access_stamp_;
    if (addr.path.empty()) {
      global_scalars_[static_cast<size_t>(slot)] = std::move(value);
      return;
    }
  }
  CellKey key;
  key.frame = addr.frame;
  key.root = addr.root;
  key.path = addr.path;
  cells_[std::move(key)] = std::move(value);
}

// ---------------------------------------------------------------------------
// Execution.

void Interpreter::Step() {
  if (++steps_ > options_.max_steps) {
    throw HangError();
  }
  // The deadline check rides the step-budget path: same counter, same
  // unwind mechanism, polled once per kCancelPollInterval steps so the
  // request deadline interrupts even a loop the step budget would take
  // milliseconds to catch.
  if ((steps_ & (kCancelPollInterval - 1)) == 0 && cancel_ != nullptr &&
      cancel_->ShouldCancel()) {
    throw CancelError();
  }
}

CallOutcome Interpreter::Call(const std::string& function, std::vector<RtValue> args) {
  CallOutcome outcome;
  const Function* fn = LookupFunction(function);
  if (fn == nullptr || fn->IsDeclaration()) {
    outcome.status = CallOutcome::Status::kTrap;
    outcome.trap_reason = "no such function: " + function;
    return outcome;
  }
  try {
    outcome.return_value = RunFunction(*fn, std::move(args));
    outcome.status = CallOutcome::Status::kOk;
  } catch (const ExitRequest& exit_request) {
    outcome.status = CallOutcome::Status::kExit;
    outcome.exit_code = exit_request.code();
  } catch (const TrapError& trap) {
    outcome.status = CallOutcome::Status::kTrap;
    outcome.trap_reason = trap.reason();
  } catch (const HangError&) {
    outcome.status = CallOutcome::Status::kHang;
    outcome.trap_reason = "step budget exhausted";
  } catch (const CancelError&) {
    outcome.status = CallOutcome::Status::kCancelled;
    outcome.trap_reason = cancel_ != nullptr &&
                                  cancel_->reason() == CancelToken::Reason::kDeadline
                              ? "request deadline exceeded mid-execution"
                              : "request cancelled mid-execution";
  }
  // Trap/exit/hang unwinding skips RunFunction's frame pops.
  active_frames_.clear();
  call_depth_ = 0;
  return outcome;
}

RtValue Interpreter::Eval(Frame& frame, const Value* value) {
  switch (value->value_kind()) {
    case ValueKind::kConstantInt:
      return RtValue::Int(value->constant_int());
    case ValueKind::kConstantFloat:
      return RtValue::Float(value->constant_float());
    case ValueKind::kConstantString: {
      auto it = const_strings_.find(value);
      if (it != const_strings_.end()) {
        return it->second;
      }
      // Slow path for constants not discovered by the module walk.
      return const_strings_.emplace(value, InternedString(value->constant_string()))
          .first->second;
    }
    case ValueKind::kConstantNull:
      return RtValue::Null();
    case ValueKind::kGlobal: {
      RtValue addr;
      addr.kind = RtValue::Kind::kAddr;
      addr.frame = -1;
      addr.root = value;
      return addr;
    }
    case ValueKind::kArgument:
    case ValueKind::kInstruction: {
      uint32_t id = value->id();
      return id < frame.regs.size() ? frame.regs[id] : RtValue::Int(0);
    }
  }
  return RtValue::Int(0);
}

RtValue Interpreter::RunFunction(const Function& fn, std::vector<RtValue> args) {
  if (++call_depth_ > options_.max_call_depth) {
    --call_depth_;
    throw TrapError("Segmentation fault (stack overflow)");
  }
  Frame frame;
  frame.fn = &fn;
  frame.id = next_frame_id_++;
  active_frames_.push_back(frame.id);
  if (!frame_pool_.empty()) {
    frame.regs = std::move(frame_pool_.back());
    frame_pool_.pop_back();
  }
  frame.regs.assign(fn.value_id_count(), RtValue());
  for (size_t i = 0; i < fn.arguments().size(); ++i) {
    frame.regs[fn.arguments()[i]->id()] =
        i < args.size() ? std::move(args[i]) : DefaultValueFor(fn.arguments()[i]->type());
  }

  const BasicBlock* block = fn.entry();
  RtValue result = DefaultValueFor(fn.return_type());
  while (block != nullptr) {
    const BasicBlock* next = nullptr;
    for (const auto& instr_ptr : block->instructions()) {
      const Instruction* instr = instr_ptr.get();
      Step();
      switch (instr->instr_kind()) {
        case InstrKind::kAlloca: {
          alloca_bounds_.emplace(instr, instr->alloca_array_size());
          RtValue addr;
          addr.kind = RtValue::Kind::kAddr;
          addr.frame = frame.id;
          addr.root = instr;
          frame.regs[instr->id()] = addr;
          break;
        }
        case InstrKind::kLoad:
          frame.regs[instr->id()] = LoadCell(Eval(frame, instr->operand(0)), instr);
          break;
        case InstrKind::kStore:
          StoreCell(Eval(frame, instr->operand(1)), Eval(frame, instr->operand(0)), instr);
          break;
        case InstrKind::kBinOp: {
          RtValue lhs = Eval(frame, instr->operand(0));
          RtValue rhs = Eval(frame, instr->operand(1));
          if (lhs.kind == RtValue::Kind::kFloat || rhs.kind == RtValue::Kind::kFloat) {
            double a = lhs.AsFloat();
            double b = rhs.AsFloat();
            double out = 0;
            switch (instr->bin_op()) {
              case IrBinOp::kAdd:
                out = a + b;
                break;
              case IrBinOp::kSub:
                out = a - b;
                break;
              case IrBinOp::kMul:
                out = a * b;
                break;
              case IrBinOp::kDiv:
                if (b == 0) {
                  throw TrapError("Floating point exception (division by zero)");
                }
                out = a / b;
                break;
              default:
                out = 0;
                break;
            }
            frame.regs[instr->id()] = RtValue::Float(out);
            break;
          }
          int64_t a = lhs.AsInt();
          int64_t b = rhs.AsInt();
          int64_t out = 0;
          switch (instr->bin_op()) {
            case IrBinOp::kAdd:
              out = a + b;
              break;
            case IrBinOp::kSub:
              out = a - b;
              break;
            case IrBinOp::kMul:
              out = a * b;
              break;
            case IrBinOp::kDiv:
              if (b == 0) {
                throw TrapError("Floating point exception (integer division by zero)");
              }
              out = a / b;
              break;
            case IrBinOp::kRem:
              if (b == 0) {
                throw TrapError("Floating point exception (integer division by zero)");
              }
              out = a % b;
              break;
            case IrBinOp::kShl:
              out = b >= 64 ? 0 : a << b;
              break;
            case IrBinOp::kShr:
              out = b >= 64 ? 0 : a >> b;
              break;
            case IrBinOp::kAnd:
              out = a & b;
              break;
            case IrBinOp::kOr:
              out = a | b;
              break;
            case IrBinOp::kXor:
              out = a ^ b;
              break;
          }
          frame.regs[instr->id()] = RtValue::Int(out);
          break;
        }
        case InstrKind::kCmp: {
          RtValue lhs = Eval(frame, instr->operand(0));
          RtValue rhs = Eval(frame, instr->operand(1));
          bool result_bool = false;
          bool string_side = lhs.kind == RtValue::Kind::kString ||
                             rhs.kind == RtValue::Kind::kString ||
                             lhs.kind == RtValue::Kind::kNull ||
                             rhs.kind == RtValue::Kind::kNull;
          if (string_side) {
            bool lhs_null = lhs.kind == RtValue::Kind::kNull;
            bool rhs_null = rhs.kind == RtValue::Kind::kNull;
            int order;
            if (lhs_null || rhs_null) {
              order = (lhs_null && rhs_null) ? 0 : (lhs_null ? -1 : 1);
            } else if (lhs.sp == rhs.sp) {
              order = 0;  // Same pooled payload.
            } else {
              order = CompareStrings(lhs.str(), rhs.str());
            }
            switch (instr->cmp_pred()) {
              case IrCmpPred::kEq:
                result_bool = order == 0;
                break;
              case IrCmpPred::kNe:
                result_bool = order != 0;
                break;
              case IrCmpPred::kLt:
                result_bool = order < 0;
                break;
              case IrCmpPred::kLe:
                result_bool = order <= 0;
                break;
              case IrCmpPred::kGt:
                result_bool = order > 0;
                break;
              case IrCmpPred::kGe:
                result_bool = order >= 0;
                break;
            }
          } else if (lhs.kind == RtValue::Kind::kFloat || rhs.kind == RtValue::Kind::kFloat) {
            double a = lhs.AsFloat();
            double b = rhs.AsFloat();
            switch (instr->cmp_pred()) {
              case IrCmpPred::kEq:
                result_bool = a == b;
                break;
              case IrCmpPred::kNe:
                result_bool = a != b;
                break;
              case IrCmpPred::kLt:
                result_bool = a < b;
                break;
              case IrCmpPred::kLe:
                result_bool = a <= b;
                break;
              case IrCmpPred::kGt:
                result_bool = a > b;
                break;
              case IrCmpPred::kGe:
                result_bool = a >= b;
                break;
            }
          } else {
            int64_t a = lhs.AsInt();
            int64_t b = rhs.AsInt();
            switch (instr->cmp_pred()) {
              case IrCmpPred::kEq:
                result_bool = a == b;
                break;
              case IrCmpPred::kNe:
                result_bool = a != b;
                break;
              case IrCmpPred::kLt:
                result_bool = a < b;
                break;
              case IrCmpPred::kLe:
                result_bool = a <= b;
                break;
              case IrCmpPred::kGt:
                result_bool = a > b;
                break;
              case IrCmpPred::kGe:
                result_bool = a >= b;
                break;
            }
          }
          frame.regs[instr->id()] = RtValue::Int(result_bool ? 1 : 0);
          break;
        }
        case InstrKind::kCast: {
          RtValue operand = Eval(frame, instr->operand(0));
          const IrType* to = instr->type();
          if (to->kind() == IrTypeKind::kFloat) {
            frame.regs[instr->id()] = RtValue::Float(operand.AsFloat());
          } else if (to->IsBool()) {
            frame.regs[instr->id()] = RtValue::Int(operand.IsTruthy() ? 1 : 0);
          } else if (to->IsInteger()) {
            int64_t v = operand.AsInt();
            // Integer truncation — this is where 9000000000 silently becomes
            // an overflowed 32-bit value (paper Figure 5(a)).
            switch (to->bit_width()) {
              case 8:
                v = static_cast<int8_t>(v);
                break;
              case 16:
                v = static_cast<int16_t>(v);
                break;
              case 32:
                v = static_cast<int32_t>(v);
                break;
              default:
                break;
            }
            frame.regs[instr->id()] = RtValue::Int(v);
          } else {
            frame.regs[instr->id()] = operand;
          }
          break;
        }
        case InstrKind::kCall:
          frame.regs[instr->id()] = ExecCall(frame, instr);
          break;
        case InstrKind::kFieldAddr: {
          RtValue base = Eval(frame, instr->operand(0));
          if (base.kind == RtValue::Kind::kNull) {
            throw TrapError("Segmentation fault (null pointer field access)");
          }
          if (base.kind != RtValue::Kind::kAddr) {
            throw TrapError("Segmentation fault (field access on non-pointer)");
          }
          base.path.push_back(instr->field_index());
          frame.regs[instr->id()] = base;
          break;
        }
        case InstrKind::kIndexAddr: {
          RtValue base = Eval(frame, instr->operand(0));
          if (base.kind == RtValue::Kind::kNull) {
            throw TrapError("Segmentation fault (null pointer indexing)");
          }
          if (base.kind != RtValue::Kind::kAddr) {
            throw TrapError("Segmentation fault (indexing a non-pointer)");
          }
          RtValue index = Eval(frame, instr->operand(1));
          base.path.push_back(index.AsInt());
          frame.regs[instr->id()] = base;
          break;
        }
        case InstrKind::kBr:
          next = instr->successors()[0];
          break;
        case InstrKind::kCondBr: {
          RtValue condition = Eval(frame, instr->operand(0));
          next = condition.IsTruthy() ? instr->successors()[0] : instr->successors()[1];
          break;
        }
        case InstrKind::kSwitch: {
          RtValue subject = Eval(frame, instr->operand(0));
          next = instr->successors()[0];  // default
          for (size_t i = 0; i < instr->switch_values().size(); ++i) {
            if (instr->switch_values()[i] == subject.AsInt()) {
              next = instr->successors()[i + 1];
              break;
            }
          }
          break;
        }
        case InstrKind::kRet: {
          --call_depth_;
          RtValue ret = instr->operand_count() == 1 ? Eval(frame, instr->operand(0)) : result;
          frame_pool_.push_back(std::move(frame.regs));
          active_frames_.pop_back();
          return ret;
        }
        case InstrKind::kUnreachable:
          throw TrapError("Segmentation fault (unreachable code executed)");
      }
      if (next != nullptr) {
        break;
      }
    }
    block = next;
  }
  --call_depth_;
  frame_pool_.push_back(std::move(frame.regs));
  active_frames_.pop_back();
  return result;
}

RtValue Interpreter::ExecCall(Frame& frame, const Instruction* instr) {
  std::vector<RtValue> args;
  args.reserve(instr->operand_count());
  for (size_t i = 0; i < instr->operand_count(); ++i) {
    args.push_back(Eval(frame, instr->operand(i)));
  }
  auto it = call_sites_.find(instr);
  const CallSite site = it != call_sites_.end() ? it->second : ResolveCallSite(instr);
  if (site.function != nullptr) {
    return RunFunction(*site.function, std::move(args));
  }
  return Intrinsic(site.intrinsic, instr->callee(), args, instr);
}

// ---------------------------------------------------------------------------
// Logging.

void Interpreter::AppendLog(std::string level, const std::string& message) {
  logs_.push_back(level + ": " + message);
}

std::string Interpreter::FormatMessage(const std::string& format,
                                       const std::vector<RtValue>& args,
                                       size_t first_arg) const {
  std::string out;
  size_t arg_index = first_arg;
  for (size_t i = 0; i < format.size(); ++i) {
    if (format[i] != '%' || i + 1 >= format.size()) {
      out.push_back(format[i]);
      continue;
    }
    // Accept %d %i %s %u and the l-prefixed variants.
    size_t j = i + 1;
    while (j < format.size() && format[j] == 'l') {
      ++j;
    }
    if (j < format.size() &&
        (format[j] == 'd' || format[j] == 'i' || format[j] == 'u' || format[j] == 's')) {
      if (arg_index < args.size()) {
        const RtValue& arg = args[arg_index++];
        if (format[j] == 's') {
          out += arg.kind == RtValue::Kind::kNull ? "(null)" : arg.str();
        } else {
          out += std::to_string(arg.AsInt());
        }
      }
      i = j;
    } else {
      out.push_back(format[i]);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Intrinsics (simulated C library + OS surface).

namespace {

// C-style prefix integer parse (what atoi/strtol do with garbage input).
int64_t ParsePrefixInt(const std::string& text) {
  size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) {
    ++i;
  }
  bool negative = false;
  if (i < text.size() && (text[i] == '-' || text[i] == '+')) {
    negative = text[i] == '-';
    ++i;
  }
  int64_t value = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
    value = value * 10 + (text[i] - '0');
    ++i;
  }
  return negative ? -value : value;
}

}  // namespace

RtValue Interpreter::Intrinsic(IntrinsicId id, const std::string& name,
                               std::vector<RtValue>& args, const Instruction* instr) {
  auto need_string = [&](size_t index) -> const std::string& {
    if (index >= args.size() || args[index].kind == RtValue::Kind::kNull) {
      throw TrapError("Segmentation fault (null string passed to " + name + ")");
    }
    if (args[index].kind != RtValue::Kind::kString) {
      throw TrapError("Segmentation fault (non-string passed to " + name + ")");
    }
    return args[index].str();
  };
  auto arg_int = [&](size_t index) -> int64_t {
    return index < args.size() ? args[index].AsInt() : 0;
  };

  // Count every intrinsic whose answer or effect involves mutable
  // simulated-OS state (filesystem, ports, users, clock, allocator). The
  // campaign's snapshot-replay hazard check treats any OS traffic in both
  // reordered segments as a conflict.
  switch (id) {
    case IntrinsicId::kOpen:
    case IntrinsicId::kFopen:
    case IntrinsicId::kOpendir:
    case IntrinsicId::kAccess:
    case IntrinsicId::kUnlink:
    case IntrinsicId::kMkdir:
    case IntrinsicId::kChdir:
    case IntrinsicId::kChown:
    case IntrinsicId::kBind:
    case IntrinsicId::kConnect:
    case IntrinsicId::kInetAddr:
    case IntrinsicId::kInetAton:
    case IntrinsicId::kGethostbyname:
    case IntrinsicId::kGetpwnam:
    case IntrinsicId::kGetgrnam:
    case IntrinsicId::kSetuidUser:
    case IntrinsicId::kSleep:
    case IntrinsicId::kUsleep:
    case IntrinsicId::kPollWait:
    case IntrinsicId::kTime:
    case IntrinsicId::kMalloc:
      ++os_ops_;
      break;
    default:
      break;
  }

  switch (id) {
    // --- Strings.
    case IntrinsicId::kStrcmp: {
      const std::string& a = need_string(0);
      const std::string& b = need_string(1);
      if (args[0].sp == args[1].sp) {
        return RtValue::Int(0);  // Same pooled payload.
      }
      return RtValue::Int(CompareStrings(a, b));
    }
    case IntrinsicId::kStrcasecmp: {
      const std::string& a = need_string(0);
      const std::string& b = need_string(1);
      if (args[0].sp == args[1].sp) {
        return RtValue::Int(0);
      }
      return RtValue::Int(CompareStringsIgnoreCase(a, b));
    }
    case IntrinsicId::kStrncmp:
    case IntrinsicId::kStrncasecmp: {
      // Compare the length-limited prefixes in place — no substr/lowercase
      // temporaries. A negative count converts to a huge size_t in C, i.e.
      // the whole strings compare; substr clamps to size() for us.
      size_t limit = static_cast<size_t>(arg_int(2));
      std::string_view a = std::string_view(need_string(0)).substr(0, limit);
      std::string_view b = std::string_view(need_string(1)).substr(0, limit);
      int order = id == IntrinsicId::kStrncasecmp ? CompareStringsIgnoreCase(a, b)
                                                  : CompareStrings(a, b);
      return RtValue::Int(order);
    }
    case IntrinsicId::kStrlen:
      return RtValue::Int(static_cast<int64_t>(need_string(0).size()));
    case IntrinsicId::kStrdup:
      need_string(0);
      // Strings are immutable values here; "duplicating" an interned
      // payload is the identity.
      return args[0];
    case IntrinsicId::kCanonicalizePath:
      return InternedString(ReplaceAll(need_string(0), "//", "/"));
    case IntrinsicId::kTolowerStr:
      return InternedString(ToLowerCopy(need_string(0)));
    case IntrinsicId::kToupperStr:
      return InternedString(ToUpperCopy(need_string(0)));
    case IntrinsicId::kStrchr: {
      const std::string& s = need_string(0);
      char c = static_cast<char>(arg_int(1));
      size_t pos = s.find(c);
      return pos == std::string::npos ? RtValue::Null()
                                      : InternedString(std::string_view(s).substr(pos));
    }
    case IntrinsicId::kStrstr: {
      const std::string& s = need_string(0);
      const std::string& sub = need_string(1);
      size_t pos = s.find(sub);
      return pos == std::string::npos ? RtValue::Null()
                                      : InternedString(std::string_view(s).substr(pos));
    }

    // --- Conversions.
    case IntrinsicId::kAtoi:
      // Classic atoi: parses a prefix, wraps silently on 32-bit overflow.
      return RtValue::Int(static_cast<int32_t>(ParsePrefixInt(need_string(0))));
    case IntrinsicId::kAtol:
      return RtValue::Int(ParsePrefixInt(need_string(0)));
    case IntrinsicId::kStrtod: {
      const std::string& s = need_string(0);
      return RtValue::Float(std::strtod(s.c_str(), nullptr));
    }
    case IntrinsicId::kSscanf: {
      // Supported form: sscanf(text, "%d"-like, &out). Parses a prefix; on
      // total mismatch returns 0 and leaves the output untouched (the
      // undefined-on-garbage behaviour Figure 6(d) warns about).
      const std::string& text = need_string(0);
      size_t i = 0;
      while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) {
        ++i;
      }
      bool has_digits =
          i < text.size() && (std::isdigit(static_cast<unsigned char>(text[i])) != 0 ||
                              ((text[i] == '-' || text[i] == '+') && i + 1 < text.size() &&
                               std::isdigit(static_cast<unsigned char>(text[i + 1])) != 0));
      if (!has_digits) {
        return RtValue::Int(0);
      }
      if (args.size() >= 3 && args[2].kind == RtValue::Kind::kAddr) {
        StoreCell(args[2], RtValue::Int(ParsePrefixInt(text)), instr);
      }
      return RtValue::Int(1);
    }
    case IntrinsicId::kParseIntStrict: {
      // The safe-API alternative: whole-string parse with error reporting.
      const std::string& text = need_string(0);
      auto parsed = ParseInt64(text);
      if (!parsed.has_value()) {
        return RtValue::Int(-1);
      }
      if (args.size() >= 2 && args[1].kind == RtValue::Kind::kAddr) {
        StoreCell(args[1], RtValue::Int(*parsed), instr);
      }
      return RtValue::Int(0);
    }

    // --- Filesystem.
    case IntrinsicId::kOpen:
    case IntrinsicId::kFopen: {
      const std::string& path = need_string(0);
      if (os_->DirectoryExists(path)) {
        return RtValue::Int(-1);  // EISDIR
      }
      if (!os_->FileExists(path) || !os_->IsReadable(path)) {
        return id == IntrinsicId::kOpen ? RtValue::Int(-1) : RtValue::Int(0);
      }
      return RtValue::Int(3);
    }
    case IntrinsicId::kOpendir:
      return RtValue::Int(os_->DirectoryExists(need_string(0)) ? 3 : 0);
    case IntrinsicId::kAccess: {
      const std::string& path = need_string(0);
      bool exists = os_->FileExists(path) || os_->DirectoryExists(path);
      return RtValue::Int(exists ? 0 : -1);
    }
    case IntrinsicId::kUnlink:
      return RtValue::Int(os_->RemoveFile(need_string(0)) ? 0 : -1);
    case IntrinsicId::kMkdir:
      os_->AddDirectory(need_string(0));
      return RtValue::Int(0);
    case IntrinsicId::kChdir:
      return RtValue::Int(os_->DirectoryExists(need_string(0)) ? 0 : -1);
    case IntrinsicId::kChown: {
      const std::string& path = need_string(0);
      const std::string& user = need_string(1);
      bool ok = (os_->FileExists(path) || os_->DirectoryExists(path)) && os_->UserExists(user);
      return RtValue::Int(ok ? 0 : -1);
    }
    case IntrinsicId::kRetZero:
      return RtValue::Int(0);

    // --- Network.
    case IntrinsicId::kSocket:
      return RtValue::Int(3);
    case IntrinsicId::kBind:
      return RtValue::Int(os_->PortAvailable(arg_int(1)) ? 0 : -1);
    case IntrinsicId::kConnect: {
      bool ok = args.size() >= 3 && args[1].kind == RtValue::Kind::kString &&
                os_->ResolvesHost(args[1].str()) && arg_int(2) >= 1 && arg_int(2) <= 65535;
      return RtValue::Int(ok ? 0 : -1);
    }
    case IntrinsicId::kHtons:
      // 16-bit truncation: port 70000 silently becomes 4464.
      return RtValue::Int(arg_int(0) & 0xFFFF);
    case IntrinsicId::kHtonl:
      return RtValue::Int(arg_int(0) & 0xFFFFFFFFLL);
    case IntrinsicId::kInetAddr: {
      const std::string& text = need_string(0);
      return RtValue::Int(os_->IsValidIpAddress(text) ? 0x7f000001 : -1);
    }
    case IntrinsicId::kInetAton:
      return RtValue::Int(os_->IsValidIpAddress(need_string(0)) ? 1 : 0);
    case IntrinsicId::kGethostbyname:
      return RtValue::Int(os_->ResolvesHost(need_string(0)) ? 1 : 0);

    // --- Users.
    case IntrinsicId::kGetpwnam:
      return RtValue::Int(os_->UserExists(need_string(0)) ? 1 : 0);
    case IntrinsicId::kGetgrnam:
      return RtValue::Int(os_->GroupExists(need_string(0)) ? 1 : 0);
    case IntrinsicId::kSetuidUser:
      return RtValue::Int(os_->UserExists(need_string(0)) ? 0 : -1);

    // --- Time. Virtual sleeping burns steps so that absurd durations are
    // detected as hangs (100 steps per simulated second).
    case IntrinsicId::kSleep: {
      int64_t seconds = std::max<int64_t>(0, arg_int(0));
      os_->AdvanceClock(seconds);
      steps_ += std::min<int64_t>(seconds, 1'000'000) * 100;
      if (steps_ > options_.max_steps) {
        throw HangError();
      }
      // A simulated sleep can jump the step counter across many poll
      // intervals at once — poll the deadline here so "sleep(600)" in a
      // parse handler cannot dodge cancellation until the next real step.
      if (cancel_ != nullptr && cancel_->ShouldCancel()) {
        throw CancelError();
      }
      return RtValue::Int(0);
    }
    case IntrinsicId::kUsleep: {
      int64_t usec = std::max<int64_t>(0, arg_int(0));
      os_->AdvanceClock(usec / 1'000'000);
      steps_ += std::min<int64_t>(usec / 10'000, 100'000'000);
      if (steps_ > options_.max_steps) {
        throw HangError();
      }
      // A simulated sleep can jump the step counter across many poll
      // intervals at once — poll the deadline here so "sleep(600)" in a
      // parse handler cannot dodge cancellation until the next real step.
      if (cancel_ != nullptr && cancel_->ShouldCancel()) {
        throw CancelError();
      }
      return RtValue::Int(0);
    }
    case IntrinsicId::kPollWait: {
      int64_t msec = std::max<int64_t>(0, arg_int(0));
      os_->AdvanceClock(msec / 1000);
      steps_ += std::min<int64_t>(msec / 10, 100'000'000);
      if (steps_ > options_.max_steps) {
        throw HangError();
      }
      // A simulated sleep can jump the step counter across many poll
      // intervals at once — poll the deadline here so "sleep(600)" in a
      // parse handler cannot dodge cancellation until the next real step.
      if (cancel_ != nullptr && cancel_->ShouldCancel()) {
        throw CancelError();
      }
      return RtValue::Int(0);
    }
    case IntrinsicId::kTime:
      return RtValue::Int(os_->now());

    // --- Memory.
    case IntrinsicId::kMalloc:
      return RtValue::Int(os_->TryAllocate(arg_int(0)));

    // --- Process control.
    case IntrinsicId::kExit:
      throw ExitRequest(arg_int(0));
    case IntrinsicId::kAbort:
      throw TrapError("Segmentation fault (abort)");

    // --- Logging.
    case IntrinsicId::kPrintf:
      AppendLog("OUT", FormatMessage(need_string(0), args, 1));
      return RtValue::Int(0);
    case IntrinsicId::kFprintf:
      AppendLog("OUT", FormatMessage(need_string(1), args, 2));
      return RtValue::Int(0);
    case IntrinsicId::kSprintf:
      // sprintf(out_ignored, fmt, ...) — MiniC uses it only as the
      // unsafe-API example; formatting result is discarded.
      return RtValue::Int(0);
    case IntrinsicId::kLogInfo:
      AppendLog("INFO", FormatMessage(need_string(0), args, 1));
      return RtValue::Int(0);
    case IntrinsicId::kLogWarn:
      AppendLog("WARN", FormatMessage(need_string(0), args, 1));
      return RtValue::Int(0);
    case IntrinsicId::kLogError:
      AppendLog("ERROR", FormatMessage(need_string(0), args, 1));
      return RtValue::Int(0);
    case IntrinsicId::kLogFatal:
      AppendLog("FATAL", FormatMessage(need_string(0), args, 1));
      return RtValue::Int(0);

    // --- Indirect handler invocation (configuration dispatch tables).
    case IntrinsicId::kInvokeHandler: {
      if (args.empty() || args[0].kind != RtValue::Kind::kFnRef) {
        throw TrapError("Segmentation fault (call through non-function value)");
      }
      const Function* handler = LookupFunction(args[0].str());
      if (handler == nullptr || handler->IsDeclaration()) {
        throw TrapError("Segmentation fault (call through dangling handler '" + args[0].str() +
                        "')");
      }
      std::vector<RtValue> handler_args(args.begin() + 1, args.end());
      return RunFunction(*handler, std::move(handler_args));
    }

    case IntrinsicId::kNone:
      break;
  }
  throw TrapError("unresolved external function: " + name);
}

std::optional<RtValue> Interpreter::ReadGlobal(const std::string& name) const {
  const GlobalVariable* global = LookupGlobal(name);
  if (global == nullptr) {
    return std::nullopt;
  }
  return global_scalars_[static_cast<size_t>(GlobalSlotOf(global))];
}

void Interpreter::WriteGlobal(const std::string& name, RtValue value) {
  const GlobalVariable* global = LookupGlobal(name);
  if (global == nullptr) {
    return;
  }
  global_scalars_[static_cast<size_t>(GlobalSlotOf(global))] = std::move(value);
}

bool Interpreter::GlobalWasRead(const std::string& name) const {
  const GlobalVariable* global = LookupGlobal(name);
  if (global == nullptr) {
    return false;
  }
  return global_read_stamps_[static_cast<size_t>(GlobalSlotOf(global))] != 0;
}

}  // namespace spex
