// Concrete IR interpreter with simulated-OS intrinsics.
//
// SPEX-INJ (Section 3.1) must observe how the target system *actually*
// reacts to an injected misconfiguration: crash, hang, early termination,
// silent violation, silent ignorance, or a helpful error message. The
// interpreter supplies exactly those observables: traps (out-of-bounds
// writes are segfaults, like OpenLDAP's listener-threads crash), a step
// budget (runaway loops are hangs), exit codes, captured logs, final global
// values, and a record of which globals were ever read.
//
// Storage layout is optimized for campaign throughput: per-frame registers
// are dense slots indexed by the per-function Value id, scalar globals live
// in a flat slot table built once per module, and array/field cells use
// hashed (not tree) lookup. String payloads are interned in a per-instance
// StringPool, so an RtValue is pointer-sized state and register moves,
// Reset() copies and snapshot restores never allocate. Call instructions
// are resolved once (defined function or intrinsic enum) instead of
// string-compared per call. The post-InitGlobals() image is cached so
// Reset() restores by copy, and TakeSnapshot()/RestoreSnapshot() extend the
// same trick to arbitrary execution points — an injection campaign replays
// the shared template-parse prefix thousands of times.
#ifndef SPEX_INTERP_INTERPRETER_H_
#define SPEX_INTERP_INTERPRETER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/ir/ir.h"
#include "src/osim/os_simulator.h"
#include "src/support/cancellation.h"
#include "src/support/hashing.h"
#include "src/support/string_pool.h"

namespace spex {

// A runtime value: integer, float, string (possibly null), address, or a
// function reference (config-table handler slots). String payloads are
// interned: `sp` points into pool-stable storage (an Interpreter's pool or
// the process-wide boundary pool), so copying an RtValue never copies
// characters.
struct RtValue {
  enum class Kind { kInt, kFloat, kString, kNull, kAddr, kFnRef };
  Kind kind = Kind::kInt;
  int64_t i = 0;
  double f = 0;

  // kString / kFnRef payload: stable pooled pointer plus the pool's symbol
  // id (diagnostics; equality of syms is only meaningful within one pool).
  const std::string* sp = nullptr;
  Symbol sym = kInvalidSymbol;

  // kAddr payload: frame -1 = global storage.
  int64_t frame = -1;
  const Value* root = nullptr;
  std::vector<int64_t> path;

  static RtValue Int(int64_t v);
  static RtValue Float(double v);
  // Interns into the process-wide boundary pool; use Interpreter's
  // InternedString() on hot paths instead. Lifetime: permanent when no
  // boundary-pool epoch is open; while any spex::Session (or other
  // StringPoolEpoch holder) is alive, the payload lives until the last
  // overlapping epoch closes — do not stash RtValues built during a
  // Session's lifetime beyond it.
  static RtValue Str(std::string_view v);
  static RtValue Null();
  static RtValue FnRef(std::string_view name);
  // Wraps an already-interned payload (no hashing, no copy).
  static RtValue PooledStr(const std::string* sp, Symbol sym);
  static RtValue PooledFnRef(const std::string* sp, Symbol sym);

  // String payload; empty string when no payload is attached.
  const std::string& str() const;

  bool IsTruthy() const;
  int64_t AsInt() const;
  double AsFloat() const;
  std::string ToDebugString() const;
};

struct InterpOptions {
  // Instruction budget; exceeding it classifies the run as a hang.
  int64_t max_steps = 2'000'000;
  // Call-depth budget; exceeding it is a stack-overflow trap.
  int max_call_depth = 200;
};

struct CallOutcome {
  enum class Status {
    kOk,         // Returned normally.
    kExit,       // Called exit(code).
    kTrap,       // Segfault / abort / division by zero / stack overflow.
    kHang,       // Step budget exhausted.
    kCancelled,  // The caller's CancelToken fired mid-execution. Unlike
                 // kHang this says nothing about the *target* — the
                 // request ran out of time, not the system under test.
  };
  Status status = Status::kOk;
  RtValue return_value;
  int64_t exit_code = 0;
  std::string trap_reason;

  bool ok() const { return status == Status::kOk; }
};

class Interpreter {
 private:
  // Identity of a non-scalar cell (array element / struct field / alloca).
  struct CellKey {
    int64_t frame = -1;
    const Value* root = nullptr;
    std::vector<int64_t> path;

    bool operator==(const CellKey& other) const {
      return frame == other.frame && root == other.root && path == other.path;
    }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& key) const {
      size_t h = std::hash<const void*>()(key.root);
      h = HashCombine(h, std::hash<int64_t>()(key.frame));
      for (int64_t step : key.path) {
        h = HashCombine(h, std::hash<int64_t>()(step));
      }
      return h;
    }
  };
  using CellMap = std::unordered_map<CellKey, RtValue, CellKeyHash>;

 public:
  Interpreter(const Module& module, OsSimulator* os, InterpOptions options = {});

  // Re-initializes global storage from the cached initializer image, clears
  // logs, read-tracking and the step counter. Does not reset the OS.
  void Reset();

  // A copy of all mutable run state at the moment it is taken. Restoring it
  // resumes execution exactly where the snapshot was taken — the campaign
  // uses this to replay the shared template-parse prefix once per delta
  // key-set instead of once per misconfiguration. A snapshot may be
  // restored into a *different* Interpreter over the same Module, provided
  // the interpreter that took it stays alive (interned payloads point into
  // its pool).
  class Snapshot {
   public:
    Snapshot() = default;

    // Access-stamp maps at the moment the snapshot was taken (see
    // set_access_stamp); the campaign's hazard check intersects these with
    // the delta parse's dynamic accesses.
    const std::vector<int32_t>& read_stamps() const { return read_stamps_; }
    const std::vector<int32_t>& write_stamps() const { return write_stamps_; }

   private:
    friend class Interpreter;
    std::vector<RtValue> scalars_;
    CellMap cells_;
    std::vector<int32_t> read_stamps_;
    std::vector<int32_t> write_stamps_;
    std::unordered_map<const Value*, int64_t> alloca_bounds_;
    std::vector<std::string> logs_;
    int64_t steps_ = 0;
    int64_t next_frame_id_ = 0;
    int64_t os_ops_ = 0;
    int64_t stale_cell_ops_ = 0;
    int32_t access_stamp_ = 1;
  };

  Snapshot TakeSnapshot() const;
  void RestoreSnapshot(const Snapshot& snapshot);

  // Calls a function by name. Args are matched positionally; missing args
  // default to 0 / null.
  CallOutcome Call(const std::string& function, std::vector<RtValue> args);

  // Interns `text` into this interpreter's pool — the allocation-free way
  // to build string arguments for Call() on hot paths.
  RtValue InternedString(std::string_view text);

  // --- Observables.
  const std::vector<std::string>& logs() const { return logs_; }
  void ClearLogs() { logs_.clear(); }
  // Current value of a scalar global, or nullopt if it does not exist.
  std::optional<RtValue> ReadGlobal(const std::string& name) const;
  void WriteGlobal(const std::string& name, RtValue value);
  // Was the global's storage loaded since the last Reset()?
  bool GlobalWasRead(const std::string& name) const;
  int64_t steps_used() const { return steps_; }
  StringPool::Stats pool_stats() const { return pool_.stats(); }

  // --- Access stamping. Every load/store of a global root records the
  // current stamp against that global's slot, and every intrinsic that
  // consults the simulated OS bumps os_ops(). A driver that labels
  // execution segments with distinct stamps (the campaign stamps each
  // config entry's parse with its file position) can then ask which
  // segments read or wrote which globals — the conflict information the
  // snapshot-replay path needs to prove a reordered parse equivalent.
  void set_access_stamp(int32_t stamp) { access_stamp_ = stamp; }

  // --- Cooperative cancellation. When a token is set, the step-budget
  // path polls it every kCancelPollInterval steps (and every simulated
  // sleep); a fired token unwinds the current Call() with
  // Status::kCancelled. The token is borrowed, not owned — callers
  // (the campaign's replay driver) set it for the duration of one request
  // and clear it before returning the interpreter to a pool. Not part of
  // snapshots: cancellation is request state, not run state.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel_token() const { return cancel_; }
  const std::vector<int32_t>& global_read_stamps() const { return global_read_stamps_; }
  const std::vector<int32_t>& global_write_stamps() const { return global_write_stamps_; }
  int64_t os_ops() const { return os_ops_; }
  // Cell accesses through an address whose owning frame is no longer on
  // the call stack — i.e. through an escaped &local. These cells persist
  // in cell storage across Call()s but are not covered by the per-global
  // stamps, so the campaign treats stale traffic on both sides of a
  // reordering as a conflict.
  int64_t stale_cell_ops() const { return stale_cell_ops_; }
  size_t log_count() const { return logs_.size(); }

 private:
  struct Frame {
    const Function* fn = nullptr;
    int64_t id = 0;
    // Dense register file indexed by Value::id() (arguments and
    // instructions share the function's id space).
    std::vector<RtValue> regs;
  };

  // Enum dispatch for the simulated C-library/OS surface; call sites are
  // resolved to an IntrinsicId once in BuildModuleIndex instead of walking
  // a string-compare chain per call.
  enum class IntrinsicId : uint8_t {
    kNone,  // Unresolved external: trap.
    kStrcmp,
    kStrcasecmp,
    kStrncmp,
    kStrncasecmp,
    kStrlen,
    kStrdup,
    kCanonicalizePath,
    kTolowerStr,
    kToupperStr,
    kStrchr,
    kStrstr,
    kAtoi,
    kAtol,
    kStrtod,
    kSscanf,
    kParseIntStrict,
    kOpen,
    kFopen,
    kOpendir,
    kAccess,
    kUnlink,
    kMkdir,
    kChdir,
    kChown,
    kRetZero,  // chmod/umask/close/read/write/free/listen/set_buffer_size/daemonize.
    kSocket,
    kBind,
    kConnect,
    kHtons,
    kHtonl,
    kInetAddr,
    kInetAton,
    kGethostbyname,
    kGetpwnam,
    kGetgrnam,
    kSetuidUser,
    kSleep,
    kUsleep,
    kPollWait,
    kTime,
    kMalloc,
    kExit,
    kAbort,
    kPrintf,
    kFprintf,
    kSprintf,
    kLogInfo,
    kLogWarn,
    kLogError,
    kLogFatal,
    kInvokeHandler,
  };

  // Resolved call target: a defined function, or an intrinsic id.
  struct CallSite {
    const Function* function = nullptr;
    IntrinsicId intrinsic = IntrinsicId::kNone;
  };

  class TrapError {
   public:
    explicit TrapError(std::string reason) : reason_(std::move(reason)) {}
    const std::string& reason() const { return reason_; }

   private:
    std::string reason_;
  };
  class ExitRequest {
   public:
    explicit ExitRequest(int64_t code) : code_(code) {}
    int64_t code() const { return code_; }

   private:
    int64_t code_;
  };
  class HangError {};
  class CancelError {};

  // How many steps run between cancel-token polls: rare enough that the
  // poll (one relaxed load; a clock read when a deadline is armed) is
  // invisible next to the interpreter's per-step work, frequent enough
  // that a runaway loop is interrupted within ~microseconds.
  static constexpr int64_t kCancelPollInterval = 1024;

  void BuildModuleIndex();
  void BuildInitImage();
  RtValue DefaultValueFor(const IrType* type) const;

  const Function* LookupFunction(const std::string& name) const;
  const GlobalVariable* LookupGlobal(const std::string& name) const;
  // Resolves (and caches) the target of a call instruction on first
  // execution; see call_sites_.
  CallSite ResolveCallSite(const Instruction* instr);
  // Dense slot of a global root, or -1 if the root is not a global.
  int32_t GlobalSlotOf(const Value* root) const;

  RtValue RunFunction(const Function& fn, std::vector<RtValue> args);
  RtValue Eval(Frame& frame, const Value* value);
  RtValue ExecCall(Frame& frame, const Instruction* instr);
  RtValue Intrinsic(IntrinsicId id, const std::string& name, std::vector<RtValue>& args,
                    const Instruction* instr);

  RtValue LoadCell(const RtValue& addr, const Instruction* at);
  void StoreCell(const RtValue& addr, RtValue value, const Instruction* at);
  // Bumps stale_cell_ops_ when `frame` is not on the live call chain.
  void NoteFrameCellAccess(int64_t frame);
  // Bounds check for array roots; throws TrapError on violation.
  void CheckBounds(const Value* root, int32_t slot, const std::vector<int64_t>& path,
                   const Instruction* at) const;
  // Default value of an untouched cell, derived from the leaf type.
  RtValue DefaultCellValue(const Value* root, const std::vector<int64_t>& path) const;

  void Step();
  void AppendLog(std::string level, const std::string& message);
  std::string FormatMessage(const std::string& format, const std::vector<RtValue>& args,
                            size_t first_arg) const;

  const Module& module_;
  OsSimulator* os_;
  InterpOptions options_;
  const CancelToken* cancel_ = nullptr;  // Borrowed; see set_cancel_token.

  // --- Per-instance interned-string pool. Append-only with stable
  // addresses; RtValues built by this interpreter point into it.
  StringPool pool_;

  // --- Module-derived indexes, built once per Interpreter (the module is
  // immutable). Function/global lookup by name is hashed; Module::Find* is
  // a linear scan and far too slow for the call-instruction hot path.
  std::unordered_map<std::string, const Function*> functions_by_name_;
  std::unordered_map<std::string, const GlobalVariable*> globals_by_name_;
  std::unordered_map<const Value*, int32_t> global_slot_;
  std::vector<int64_t> global_bounds_;  // Slot -> element count (0 = scalar).
  // Constant-string operands interned per Value on first evaluation
  // (module constants are deduplicated, so this converges to one entry per
  // distinct literal actually executed).
  std::unordered_map<const Value*, RtValue> const_strings_;
  // Call instruction -> resolved target, filled lazily by ResolveCallSite
  // so construction stays free of a whole-module walk.
  std::unordered_map<const Instruction*, CallSite> call_sites_;

  // --- Cached InitGlobals() image; Reset() restores by copy.
  std::vector<RtValue> init_scalars_;
  CellMap init_cells_;

  // --- Mutable run state.
  std::vector<RtValue> global_scalars_;  // Slot -> scalar (path-empty) value.
  // Slot -> stamp of the last load/store through that global root since
  // Reset() (0 = untouched); GlobalWasRead() is stamp != 0.
  std::vector<int32_t> global_read_stamps_;
  std::vector<int32_t> global_write_stamps_;
  CellMap cells_;                        // Non-scalar globals + alloca cells.
  std::unordered_map<const Value*, int64_t> alloca_bounds_;
  std::vector<std::string> logs_;
  // Recycled register files; RunFunction pops/pushes to avoid a fresh
  // allocation per call.
  std::vector<std::vector<RtValue>> frame_pool_;
  // Frame ids of the live call chain, innermost last; cell accesses whose
  // frame is absent are escaped-local traffic (see stale_cell_ops()).
  std::vector<int64_t> active_frames_;
  int64_t steps_ = 0;
  int64_t next_frame_id_ = 0;
  int64_t os_ops_ = 0;  // Intrinsic calls that consulted the simulated OS.
  int64_t stale_cell_ops_ = 0;
  int32_t access_stamp_ = 1;
  int call_depth_ = 0;
};

}  // namespace spex

#endif  // SPEX_INTERP_INTERPRETER_H_
