// Concrete IR interpreter with simulated-OS intrinsics.
//
// SPEX-INJ (Section 3.1) must observe how the target system *actually*
// reacts to an injected misconfiguration: crash, hang, early termination,
// silent violation, silent ignorance, or a helpful error message. The
// interpreter supplies exactly those observables: traps (out-of-bounds
// writes are segfaults, like OpenLDAP's listener-threads crash), a step
// budget (runaway loops are hangs), exit codes, captured logs, final global
// values, and a record of which globals were ever read.
//
// Storage layout is optimized for campaign throughput: per-frame registers
// are dense slots indexed by the per-function Value id, scalar globals live
// in a flat slot table built once per module, and array/field cells use
// hashed (not tree) lookup. The post-InitGlobals() image is cached so
// Reset() restores by copy instead of re-walking initializers — an
// injection campaign resets the same interpreter thousands of times.
#ifndef SPEX_INTERP_INTERPRETER_H_
#define SPEX_INTERP_INTERPRETER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/ir.h"
#include "src/osim/os_simulator.h"
#include "src/support/hashing.h"

namespace spex {

// A runtime value: integer, float, string (possibly null), address, or a
// function reference (config-table handler slots).
struct RtValue {
  enum class Kind { kInt, kFloat, kString, kNull, kAddr, kFnRef };
  Kind kind = Kind::kInt;
  int64_t i = 0;
  double f = 0;
  std::string s;

  // kAddr payload: frame -1 = global storage.
  int64_t frame = -1;
  const Value* root = nullptr;
  std::vector<int64_t> path;

  static RtValue Int(int64_t v);
  static RtValue Float(double v);
  static RtValue Str(std::string v);
  static RtValue Null();
  static RtValue FnRef(std::string name);

  bool IsTruthy() const;
  int64_t AsInt() const;
  double AsFloat() const;
  std::string ToDebugString() const;
};

struct InterpOptions {
  // Instruction budget; exceeding it classifies the run as a hang.
  int64_t max_steps = 2'000'000;
  // Call-depth budget; exceeding it is a stack-overflow trap.
  int max_call_depth = 200;
};

struct CallOutcome {
  enum class Status {
    kOk,    // Returned normally.
    kExit,  // Called exit(code).
    kTrap,  // Segfault / abort / division by zero / stack overflow.
    kHang,  // Step budget exhausted.
  };
  Status status = Status::kOk;
  RtValue return_value;
  int64_t exit_code = 0;
  std::string trap_reason;

  bool ok() const { return status == Status::kOk; }
};

class Interpreter {
 public:
  Interpreter(const Module& module, OsSimulator* os, InterpOptions options = {});

  // Re-initializes global storage from the cached initializer image, clears
  // logs, read-tracking and the step counter. Does not reset the OS.
  void Reset();

  // Calls a function by name. Args are matched positionally; missing args
  // default to 0 / null.
  CallOutcome Call(const std::string& function, std::vector<RtValue> args);

  // --- Observables.
  const std::vector<std::string>& logs() const { return logs_; }
  void ClearLogs() { logs_.clear(); }
  // Current value of a scalar global, or nullopt if it does not exist.
  std::optional<RtValue> ReadGlobal(const std::string& name) const;
  void WriteGlobal(const std::string& name, RtValue value);
  // Was the global's storage loaded since the last Reset()?
  bool GlobalWasRead(const std::string& name) const;
  int64_t steps_used() const { return steps_; }

 private:
  struct Frame {
    const Function* fn = nullptr;
    int64_t id = 0;
    // Dense register file indexed by Value::id() (arguments and
    // instructions share the function's id space).
    std::vector<RtValue> regs;
  };

  // Identity of a non-scalar cell (array element / struct field / alloca).
  struct CellKey {
    int64_t frame = -1;
    const Value* root = nullptr;
    std::vector<int64_t> path;

    bool operator==(const CellKey& other) const {
      return frame == other.frame && root == other.root && path == other.path;
    }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& key) const {
      size_t h = std::hash<const void*>()(key.root);
      h = HashCombine(h, std::hash<int64_t>()(key.frame));
      for (int64_t step : key.path) {
        h = HashCombine(h, std::hash<int64_t>()(step));
      }
      return h;
    }
  };
  using CellMap = std::unordered_map<CellKey, RtValue, CellKeyHash>;

  class TrapError {
   public:
    explicit TrapError(std::string reason) : reason_(std::move(reason)) {}
    const std::string& reason() const { return reason_; }

   private:
    std::string reason_;
  };
  class ExitRequest {
   public:
    explicit ExitRequest(int64_t code) : code_(code) {}
    int64_t code() const { return code_; }

   private:
    int64_t code_;
  };
  class HangError {};

  void BuildModuleIndex();
  void BuildInitImage();
  RtValue DefaultValueFor(const IrType* type) const;

  const Function* LookupFunction(const std::string& name) const;
  const GlobalVariable* LookupGlobal(const std::string& name) const;
  // Dense slot of a global root, or -1 if the root is not a global.
  int32_t GlobalSlotOf(const Value* root) const;

  RtValue RunFunction(const Function& fn, std::vector<RtValue> args);
  RtValue Eval(Frame& frame, const Value* value);
  RtValue ExecCall(Frame& frame, const Instruction* instr);
  RtValue Intrinsic(const std::string& name, std::vector<RtValue>& args,
                    const Instruction* instr);

  RtValue LoadCell(const RtValue& addr, const Instruction* at);
  void StoreCell(const RtValue& addr, RtValue value, const Instruction* at);
  // Bounds check for array roots; throws TrapError on violation.
  void CheckBounds(const Value* root, int32_t slot, const std::vector<int64_t>& path,
                   const Instruction* at) const;
  // Default value of an untouched cell, derived from the leaf type.
  RtValue DefaultCellValue(const Value* root, const std::vector<int64_t>& path) const;

  void Step();
  void AppendLog(std::string level, const std::string& message);
  std::string FormatMessage(const std::string& format, const std::vector<RtValue>& args,
                            size_t first_arg) const;

  const Module& module_;
  OsSimulator* os_;
  InterpOptions options_;

  // --- Module-derived indexes, built once per Interpreter (the module is
  // immutable). Function/global lookup by name is hashed; Module::Find* is
  // a linear scan and far too slow for the call-instruction hot path.
  std::unordered_map<std::string, const Function*> functions_by_name_;
  std::unordered_map<std::string, const GlobalVariable*> globals_by_name_;
  std::unordered_map<const Value*, int32_t> global_slot_;
  std::vector<int64_t> global_bounds_;  // Slot -> element count (0 = scalar).

  // --- Cached InitGlobals() image; Reset() restores by copy.
  std::vector<RtValue> init_scalars_;
  CellMap init_cells_;

  // --- Mutable run state.
  std::vector<RtValue> global_scalars_;  // Slot -> scalar (path-empty) value.
  std::vector<uint8_t> global_read_;     // Slot -> loaded since Reset()?
  CellMap cells_;                        // Non-scalar globals + alloca cells.
  std::unordered_map<const Value*, int64_t> alloca_bounds_;
  std::vector<std::string> logs_;
  // Recycled register files; RunFunction pops/pushes to avoid a fresh
  // allocation per call.
  std::vector<std::vector<RtValue>> frame_pool_;
  int64_t steps_ = 0;
  int64_t next_frame_id_ = 0;
  int call_depth_ = 0;
};

}  // namespace spex

#endif  // SPEX_INTERP_INTERPRETER_H_
