// Historical misconfiguration case database (paper Section 4.2).
//
// The paper samples real user-committed misconfigurations (246 from
// Storage-A's customer-issue database, 177 from forums for Apache, MySQL,
// OpenLDAP) and asks: how many could SPEX have avoided? The real case
// texts are proprietary/scattered; this module synthesizes a case DB with
// the published per-category structure, referencing the corpus targets'
// actual parameters, so the Table 9/10 analysis runs against the real
// inferred constraints rather than a hard-coded answer.
#ifndef SPEX_CASES_CASE_DB_H_
#define SPEX_CASES_CASE_DB_H_

#include <string>
#include <vector>

#include "src/core/constraints.h"

namespace spex {

struct HistoricalCase {
  enum class Kind {
    kParamViolation,       // User violated a parameter constraint.
    kComplexConstraint,    // Constraint exists but has no concrete code
                           // pattern (SPEX's single-software blind spot).
    kCrossSoftware,        // Correlation across software components.
    kLegalButWrongIntent,  // Setting is valid but not what the user meant.
    kGoodReactionStill,    // System pinpointed it; user still filed a case.
  };
  std::string target;  // Corpus target name.
  std::string param;   // Referenced parameter (may be synthetic for
                       // kComplexConstraint / kCrossSoftware).
  Kind kind = Kind::kParamViolation;
  std::string note;
};

// Deterministic case DB for one target, with the sample sizes the paper
// reports (Storage-A 246, Apache 50, MySQL 47, OpenLDAP 49). Parameter
// references cycle through `constrained_params`, the parameters the current
// analysis actually produced constraints for.
std::vector<HistoricalCase> BuildCaseDb(const std::string& target, size_t samples,
                                        const std::vector<std::string>& constrained_params);

struct BenefitBreakdown {
  size_t total = 0;
  size_t avoidable = 0;       // Table 9: bad reactions SPEX avoids.
  size_t single_software = 0; // Table 10 columns.
  size_t cross_software = 0;
  size_t conform_constraints = 0;
  size_t good_reactions = 0;

  double AvoidableRatio() const {
    return total == 0 ? 0 : static_cast<double>(avoidable) / static_cast<double>(total);
  }
};

// Classifies each case against the constraints SPEX inferred for the
// target: a parameter-violation case is avoidable iff SPEX inferred any
// constraint for that parameter.
BenefitBreakdown AnalyzeBenefit(const std::vector<HistoricalCase>& cases,
                                const ModuleConstraints& constraints);

// The paper's per-target sample sizes (Table 9).
size_t PaperSampleSize(const std::string& target);

}  // namespace spex

#endif  // SPEX_CASES_CASE_DB_H_
