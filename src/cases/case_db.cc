#include "src/cases/case_db.h"

#include <map>

namespace spex {

namespace {

// Per-target category proportions, from Tables 9 and 10 of the paper.
// {avoidable, single_sw, cross_sw, conform, good}; remainders (cases the
// paper attributes to fixable-but-unfixed categories) are folded into the
// avoidable pool, matching the paper's accounting.
struct CategoryCounts {
  size_t avoidable;
  size_t single_sw;
  size_t cross_sw;
  size_t conform;
  size_t good;
};

const std::map<std::string, CategoryCounts>& PaperBreakdown() {
  static const auto* kTable = new std::map<std::string, CategoryCounts>{
      {"storage_a", {68, 19, 51, 76, 32}},
      {"apache", {19, 5, 12, 9, 5}},
      {"mysql", {14, 1, 12, 18, 2}},
      {"openldap", {12, 9, 4, 12, 12}},
  };
  return *kTable;
}

}  // namespace

size_t PaperSampleSize(const std::string& target) {
  auto it = PaperBreakdown().find(target);
  if (it == PaperBreakdown().end()) {
    return 0;
  }
  const CategoryCounts& counts = it->second;
  return counts.avoidable + counts.single_sw + counts.cross_sw + counts.conform + counts.good;
}

std::vector<HistoricalCase> BuildCaseDb(const std::string& target, size_t samples,
                                        const std::vector<std::string>& constrained_params) {
  std::vector<HistoricalCase> cases;
  auto it = PaperBreakdown().find(target);
  if (it == PaperBreakdown().end() || constrained_params.empty()) {
    return cases;
  }
  CategoryCounts counts = it->second;
  size_t paper_total =
      counts.avoidable + counts.single_sw + counts.cross_sw + counts.conform + counts.good;
  // Rescale if the caller asked for a different sample size.
  auto scale = [&](size_t n) {
    return samples == paper_total ? n : (n * samples + paper_total / 2) / paper_total;
  };

  size_t cursor = 0;
  auto next_param = [&]() {
    const std::string& param = constrained_params[cursor % constrained_params.size()];
    ++cursor;
    return param;
  };

  for (size_t i = 0; i < scale(counts.avoidable); ++i) {
    HistoricalCase c;
    c.target = target;
    c.param = next_param();
    c.kind = HistoricalCase::Kind::kParamViolation;
    c.note = "user set an invalid value; system reacted badly";
    cases.push_back(std::move(c));
  }
  for (size_t i = 0; i < scale(counts.single_sw); ++i) {
    HistoricalCase c;
    c.target = target;
    c.param = "acl_rule_expression_" + std::to_string(i);
    c.kind = HistoricalCase::Kind::kComplexConstraint;
    c.note = "nested/semi-structured rule syntax; no concrete code pattern";
    cases.push_back(std::move(c));
  }
  for (size_t i = 0; i < scale(counts.cross_sw); ++i) {
    HistoricalCase c;
    c.target = target;
    c.param = "peer_software_setting_" + std::to_string(i);
    c.kind = HistoricalCase::Kind::kCrossSoftware;
    c.note = "correlation with another component's configuration";
    cases.push_back(std::move(c));
  }
  for (size_t i = 0; i < scale(counts.conform); ++i) {
    HistoricalCase c;
    c.target = target;
    c.param = next_param();
    c.kind = HistoricalCase::Kind::kLegalButWrongIntent;
    c.note = "valid per constraints but insufficient for the user's goal";
    cases.push_back(std::move(c));
  }
  for (size_t i = 0; i < scale(counts.good); ++i) {
    HistoricalCase c;
    c.target = target;
    c.param = next_param();
    c.kind = HistoricalCase::Kind::kGoodReactionStill;
    c.note = "system pinpointed the error; message was still confusing";
    cases.push_back(std::move(c));
  }
  return cases;
}

BenefitBreakdown AnalyzeBenefit(const std::vector<HistoricalCase>& cases,
                                const ModuleConstraints& constraints) {
  BenefitBreakdown breakdown;
  breakdown.total = cases.size();
  for (const HistoricalCase& historical : cases) {
    switch (historical.kind) {
      case HistoricalCase::Kind::kParamViolation: {
        const ParamConstraints* param = constraints.FindParam(historical.param);
        bool has_constraint =
            param != nullptr && (param->basic_type.has_value() ||
                                 !param->semantic_types.empty() || param->range.has_value());
        if (has_constraint) {
          ++breakdown.avoidable;
        } else {
          ++breakdown.single_software;  // SPEX could not infer it.
        }
        break;
      }
      case HistoricalCase::Kind::kComplexConstraint:
        ++breakdown.single_software;
        break;
      case HistoricalCase::Kind::kCrossSoftware:
        ++breakdown.cross_software;
        break;
      case HistoricalCase::Kind::kLegalButWrongIntent:
        ++breakdown.conform_constraints;
        break;
      case HistoricalCase::Kind::kGoodReactionStill:
        ++breakdown.good_reactions;
        break;
    }
  }
  return breakdown;
}

}  // namespace spex
