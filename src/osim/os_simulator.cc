#include "src/osim/os_simulator.h"

#include "src/support/strings.h"

namespace spex {

void OsSimulator::AddFile(const std::string& path, bool readable, bool writable) {
  files_[path] = FileInfo{false, readable, writable};
}

void OsSimulator::AddDirectory(const std::string& path) {
  files_[path] = FileInfo{true, true, true};
}

bool OsSimulator::FileExists(const std::string& path) const {
  auto it = files_.find(path);
  return it != files_.end() && !it->second.is_directory;
}

bool OsSimulator::DirectoryExists(const std::string& path) const {
  auto it = files_.find(path);
  return it != files_.end() && it->second.is_directory;
}

bool OsSimulator::IsReadable(const std::string& path) const {
  auto it = files_.find(path);
  return it != files_.end() && it->second.readable;
}

bool OsSimulator::IsWritable(const std::string& path) const {
  auto it = files_.find(path);
  return it != files_.end() && it->second.writable;
}

bool OsSimulator::RemoveFile(const std::string& path) { return files_.erase(path) > 0; }

void OsSimulator::OccupyPort(int64_t port) { occupied_ports_.insert(port); }

bool OsSimulator::PortOccupied(int64_t port) const { return occupied_ports_.count(port) > 0; }

bool OsSimulator::PortAvailable(int64_t port) const {
  return port >= 1 && port <= 65535 && !PortOccupied(port);
}

void OsSimulator::AddHost(const std::string& name) { hosts_.insert(name); }

bool OsSimulator::ResolvesHost(const std::string& name) const {
  return hosts_.count(name) > 0 || IsValidIpAddress(name);
}

bool OsSimulator::IsValidIpAddress(std::string_view text) const {
  auto parts = SplitString(text, '.');
  if (parts.size() != 4) {
    return false;
  }
  for (const std::string& part : parts) {
    auto value = ParseInt64(part);
    if (!value.has_value() || *value < 0 || *value > 255) {
      return false;
    }
  }
  return true;
}

void OsSimulator::AddUser(const std::string& name) { users_.insert(name); }
void OsSimulator::AddGroup(const std::string& name) { groups_.insert(name); }
bool OsSimulator::UserExists(const std::string& name) const { return users_.count(name) > 0; }
bool OsSimulator::GroupExists(const std::string& name) const { return groups_.count(name) > 0; }

int64_t OsSimulator::TryAllocate(int64_t bytes) {
  if (bytes <= 0 || bytes > memory_budget_ - allocated_bytes_) {
    return 0;
  }
  allocated_bytes_ += bytes;
  return next_alloc_handle_++;
}

void OsSimulator::ResetAllocations() {
  allocated_bytes_ = 0;
  next_alloc_handle_ = 1;
}

void OsSimulator::RestoreFrom(const OsSimulator& snapshot) {
  if (files_ != snapshot.files_) {
    files_ = snapshot.files_;
  }
  if (occupied_ports_ != snapshot.occupied_ports_) {
    occupied_ports_ = snapshot.occupied_ports_;
  }
  if (hosts_ != snapshot.hosts_) {
    hosts_ = snapshot.hosts_;
  }
  if (users_ != snapshot.users_) {
    users_ = snapshot.users_;
  }
  if (groups_ != snapshot.groups_) {
    groups_ = snapshot.groups_;
  }
  memory_budget_ = snapshot.memory_budget_;
  allocated_bytes_ = snapshot.allocated_bytes_;
  next_alloc_handle_ = snapshot.next_alloc_handle_;
  clock_seconds_ = snapshot.clock_seconds_;
}

OsSimulator OsSimulator::StandardEnvironment() {
  OsSimulator os;
  os.AddDirectory("/");
  os.AddDirectory("/etc");
  os.AddDirectory("/var");
  os.AddDirectory("/var/log");
  os.AddDirectory("/var/run");
  os.AddDirectory("/var/www");
  os.AddDirectory("/srv/data");
  os.AddDirectory("/tmp");
  os.AddFile("/etc/stopwords.txt");
  os.AddFile("/etc/mime.types");
  os.AddFile("/etc/ssl.pem");
  os.AddFile("/var/log/server.log");
  os.AddFile("/etc/secret.key", /*readable=*/false, /*writable=*/false);
  os.AddUser("root");
  os.AddUser("daemon");
  os.AddUser("www-data");
  os.AddGroup("root");
  os.AddGroup("www-data");
  os.AddHost("localhost");
  os.AddHost("db.internal");
  os.OccupyPort(22);    // sshd
  os.OccupyPort(5432);  // another service
  return os;
}

}  // namespace spex
