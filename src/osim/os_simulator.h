// Simulated operating-system environment.
//
// The interpreter's system-call intrinsics run against this simulator
// instead of the real OS, so an injection campaign can make "the port is
// occupied" or "the file does not exist" true on demand — the conditions
// SPEX-INJ needs to exercise semantic-type violations (paper Figure 5).
#ifndef SPEX_OSIM_OS_SIMULATOR_H_
#define SPEX_OSIM_OS_SIMULATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>

namespace spex {

class OsSimulator {
 public:
  // --- Filesystem. Paths are absolute, '/'-separated.
  void AddFile(const std::string& path, bool readable = true, bool writable = true);
  void AddDirectory(const std::string& path);
  bool FileExists(const std::string& path) const;
  bool DirectoryExists(const std::string& path) const;
  bool IsReadable(const std::string& path) const;
  bool IsWritable(const std::string& path) const;
  bool RemoveFile(const std::string& path);

  // --- Network.
  void OccupyPort(int64_t port);
  bool PortOccupied(int64_t port) const;
  // Valid, free TCP/UDP port check: 1..65535 and not occupied.
  bool PortAvailable(int64_t port) const;
  void AddHost(const std::string& name);
  bool ResolvesHost(const std::string& name) const;
  bool IsValidIpAddress(std::string_view text) const;

  // --- Users and groups.
  void AddUser(const std::string& name);
  void AddGroup(const std::string& name);
  bool UserExists(const std::string& name) const;
  bool GroupExists(const std::string& name) const;

  // --- Memory budget for malloc/alloc_buffer.
  void set_memory_budget(int64_t bytes) { memory_budget_ = bytes; }
  int64_t memory_budget() const { return memory_budget_; }
  // Returns a non-zero handle on success, 0 on failure. Allocations are
  // charged against the budget until ResetAllocations().
  int64_t TryAllocate(int64_t bytes);
  void ResetAllocations();
  int64_t allocated_bytes() const { return allocated_bytes_; }

  // --- Virtual clock (seconds since start).
  int64_t now() const { return clock_seconds_; }
  void AdvanceClock(int64_t seconds) { clock_seconds_ += seconds; }

  // A standard environment with common paths, a user, and a resolvable
  // host — what corpus targets assume exists.
  static OsSimulator StandardEnvironment();

  // Makes this simulator state-identical to `snapshot`, skipping the
  // node-by-node container copies when a container was never mutated. An
  // injection campaign restores the same pristine environment thousands of
  // times, and most runs never touch the filesystem or user tables.
  void RestoreFrom(const OsSimulator& snapshot);

 private:
  struct FileInfo {
    bool is_directory = false;
    bool readable = true;
    bool writable = true;

    bool operator==(const FileInfo& other) const {
      return is_directory == other.is_directory && readable == other.readable &&
             writable == other.writable;
    }
  };

  std::map<std::string, FileInfo> files_;
  std::set<int64_t> occupied_ports_;
  std::set<std::string> hosts_;
  std::set<std::string> users_;
  std::set<std::string> groups_;
  int64_t memory_budget_ = 1LL << 30;  // 1 GiB default.
  int64_t allocated_bytes_ = 0;
  int64_t next_alloc_handle_ = 1;
  int64_t clock_seconds_ = 1700000000;
};

}  // namespace spex

#endif  // SPEX_OSIM_OS_SIMULATOR_H_
