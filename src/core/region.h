// Branch-region behaviour classification.
//
// Range inference (Section 2.2.3) decides whether a range is valid or
// invalid by looking at what the program does in the corresponding branch
// region: exiting, aborting, returning an error code, or resetting the
// parameter all mark the region's range as invalid.
#ifndef SPEX_CORE_REGION_H_
#define SPEX_CORE_REGION_H_

#include <vector>

#include "src/analysis/dataflow.h"
#include "src/apidb/api_registry.h"
#include "src/ir/dominance.h"

namespace spex {

struct RegionBehavior {
  bool terminates = false;    // Calls exit/abort (or another terminating API).
  bool error_return = false;  // Returns a negative constant.
  bool error_log = false;     // Calls an error-logging API.
  bool resets_param = false;  // Overwrites the parameter with a non-parameter value.
  bool logs = false;          // Any logging call at all.
  bool empty = true;          // The region contains no blocks.

  // The paper's "invalid range" signal.
  bool IsInvalid() const { return terminates || error_return || error_log || resets_param; }
  // Reset without telling anyone: the silent-overruling signature.
  bool IsSilentReset() const {
    return resets_param && !terminates && !error_return && !error_log;
  }
};

class RegionAnalyzer {
 public:
  explicit RegionAnalyzer(const ApiRegistry& apis) : apis_(apis) {}

  // The blocks that execute only when `branch` takes `edge`, including
  // blocks nested under further branches inside the region.
  std::vector<const BasicBlock*> RegionBlocks(const ControlDependence& cdeps,
                                              const Function& fn, const Instruction* branch,
                                              int edge) const;

  // Only the blocks *directly* control-dependent on the edge — the
  // straight-line body of the branch, excluding nested sub-branches. Range
  // classification uses this first so that an `else if` chain's nested reset
  // is not attributed to the outer comparison.
  std::vector<const BasicBlock*> DirectRegionBlocks(const ControlDependence& cdeps,
                                                    const Function& fn,
                                                    const Instruction* branch, int edge) const;

  // Classifies the behaviour of a region with respect to parameter `df`.
  RegionBehavior Classify(const std::vector<const BasicBlock*>& blocks,
                          const ParamDataflow& df) const;

 private:
  const ApiRegistry& apis_;
};

}  // namespace spex

#endif  // SPEX_CORE_REGION_H_
