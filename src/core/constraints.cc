#include "src/core/constraints.h"

#include <sstream>

namespace spex {

std::string BasicTypeConstraint::ToString() const {
  return type != nullptr ? type->ToString() : "?";
}

std::string SemanticTypeConstraint::ToString() const {
  std::string out = SemanticTypeName(semantic);
  if (time_unit != TimeUnit::kNone) {
    out += std::string("(") + TimeUnitName(time_unit) + ")";
  }
  if (size_unit != SizeUnit::kNone) {
    out += std::string("(") + SizeUnitName(size_unit) + ")";
  }
  if (!evidence_api.empty()) {
    out += " via " + evidence_api;
  }
  return out;
}

std::string RangeInterval::ToString() const {
  std::ostringstream out;
  out << (min.has_value() ? "[" + std::to_string(*min) : "(-inf");
  out << ", ";
  out << (max.has_value() ? std::to_string(*max) + "]" : "+inf)");
  out << (valid ? " valid" : " invalid");
  return out.str();
}

namespace {

std::string OctalString(uint32_t bits) {
  std::string out;
  do {
    out.insert(out.begin(), static_cast<char>('0' + (bits & 7)));
    bits >>= 3;
  } while (bits != 0);
  return "0" + out;
}

}  // namespace

std::string PermissionConstraint::ToString() const {
  std::ostringstream out;
  out << "mode: forbid " << OctalString(forbidden_bits) << ", require "
      << OctalString(required_bits);
  if (!evidence_api.empty()) {
    out << " via " << evidence_api;
  }
  return out.str();
}

bool RangeConstraint::HasInvalidInterval() const {
  if (is_enum) {
    return true;  // Everything outside the enumerated set is invalid.
  }
  for (const RangeInterval& interval : intervals) {
    if (!interval.valid) {
      return true;
    }
  }
  return false;
}

std::vector<RangeInterval> RangeConstraint::ValidIntervals() const {
  std::vector<RangeInterval> result;
  for (const RangeInterval& interval : intervals) {
    if (interval.valid) {
      result.push_back(interval);
    }
  }
  return result;
}

std::string RangeConstraint::ToString() const {
  std::ostringstream out;
  if (is_enum) {
    out << "enum {";
    bool first = true;
    for (const std::string& value : enum_strings) {
      out << (first ? "" : ", ") << "\"" << value << "\"";
      first = false;
    }
    for (int64_t value : enum_ints) {
      out << (first ? "" : ", ") << value;
      first = false;
    }
    out << "}";
  } else {
    bool first = true;
    for (const RangeInterval& interval : intervals) {
      out << (first ? "" : " ") << interval.ToString();
      first = false;
    }
  }
  switch (out_of_range) {
    case OutOfRangeBehavior::kError:
      out << " ; out-of-range -> error";
      break;
    case OutOfRangeBehavior::kSilentReset:
      out << " ; out-of-range -> SILENT RESET";
      break;
    case OutOfRangeBehavior::kUnknown:
      break;
  }
  return out.str();
}

bool ParamConstraints::HasSemantic(SemanticType semantic) const {
  return FindSemantic(semantic) != nullptr;
}

const SemanticTypeConstraint* ParamConstraints::FindSemantic(SemanticType semantic) const {
  for (const SemanticTypeConstraint& constraint : semantic_types) {
    if (constraint.semantic == semantic) {
      return &constraint;
    }
  }
  return nullptr;
}

std::string ControlDepConstraint::ToString() const {
  std::ostringstream out;
  out << "(\"" << master << "\", " << value << ", " << IrCmpPredName(pred) << ") -> \""
      << dependent << "\"  [confidence " << confidence << "]";
  return out.str();
}

std::string ValueRelConstraint::ToString() const {
  std::ostringstream out;
  out << "\"" << lhs << "\" " << IrCmpPredName(pred) << " \"" << rhs << "\"";
  if (via_transitivity) {
    out << " (transitive)";
  }
  return out.str();
}

const ParamConstraints* ModuleConstraints::FindParam(const std::string& name) const {
  for (const ParamConstraints& param : params) {
    if (param.param == name) {
      return &param;
    }
  }
  return nullptr;
}

size_t ModuleConstraints::CountBasicTypes() const {
  size_t count = 0;
  for (const ParamConstraints& param : params) {
    if (param.basic_type.has_value()) {
      ++count;
    }
  }
  return count;
}

size_t ModuleConstraints::CountSemanticTypes() const {
  size_t count = 0;
  for (const ParamConstraints& param : params) {
    count += param.semantic_types.size();
  }
  return count;
}

size_t ModuleConstraints::CountRanges() const {
  size_t count = 0;
  for (const ParamConstraints& param : params) {
    if (param.range.has_value()) {
      ++count;
    }
  }
  return count;
}

size_t ModuleConstraints::TotalConstraints() const {
  return CountBasicTypes() + CountSemanticTypes() + CountRanges() + control_deps.size() +
         value_rels.size();
}

}  // namespace spex
