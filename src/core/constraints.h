// The configuration-constraint model (Section 2.1 of the paper).
//
// A constraint is a rule that separates correct configurations from
// misconfigurations. Five kinds are modeled, exactly the paper's taxonomy:
// basic type, semantic type, data range (numeric and enumerative, with
// per-interval validity), control dependency (P,V,op) -> Q, and value
// relationship P op Q.
#ifndef SPEX_CORE_CONSTRAINTS_H_
#define SPEX_CORE_CONSTRAINTS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/apidb/semantic_types.h"
#include "src/ir/ir.h"
#include "src/mapping/extractor.h"
#include "src/support/source_loc.h"

namespace spex {

// ---------------------------------------------------------------------------
// Per-parameter constraints.

struct BasicTypeConstraint {
  const IrType* type = nullptr;
  SourceLoc loc;  // Where the type is established (declaration or first cast).

  std::string ToString() const;
};

struct SemanticTypeConstraint {
  SemanticType semantic = SemanticType::kNone;
  TimeUnit time_unit = TimeUnit::kNone;  // Parameter-level unit, transform-adjusted.
  SizeUnit size_unit = SizeUnit::kNone;
  std::string evidence_api;  // The call that revealed the semantic type.
  SourceLoc loc;

  std::string ToString() const;
};

// One maximal interval of a numeric range partition.
struct RangeInterval {
  std::optional<int64_t> min;  // Inclusive; nullopt = -inf.
  std::optional<int64_t> max;  // Inclusive; nullopt = +inf.
  bool valid = true;

  bool Contains(int64_t v) const {
    return (!min.has_value() || v >= *min) && (!max.has_value() || v <= *max);
  }
  std::string ToString() const;
};

// Behaviour of the region handling values outside the accepted set.
enum class OutOfRangeBehavior {
  kUnknown,      // No else/default handling was identified.
  kError,        // Region terminates / returns an error / logs an error.
  kSilentReset,  // Region silently overwrites the parameter (silent overruling).
};

struct RangeConstraint {
  bool is_enum = false;

  // Numeric form: a partition of the integer line.
  std::vector<RangeInterval> intervals;

  // Enumerative form: accepted values.
  std::vector<std::string> enum_strings;
  std::vector<int64_t> enum_ints;

  OutOfRangeBehavior out_of_range = OutOfRangeBehavior::kUnknown;
  SourceLoc loc;

  bool HasInvalidInterval() const;
  // The valid intervals only (numeric form).
  std::vector<RangeInterval> ValidIntervals() const;
  std::string ToString() const;
};

enum class CaseSensitivity { kUnknown, kSensitive, kInsensitive };

// Uses of unsafe transformation APIs on this parameter (Section 3.2).
struct UnsafeApiUse {
  std::string api;
  SourceLoc loc;
};

// Permission policy for an octal-mode/ACL parameter (one whose value
// flows into a kPermissionMask API argument — chmod, umask, open's mode).
// Misconfigured permissions cut both ways, so the policy has two sides:
// `forbidden_bits` the mode must not grant (too permissive — the classic
// world-writable config), `required_bits` it must grant (too restrictive
// — a mode the owner cannot even read breaks the system just as surely).
// Defaults encode the least-surprise policy (no world-write, owner-read
// present); bits the target's own code masks out and rejects are folded
// into forbidden_bits by the engine.
struct PermissionConstraint {
  uint32_t forbidden_bits = 0002;
  uint32_t required_bits = 0400;
  std::string evidence_api;  // The call that revealed the mode semantics.
  SourceLoc loc;

  std::string ToString() const;
};

struct ParamConstraints {
  std::string param;
  MappingStyle style = MappingStyle::kStructureDirect;
  SourceLoc loc;

  std::optional<BasicTypeConstraint> basic_type;
  std::vector<SemanticTypeConstraint> semantic_types;
  std::optional<RangeConstraint> range;
  std::optional<PermissionConstraint> permission;

  CaseSensitivity case_sensitivity = CaseSensitivity::kUnknown;
  TimeUnit time_unit = TimeUnit::kNone;
  SizeUnit size_unit = SizeUnit::kNone;
  std::vector<UnsafeApiUse> unsafe_uses;

  // True if the parameter's storage is read anywhere outside its parsing
  // path (used by silent-ignorance classification).
  bool has_usage = false;

  bool HasSemantic(SemanticType semantic) const;
  const SemanticTypeConstraint* FindSemantic(SemanticType semantic) const;
};

// ---------------------------------------------------------------------------
// Cross-parameter constraints.

// (master, value, pred) -> dependent: `dependent` takes effect only when
// `master` pred `value` holds.
struct ControlDepConstraint {
  std::string master;
  std::string dependent;
  IrCmpPred pred = IrCmpPred::kNe;
  int64_t value = 0;
  double confidence = 0.0;  // MAY-belief confidence (Section 2.2.4).
  SourceLoc loc;

  std::string ToString() const;
};

// lhs pred rhs must hold for a valid configuration.
struct ValueRelConstraint {
  std::string lhs;
  std::string rhs;
  IrCmpPred pred = IrCmpPred::kLt;
  bool via_transitivity = false;  // Composed through an intermediate variable.
  SourceLoc loc;

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Whole-module result.

struct ModuleConstraints {
  std::vector<ParamConstraints> params;
  std::vector<ControlDepConstraint> control_deps;
  std::vector<ValueRelConstraint> value_rels;

  const ParamConstraints* FindParam(const std::string& name) const;

  // Counts for Table 11.
  size_t CountBasicTypes() const;
  size_t CountSemanticTypes() const;
  size_t CountRanges() const;
  size_t TotalConstraints() const;
};

}  // namespace spex

#endif  // SPEX_CORE_CONSTRAINTS_H_
