#include "src/core/region.h"

#include <algorithm>
#include <set>

namespace spex {

std::vector<const BasicBlock*> RegionAnalyzer::RegionBlocks(const ControlDependence& cdeps,
                                                            const Function& fn,
                                                            const Instruction* branch,
                                                            int edge) const {
  ControlDep want{branch, edge};
  std::vector<const BasicBlock*> blocks;
  for (const auto& block : fn.blocks()) {
    auto deps = cdeps.TransitiveDeps(block.get());
    if (std::find(deps.begin(), deps.end(), want) != deps.end()) {
      blocks.push_back(block.get());
    }
  }
  return blocks;
}

std::vector<const BasicBlock*> RegionAnalyzer::DirectRegionBlocks(
    const ControlDependence& cdeps, const Function& fn, const Instruction* branch,
    int edge) const {
  ControlDep want{branch, edge};
  std::vector<const BasicBlock*> blocks;
  for (const auto& block : fn.blocks()) {
    const auto& deps = cdeps.DirectDeps(block.get());
    if (std::find(deps.begin(), deps.end(), want) != deps.end()) {
      blocks.push_back(block.get());
    }
  }
  return blocks;
}

RegionBehavior RegionAnalyzer::Classify(const std::vector<const BasicBlock*>& blocks,
                                        const ParamDataflow& df) const {
  RegionBehavior behavior;
  behavior.empty = blocks.empty();
  std::set<const BasicBlock*> region(blocks.begin(), blocks.end());

  for (const BasicBlock* block : blocks) {
    for (const auto& instr : block->instructions()) {
      switch (instr->instr_kind()) {
        case InstrKind::kCall: {
          const ApiSpec* spec = apis_.Find(instr->callee());
          if (spec != nullptr) {
            if (spec->is_terminating) {
              behavior.terminates = true;
            }
            if (spec->is_logging) {
              behavior.logs = true;
            }
            if (spec->is_error_logging) {
              behavior.error_log = true;
            }
          }
          break;
        }
        case InstrKind::kRet: {
          if (instr->operand_count() == 1 &&
              instr->operand(0)->value_kind() == ValueKind::kConstantInt &&
              instr->operand(0)->constant_int() < 0) {
            behavior.error_return = true;
          }
          break;
        }
        default:
          break;
      }
    }
  }
  // A reset is a store into one of the parameter's locations whose stored
  // value does not come from the parameter itself.
  for (const StoreDef& store : df.stores) {
    if (!store.value_tainted && region.count(store.store->parent()) > 0) {
      behavior.resets_param = true;
    }
  }
  return behavior;
}

}  // namespace spex
