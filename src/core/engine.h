// SpexEngine: the paper's constraint-inference pipeline (Section 2.2).
//
// Most embedders should not drive this directly — spex::Session wires the
// whole flow (and keeps the result queryable for its lifetime):
//   spex::Session session;
//   spex::Target* target = session.LoadSource(src, annotation_text, "app.c");
//   const ModuleConstraints& constraints = target->InferConstraints();
//
// Direct usage (tests, custom pipelines) remains:
//   auto module = LowerToIr(*ParseSource(src, "app.c", &diags), &diags);
//   auto annotations = ParseAnnotations(annotation_text, &diags);
//   SpexEngine engine(*module, registry);
//   ModuleConstraints constraints = engine.Run(annotations, &diags);
//
// The engine owns the analysis context and the per-parameter data-flow
// results; downstream consumers (SPEX-INJ, the design detectors, the
// static and dynamic ConfigChecker behind Target::CheckConfig) query both.
#ifndef SPEX_CORE_ENGINE_H_
#define SPEX_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/dataflow.h"
#include "src/apidb/api_registry.h"
#include "src/core/constraints.h"
#include "src/core/region.h"
#include "src/ir/dominance.h"
#include "src/ir/ir.h"
#include "src/mapping/annotations.h"
#include "src/mapping/extractor.h"

namespace spex {

struct SpexOptions {
  // MAY-belief confidence threshold for control dependencies (paper: 0.75).
  double confidence_threshold = 0.75;
};

class SpexEngine {
 public:
  SpexEngine(const Module& module, const ApiRegistry& apis, SpexOptions options = {});

  // Full pipeline: mapping extraction, per-parameter data-flow, all five
  // inference engines.
  ModuleConstraints Run(const AnnotationFile& annotations, DiagnosticEngine* diags);

  // As Run, but with pre-extracted mappings (used by tests).
  ModuleConstraints InferFromMappings(const std::vector<MappedParam>& mappings);

  const AnalysisContext& context() const { return context_; }
  const std::vector<MappedParam>& mappings() const { return mappings_; }
  const ParamDataflow* DataflowFor(const std::string& param) const;
  const ControlDependence& ControlDepsFor(const Function& fn);

 private:
  struct ParamState {
    const MappedParam* mapping = nullptr;
    ParamDataflow dataflow;
    std::vector<const Instruction*> usage_sites;  // Branch/arith/library-arg uses.
  };

  void InferBasicType(ParamState& state, ParamConstraints* out);
  void InferSemanticTypes(ParamState& state, ParamConstraints* out);
  void InferRange(ParamState& state, ParamConstraints* out);
  void InferPermission(ParamState& state, ParamConstraints* out);
  void CollectUsageSites(ParamState& state);
  void InferControlDeps(std::vector<ParamState>& states, ModuleConstraints* out);
  void InferValueRels(std::vector<ParamState>& states, ModuleConstraints* out);

  // Which parameters taint `value` (indices into states).
  std::vector<size_t> ParamsTainting(const Value* value) const;

  // Finds the conditional branch controlled by `cmp` (directly or through
  // the short-circuit temp) and returns it, or nullptr.
  const Instruction* BranchFor(const Instruction* cmp) const;

  // Multiplicative factor applied to the parameter value on the way into
  // `value` (for unit inference). 1 if none.
  int64_t ScaleFactorOf(const Value* value, const ParamDataflow& df) const;

  const Module& module_;
  const ApiRegistry& apis_;
  SpexOptions options_;
  AnalysisContext context_;
  DataflowEngine dataflow_engine_;
  RegionAnalyzer region_analyzer_;
  std::vector<MappedParam> mappings_;
  std::map<std::string, ParamDataflow> dataflows_;
  std::map<const Function*, std::unique_ptr<ControlDependence>> control_deps_;
  // Hashed: point-queried once per cmp operand during control-dep and
  // value-relationship inference, never iterated.
  std::unordered_map<const Value*, std::vector<size_t>> value_to_params_;
};

}  // namespace spex

#endif  // SPEX_CORE_ENGINE_H_
