#include "src/core/engine.h"

#include <algorithm>
#include <set>

#include "src/ir/cond_eval.h"

namespace spex {

namespace {

// Words whose presence as the complete accepted-value set marks a string
// parameter as boolean.
bool IsBooleanWord(const std::string& word) {
  static const std::set<std::string>* kWords = new std::set<std::string>{
      "on", "off", "yes", "no", "true", "false", "0", "1", "enable", "disable", "enabled",
      "disabled"};
  return kWords->count(word) > 0;
}

// Normalizes a comparison so the parameter sits on the left-hand side.
IrCmpPred NormalizePred(IrCmpPred pred, int tainted_side) {
  return tainted_side == 0 ? pred : SwapCmpPred(pred);
}

// One "param pred V => invalid" fact collected during range inference.
struct InvalidCond {
  IrCmpPred pred;
  int64_t value;
};

bool CondHolds(const InvalidCond& cond, int64_t v) {
  switch (cond.pred) {
    case IrCmpPred::kEq:
      return v == cond.value;
    case IrCmpPred::kNe:
      return v != cond.value;
    case IrCmpPred::kLt:
      return v < cond.value;
    case IrCmpPred::kLe:
      return v <= cond.value;
    case IrCmpPred::kGt:
      return v > cond.value;
    case IrCmpPred::kGe:
      return v >= cond.value;
  }
  return false;
}

std::vector<RangeInterval> BuildIntervals(const std::vector<InvalidCond>& conds) {
  // Collect boundary points, then classify representative values of every
  // maximal segment. Segments with equal validity are merged.
  std::set<int64_t> points;
  for (const InvalidCond& cond : conds) {
    points.insert(cond.value - 1);
    points.insert(cond.value);
    points.insert(cond.value + 1);
  }
  std::vector<int64_t> pts(points.begin(), points.end());

  auto invalid_at = [&conds](int64_t v) {
    for (const InvalidCond& cond : conds) {
      if (CondHolds(cond, v)) {
        return true;
      }
    }
    return false;
  };

  std::vector<RangeInterval> raw;
  if (pts.empty()) {
    return raw;
  }
  // (-inf, pts[0] - 1]
  {
    RangeInterval interval;
    interval.max = pts[0] - 1;
    interval.valid = !invalid_at(pts[0] - 10);
    raw.push_back(interval);
  }
  for (size_t i = 0; i < pts.size(); ++i) {
    RangeInterval point;
    point.min = pts[i];
    point.max = pts[i];
    point.valid = !invalid_at(pts[i]);
    raw.push_back(point);
    if (i + 1 < pts.size() && pts[i + 1] > pts[i] + 1) {
      RangeInterval gap;
      gap.min = pts[i] + 1;
      gap.max = pts[i + 1] - 1;
      gap.valid = !invalid_at(pts[i] + 1);
      raw.push_back(gap);
    }
  }
  {
    RangeInterval tail;
    tail.min = pts.back() + 1;
    tail.valid = !invalid_at(pts.back() + 10);
    raw.push_back(tail);
  }
  // Merge adjacent intervals of equal validity.
  std::vector<RangeInterval> merged;
  for (const RangeInterval& interval : raw) {
    if (!merged.empty() && merged.back().valid == interval.valid) {
      merged.back().max = interval.max;
    } else {
      merged.push_back(interval);
    }
  }
  return merged;
}

}  // namespace

SpexEngine::SpexEngine(const Module& module, const ApiRegistry& apis, SpexOptions options)
    : module_(module),
      apis_(apis),
      options_(options),
      context_(module),
      dataflow_engine_(context_),
      region_analyzer_(apis) {}

const ControlDependence& SpexEngine::ControlDepsFor(const Function& fn) {
  auto it = control_deps_.find(&fn);
  if (it == control_deps_.end()) {
    it = control_deps_.emplace(&fn, std::make_unique<ControlDependence>(fn)).first;
  }
  return *it->second;
}

const ParamDataflow* SpexEngine::DataflowFor(const std::string& param) const {
  auto it = dataflows_.find(param);
  return it != dataflows_.end() ? &it->second : nullptr;
}

ModuleConstraints SpexEngine::Run(const AnnotationFile& annotations, DiagnosticEngine* diags) {
  MappingExtractor extractor(module_, context_, apis_);
  return InferFromMappings(extractor.Extract(annotations, diags));
}

ModuleConstraints SpexEngine::InferFromMappings(const std::vector<MappedParam>& mappings) {
  mappings_ = mappings;
  dataflows_.clear();
  value_to_params_.clear();

  std::vector<ParamState> states;
  states.reserve(mappings_.size());
  for (const MappedParam& mapping : mappings_) {
    ParamState state;
    state.mapping = &mapping;
    state.dataflow = dataflow_engine_.Analyze(mapping.seeds);
    states.push_back(std::move(state));
  }
  size_t tainted_total = 0;
  for (const ParamState& state : states) {
    tainted_total += state.dataflow.tainted_values.size();
  }
  value_to_params_.reserve(tainted_total);
  for (size_t i = 0; i < states.size(); ++i) {
    dataflows_[mappings_[i].name] = states[i].dataflow;
    for (const Value* value : states[i].dataflow.tainted_values) {
      value_to_params_[value].push_back(i);
    }
  }

  ModuleConstraints result;
  for (ParamState& state : states) {
    ParamConstraints constraints;
    constraints.param = state.mapping->name;
    constraints.style = state.mapping->style;
    constraints.loc = state.mapping->loc;
    CollectUsageSites(state);
    constraints.has_usage = !state.usage_sites.empty();
    InferBasicType(state, &constraints);
    InferSemanticTypes(state, &constraints);
    InferRange(state, &constraints);
    InferPermission(state, &constraints);
    result.params.push_back(std::move(constraints));
  }
  InferControlDeps(states, &result);
  InferValueRels(states, &result);
  return result;
}

std::vector<size_t> SpexEngine::ParamsTainting(const Value* value) const {
  auto it = value_to_params_.find(value);
  return it != value_to_params_.end() ? it->second : std::vector<size_t>{};
}

const Instruction* SpexEngine::BranchFor(const Instruction* cmp) const {
  // Follow the pure-expression user chain (casts / derived comparisons) to a
  // conditional branch. Short-circuit chains go through memory and are
  // deliberately not followed: their regions do not correspond to this
  // comparison alone.
  const Instruction* current = cmp;
  for (int depth = 0; depth < 5; ++depth) {
    const Instruction* next = nullptr;
    for (const Instruction* user : context_.UsersOf(current)) {
      if (user->instr_kind() == InstrKind::kCondBr) {
        return user;
      }
      if (user->instr_kind() == InstrKind::kCmp || user->instr_kind() == InstrKind::kCast) {
        next = user;
      }
    }
    if (next == nullptr) {
      return nullptr;
    }
    current = next;
  }
  return nullptr;
}

int64_t SpexEngine::ScaleFactorOf(const Value* value, const ParamDataflow& df) const {
  int64_t factor = 1;
  const Value* current = value;
  for (int depth = 0; depth < 12; ++depth) {
    if (current->value_kind() != ValueKind::kInstruction) {
      return factor;
    }
    const auto* instr = static_cast<const Instruction*>(current);
    if (instr->instr_kind() == InstrKind::kCast) {
      current = instr->operand(0);
      continue;
    }
    if (instr->instr_kind() == InstrKind::kLoad) {
      // Follow the value back through a local temp: `bytes = p * 1024;
      // malloc(bytes)`. Only unambiguous single-definition temps are
      // traced.
      auto loc = context_.ResolveAddress(instr->operand(0));
      if (!loc.has_value()) {
        return factor;
      }
      const Value* stored = nullptr;
      for (const StoreDef& def : df.stores) {
        if (def.loc == *loc && def.value_tainted) {
          if (stored != nullptr) {
            return factor;  // Multiple definitions: give up.
          }
          stored = def.store->operand(0);
        }
      }
      if (stored == nullptr) {
        return factor;
      }
      current = stored;
      continue;
    }
    if (instr->instr_kind() == InstrKind::kBinOp && instr->bin_op() == IrBinOp::kMul) {
      const Value* lhs = instr->operand(0);
      const Value* rhs = instr->operand(1);
      if (lhs->value_kind() == ValueKind::kConstantInt && df.Contains(rhs)) {
        factor *= lhs->constant_int();
        current = rhs;
        continue;
      }
      if (rhs->value_kind() == ValueKind::kConstantInt && df.Contains(lhs)) {
        factor *= rhs->constant_int();
        current = lhs;
        continue;
      }
    }
    if (instr->instr_kind() == InstrKind::kBinOp && instr->bin_op() == IrBinOp::kShl) {
      const Value* rhs = instr->operand(1);
      if (rhs->value_kind() == ValueKind::kConstantInt && df.Contains(instr->operand(0))) {
        factor <<= rhs->constant_int();
        current = instr->operand(0);
        continue;
      }
    }
    return factor;
  }
  return factor;
}

void SpexEngine::InferBasicType(ParamState& state, ParamConstraints* out) {
  const ParamDataflow& df = state.dataflow;
  BasicTypeConstraint constraint;
  if (state.mapping->storage != nullptr) {
    constraint.type = state.mapping->storage->value_type();
    constraint.loc = state.mapping->storage->loc();
    out->basic_type = constraint;
    return;
  }
  // The "first cast" rule: parameters commonly arrive as strings and are
  // converted once; the conversion target is the basic type.
  for (const CastStep& step : df.casts) {
    const IrType* type = step.cast->type();
    if (type->IsNumeric() || type->IsBool()) {
      constraint.type = type;
      constraint.loc = step.cast->loc();
      out->basic_type = constraint;
      return;
    }
  }
  // No cast: the type of the first location the parameter is stored into —
  // but only stores on the parsing path count. A downstream use like
  // `tuned = param + 1` stores into an unrelated variable and must not
  // define the parameter's type.
  std::set<const Function*> parse_fns;
  for (const Value* seed : state.mapping->seeds.values) {
    if (seed->value_kind() == ValueKind::kArgument) {
      parse_fns.insert(static_cast<const Argument*>(seed)->parent());
    } else if (seed->value_kind() == ValueKind::kInstruction) {
      parse_fns.insert(static_cast<const Instruction*>(seed)->parent()->parent());
    }
  }
  for (const StoreDef& store : df.stores) {
    if (!store.value_tainted || parse_fns.count(store.store->parent()->parent()) == 0) {
      continue;
    }
    if (store.store->operand(0)->value_kind() == ValueKind::kArgument) {
      continue;  // Prologue spill of the parse argument, not a conversion.
    }
    const IrType* target = store.store->operand(1)->type();
    if (target->IsPointer()) {
      constraint.type = target->pointee();
      constraint.loc = store.store->loc();
      out->basic_type = constraint;
      return;
    }
  }
  if (!state.mapping->seeds.values.empty()) {
    constraint.type = state.mapping->seeds.values.front()->type();
    constraint.loc = state.mapping->loc;
    out->basic_type = constraint;
  }
}

void SpexEngine::InferSemanticTypes(ParamState& state, ParamConstraints* out) {
  const ParamDataflow& df = state.dataflow;
  std::set<std::tuple<SemanticType, TimeUnit, SizeUnit>> seen;
  bool used_case_sensitive = false;
  bool used_case_insensitive = false;

  for (const CallArgUse& use : df.call_arg_uses) {
    const ApiSpec* spec = apis_.Find(use.call->callee());
    if (spec == nullptr) {
      continue;
    }
    if (spec->IsStringCompare()) {
      if (spec->is_case_sensitive_cmp) {
        used_case_sensitive = true;
      } else {
        used_case_insensitive = true;
      }
    }
    if (spec->is_unsafe_transform) {
      out->unsafe_uses.push_back(UnsafeApiUse{spec->name, use.call->loc()});
    }
    const ApiParamSpec* param_spec = spec->FindParam(use.arg_index);
    if (param_spec == nullptr || param_spec->semantic == SemanticType::kNone) {
      continue;
    }
    SemanticTypeConstraint constraint;
    constraint.semantic = param_spec->semantic;
    constraint.evidence_api = spec->name;
    constraint.loc = use.call->loc();
    int64_t factor =
        ScaleFactorOf(use.call->operand(static_cast<size_t>(use.arg_index)), df);
    constraint.time_unit = ScaleTimeUnit(param_spec->time_unit, factor);
    constraint.size_unit = ScaleSizeUnit(param_spec->size_unit, factor);
    if (seen.insert({constraint.semantic, constraint.time_unit, constraint.size_unit}).second) {
      out->semantic_types.push_back(constraint);
    }
  }

  // Pattern 2: the parameter is compared with the return value of a call
  // with known return semantics (e.g. `if (deadline < time(NULL))`).
  for (const CmpUse& use : df.cmp_uses) {
    if (use.other->value_kind() != ValueKind::kInstruction) {
      continue;
    }
    const auto* other = static_cast<const Instruction*>(use.other);
    if (other->instr_kind() != InstrKind::kCall) {
      continue;
    }
    const ApiSpec* spec = apis_.Find(other->callee());
    if (spec == nullptr || spec->return_semantic == SemanticType::kNone) {
      continue;
    }
    SemanticTypeConstraint constraint;
    constraint.semantic = spec->return_semantic;
    constraint.time_unit = spec->return_time_unit;
    constraint.evidence_api = spec->name;
    constraint.loc = use.cmp->loc();
    if (seen.insert({constraint.semantic, constraint.time_unit, constraint.size_unit}).second) {
      out->semantic_types.push_back(constraint);
    }
  }

  if (used_case_sensitive) {
    out->case_sensitivity = CaseSensitivity::kSensitive;
  } else if (used_case_insensitive) {
    out->case_sensitivity = CaseSensitivity::kInsensitive;
  }
  for (const SemanticTypeConstraint& constraint : out->semantic_types) {
    if (constraint.time_unit != TimeUnit::kNone && out->time_unit == TimeUnit::kNone) {
      out->time_unit = constraint.time_unit;
    }
    if (constraint.size_unit != SizeUnit::kNone && out->size_unit == SizeUnit::kNone) {
      out->size_unit = constraint.size_unit;
    }
  }
}

void SpexEngine::InferPermission(ParamState& state, ParamConstraints* out) {
  // A parameter is a permission mode iff its value reaches a
  // kPermissionMask API argument (chmod, umask, open's mode...) — the
  // semantic-type pass already found that evidence, so the policy anchors
  // on it rather than re-walking the calls.
  const SemanticTypeConstraint* semantic = out->FindSemantic(SemanticType::kPermissionMask);
  if (semantic == nullptr) {
    return;
  }
  PermissionConstraint constraint;  // Defaults: forbid 0002, require 0400.
  constraint.evidence_api = semantic->evidence_api;
  constraint.loc = semantic->loc;
  // Refinement from the code's own checks: a bitwise AND of the parameter
  // against an octal literal (`if (mode & 022) reject(...)`) names the
  // bits the target itself treats as dangerous. Only the group/other
  // *write* bits of such masks are folded in — inspecting read bits is
  // normalization, not policy.
  const ParamDataflow& df = state.dataflow;
  for (const TransformUse& use : df.transforms) {
    if (use.binop->bin_op() != IrBinOp::kAnd || use.other == nullptr ||
        use.other->value_kind() != ValueKind::kConstantInt) {
      continue;
    }
    int64_t mask = use.other->constant_int();
    if (mask > 0 && mask <= 07777) {
      constraint.forbidden_bits |= static_cast<uint32_t>(mask) & 0022;
    }
  }
  out->permission = constraint;
}

void SpexEngine::InferRange(ParamState& state, ParamConstraints* out) {
  const ParamDataflow& df = state.dataflow;
  std::vector<InvalidCond> invalid_conds;
  bool any_silent = false;
  bool any_error = false;
  SourceLoc range_loc = state.mapping->loc;

  // Declared range from the mapping table (PostgreSQL-style config tables).
  if (state.mapping->table_min.has_value()) {
    invalid_conds.push_back({IrCmpPred::kLt, *state.mapping->table_min});
    any_error = true;  // Table-driven checking logs and rejects.
  }
  if (state.mapping->table_max.has_value()) {
    invalid_conds.push_back({IrCmpPred::kGt, *state.mapping->table_max});
    any_error = true;
  }

  // Comparisons against integer constants whose branch regions misbehave.
  for (const CmpUse& use : df.cmp_uses) {
    if (use.other->value_kind() != ValueKind::kConstantInt) {
      continue;
    }
    int64_t threshold = use.other->constant_int();
    IrCmpPred pred = NormalizePred(use.cmp->cmp_pred(), use.tainted_side);
    const Instruction* branch = BranchFor(use.cmp);
    if (branch == nullptr) {
      continue;
    }
    auto true_edge = EdgeTakenWhen(branch, use.cmp, 1);
    auto false_edge = EdgeTakenWhen(branch, use.cmp, 0);
    if (!true_edge.has_value() || !false_edge.has_value() || *true_edge == *false_edge) {
      continue;
    }
    const Function& fn = *branch->parent()->parent();
    const ControlDependence& cdeps = ControlDepsFor(fn);
    // Direct regions first: an else-if chain's nested reset must not be
    // attributed to the outer comparison. Fall back to the transitive
    // region only when the direct bodies show no signal at all.
    RegionBehavior when_true = region_analyzer_.Classify(
        region_analyzer_.DirectRegionBlocks(cdeps, fn, branch, *true_edge), df);
    RegionBehavior when_false = region_analyzer_.Classify(
        region_analyzer_.DirectRegionBlocks(cdeps, fn, branch, *false_edge), df);
    if (!when_true.IsInvalid() && !when_false.IsInvalid()) {
      when_true = region_analyzer_.Classify(
          region_analyzer_.RegionBlocks(cdeps, fn, branch, *true_edge), df);
      when_false = region_analyzer_.Classify(
          region_analyzer_.RegionBlocks(cdeps, fn, branch, *false_edge), df);
    }
    if (when_true.IsInvalid() && !when_false.IsInvalid()) {
      invalid_conds.push_back({pred, threshold});
      any_silent |= when_true.IsSilentReset();
      any_error |= !when_true.IsSilentReset();
      range_loc = use.cmp->loc();
    } else if (when_false.IsInvalid() && !when_true.IsInvalid()) {
      invalid_conds.push_back({NegateCmpPred(pred), threshold});
      any_silent |= when_false.IsSilentReset();
      any_error |= !when_false.IsSilentReset();
      range_loc = use.cmp->loc();
    }
  }

  // Switch on the parameter: enumerated integer values; everything else is
  // handled by the default arm.
  std::vector<int64_t> enum_ints;
  OutOfRangeBehavior switch_behavior = OutOfRangeBehavior::kUnknown;
  for (const Instruction* sw : df.switch_uses) {
    for (int64_t value : sw->switch_values()) {
      if (std::find(enum_ints.begin(), enum_ints.end(), value) == enum_ints.end()) {
        enum_ints.push_back(value);
      }
    }
    const Function& fn = *sw->parent()->parent();
    const ControlDependence& cdeps = ControlDepsFor(fn);
    RegionBehavior default_behavior =
        region_analyzer_.Classify(region_analyzer_.DirectRegionBlocks(cdeps, fn, sw, 0), df);
    if (!default_behavior.IsInvalid()) {
      default_behavior =
          region_analyzer_.Classify(region_analyzer_.RegionBlocks(cdeps, fn, sw, 0), df);
    }
    if (default_behavior.IsSilentReset()) {
      switch_behavior = OutOfRangeBehavior::kSilentReset;
    } else if (default_behavior.IsInvalid()) {
      switch_behavior = OutOfRangeBehavior::kError;
    }
    range_loc = sw->loc();
  }

  // String-compare chains: enumerated string values. Membership checks use
  // the set, but iteration follows call_arg_uses (program) order — a
  // pointer-ordered walk would make enum_strings' order, and therefore the
  // values the injection generator derives from it, vary run to run with
  // heap layout.
  std::vector<std::string> enum_strings;
  OutOfRangeBehavior string_behavior = OutOfRangeBehavior::kUnknown;
  std::set<const Instruction*> param_compare_calls;
  std::vector<const Instruction*> compare_order;
  for (const CallArgUse& use : df.call_arg_uses) {
    const ApiSpec* spec = apis_.Find(use.call->callee());
    if (spec != nullptr && spec->IsStringCompare() &&
        param_compare_calls.insert(use.call).second) {
      compare_order.push_back(use.call);
    }
  }
  for (const Instruction* call : compare_order) {
    const Value* literal = nullptr;
    for (const Value* operand : call->operands()) {
      if (operand->value_kind() == ValueKind::kConstantString) {
        literal = operand;
      }
    }
    if (literal == nullptr) {
      continue;
    }
    if (std::find(enum_strings.begin(), enum_strings.end(), literal->constant_string()) ==
        enum_strings.end()) {
      enum_strings.push_back(literal->constant_string());
    }
    // Behaviour of the no-match region — but only for the final compare of
    // an if/else-if chain (a region containing further compares on the same
    // parameter is just the next link of the chain).
    const Instruction* branch = BranchFor(call);
    if (branch == nullptr) {
      continue;
    }
    auto match_edge = EdgeTakenWhen(branch, call, 0);
    auto miss_edge_a = EdgeTakenWhen(branch, call, 1);
    auto miss_edge_b = EdgeTakenWhen(branch, call, -1);
    if (!match_edge.has_value() || !miss_edge_a.has_value() || miss_edge_a != miss_edge_b ||
        *match_edge == *miss_edge_a) {
      continue;
    }
    const Function& fn = *branch->parent()->parent();
    const ControlDependence& cdeps = ControlDepsFor(fn);
    auto miss_blocks = region_analyzer_.DirectRegionBlocks(cdeps, fn, branch, *miss_edge_a);
    bool chain_continues = false;
    for (const BasicBlock* block : miss_blocks) {
      for (const auto& instr : block->instructions()) {
        if (instr.get() != call && param_compare_calls.count(instr.get()) > 0) {
          chain_continues = true;
        }
      }
    }
    if (chain_continues) {
      continue;
    }
    RegionBehavior miss = region_analyzer_.Classify(miss_blocks, df);
    if (miss.IsSilentReset()) {
      string_behavior = OutOfRangeBehavior::kSilentReset;
    } else if (miss.IsInvalid()) {
      string_behavior = OutOfRangeBehavior::kError;
    }
    range_loc = call->loc();
  }

  // Assemble the constraint. Numeric intervals win if both exist (rare).
  if (!invalid_conds.empty()) {
    RangeConstraint range;
    range.is_enum = false;
    range.intervals = BuildIntervals(invalid_conds);
    range.out_of_range = any_error              ? OutOfRangeBehavior::kError
                         : any_silent           ? OutOfRangeBehavior::kSilentReset
                                                : OutOfRangeBehavior::kUnknown;
    range.loc = range_loc;
    out->range = std::move(range);
    return;
  }
  if (!enum_ints.empty()) {
    RangeConstraint range;
    range.is_enum = true;
    range.enum_ints = std::move(enum_ints);
    range.out_of_range = switch_behavior;
    range.loc = range_loc;
    out->range = std::move(range);
    return;
  }
  if (!enum_strings.empty()) {
    RangeConstraint range;
    range.is_enum = true;
    range.enum_strings = enum_strings;
    range.out_of_range = string_behavior;
    range.loc = range_loc;
    out->range = std::move(range);
    // A string parameter whose accepted values are all boolean words is a
    // boolean in disguise.
    bool all_boolean = true;
    for (const std::string& value : enum_strings) {
      all_boolean = all_boolean && IsBooleanWord(value);
    }
    if (all_boolean && !out->HasSemantic(SemanticType::kBoolean)) {
      SemanticTypeConstraint constraint;
      constraint.semantic = SemanticType::kBoolean;
      constraint.loc = range_loc;
      out->semantic_types.push_back(constraint);
    }
  }
}

void SpexEngine::CollectUsageSites(ParamState& state) {
  const ParamDataflow& df = state.dataflow;
  // "Usage" per the paper: branches, arithmetic, library-call arguments.
  // Passing to a module-defined function or assigning is not usage. Sites in
  // the parameter's own parsing function(s) are excluded so that the parse
  // path does not dilute control-dependency confidence.
  std::set<const Function*> parse_fns;
  for (const Value* seed : state.mapping->seeds.values) {
    if (seed->value_kind() == ValueKind::kArgument) {
      parse_fns.insert(static_cast<const Argument*>(seed)->parent());
    } else if (seed->value_kind() == ValueKind::kInstruction) {
      parse_fns.insert(static_cast<const Instruction*>(seed)->parent()->parent());
    }
  }
  auto in_parse_fn = [&parse_fns](const Instruction* instr) {
    return parse_fns.count(instr->parent()->parent()) > 0;
  };

  // Dedup via the set, but keep dataflow (program) order: usage_sites'
  // order decides which branch location a control-dep constraint reports
  // (first usage wins), and a pointer-ordered walk would make that vary
  // with heap layout across runs.
  std::set<const Instruction*> sites;
  std::vector<const Instruction*> ordered;
  auto add = [&sites, &ordered](const Instruction* site) {
    if (sites.insert(site).second) {
      ordered.push_back(site);
    }
  };
  for (const CmpUse& use : df.cmp_uses) {
    if (!in_parse_fn(use.cmp)) {
      add(use.cmp);
    }
  }
  for (const TransformUse& use : df.transforms) {
    if (!in_parse_fn(use.binop)) {
      add(use.binop);
    }
  }
  for (const CallArgUse& use : df.call_arg_uses) {
    const Function* callee = context_.FindFunction(use.call->callee());
    bool external = callee == nullptr || callee->IsDeclaration();
    if (external && !in_parse_fn(use.call)) {
      add(use.call);
    }
  }
  for (const Instruction* sw : df.switch_uses) {
    if (!in_parse_fn(sw)) {
      add(sw);
    }
  }
  state.usage_sites = std::move(ordered);
}

void SpexEngine::InferControlDeps(std::vector<ParamState>& states, ModuleConstraints* out) {
  struct Key {
    size_t master;
    IrCmpPred pred;
    int64_t value;
    bool operator<(const Key& other) const {
      return std::tie(master, pred, value) < std::tie(other.master, other.pred, other.value);
    }
  };

  for (size_t qi = 0; qi < states.size(); ++qi) {
    ParamState& q = states[qi];
    if (q.usage_sites.empty()) {
      continue;
    }
    std::map<Key, std::set<const Instruction*>> controlled;
    std::map<Key, SourceLoc> dep_locs;
    for (const Instruction* usage : q.usage_sites) {
      const Function& fn = *usage->parent()->parent();
      const ControlDependence& cdeps = ControlDepsFor(fn);
      for (const ControlDep& dep : cdeps.TransitiveDeps(usage->parent())) {
        if (dep.branch->instr_kind() != InstrKind::kCondBr) {
          continue;
        }
        const Value* condition = dep.branch->operand(0);
        if (condition->value_kind() != ValueKind::kInstruction) {
          continue;
        }
        const auto* cmp = static_cast<const Instruction*>(condition);
        if (cmp->instr_kind() != InstrKind::kCmp) {
          continue;
        }
        const Value* lhs = cmp->operand(0);
        const Value* rhs = cmp->operand(1);
        int tainted_side = -1;
        const Value* constant = nullptr;
        if (rhs->value_kind() == ValueKind::kConstantInt) {
          tainted_side = 0;
          constant = rhs;
        } else if (lhs->value_kind() == ValueKind::kConstantInt) {
          tainted_side = 1;
          constant = lhs;
        } else {
          continue;
        }
        const Value* param_side = tainted_side == 0 ? lhs : rhs;
        for (size_t pi : ParamsTainting(param_side)) {
          if (pi == qi) {
            continue;
          }
          IrCmpPred pred = NormalizePred(cmp->cmp_pred(), tainted_side);
          if (dep.successor_index == 1) {
            pred = NegateCmpPred(pred);
          }
          Key key{pi, pred, constant->constant_int()};
          controlled[key].insert(usage);
          dep_locs.emplace(key, dep.branch->loc());
        }
      }
    }
    for (const auto& [key, usages] : controlled) {
      double confidence =
          static_cast<double>(usages.size()) / static_cast<double>(q.usage_sites.size());
      if (confidence + 1e-9 < options_.confidence_threshold) {
        continue;
      }
      ControlDepConstraint constraint;
      constraint.master = states[key.master].mapping->name;
      constraint.dependent = q.mapping->name;
      constraint.pred = key.pred;
      constraint.value = key.value;
      constraint.confidence = confidence;
      constraint.loc = dep_locs[key];
      out->control_deps.push_back(std::move(constraint));
    }
  }
  std::sort(out->control_deps.begin(), out->control_deps.end(),
            [](const ControlDepConstraint& a, const ControlDepConstraint& b) {
              return std::tie(a.dependent, a.master, a.value) <
                     std::tie(b.dependent, b.master, b.value);
            });
}

void SpexEngine::InferValueRels(std::vector<ParamState>& states, ModuleConstraints* out) {
  std::set<std::tuple<std::string, std::string, IrCmpPred>> seen;

  auto emit = [&](std::string lhs, std::string rhs, IrCmpPred pred, bool transitive,
                  SourceLoc loc) {
    if (lhs == rhs) {
      return;
    }
    if (rhs < lhs) {
      std::swap(lhs, rhs);
      pred = SwapCmpPred(pred);
    }
    if (!seen.insert({lhs, rhs, pred}).second) {
      return;
    }
    ValueRelConstraint constraint;
    constraint.lhs = std::move(lhs);
    constraint.rhs = std::move(rhs);
    constraint.pred = pred;
    constraint.via_transitivity = transitive;
    constraint.loc = std::move(loc);
    out->value_rels.push_back(std::move(constraint));
  };

  // Direct comparisons between two parameters.
  for (size_t pi = 0; pi < states.size(); ++pi) {
    const ParamState& p = states[pi];
    for (const CmpUse& use : p.dataflow.cmp_uses) {
      for (size_t qi : ParamsTainting(use.other)) {
        if (qi == pi) {
          continue;
        }
        IrCmpPred pred = NormalizePred(use.cmp->cmp_pred(), use.tainted_side);
        // Validity: if the region guarded by the comparison misbehaves, the
        // valid relationship is the negation.
        const Instruction* branch = BranchFor(use.cmp);
        if (branch != nullptr) {
          auto true_edge = EdgeTakenWhen(branch, use.cmp, 1);
          auto false_edge = EdgeTakenWhen(branch, use.cmp, 0);
          if (true_edge.has_value() && false_edge.has_value() && *true_edge != *false_edge) {
            const Function& fn = *branch->parent()->parent();
            const ControlDependence& cdeps = ControlDepsFor(fn);
            RegionBehavior when_true = region_analyzer_.Classify(
                region_analyzer_.RegionBlocks(cdeps, fn, branch, *true_edge), p.dataflow);
            if (when_true.IsInvalid()) {
              pred = NegateCmpPred(pred);
            }
          }
        }
        emit(p.mapping->name, states[qi].mapping->name, pred, false, use.cmp->loc());
      }
    }
  }

  // One-hop transitivity: P <= X and X < Q (same intermediate value or two
  // loads of the same location) compose to P < Q.
  auto same_intermediate = [this](const Value* a, const Value* b) {
    if (a == b) {
      return true;
    }
    if (a->value_kind() != ValueKind::kInstruction ||
        b->value_kind() != ValueKind::kInstruction) {
      return false;
    }
    const auto* ia = static_cast<const Instruction*>(a);
    const auto* ib = static_cast<const Instruction*>(b);
    if (ia->instr_kind() != InstrKind::kLoad || ib->instr_kind() != InstrKind::kLoad) {
      return false;
    }
    auto la = context_.ResolveAddress(ia->operand(0));
    auto lb = context_.ResolveAddress(ib->operand(0));
    return la.has_value() && lb.has_value() && *la == *lb;
  };
  auto compose = [](IrCmpPred a, IrCmpPred b) -> std::optional<IrCmpPred> {
    auto is_less = [](IrCmpPred p) { return p == IrCmpPred::kLt || p == IrCmpPred::kLe; };
    auto is_greater = [](IrCmpPred p) { return p == IrCmpPred::kGt || p == IrCmpPred::kGe; };
    if (a == IrCmpPred::kEq) {
      return b;
    }
    if (b == IrCmpPred::kEq) {
      return a;
    }
    if (is_less(a) && is_less(b)) {
      return (a == IrCmpPred::kLe && b == IrCmpPred::kLe) ? IrCmpPred::kLe : IrCmpPred::kLt;
    }
    if (is_greater(a) && is_greater(b)) {
      return (a == IrCmpPred::kGe && b == IrCmpPred::kGe) ? IrCmpPred::kGe : IrCmpPred::kGt;
    }
    return std::nullopt;
  };

  for (size_t pi = 0; pi < states.size(); ++pi) {
    const ParamState& p = states[pi];
    for (const CmpUse& use_p : p.dataflow.cmp_uses) {
      if (use_p.other->value_kind() == ValueKind::kConstantInt ||
          !ParamsTainting(use_p.other).empty()) {
        continue;  // Not an intermediate: constant or another parameter.
      }
      IrCmpPred p_rel_x = NormalizePred(use_p.cmp->cmp_pred(), use_p.tainted_side);
      for (size_t qi = 0; qi < states.size(); ++qi) {
        if (qi == pi) {
          continue;
        }
        const ParamState& q = states[qi];
        for (const CmpUse& use_q : q.dataflow.cmp_uses) {
          if (!same_intermediate(use_p.other, use_q.other)) {
            continue;
          }
          // Q rel X, flipped to X rel Q for composition.
          IrCmpPred x_rel_q =
              SwapCmpPred(NormalizePred(use_q.cmp->cmp_pred(), use_q.tainted_side));
          auto composed = compose(p_rel_x, x_rel_q);
          if (composed.has_value()) {
            emit(p.mapping->name, q.mapping->name, *composed, true, use_p.cmp->loc());
          }
        }
      }
    }
  }
  std::sort(out->value_rels.begin(), out->value_rels.end(),
            [](const ValueRelConstraint& a, const ValueRelConstraint& b) {
              return std::tie(a.lhs, a.rhs, a.pred) < std::tie(b.lhs, b.rhs, b.pred);
            });
}

}  // namespace spex
