// spexcheckd — SPEX config checking as a long-running local service.
//
// Wraps spex::CheckServer (src/serve/server.h) in a daemon: parse flags,
// bind 127.0.0.1, serve until SIGTERM/SIGINT, then drain gracefully. The
// fault-containment story lives in the server; this binary owns only the
// pieces a process must: flag parsing, signal handling, and the exit
// status. See docs/operations.md for running it in anger.
//
//   spexcheckd --port 8080 --workers 8
//   curl -sS 'http://127.0.0.1:8080/check?target=squid' --data-binary @my.conf
//
// Signals: SIGTERM and SIGINT both trigger one graceful drain (stop
// accepting, finish in-flight work under --drain-deadline-ms, exit 0). A
// second signal during the drain is ignored — the drain deadline, not an
// operator's impatience, bounds shutdown.
//
// Fault injection: the SPEXCHECKD_FAULTS environment variable arms the
// FaultInjector (e.g. "slow_replay:50,cancel_midway"). Disarmed (unset),
// every hook is a no-op; the soak job in CI runs with it armed.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "src/serve/server.h"

namespace spex {
namespace {

constexpr const char* kUsage =
    R"(usage: spexcheckd [options]

Serve SPEX config checks over loopback HTTP. Endpoints:
  GET  /healthz               liveness ("ok", or 503 "draining")
  GET  /statz                 JSON counters
  POST /check?target=NAME     check one config (body = config text, or a
                              {"files":[{"name":...,"text":...},...]} JSON
                              object naming a multi-file include tree; the
                              set is flattened last-wins before checking)
  POST /batch?target=NAME     check many (body framed by "=== <name>" lines)

options:
  --port <n>                  listen port on 127.0.0.1 (default: 8080; 0 = ephemeral)
  --workers <n>               request worker threads (default: 4)
  --max-connections <n>       open connections the event loop holds at once
                              (reading, queued, served, idle keep-alive);
                              beyond this, arrivals are shed 503 (default: 256)
  --queue-capacity <n>        complete parsed requests pending between the
                              event loop and workers before shedding 503
                              (default: 64)
  --max-inflight-replays <n>  concurrent dynamic replays; beyond this a
                              dynamic request degrades to static (default: 2)
  --per-target-replay-budget <n>
                              replay token bucket per hot target (capacity n,
                              refill n/s); an exhausted target degrades to
                              static while others keep full dynamic service
                              (default: 0 = unlimited)
  --max-body-kb <n>           largest accepted request body (default: 1024)
  --deadline-ms <n>           default + maximum per-request budget; 0 disables
                              deadlines entirely (default: 2000)
  --read-timeout-ms <n>       socket read timeout, the slow-loris guard (default: 2000)
  --drain-deadline-ms <n>     how long SIGTERM lets in-flight work finish
                              before cancelling it cooperatively (default: 5000)
  --target-capacity <n>       hot targets kept loaded, LRU beyond (default: 4)
  --store <dir>               persistent per-target verdict stores
                              (<dir>/<target>.vst); verdicts survive
                              evictions and restarts (default: disabled)
  --keepalive-max-requests <n> requests one keep-alive connection may carry
                              before the server closes it (default: 100)
  --keepalive-idle-ms <n>     idle bound between requests on a reused
                              connection (default: 2000)
  --help                      this message

environment:
  SPEXCHECKD_FAULTS           arm fault injection (slow_replay[:ms],
                              alloc_pressure[:mb], cancel_midway[:polls])

exit codes: 0 = clean drain after a signal, 2 = usage or startup error
)";

// Signal handlers may only touch lock-free sig_atomic storage; the main
// thread polls this and runs the actual (not async-signal-safe) drain.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void OnShutdownSignal(int) { g_shutdown_requested = 1; }

bool ParseSizeFlag(const char* flag, const char* value, long min, long max, long* out,
                   std::string* error) {
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < min || parsed > max) {
    *error = std::string(flag) + " wants an integer in [" + std::to_string(min) + ", " +
             std::to_string(max) + "], got: " + value;
    return false;
  }
  *out = parsed;
  return true;
}

int Run(int argc, char** argv) {
  ServerOptions options;
  options.port = 8080;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string error;
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "spexcheckd: " << flag << " requires an argument\n" << kUsage;
        return nullptr;
      }
      return argv[++i];
    };
    auto take = [&](const char* flag, long min, long max, auto assign) -> bool {
      const char* value = next(flag);
      if (value == nullptr) {
        return false;
      }
      long parsed = 0;
      if (!ParseSizeFlag(flag, value, min, max, &parsed, &error)) {
        std::cerr << "spexcheckd: " << error << "\n" << kUsage;
        return false;
      }
      assign(parsed);
      return true;
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--port") {
      ok = take("--port", 0, 65535, [&](long v) { options.port = static_cast<uint16_t>(v); });
    } else if (arg == "--workers") {
      ok = take("--workers", 1, 256, [&](long v) { options.num_workers = v; });
    } else if (arg == "--max-connections") {
      ok = take("--max-connections", 1, 1 << 20,
                [&](long v) { options.max_connections = static_cast<size_t>(v); });
    } else if (arg == "--queue-capacity") {
      ok = take("--queue-capacity", 1, 65536, [&](long v) { options.queue_capacity = v; });
    } else if (arg == "--max-inflight-replays") {
      ok = take("--max-inflight-replays", 1, 1024,
                [&](long v) { options.max_inflight_replays = v; });
    } else if (arg == "--per-target-replay-budget") {
      ok = take("--per-target-replay-budget", 0, 1 << 20,
                [&](long v) { options.per_target_replay_budget = static_cast<size_t>(v); });
    } else if (arg == "--max-body-kb") {
      ok = take("--max-body-kb", 1, 1 << 20,
                [&](long v) { options.max_body_bytes = static_cast<size_t>(v) * 1024; });
    } else if (arg == "--deadline-ms") {
      ok = take("--deadline-ms", 0, 86400000,
                [&](long v) { options.default_deadline = std::chrono::milliseconds(v); });
    } else if (arg == "--read-timeout-ms") {
      ok = take("--read-timeout-ms", 0, 86400000,
                [&](long v) { options.read_timeout = std::chrono::milliseconds(v); });
    } else if (arg == "--drain-deadline-ms") {
      ok = take("--drain-deadline-ms", 0, 86400000,
                [&](long v) { options.drain_deadline = std::chrono::milliseconds(v); });
    } else if (arg == "--target-capacity") {
      ok = take("--target-capacity", 1, 64, [&](long v) { options.target_capacity = v; });
    } else if (arg == "--store") {
      const char* value = next("--store");
      if (value == nullptr) {
        return 2;
      }
      options.store_dir = value;
    } else if (arg == "--keepalive-max-requests") {
      ok = take("--keepalive-max-requests", 1, 1 << 20,
                [&](long v) { options.keepalive_max_requests = static_cast<size_t>(v); });
    } else if (arg == "--keepalive-idle-ms") {
      ok = take("--keepalive-idle-ms", 0, 86400000,
                [&](long v) { options.keepalive_idle_timeout = std::chrono::milliseconds(v); });
    } else {
      std::cerr << "spexcheckd: unknown flag: " << arg << "\n" << kUsage;
      return 2;
    }
    if (!ok) {
      return 2;
    }
  }

  options.faults = FaultInjector::FromEnv();
  if (options.faults.armed()) {
    std::cerr << "spexcheckd: FAULT INJECTION ARMED: " << options.faults.Describe() << "\n";
  }

  CheckServer server(std::move(options));
  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "spexcheckd: startup failed: " << started.ToString() << "\n";
    return 2;
  }
  std::cerr << "spexcheckd: serving on 127.0.0.1:" << server.port() << "\n";

  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGPIPE, SIG_IGN);  // Client disconnects are per-request events.
  while (g_shutdown_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cerr << "spexcheckd: draining...\n";
  server.Shutdown();
  server.Join();
  ServerStats stats = server.stats();
  std::cerr << "spexcheckd: drained; accepted=" << stats.accepted
            << " served_ok=" << stats.served_ok << " shed=" << stats.shed
            << " degraded=" << stats.degraded << " deadline_exceeded=" << stats.deadline_exceeded
            << " cancelled=" << stats.cancelled << " internal_errors=" << stats.internal_errors
            << "\n";
  return 0;
}

}  // namespace
}  // namespace spex

int main(int argc, char** argv) { return spex::Run(argc, argv); }
