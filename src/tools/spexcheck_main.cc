// spexcheck — fleet-scale configuration checking from the command line.
//
// The first end-user-runnable binary of the reproduction: load a corpus
// target, glob a directory of user configs, run one batch check
// (Target::CheckConfigBatch — unique mistakes replay once, verdicts fan
// out), and report per config as text or JSON-lines. See docs/api.md
// ("spexcheck CLI reference") for flags, exit codes and the JSONL schema.
//
//   spexcheck --target squid configs/                 # every *.conf in configs/
//   spexcheck --target mysql --format jsonl my.cnf
//   spexcheck --target squid --dump-template > base.conf
//
// Exit codes: 0 = every config clean, 1 = at least one violation or
// per-config error, 2 = usage / load error, or NO config could be checked
// at all. A single unreadable or unparseable file inside a directory scan
// is contained as a per-config error record — it never aborts the rest of
// the fleet.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/corpus/spec.h"
#include "src/support/verdict_store.h"

namespace spex {
namespace {

namespace fs = std::filesystem;

constexpr const char* kUsage =
    R"(usage: spexcheck --target <name> [options] <config-file-or-dir>...

Check a fleet of configuration files against a corpus target and report,
per file, which inferred constraint each line violates and (in dynamic
mode) what the system will actually do with the setting.

options:
  --target <name>      corpus target to check against (see --list-targets)
  --mode <m>           static | dynamic (default: dynamic)
  --threads <n>        batch shards: 1 = serial, 0 = hardware (default: 0)
  --format <f>         text | jsonl (default: text)
  --pattern <glob>     filename filter for directories, * and ? wildcards
                       (default: *.conf)
  --store <path>       persistent verdict store: known verdicts are served
                       from disk instead of replayed, fresh ones appended —
                       a re-check of an unchanged fleet replays nothing
  --dump-template      print the target's known-good template config and exit
  --list-targets       print available corpus target names and exit
  --help               this message

exit codes: 0 = all configs clean, 1 = violations or per-config errors,
            2 = usage/load error or no config checked
)";

// Minimal * / ? glob over filenames (no character classes, no path
// separators) — enough for `--pattern '*.conf'` without regex machinery.
// Iterative two-pointer match: on mismatch, retry from the last '*' with
// one more character consumed — O(pattern * text), so a hostile
// many-star pattern cannot pin the CPU the way naive backtracking would.
bool GlobMatch(const std::string& pattern, const std::string& text) {
  size_t p = 0;
  size_t t = 0;
  size_t star = std::string::npos;   // Position of the last '*' seen.
  size_t star_t = 0;                 // Text position that star is matching from.
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct CliOptions {
  std::string target;
  CheckMode mode = CheckMode::kDynamic;
  int threads = 0;
  bool jsonl = false;
  std::string pattern = "*.conf";
  std::string store_path;
  bool dump_template = false;
  bool list_targets = false;
  std::vector<std::string> paths;
};

// A config that could not be checked at all — unreadable on disk, or
// rejected by the batch layer's admission validation. Reported alongside
// the real reports so one bad file never hides the rest of the fleet.
struct ConfigError {
  std::string name;
  std::string message;
};

// One JSON line per config as its report streams in, plus a final
// summary line — the format a fleet pipeline tails.
class JsonlWriter : public BatchObserver {
 public:
  void OnConfigError(const ConfigError& error) {
    std::cout << "{\"config\":\"" << JsonEscape(error.name) << "\",\"error\":\""
              << JsonEscape(error.message) << "\"}\n";
  }

  void OnConfigChecked(size_t index, const ConfigReport& report) override {
    std::ostringstream line;
    line << "{\"config\":\"" << JsonEscape(report.name) << "\",\"index\":" << index
         << ",\"suspects\":" << report.suspects
         << ",\"shared_replays\":" << report.shared_replays;
    if (!report.status.ok()) {
      line << ",\"status\":\"" << StatusCodeName(report.status.code()) << "\",\"error\":\""
           << JsonEscape(report.status.message()) << "\"";
    }
    line << ",\"violations\":[";
    for (size_t i = 0; i < report.violations.size(); ++i) {
      const Violation& v = report.violations[i];
      if (i != 0) {
        line << ",";
      }
      line << "{\"category\":\"" << ViolationCategoryName(v.category) << "\",\"param\":\""
           << JsonEscape(v.param) << "\",\"value\":\"" << JsonEscape(v.value)
           << "\",\"line\":" << v.line << ",\"message\":\"" << JsonEscape(v.message) << "\"";
      if (v.reaction.has_value()) {
        line << ",\"reaction\":\"" << ReactionCategoryName(*v.reaction)
             << "\",\"vulnerability\":" << (IsVulnerability(*v.reaction) ? "true" : "false")
             << ",\"prediction\":\"" << JsonEscape(v.prediction) << "\"";
      }
      line << "}";
    }
    line << "]}";
    std::cout << line.str() << "\n";
  }

  void OnBatchEnd(const BatchSummary& summary) override {
    std::cout << "{\"summary\":{\"configs_checked\":" << summary.configs_checked
              << ",\"configs_with_errors\":" << summary.configs_with_errors
              << ",\"configs_with_violations\":" << summary.configs_with_violations
              << ",\"total_violations\":" << summary.total_violations
              << ",\"total_suspects\":" << summary.total_suspects
              << ",\"unique_replays\":" << summary.unique_replays << ",\"dedup_ratio\":"
              << summary.DedupRatio() << ",\"store_hits\":" << summary.store_hits
              << ",\"store_misses\":" << summary.store_misses
              << ",\"store_appends\":" << summary.store_appends << "}}\n";
  }
};

class TextWriter : public BatchObserver {
 public:
  void OnConfigError(const ConfigError& error) {
    std::cout << error.name << ": ERROR " << error.message << "\n";
  }

  void OnConfigChecked(size_t, const ConfigReport& report) override {
    if (!report.status.ok()) {
      std::cout << report.name << ": ERROR " << report.status.message() << "\n";
      return;
    }
    if (report.violations.empty()) {
      std::cout << report.name << ": OK\n";
      return;
    }
    std::cout << report.name << ": " << report.violations.size() << " violation"
              << (report.violations.size() == 1 ? "" : "s") << "\n";
    for (const Violation& violation : report.violations) {
      std::cout << "  " << violation.ToString() << "\n";
    }
  }

  void OnBatchEnd(const BatchSummary& summary) override {
    std::cout << "checked " << summary.configs_checked << " config(s): "
              << summary.configs_with_violations << " with violations, "
              << summary.total_violations << " violation(s) total";
    if (summary.configs_with_errors != 0) {
      std::cout << "; " << summary.configs_with_errors << " with errors";
    }
    if (summary.total_suspects != 0) {
      std::cout << "; " << summary.total_suspects << " suspect setting(s), "
                << summary.unique_replays << " unique replay(s) (dedup "
                << static_cast<int>(summary.DedupRatio() * 100.0) << "%)";
    }
    if (summary.store_hits != 0 || summary.store_appends != 0) {
      std::cout << "; verdict store: " << summary.store_hits << " hit(s), "
                << summary.store_appends << " appended";
    }
    std::cout << "\n";
  }
};

int Fail(const std::string& message) {
  std::cerr << "spexcheck: " << message << "\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* options, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        *error = std::string(flag) + " requires an argument";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else if (arg == "--target") {
      const char* value = next("--target");
      if (value == nullptr) return false;
      options->target = value;
    } else if (arg == "--mode") {
      const char* value = next("--mode");
      if (value == nullptr) return false;
      if (std::strcmp(value, "static") == 0) {
        options->mode = CheckMode::kStatic;
      } else if (std::strcmp(value, "dynamic") == 0) {
        options->mode = CheckMode::kDynamic;
      } else {
        *error = "unknown --mode (want static|dynamic): " + std::string(value);
        return false;
      }
    } else if (arg == "--threads") {
      const char* value = next("--threads");
      if (value == nullptr) return false;
      char* end = nullptr;
      long threads = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || threads < 0) {
        *error = "--threads wants a non-negative integer, got: " + std::string(value);
        return false;
      }
      options->threads = static_cast<int>(threads);
    } else if (arg == "--format") {
      const char* value = next("--format");
      if (value == nullptr) return false;
      if (std::strcmp(value, "text") == 0) {
        options->jsonl = false;
      } else if (std::strcmp(value, "jsonl") == 0) {
        options->jsonl = true;
      } else {
        *error = "unknown --format (want text|jsonl): " + std::string(value);
        return false;
      }
    } else if (arg == "--pattern") {
      const char* value = next("--pattern");
      if (value == nullptr) return false;
      options->pattern = value;
    } else if (arg == "--store") {
      const char* value = next("--store");
      if (value == nullptr) return false;
      options->store_path = value;
    } else if (arg == "--dump-template") {
      options->dump_template = true;
    } else if (arg == "--list-targets") {
      options->list_targets = true;
    } else if (!arg.empty() && arg[0] == '-') {
      *error = "unknown flag: " + arg;
      return false;
    } else {
      options->paths.push_back(std::move(arg));
    }
  }
  return true;
}

// Expands files and directories into the config list. Directory scans are
// non-recursive, filtered by `pattern`, sorted by name so report order
// (and the JSONL stream) is stable across filesystems.
//
// Containment boundary: a file that cannot be READ (vanished mid-scan,
// permission denied) becomes a per-config error record in `errors` and
// the rest of the fleet is still checked. Only structural problems with
// the invocation itself — a path that does not exist, an unlistable
// directory, a glob matching nothing — fail the whole run.
bool CollectConfigs(const CliOptions& options, std::vector<ConfigInput>* configs,
                    std::vector<ConfigError>* errors, std::string* error) {
  std::vector<std::string> files;
  for (const std::string& path : options.paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      // Non-throwing iteration throughout: a file vanishing mid-scan (or
      // turning stat-inaccessible) must exit 2, not std::terminate.
      std::vector<std::string> in_dir;
      fs::directory_iterator it(path, ec);
      for (; !ec && it != fs::directory_iterator(); it.increment(ec)) {
        std::error_code entry_ec;
        if (it->is_regular_file(entry_ec) &&
            GlobMatch(options.pattern, it->path().filename())) {
          in_dir.push_back(it->path().string());
        }
      }
      if (ec) {
        *error = "cannot read directory " + path + ": " + ec.message();
        return false;
      }
      std::sort(in_dir.begin(), in_dir.end());
      if (in_dir.empty()) {
        *error = "no files matching '" + options.pattern + "' in " + path;
        return false;
      }
      files.insert(files.end(), in_dir.begin(), in_dir.end());
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      *error = "no such file or directory: " + path;
      return false;
    }
  }
  configs->reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream stream(file, std::ios::binary);
    if (!stream) {
      errors->push_back(ConfigError{file, "cannot read file"});
      continue;
    }
    std::ostringstream content;
    content << stream.rdbuf();
    if (stream.bad()) {
      errors->push_back(ConfigError{file, "read failed mid-file"});
      continue;
    }
    configs->push_back(ConfigInput{file, content.str()});
  }
  return true;
}

int Run(int argc, char** argv) {
  CliOptions options;
  std::string error;
  if (!ParseArgs(argc, argv, &options, &error)) {
    std::cerr << "spexcheck: " << error << "\n" << kUsage;
    return 2;
  }
  if (options.list_targets) {
    for (const TargetSpec& spec : EvaluatedTargets()) {
      std::cout << spec.name << "\t" << spec.display_name << "\n";
    }
    return 0;
  }
  if (options.target.empty()) {
    std::cerr << "spexcheck: --target is required\n" << kUsage;
    return 2;
  }
  // FindTarget aborts on unknown names; validate first for a clean exit.
  std::vector<TargetSpec> known = EvaluatedTargets();
  if (std::none_of(known.begin(), known.end(),
                   [&](const TargetSpec& spec) { return spec.name == options.target; })) {
    return Fail("unknown target '" + options.target + "' (try --list-targets)");
  }

  Session session;
  Target* target = session.LoadTarget(options.target);
  if (target == nullptr) {
    return Fail("loading target failed:\n" + session.RenderDiagnostics());
  }
  if (!options.store_path.empty()) {
    // Open never hard-fails: a corrupt/locked/unwritable store degrades to
    // checking without one (warn so the operator knows re-checks stay cold).
    Status store_status;
    std::shared_ptr<VerdictStore> store =
        VerdictStore::Open(options.store_path, {}, &store_status);
    if (!store_status.ok()) {
      std::cerr << "spexcheck: verdict store degraded: " << store_status.message() << "\n";
    }
    target->AttachVerdictStore(std::move(store));
  }
  if (options.dump_template) {
    std::cout << target->analysis().bundle.template_config;
    return 0;
  }
  if (options.paths.empty()) {
    std::cerr << "spexcheck: no config files or directories given\n" << kUsage;
    return 2;
  }
  std::vector<ConfigInput> configs;
  std::vector<ConfigError> read_errors;
  if (!CollectConfigs(options, &configs, &read_errors, &error)) {
    return Fail(error);
  }

  JsonlWriter jsonl;
  TextWriter text;
  for (const ConfigError& record : read_errors) {
    std::cerr << "spexcheck: " << record.name << ": " << record.message << "\n";
    if (options.jsonl) {
      jsonl.OnConfigError(record);
    } else {
      text.OnConfigError(record);
    }
  }
  if (configs.empty()) {
    // Exit 2 is reserved for "nothing was checked at all" — if even one
    // config made it through, the run reports what it found instead.
    return Fail("no config could be checked (" + std::to_string(read_errors.size()) +
                " unreadable)");
  }

  BatchOptions batch;
  batch.check.mode = options.mode;
  batch.num_threads = options.threads;
  BatchObserver* writer = options.jsonl ? static_cast<BatchObserver*>(&jsonl) : &text;
  BatchSummary summary = target->CheckConfigBatch(configs, batch, writer);
  bool any_error = !read_errors.empty() || summary.configs_with_errors != 0;
  return summary.total_violations == 0 && !any_error ? 0 : 1;
}

}  // namespace
}  // namespace spex

int main(int argc, char** argv) { return spex::Run(argc, argv); }
