// spexcheck — fleet-scale configuration checking from the command line.
//
// The first end-user-runnable binary of the reproduction: load a target
// (corpus name or MiniC source + annotations), glob a directory of user
// configs, run one batch check (Target::CheckConfigBatch — unique
// mistakes replay once, verdicts fan out), and report per config as text
// or JSON-lines. With --matrix, the same fleet is checked against every
// listed version of the target (Session::CheckMatrix) and each config's
// transition between adjacent versions is classified — "which upgrade
// breaks whose config". See docs/api.md ("spexcheck CLI reference") for
// flags, exit codes and the JSONL schema.
//
//   spexcheck --target squid configs/                 # every *.conf in configs/
//   spexcheck --target mysql --format jsonl my.cnf
//   spexcheck --source server.c --annotations server.ann --template base.conf my.conf
//   spexcheck --matrix --source v1.c --annotations s.ann \
//             --source v2.c --annotations s.ann configs/  # upgrade report
//   spexcheck --target squid --dump-template > base.conf
//
// Exit codes: 0 = every config clean (--matrix: no regressions), 1 = at
// least one violation or per-config error (--matrix: at least one
// regression), 2 = usage / load error, or NO config could be checked at
// all. A single unreadable or unparseable file inside a directory scan is
// contained as a per-config error record — it never aborts the rest of
// the fleet.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <set>

#include "src/api/config_set.h"
#include "src/api/session.h"
#include "src/corpus/spec.h"
#include "src/support/verdict_store.h"

namespace spex {
namespace {

namespace fs = std::filesystem;

constexpr const char* kUsage =
    R"(usage: spexcheck --target <name> [options] <config-file-or-dir>...
       spexcheck --source <f> --annotations <f> [--template <f>] [options] <configs>...
       spexcheck --matrix (--target <name> | --source <f> ...)... [options] <configs>...

Check a fleet of configuration files against a target and report, per
file, which inferred constraint each line violates and (in dynamic mode)
what the system will actually do with the setting. With --matrix, check
the fleet against every listed version of the target and classify each
config's transition between adjacent versions — regression, fix,
changed-reaction or stable ("which upgrade breaks whose config").

target selection (each --target or --source starts a version; repeatable
with --matrix, exactly one otherwise):
  --target <name>      corpus target to check against (see --list-targets)
  --source <file>      target from MiniC source instead of the corpus
  --annotations <file> mapping annotations for the preceding --source
  --template <file>    known-good template config for the preceding --source
                       (required for dynamic replay; optional for static)
  --dialect <d>        config dialect for the preceding --source:
                       key=value | key-value (default: key=value)
  --label <name>       report label for the preceding version

options:
  --matrix             version-matrix mode: check the fleet against every
                       listed version, diff adjacent columns (text: grid +
                       transitions; jsonl: cell/version/diff records)
  --mode <m>           static | dynamic (default: dynamic)
  --threads <n>        batch shards: 1 = serial, 0 = hardware (default: 0)
  --format <f>         text | jsonl (default: text)
  --pattern <glob>     filename filter for directories, * and ? wildcards
                       (default: *.conf)
  --include-roots <dir> multi-file mode (repeatable): every file matching
                       --pattern directly in <dir> is the root of a config
                       *set* — its include/include_dir directives are
                       resolved (relative to the including file), later
                       assignments override earlier ones, and the flattened
                       effective config is checked. Violations point at the
                       winning assignment's file:line; missing includes and
                       include cycles are contained per set as config_set
                       error records (exit 1). Exit 2 only when no set
                       could be resolved at all. Not available with --matrix.
  --store <path>       persistent verdict store: known verdicts are served
                       from disk instead of replayed, fresh ones appended —
                       a re-check of an unchanged fleet replays nothing
                       (--matrix: each version gets its own scope, so a
                       version bump re-checks only the bumped column)
  --dump-template      print the target's known-good template config and exit
  --list-targets       print available corpus target names and exit
  --help               this message

exit codes: 0 = all configs clean (--matrix: no regressions),
            1 = violations or per-config errors (--matrix: a regression),
            2 = usage/load error or no config checked
)";

// Minimal * / ? glob over filenames (no character classes, no path
// separators) — enough for `--pattern '*.conf'` without regex machinery.
// Iterative two-pointer match: on mismatch, retry from the last '*' with
// one more character consumed — O(pattern * text), so a hostile
// many-star pattern cannot pin the CPU the way naive backtracking would.
bool GlobMatch(const std::string& pattern, const std::string& text) {
  size_t p = 0;
  size_t t = 0;
  size_t star = std::string::npos;   // Position of the last '*' seen.
  size_t star_t = 0;                 // Text position that star is matching from.
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// One version of the target as named on the command line — file paths,
// not contents; BuildVersions reads them.
struct VersionArg {
  std::string label;
  std::string corpus;
  std::string source_path;
  std::string annotations_path;
  std::string template_path;
  ConfigDialect dialect = ConfigDialect::kKeyEqualsValue;
};

struct CliOptions {
  bool matrix = false;
  std::vector<VersionArg> versions;
  CheckMode mode = CheckMode::kDynamic;
  int threads = 0;
  bool jsonl = false;
  std::string pattern = "*.conf";
  std::vector<std::string> include_roots;
  std::string store_path;
  bool dump_template = false;
  bool list_targets = false;
  std::vector<std::string> paths;
};

// A config that could not be checked at all — unreadable on disk, or
// rejected by the batch layer's admission validation. Reported alongside
// the real reports so one bad file never hides the rest of the fleet.
struct ConfigError {
  std::string name;
  std::string message;
};

// The violation object shared by every JSONL record that carries
// verdicts (per-config lines and matrix cell records).
void AppendViolationJson(std::ostream& out, const Violation& v) {
  out << "{\"category\":\"" << ViolationCategoryName(v.category) << "\",\"param\":\""
      << JsonEscape(v.param) << "\",\"value\":\"" << JsonEscape(v.value) << "\",\"file\":\""
      << JsonEscape(v.file) << "\",\"line\":" << v.line << ",\"message\":\""
      << JsonEscape(v.message) << "\"";
  if (!v.override_note.empty()) {
    out << ",\"note\":\"" << JsonEscape(v.override_note) << "\"";
  }
  if (v.reaction.has_value()) {
    out << ",\"reaction\":\"" << ReactionCategoryName(*v.reaction)
        << "\",\"vulnerability\":" << (IsVulnerability(*v.reaction) ? "true" : "false")
        << ",\"prediction\":\"" << JsonEscape(v.prediction) << "\"";
  }
  out << "}";
}

void AppendReportJson(std::ostream& out, size_t index, const ConfigReport& report) {
  out << "\"config\":\"" << JsonEscape(report.name) << "\",\"index\":" << index
      << ",\"suspects\":" << report.suspects
      << ",\"shared_replays\":" << report.shared_replays;
  if (!report.status.ok()) {
    out << ",\"status\":\"" << StatusCodeName(report.status.code()) << "\",\"error\":\""
        << JsonEscape(report.status.message()) << "\"";
  }
  out << ",\"violations\":[";
  for (size_t i = 0; i < report.violations.size(); ++i) {
    if (i != 0) {
      out << ",";
    }
    AppendViolationJson(out, report.violations[i]);
  }
  out << "]";
}

// One JSON line per config as its report streams in, plus a final
// summary line — the format a fleet pipeline tails.
class JsonlWriter : public BatchObserver {
 public:
  void OnConfigError(const ConfigError& error) {
    std::cout << "{\"config\":\"" << JsonEscape(error.name) << "\",\"error\":\""
              << JsonEscape(error.message) << "\"}\n";
  }

  // One record per config set ahead of its report: how many files the
  // include tree resolved and every contained resolution fault.
  void OnConfigSet(const ResolvedConfigSet& set) {
    std::cout << "{\"type\":\"config_set\",\"config\":\"" << JsonEscape(set.name)
              << "\",\"files\":" << set.files_resolved << ",\"errors\":[";
    for (size_t i = 0; i < set.errors.size(); ++i) {
      const ConfigSetError& error = set.errors[i];
      std::cout << (i == 0 ? "" : ",") << "{\"kind\":\"" << ConfigSetErrorKindName(error.kind)
                << "\",\"file\":\"" << JsonEscape(error.file) << "\",\"line\":" << error.line
                << ",\"target\":\"" << JsonEscape(error.target) << "\"}";
    }
    std::cout << "]}\n";
  }

  void OnConfigChecked(size_t index, const ConfigReport& report) override {
    std::ostringstream line;
    line << "{";
    AppendReportJson(line, index, report);
    line << "}";
    std::cout << line.str() << "\n";
  }

  void OnBatchEnd(const BatchSummary& summary) override {
    std::cout << "{\"summary\":{\"configs_checked\":" << summary.configs_checked
              << ",\"configs_with_errors\":" << summary.configs_with_errors
              << ",\"configs_with_violations\":" << summary.configs_with_violations
              << ",\"total_violations\":" << summary.total_violations
              << ",\"total_suspects\":" << summary.total_suspects
              << ",\"unique_replays\":" << summary.unique_replays << ",\"dedup_ratio\":"
              << summary.DedupRatio() << ",\"store_hits\":" << summary.store_hits
              << ",\"store_misses\":" << summary.store_misses
              << ",\"store_appends\":" << summary.store_appends << "}}\n";
  }
};

class TextWriter : public BatchObserver {
 public:
  void OnConfigError(const ConfigError& error) {
    std::cout << error.name << ": ERROR " << error.message << "\n";
  }

  void OnConfigSet(const ResolvedConfigSet& set) {
    for (const ConfigSetError& error : set.errors) {
      std::cout << set.name << ": include error: " << error.ToString() << "\n";
    }
  }

  void OnConfigChecked(size_t, const ConfigReport& report) override {
    if (!report.status.ok()) {
      std::cout << report.name << ": ERROR " << report.status.message() << "\n";
      return;
    }
    if (report.violations.empty()) {
      std::cout << report.name << ": OK\n";
      return;
    }
    std::cout << report.name << ": " << report.violations.size() << " violation"
              << (report.violations.size() == 1 ? "" : "s") << "\n";
    for (const Violation& violation : report.violations) {
      std::cout << "  " << violation.ToString() << "\n";
    }
  }

  void OnBatchEnd(const BatchSummary& summary) override {
    std::cout << "checked " << summary.configs_checked << " config(s): "
              << summary.configs_with_violations << " with violations, "
              << summary.total_violations << " violation(s) total";
    if (summary.configs_with_errors != 0) {
      std::cout << "; " << summary.configs_with_errors << " with errors";
    }
    if (summary.total_suspects != 0) {
      std::cout << "; " << summary.total_suspects << " suspect setting(s), "
                << summary.unique_replays << " unique replay(s) (dedup "
                << static_cast<int>(summary.DedupRatio() * 100.0) << "%)";
    }
    if (summary.store_hits != 0 || summary.store_appends != 0) {
      std::cout << "; verdict store: " << summary.store_hits << " hit(s), "
                << summary.store_appends << " appended";
    }
    std::cout << "\n";
  }
};

// Matrix text report: per-version summary lines and non-stable
// transitions as they stream, then the config × version grid. Per-cell
// violation detail is the jsonl format's job — a text grid that printed
// every violation of every cell would bury the upgrade story.
class MatrixTextWriter : public MatrixObserver {
 public:
  void OnConfigError(const ConfigError& error) {
    std::cout << error.name << ": ERROR " << error.message << "\n";
  }

  void OnMatrixBegin(size_t versions, size_t configs) override {
    std::cout << "matrix: " << versions << " version(s) x " << configs
              << " config(s)\n";
  }

  void OnVersionLoaded(const LoadedVersion& version) override {
    if (!version.status.ok()) {
      std::cerr << "spexcheck: version '" << version.label
                << "' failed to load: " << version.status.message() << "\n";
    }
  }

  void OnVersionChecked(const VersionReport& column) override {
    if (!column.status.ok()) {
      return;
    }
    std::cout << "version " << column.label << ": "
              << column.batch.configs_with_violations << "/"
              << column.batch.configs_checked << " config(s) with violations, "
              << column.batch.total_violations << " violation(s)";
    if (column.batch.total_suspects != 0) {
      std::cout << "; " << column.batch.unique_replays << " unique replay(s)";
      if (column.batch.store_hits != 0) {
        std::cout << ", " << column.batch.store_hits << " store hit(s)";
      }
    }
    std::cout << "\n";
  }

  void OnTransition(const ConfigTransition& transition) override {
    if (transition.transition == Transition::kStable) {
      return;
    }
    std::cout << "  " << transition.from_label << " -> " << transition.to_label
              << "  " << transition.config << ": "
              << TransitionName(transition.transition);
    if (!transition.detail.empty()) {
      std::cout << "  " << transition.detail;
    }
    std::cout << "\n";
  }

  void OnMatrixEnd(const MatrixSummary& summary) override {
    // Grid of violation counts, checked columns only.
    size_t name_width = std::strlen("config");
    for (const ConfigRollup& rollup : summary.per_config) {
      name_width = std::max(name_width, rollup.name.size());
    }
    std::cout << "\n" << std::left << std::setw(static_cast<int>(name_width))
              << "config" << std::right;
    for (const VersionReport& column : summary.columns) {
      if (column.status.ok()) {
        std::cout << "  " << std::setw(ColumnWidth(column)) << column.label;
      }
    }
    std::cout << "  trend\n";
    for (const ConfigRollup& rollup : summary.per_config) {
      std::cout << std::left << std::setw(static_cast<int>(name_width)) << rollup.name
                << std::right;
      for (const VersionReport& column : summary.columns) {
        if (!column.status.ok()) {
          continue;
        }
        std::cout << "  " << std::setw(ColumnWidth(column));
        if (rollup.index < column.batch.reports.size()) {
          std::cout << column.batch.reports[rollup.index].violations.size();
        } else {
          std::cout << "-";
        }
      }
      std::cout << "  " << Trend(rollup) << "\n";
    }
    std::cout << "matrix: " << summary.versions_checked << " version(s) checked, "
              << summary.cells << " cell(s), "
              << summary.transitions_by_kind[static_cast<size_t>(Transition::kRegression)]
              << " regression(s), "
              << summary.transitions_by_kind[static_cast<size_t>(Transition::kFix)]
              << " fix(es), "
              << summary.transitions_by_kind[static_cast<size_t>(
                     Transition::kChangedReaction)]
              << " changed reaction(s)\n";
  }

 private:
  static int ColumnWidth(const VersionReport& column) {
    return static_cast<int>(std::max<size_t>(column.label.size(), 3));
  }

  static const char* Trend(const ConfigRollup& rollup) {
    if (rollup.regressions != 0) return "REGRESSED";
    if (rollup.changed_reactions != 0) return "changed";
    if (rollup.fixes != 0) return "fixed";
    return "";
  }
};

// Matrix JSONL: typed records — "cell" per (version, config), "version"
// per column, "diff" per classified transition, one "matrix_summary".
class MatrixJsonlWriter : public MatrixObserver {
 public:
  void OnConfigError(const ConfigError& error) {
    std::cout << "{\"type\":\"config_error\",\"config\":\"" << JsonEscape(error.name)
              << "\",\"error\":\"" << JsonEscape(error.message) << "\"}\n";
  }

  void OnVersionLoaded(const LoadedVersion& version) override {
    if (!version.status.ok()) {
      std::cerr << "spexcheck: version '" << version.label
                << "' failed to load: " << version.status.message() << "\n";
    }
  }

  void OnCellChecked(size_t version, const std::string& version_label,
                     const ConfigReport& report) override {
    std::ostringstream line;
    line << "{\"type\":\"cell\",\"version\":" << version << ",\"version_label\":\""
         << JsonEscape(version_label) << "\",";
    AppendReportJson(line, report.index, report);
    line << "}";
    std::cout << line.str() << "\n";
  }

  void OnVersionChecked(const VersionReport& column) override {
    std::ostringstream line;
    line << "{\"type\":\"version\",\"version\":" << column.index << ",\"label\":\""
         << JsonEscape(column.label) << "\"";
    if (!column.status.ok()) {
      line << ",\"status\":\"" << StatusCodeName(column.status.code())
           << "\",\"error\":\"" << JsonEscape(column.status.message()) << "\"";
    } else {
      line << ",\"configs_checked\":" << column.batch.configs_checked
           << ",\"configs_with_violations\":" << column.batch.configs_with_violations
           << ",\"configs_with_errors\":" << column.batch.configs_with_errors
           << ",\"total_violations\":" << column.batch.total_violations
           << ",\"total_suspects\":" << column.batch.total_suspects
           << ",\"unique_replays\":" << column.batch.unique_replays
           << ",\"store_hits\":" << column.batch.store_hits
           << ",\"store_appends\":" << column.batch.store_appends;
    }
    line << "}";
    std::cout << line.str() << "\n";
  }

  void OnTransition(const ConfigTransition& transition) override {
    std::cout << "{\"type\":\"diff\",\"config\":\"" << JsonEscape(transition.config)
              << "\",\"config_index\":" << transition.config_index
              << ",\"from\":" << transition.from_version
              << ",\"to\":" << transition.to_version << ",\"from_label\":\""
              << JsonEscape(transition.from_label) << "\",\"to_label\":\""
              << JsonEscape(transition.to_label) << "\",\"transition\":\""
              << TransitionName(transition.transition)
              << "\",\"added\":" << transition.added
              << ",\"removed\":" << transition.removed
              << ",\"changed\":" << transition.changed << ",\"detail\":\""
              << JsonEscape(transition.detail) << "\"}\n";
  }

  void OnMatrixEnd(const MatrixSummary& summary) override {
    std::cout << "{\"type\":\"matrix_summary\",\"versions_requested\":"
              << summary.versions_requested
              << ",\"versions_checked\":" << summary.versions_checked
              << ",\"configs\":" << summary.configs << ",\"cells\":" << summary.cells
              << ",\"total_violations\":" << summary.total_violations
              << ",\"unique_replays\":" << summary.unique_replays
              << ",\"store_hits\":" << summary.store_hits << ",\"regressions\":"
              << summary.transitions_by_kind[static_cast<size_t>(Transition::kRegression)]
              << ",\"fixes\":"
              << summary.transitions_by_kind[static_cast<size_t>(Transition::kFix)]
              << ",\"changed_reactions\":"
              << summary.transitions_by_kind[static_cast<size_t>(
                     Transition::kChangedReaction)]
              << ",\"stable\":"
              << summary.transitions_by_kind[static_cast<size_t>(Transition::kStable)]
              << "}\n";
  }
};

int Fail(const std::string& message) {
  std::cerr << "spexcheck: " << message << "\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* options, std::string* error) {
  // Binds a per-version flag to the version it follows.
  auto last_source = [&](const char* flag) -> VersionArg* {
    if (options->versions.empty() || options->versions.back().corpus.empty() == false) {
      *error = std::string(flag) + " must follow a --source version";
      return nullptr;
    }
    return &options->versions.back();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        *error = std::string(flag) + " requires an argument";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else if (arg == "--matrix") {
      options->matrix = true;
    } else if (arg == "--target") {
      const char* value = next("--target");
      if (value == nullptr) return false;
      VersionArg version;
      version.corpus = value;
      options->versions.push_back(std::move(version));
    } else if (arg == "--source") {
      const char* value = next("--source");
      if (value == nullptr) return false;
      VersionArg version;
      version.source_path = value;
      options->versions.push_back(std::move(version));
    } else if (arg == "--annotations") {
      const char* value = next("--annotations");
      if (value == nullptr) return false;
      VersionArg* version = last_source("--annotations");
      if (version == nullptr) return false;
      version->annotations_path = value;
    } else if (arg == "--template") {
      const char* value = next("--template");
      if (value == nullptr) return false;
      VersionArg* version = last_source("--template");
      if (version == nullptr) return false;
      version->template_path = value;
    } else if (arg == "--dialect") {
      const char* value = next("--dialect");
      if (value == nullptr) return false;
      VersionArg* version = last_source("--dialect");
      if (version == nullptr) return false;
      std::optional<ConfigDialect> dialect = ParseConfigDialectName(value);
      if (!dialect.has_value()) {
        *error = "unknown dialect '" + std::string(value) +
                 "' (supported dialects: " + SupportedConfigDialectNames() + ")";
        return false;
      }
      version->dialect = *dialect;
    } else if (arg == "--label") {
      const char* value = next("--label");
      if (value == nullptr) return false;
      if (options->versions.empty()) {
        *error = "--label must follow a --target or --source version";
        return false;
      }
      options->versions.back().label = value;
    } else if (arg == "--mode") {
      const char* value = next("--mode");
      if (value == nullptr) return false;
      if (std::strcmp(value, "static") == 0) {
        options->mode = CheckMode::kStatic;
      } else if (std::strcmp(value, "dynamic") == 0) {
        options->mode = CheckMode::kDynamic;
      } else {
        *error = "unknown --mode (want static|dynamic): " + std::string(value);
        return false;
      }
    } else if (arg == "--threads") {
      const char* value = next("--threads");
      if (value == nullptr) return false;
      char* end = nullptr;
      long threads = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || threads < 0) {
        *error = "--threads wants a non-negative integer, got: " + std::string(value);
        return false;
      }
      options->threads = static_cast<int>(threads);
    } else if (arg == "--format") {
      const char* value = next("--format");
      if (value == nullptr) return false;
      if (std::strcmp(value, "text") == 0) {
        options->jsonl = false;
      } else if (std::strcmp(value, "jsonl") == 0) {
        options->jsonl = true;
      } else {
        *error = "unknown --format (want text|jsonl): " + std::string(value);
        return false;
      }
    } else if (arg == "--pattern") {
      const char* value = next("--pattern");
      if (value == nullptr) return false;
      options->pattern = value;
    } else if (arg == "--include-roots") {
      const char* value = next("--include-roots");
      if (value == nullptr) return false;
      options->include_roots.push_back(value);
    } else if (arg == "--store") {
      const char* value = next("--store");
      if (value == nullptr) return false;
      options->store_path = value;
    } else if (arg == "--dump-template") {
      options->dump_template = true;
    } else if (arg == "--list-targets") {
      options->list_targets = true;
    } else if (!arg.empty() && arg[0] == '-') {
      *error = "unknown flag: " + arg;
      return false;
    } else {
      options->paths.push_back(std::move(arg));
    }
  }
  return true;
}

// Expands files and directories into the config list. Directory scans are
// non-recursive, filtered by `pattern`, sorted by name so report order
// (and the JSONL stream) is stable across filesystems.
//
// Containment boundary: a file that cannot be READ (vanished mid-scan,
// permission denied) becomes a per-config error record in `errors` and
// the rest of the fleet is still checked. Only structural problems with
// the invocation itself — a path that does not exist, an unlistable
// directory, a glob matching nothing — fail the whole run.
bool CollectConfigs(const CliOptions& options, std::vector<ConfigInput>* configs,
                    std::vector<ConfigError>* errors, std::string* error) {
  std::vector<std::string> files;
  for (const std::string& path : options.paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      // Non-throwing iteration throughout: a file vanishing mid-scan (or
      // turning stat-inaccessible) must exit 2, not std::terminate.
      std::vector<std::string> in_dir;
      fs::directory_iterator it(path, ec);
      for (; !ec && it != fs::directory_iterator(); it.increment(ec)) {
        std::error_code entry_ec;
        if (it->is_regular_file(entry_ec) &&
            GlobMatch(options.pattern, it->path().filename())) {
          in_dir.push_back(it->path().string());
        }
      }
      if (ec) {
        *error = "cannot read directory " + path + ": " + ec.message();
        return false;
      }
      std::sort(in_dir.begin(), in_dir.end());
      if (in_dir.empty()) {
        *error = "no files matching '" + options.pattern + "' in " + path;
        return false;
      }
      files.insert(files.end(), in_dir.begin(), in_dir.end());
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      *error = "no such file or directory: " + path;
      return false;
    }
  }
  // A config reachable twice — a directory listed twice, a symlinked
  // sibling of itself, a file repeated on the command line — is checked
  // and counted once: dedup by canonical path, first mention wins (so
  // report order still follows the command line).
  std::set<std::string> seen;
  std::vector<std::string> unique_files;
  unique_files.reserve(files.size());
  for (const std::string& file : files) {
    std::error_code canon_ec;
    fs::path canonical = fs::weakly_canonical(file, canon_ec);
    if (seen.insert(canon_ec ? file : canonical.string()).second) {
      unique_files.push_back(file);
    }
  }
  files = std::move(unique_files);
  configs->reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream stream(file, std::ios::binary);
    if (!stream) {
      errors->push_back(ConfigError{file, "cannot read file"});
      continue;
    }
    std::ostringstream content;
    content << stream.rdbuf();
    if (stream.bad()) {
      errors->push_back(ConfigError{file, "read failed mid-file"});
      continue;
    }
    configs->push_back(ConfigInput{file, content.str()});
  }
  return true;
}

// Filesystem loader behind --include-roots. Load never throws: an
// unreadable file is a missing include (contained per set). include_dir
// applies the same --pattern filter as root collection, so an include
// tree and a flat directory scan agree about what counts as a config.
class FileConfigSetSource : public ConfigSetSource {
 public:
  explicit FileConfigSetSource(std::string pattern) : pattern_(std::move(pattern)) {}

  std::optional<std::string> Load(const std::string& name) override {
    std::ifstream stream(name, std::ios::binary);
    if (!stream) {
      return std::nullopt;
    }
    std::ostringstream content;
    content << stream.rdbuf();
    if (stream.bad()) {
      return std::nullopt;
    }
    return content.str();
  }

  std::optional<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
      return std::nullopt;
    }
    std::vector<std::string> names;
    for (; !ec && it != fs::directory_iterator(); it.increment(ec)) {
      std::error_code entry_ec;
      if (it->is_regular_file(entry_ec) && GlobMatch(pattern_, it->path().filename())) {
        names.push_back(it->path().generic_string());
      }
    }
    if (ec) {
      return std::nullopt;
    }
    std::sort(names.begin(), names.end());
    return names;
  }

 private:
  std::string pattern_;
};

// Expands --include-roots directories into root file paths (every
// --pattern match directly in each directory, sorted; deduped by
// canonical path like CollectConfigs). Structural problems — a root dir
// that is not a directory, zero matches overall — fail the run (exit 2).
bool CollectConfigSetRoots(const CliOptions& options, std::vector<std::string>* roots,
                           std::string* error) {
  std::set<std::string> seen;
  for (const std::string& dir : options.include_roots) {
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
      *error = "--include-roots: not a directory: " + dir;
      return false;
    }
    std::vector<std::string> in_dir;
    fs::directory_iterator it(dir, ec);
    for (; !ec && it != fs::directory_iterator(); it.increment(ec)) {
      std::error_code entry_ec;
      if (it->is_regular_file(entry_ec) && GlobMatch(options.pattern, it->path().filename())) {
        in_dir.push_back(it->path().generic_string());
      }
    }
    if (ec) {
      *error = "cannot read directory " + dir + ": " + ec.message();
      return false;
    }
    std::sort(in_dir.begin(), in_dir.end());
    for (std::string& root : in_dir) {
      std::error_code canon_ec;
      fs::path canonical = fs::weakly_canonical(root, canon_ec);
      if (seen.insert(canon_ec ? root : canonical.string()).second) {
        roots->push_back(std::move(root));
      }
    }
  }
  if (roots->empty()) {
    *error = "no files matching '" + options.pattern + "' in any --include-roots directory";
    return false;
  }
  return true;
}

// Reads one target-definition file whole. Unlike fleet configs, these are
// structural inputs: a missing annotations file fails the run (exit 2).
bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream content;
  content << stream.rdbuf();
  if (stream.bad()) {
    *error = "read failed mid-file: " + path;
    return false;
  }
  *out = content.str();
  return true;
}

// Turns command-line version args into loadable TargetVersion specs:
// corpus names pass through; source versions read their files here so a
// missing file is a clean exit 2 before any analysis runs.
bool BuildVersions(const CliOptions& options, std::vector<TargetVersion>* versions,
                   std::string* error) {
  // Validate corpus names up front (FindTarget aborts on unknown names).
  std::vector<TargetSpec> known = EvaluatedTargets();
  for (const VersionArg& arg : options.versions) {
    TargetVersion version;
    version.label = arg.label;
    if (!arg.corpus.empty()) {
      if (std::none_of(known.begin(), known.end(), [&](const TargetSpec& spec) {
            return spec.name == arg.corpus;
          })) {
        *error = "unknown target '" + arg.corpus + "' (try --list-targets)";
        return false;
      }
      version.corpus = arg.corpus;
    } else {
      if (arg.annotations_path.empty()) {
        *error = "--source " + arg.source_path + " needs --annotations";
        return false;
      }
      if (!ReadFile(arg.source_path, &version.source, error) ||
          !ReadFile(arg.annotations_path, &version.annotations, error)) {
        return false;
      }
      if (!arg.template_path.empty() &&
          !ReadFile(arg.template_path, &version.template_config, error)) {
        return false;
      }
      version.file_name = fs::path(arg.source_path).filename().string();
      version.dialect = arg.dialect;
      if (version.label.empty()) {
        version.label = fs::path(arg.source_path).stem().string();
      }
    }
    versions->push_back(std::move(version));
  }
  return true;
}

int Run(int argc, char** argv) {
  CliOptions options;
  std::string error;
  if (!ParseArgs(argc, argv, &options, &error)) {
    std::cerr << "spexcheck: " << error << "\n" << kUsage;
    return 2;
  }
  if (options.list_targets) {
    for (const TargetSpec& spec : EvaluatedTargets()) {
      std::cout << spec.name << "\t" << spec.display_name << "\n";
    }
    return 0;
  }
  if (options.versions.empty()) {
    std::cerr << "spexcheck: --target or --source is required\n" << kUsage;
    return 2;
  }
  if (!options.matrix && options.versions.size() > 1) {
    std::cerr << "spexcheck: multiple versions need --matrix\n" << kUsage;
    return 2;
  }
  if (!options.include_roots.empty()) {
    if (options.matrix) {
      return Fail("--include-roots is not supported with --matrix");
    }
    if (!options.paths.empty()) {
      return Fail("--include-roots and positional config paths are mutually exclusive");
    }
  }

  std::vector<TargetVersion> versions;
  if (!BuildVersions(options, &versions, &error)) {
    return Fail(error);
  }

  // Open never hard-fails: a corrupt/locked/unwritable store degrades to
  // read-only or empty (warn so the operator knows re-checks stay cold).
  std::shared_ptr<VerdictStore> store;
  if (!options.store_path.empty()) {
    Status store_status;
    store = VerdictStore::Open(options.store_path, {}, &store_status);
    if (!store_status.ok()) {
      std::cerr << "spexcheck: verdict store '" << options.store_path
                << "' degraded: " << store_status.message() << "\n";
    }
  }

  Session session;

  if (!options.matrix) {
    const TargetVersion& spec = versions.front();
    Target* target =
        !spec.corpus.empty()
            ? session.LoadTarget(spec.corpus)
            : session.LoadSource(spec.source, spec.annotations, spec.file_name,
                                 spec.dialect, spec.sut, spec.template_config);
    if (target == nullptr) {
      return Fail("loading target failed:\n" + session.RenderDiagnostics());
    }
    if (store != nullptr) {
      target->AttachVerdictStore(store);
    }
    if (options.dump_template) {
      std::cout << target->analysis().bundle.template_config;
      return 0;
    }

    if (!options.include_roots.empty()) {
      // Multi-file mode: each root file in the include-roots directories
      // is an include tree, resolved against the filesystem and checked
      // as one flattened effective config.
      std::vector<std::string> roots;
      if (!CollectConfigSetRoots(options, &roots, &error)) {
        return Fail(error);
      }
      FileConfigSetSource source(options.pattern);
      std::vector<ResolvedConfigSet> sets;
      sets.reserve(roots.size());
      size_t resolvable = 0;
      bool any_set_error = false;
      for (const std::string& root : roots) {
        ResolvedConfigSet set = ResolveConfigSet(root, source, target->dialect());
        resolvable += set.resolved() ? 1 : 0;
        any_set_error = any_set_error || !set.errors.empty();
        sets.push_back(std::move(set));
      }
      if (resolvable == 0) {
        // The multi-file twin of "no config could be checked": exit 2 is
        // reserved for a run that produced no verdicts at all.
        return Fail("no config set could be resolved (" + std::to_string(sets.size()) +
                    " unresolvable root(s))");
      }
      BatchOptions batch;
      batch.check.mode = options.mode;
      batch.num_threads = options.threads;
      BatchSummary summary = target->CheckResolvedConfigSets(sets, batch, nullptr);
      JsonlWriter jsonl;
      TextWriter text;
      for (size_t i = 0; i < summary.reports.size(); ++i) {
        if (options.jsonl) {
          jsonl.OnConfigSet(sets[i]);
          jsonl.OnConfigChecked(i, summary.reports[i]);
        } else {
          text.OnConfigSet(sets[i]);
          text.OnConfigChecked(i, summary.reports[i]);
        }
      }
      if (options.jsonl) {
        jsonl.OnBatchEnd(summary);
      } else {
        text.OnBatchEnd(summary);
      }
      bool any_error = any_set_error || summary.configs_with_errors != 0;
      return summary.total_violations == 0 && !any_error ? 0 : 1;
    }

    if (options.paths.empty()) {
      std::cerr << "spexcheck: no config files or directories given\n" << kUsage;
      return 2;
    }
    std::vector<ConfigInput> configs;
    std::vector<ConfigError> read_errors;
    if (!CollectConfigs(options, &configs, &read_errors, &error)) {
      return Fail(error);
    }

    JsonlWriter jsonl;
    TextWriter text;
    for (const ConfigError& record : read_errors) {
      std::cerr << "spexcheck: " << record.name << ": " << record.message << "\n";
      if (options.jsonl) {
        jsonl.OnConfigError(record);
      } else {
        text.OnConfigError(record);
      }
    }
    if (configs.empty()) {
      // Exit 2 is reserved for "nothing was checked at all" — if even one
      // config made it through, the run reports what it found instead.
      return Fail("no config could be checked (" + std::to_string(read_errors.size()) +
                  " unreadable)");
    }

    BatchOptions batch;
    batch.check.mode = options.mode;
    batch.num_threads = options.threads;
    BatchObserver* writer = options.jsonl ? static_cast<BatchObserver*>(&jsonl) : &text;
    BatchSummary summary = target->CheckConfigBatch(configs, batch, writer);
    bool any_error = !read_errors.empty() || summary.configs_with_errors != 0;
    return summary.total_violations == 0 && !any_error ? 0 : 1;
  }

  // --matrix: the fleet against every version, columns diffed pairwise.
  if (options.dump_template) {
    return Fail("--dump-template takes a single version, not --matrix");
  }
  if (options.paths.empty()) {
    std::cerr << "spexcheck: no config files or directories given\n" << kUsage;
    return 2;
  }
  std::vector<ConfigInput> configs;
  std::vector<ConfigError> read_errors;
  if (!CollectConfigs(options, &configs, &read_errors, &error)) {
    return Fail(error);
  }
  MatrixJsonlWriter matrix_jsonl;
  MatrixTextWriter matrix_text;
  for (const ConfigError& record : read_errors) {
    std::cerr << "spexcheck: " << record.name << ": " << record.message << "\n";
    if (options.jsonl) {
      matrix_jsonl.OnConfigError(record);
    } else {
      matrix_text.OnConfigError(record);
    }
  }
  if (configs.empty()) {
    return Fail("no config could be checked (" + std::to_string(read_errors.size()) +
                " unreadable)");
  }

  MatrixOptions matrix_options;
  matrix_options.check.mode = options.mode;
  matrix_options.num_threads = options.threads;
  matrix_options.store = store;
  MatrixObserver* writer =
      options.jsonl ? static_cast<MatrixObserver*>(&matrix_jsonl) : &matrix_text;
  MatrixSummary summary = session.CheckMatrix(versions, configs, matrix_options, writer);
  if (summary.versions_checked != summary.versions_requested) {
    return Fail(std::to_string(summary.versions_requested - summary.versions_checked) +
                " version(s) failed to load");
  }
  // The matrix verdict is the upgrade story: only a regression — a config
  // some version-step breaks — is a failure. A fleet that is equally
  // broken everywhere is stable, and stable is exit 0.
  return summary.AnyRegression() ? 1 : 0;
}

}  // namespace
}  // namespace spex

int main(int argc, char** argv) { return spex::Run(argc, argv); }
