// Error-prone configuration-design detectors (paper Section 3.2).
//
// Five detectors over the inferred constraints:
//   1. case-sensitivity inconsistency across string parameters (Table 6),
//   2. unit inconsistency across time/size parameters (Table 7),
//   3. silent overruling (user settings overwritten without notice),
//   4. unsafe parsing APIs (atoi / sscanf / sprintf on user input),
//   5. undocumented constraints (inferred but absent from the manual).
#ifndef SPEX_DESIGN_DETECTORS_H_
#define SPEX_DESIGN_DETECTORS_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/constraints.h"
#include "src/design/manual_model.h"

namespace spex {

enum class DesignFlawKind {
  kCaseInconsistency,
  kUnitInconsistency,
  kSilentOverruling,
  kUnsafeApi,
  kUndocumentedConstraint,
};

const char* DesignFlawKindName(DesignFlawKind kind);

struct DesignFinding {
  DesignFlawKind kind = DesignFlawKind::kUnsafeApi;
  std::string param;
  std::string detail;
  SourceLoc loc;

  std::string ToString() const;
};

// Table 6 row: sensitivity split over string parameters.
struct CaseSensitivityStats {
  size_t sensitive = 0;
  size_t insensitive = 0;
  bool Inconsistent() const { return sensitive > 0 && insensitive > 0; }
};

// Table 7 row: unit histograms.
struct UnitStats {
  std::map<TimeUnit, size_t> time_units;
  std::map<SizeUnit, size_t> size_units;
  bool TimeInconsistent() const { return time_units.size() > 1; }
  bool SizeInconsistent() const { return size_units.size() > 1; }
};

// Table 8 row: the remaining error-prone categories.
struct ErrorProneCounts {
  size_t silent_overruling_params = 0;
  size_t unsafe_api_params = 0;
  size_t undocumented_ranges = 0;
  size_t undocumented_ctrl_deps = 0;
  size_t undocumented_value_rels = 0;

  size_t Total() const {
    return silent_overruling_params + unsafe_api_params + undocumented_ranges +
           undocumented_ctrl_deps + undocumented_value_rels;
  }
};

class DesignAuditor {
 public:
  DesignAuditor(const ModuleConstraints& constraints, const ManualModel& manual)
      : constraints_(constraints), manual_(manual) {}

  std::vector<DesignFinding> Audit() const;

  CaseSensitivityStats CaseStats() const;
  UnitStats Units() const;
  ErrorProneCounts ErrorProne() const;

 private:
  void AuditCaseConsistency(std::vector<DesignFinding>* out) const;
  void AuditUnitConsistency(std::vector<DesignFinding>* out) const;
  void AuditSilentOverruling(std::vector<DesignFinding>* out) const;
  void AuditUnsafeApis(std::vector<DesignFinding>* out) const;
  void AuditUndocumented(std::vector<DesignFinding>* out) const;

  const ModuleConstraints& constraints_;
  const ManualModel& manual_;
};

}  // namespace spex

#endif  // SPEX_DESIGN_DETECTORS_H_
