#include "src/design/manual_model.h"

#include <optional>

#include "src/support/strings.h"

namespace spex {

namespace {

std::optional<DocumentedFact> ParseFact(std::string_view token) {
  if (token == "basic_type") {
    return DocumentedFact::kBasicType;
  }
  if (token == "semantic_type") {
    return DocumentedFact::kSemanticType;
  }
  if (token == "range") {
    return DocumentedFact::kRange;
  }
  if (token == "ctrl_dep") {
    return DocumentedFact::kControlDep;
  }
  if (token == "value_rel") {
    return DocumentedFact::kValueRel;
  }
  if (token == "unit") {
    return DocumentedFact::kUnit;
  }
  if (token == "case") {
    return DocumentedFact::kCaseSensitivity;
  }
  return std::nullopt;
}

}  // namespace

void ManualModel::Document(const std::string& param, DocumentedFact fact) {
  entries_.insert({param, fact});
}

bool ManualModel::IsDocumented(const std::string& param, DocumentedFact fact) const {
  return entries_.count({param, fact}) > 0;
}

ManualModel ManualModel::Parse(std::string_view text, DiagnosticEngine* diags) {
  ManualModel model;
  uint32_t line_number = 0;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    ++line_number;
    std::string_view line = TrimWhitespace(raw_line);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      diags->Error(SourceLoc{"<manual>", line_number, 1},
                   "expected 'param: fact, fact, ...'");
      continue;
    }
    std::string param(TrimWhitespace(line.substr(0, colon)));
    for (const std::string& entry : SplitString(line.substr(colon + 1), ',')) {
      std::string_view token = TrimWhitespace(entry);
      if (token.empty()) {
        continue;
      }
      auto fact = ParseFact(token);
      if (!fact.has_value()) {
        diags->Error(SourceLoc{"<manual>", line_number, 1},
                     "unknown documented fact '" + std::string(token) + "'");
        continue;
      }
      model.Document(param, *fact);
    }
  }
  return model;
}

}  // namespace spex
