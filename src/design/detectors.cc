#include "src/design/detectors.h"

namespace spex {

const char* DesignFlawKindName(DesignFlawKind kind) {
  switch (kind) {
    case DesignFlawKind::kCaseInconsistency:
      return "case-sensitivity inconsistency";
    case DesignFlawKind::kUnitInconsistency:
      return "unit inconsistency";
    case DesignFlawKind::kSilentOverruling:
      return "silent overruling";
    case DesignFlawKind::kUnsafeApi:
      return "unsafe API";
    case DesignFlawKind::kUndocumentedConstraint:
      return "undocumented constraint";
  }
  return "?";
}

std::string DesignFinding::ToString() const {
  return std::string(DesignFlawKindName(kind)) + ": \"" + param + "\" — " + detail;
}

CaseSensitivityStats DesignAuditor::CaseStats() const {
  CaseSensitivityStats stats;
  for (const ParamConstraints& param : constraints_.params) {
    if (param.case_sensitivity == CaseSensitivity::kSensitive) {
      ++stats.sensitive;
    } else if (param.case_sensitivity == CaseSensitivity::kInsensitive) {
      ++stats.insensitive;
    }
  }
  return stats;
}

UnitStats DesignAuditor::Units() const {
  UnitStats stats;
  for (const ParamConstraints& param : constraints_.params) {
    if (param.time_unit != TimeUnit::kNone) {
      ++stats.time_units[param.time_unit];
    }
    if (param.size_unit != SizeUnit::kNone) {
      ++stats.size_units[param.size_unit];
    }
  }
  return stats;
}

ErrorProneCounts DesignAuditor::ErrorProne() const {
  ErrorProneCounts counts;
  for (const ParamConstraints& param : constraints_.params) {
    if (param.range.has_value() &&
        param.range->out_of_range == OutOfRangeBehavior::kSilentReset) {
      ++counts.silent_overruling_params;
    }
    if (!param.unsafe_uses.empty()) {
      ++counts.unsafe_api_params;
    }
    if (param.range.has_value() && !manual_.IsDocumented(param.param, DocumentedFact::kRange)) {
      ++counts.undocumented_ranges;
    }
  }
  for (const ControlDepConstraint& dep : constraints_.control_deps) {
    if (!manual_.IsDocumented(dep.dependent, DocumentedFact::kControlDep)) {
      ++counts.undocumented_ctrl_deps;
    }
  }
  for (const ValueRelConstraint& rel : constraints_.value_rels) {
    if (!manual_.IsDocumented(rel.lhs, DocumentedFact::kValueRel) &&
        !manual_.IsDocumented(rel.rhs, DocumentedFact::kValueRel)) {
      ++counts.undocumented_value_rels;
    }
  }
  return counts;
}

void DesignAuditor::AuditCaseConsistency(std::vector<DesignFinding>* out) const {
  CaseSensitivityStats stats = CaseStats();
  if (!stats.Inconsistent()) {
    return;
  }
  // The minority class is the error-prone one: users learn the majority
  // behaviour and trip on the exceptions (MySQL's one sensitive parameter
  // among 58 insensitive ones, Figure 6(a)).
  CaseSensitivity minority = stats.sensitive < stats.insensitive
                                 ? CaseSensitivity::kSensitive
                                 : CaseSensitivity::kInsensitive;
  for (const ParamConstraints& param : constraints_.params) {
    if (param.case_sensitivity != minority) {
      continue;
    }
    DesignFinding finding;
    finding.kind = DesignFlawKind::kCaseInconsistency;
    finding.param = param.param;
    finding.detail = std::string("values are case-") +
                     (minority == CaseSensitivity::kSensitive ? "sensitive" : "insensitive") +
                     " unlike most other parameters of this system";
    finding.loc = param.loc;
    out->push_back(std::move(finding));
  }
}

void DesignAuditor::AuditUnitConsistency(std::vector<DesignFinding>* out) const {
  UnitStats stats = Units();
  auto report_minority = [this, out](auto unit_of, auto unit_name, auto majority) {
    for (const ParamConstraints& param : constraints_.params) {
      auto unit = unit_of(param);
      if (static_cast<int>(unit) == 0 || unit == majority) {
        continue;
      }
      DesignFinding finding;
      finding.kind = DesignFlawKind::kUnitInconsistency;
      finding.param = param.param;
      finding.detail = std::string("uses unit ") + unit_name(unit) + " while most peers use " +
                       unit_name(majority);
      finding.loc = param.loc;
      out->push_back(std::move(finding));
    }
  };
  if (stats.TimeInconsistent()) {
    TimeUnit majority = TimeUnit::kNone;
    size_t best = 0;
    for (const auto& [unit, count] : stats.time_units) {
      if (count > best) {
        best = count;
        majority = unit;
      }
    }
    report_minority([](const ParamConstraints& p) { return p.time_unit; }, TimeUnitName,
                    majority);
  }
  if (stats.SizeInconsistent()) {
    SizeUnit majority = SizeUnit::kNone;
    size_t best = 0;
    for (const auto& [unit, count] : stats.size_units) {
      if (count > best) {
        best = count;
        majority = unit;
      }
    }
    report_minority([](const ParamConstraints& p) { return p.size_unit; }, SizeUnitName,
                    majority);
  }
}

void DesignAuditor::AuditSilentOverruling(std::vector<DesignFinding>* out) const {
  for (const ParamConstraints& param : constraints_.params) {
    if (!param.range.has_value() ||
        param.range->out_of_range != OutOfRangeBehavior::kSilentReset) {
      continue;
    }
    DesignFinding finding;
    finding.kind = DesignFlawKind::kSilentOverruling;
    finding.param = param.param;
    finding.detail = "out-of-range settings are silently replaced without notifying the user";
    finding.loc = param.range->loc;
    out->push_back(std::move(finding));
  }
}

void DesignAuditor::AuditUnsafeApis(std::vector<DesignFinding>* out) const {
  for (const ParamConstraints& param : constraints_.params) {
    for (const UnsafeApiUse& use : param.unsafe_uses) {
      DesignFinding finding;
      finding.kind = DesignFlawKind::kUnsafeApi;
      finding.param = param.param;
      finding.detail = "parsed with " + use.api +
                       ", which cannot report garbage or overflow; use strtol with errno/end "
                       "checks instead";
      finding.loc = use.loc;
      out->push_back(std::move(finding));
    }
  }
}

void DesignAuditor::AuditUndocumented(std::vector<DesignFinding>* out) const {
  for (const ParamConstraints& param : constraints_.params) {
    if (param.range.has_value() && !manual_.IsDocumented(param.param, DocumentedFact::kRange)) {
      DesignFinding finding;
      finding.kind = DesignFlawKind::kUndocumentedConstraint;
      finding.param = param.param;
      finding.detail = "has a value-range constraint (" + param.range->ToString() +
                       ") that no documentation mentions";
      finding.loc = param.range->loc;
      out->push_back(std::move(finding));
    }
  }
  for (const ControlDepConstraint& dep : constraints_.control_deps) {
    if (manual_.IsDocumented(dep.dependent, DocumentedFact::kControlDep)) {
      continue;
    }
    DesignFinding finding;
    finding.kind = DesignFlawKind::kUndocumentedConstraint;
    finding.param = dep.dependent;
    finding.detail = "only takes effect when " + dep.master + " " + IrCmpPredName(dep.pred) +
                     " " + std::to_string(dep.value) + ", which is documented nowhere";
    finding.loc = dep.loc;
    out->push_back(std::move(finding));
  }
  for (const ValueRelConstraint& rel : constraints_.value_rels) {
    if (manual_.IsDocumented(rel.lhs, DocumentedFact::kValueRel) ||
        manual_.IsDocumented(rel.rhs, DocumentedFact::kValueRel)) {
      continue;
    }
    DesignFinding finding;
    finding.kind = DesignFlawKind::kUndocumentedConstraint;
    finding.param = rel.lhs;
    finding.detail = "must satisfy " + rel.ToString() + ", which is documented nowhere";
    finding.loc = rel.loc;
    out->push_back(std::move(finding));
  }
}

std::vector<DesignFinding> DesignAuditor::Audit() const {
  std::vector<DesignFinding> findings;
  AuditCaseConsistency(&findings);
  AuditUnitConsistency(&findings);
  AuditSilentOverruling(&findings);
  AuditUnsafeApis(&findings);
  AuditUndocumented(&findings);
  return findings;
}

}  // namespace spex
