// User-manual model.
//
// The undocumented-constraint detector (Section 3.2, Table 8) needs to know
// what the target's documentation actually says. Real manuals are natural
// language; the model reduces them to the only fact the detector consumes:
// "is constraint kind K of parameter P documented anywhere (manual text,
// error message, or parameter naming)?"
#ifndef SPEX_DESIGN_MANUAL_MODEL_H_
#define SPEX_DESIGN_MANUAL_MODEL_H_

#include <map>
#include <set>
#include <string>
#include <string_view>

#include "src/support/diagnostics.h"

namespace spex {

enum class DocumentedFact {
  kBasicType,
  kSemanticType,
  kRange,
  kControlDep,
  kValueRel,
  kUnit,
  kCaseSensitivity,
};

class ManualModel {
 public:
  void Document(const std::string& param, DocumentedFact fact);
  bool IsDocumented(const std::string& param, DocumentedFact fact) const;
  size_t entry_count() const { return entries_.size(); }

  // Text format, one entry per line: `param: range, ctrl_dep, unit, ...`
  // ('#' comments allowed). Unknown fact names are reported to diags.
  static ManualModel Parse(std::string_view text, DiagnosticEngine* diags);

 private:
  std::set<std::pair<std::string, DocumentedFact>> entries_;
};

}  // namespace spex

#endif  // SPEX_DESIGN_MANUAL_MODEL_H_
