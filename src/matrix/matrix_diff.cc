#include "src/matrix/matrix_diff.h"

#include <map>

#include "src/inject/reaction.h"

namespace spex {
namespace {

// Length-prefixed join, the execution-key idiom: params and values are
// user-controlled text, so no separator is collision-safe.
void AppendField(std::string* out, const std::string& field) {
  *out += std::to_string(field.size());
  *out += ':';
  *out += field;
}

// The identity of a flagged setting across versions: which line of the
// user's file drew a finding. Category and message stay OUT of the key —
// they are the verdict, and a verdict that changes is a changed reaction,
// not an unrelated remove+add.
std::string SettingKey(const Violation& violation) {
  std::string key;
  AppendField(&key, violation.param);
  AppendField(&key, violation.value);
  key += std::to_string(violation.line);
  return key;
}

// Everything the user would read as "the verdict" for one finding,
// canonically serialized so two versions' findings compare by content.
std::string VerdictFingerprint(const Violation& violation) {
  std::string fingerprint;
  fingerprint += ViolationCategoryName(violation.category);
  AppendField(&fingerprint, violation.message);
  fingerprint += violation.reaction.has_value()
                     ? ReactionCategoryName(*violation.reaction)
                     : "none";
  AppendField(&fingerprint, violation.reaction_detail);
  AppendField(&fingerprint, violation.prediction);
  return fingerprint;
}

std::string DescribeFinding(const Violation& violation) {
  std::string text = "[";
  text += ViolationCategoryName(violation.category);
  text += "] " + violation.param + " = " + violation.value;
  if (violation.reaction.has_value()) {
    text += " (";
    text += ReactionCategoryName(*violation.reaction);
    text += ")";
  }
  return text;
}

// One config side folded to key -> concatenated verdict fingerprints
// (a line can draw several findings; their joint content is the verdict)
// plus a representative Violation for detail rendering.
struct SideIndex {
  std::map<std::string, std::string> verdicts;
  std::map<std::string, const Violation*> samples;
};

SideIndex IndexSide(const ConfigReport& report) {
  SideIndex side;
  for (const Violation& violation : report.violations) {
    std::string key = SettingKey(violation);
    side.verdicts[key] += VerdictFingerprint(violation);
    side.samples.emplace(key, &violation);
  }
  return side;
}

}  // namespace

const char* TransitionName(Transition transition) {
  switch (transition) {
    case Transition::kStable:
      return "stable";
    case Transition::kChangedReaction:
      return "changed-reaction";
    case Transition::kFix:
      return "fix";
    case Transition::kRegression:
      return "regression";
  }
  return "stable";
}

Transition ClassifyTransition(const ConfigReport& from, const ConfigReport& to,
                              size_t* added, size_t* removed, size_t* changed,
                              std::string* detail) {
  SideIndex before = IndexSide(from);
  SideIndex after = IndexSide(to);

  size_t n_added = 0;
  size_t n_removed = 0;
  size_t n_changed = 0;
  std::string first_added;
  std::string first_removed;
  std::string first_changed;

  for (const auto& [key, verdict] : after.verdicts) {
    auto it = before.verdicts.find(key);
    if (it == before.verdicts.end()) {
      ++n_added;
      if (first_added.empty()) {
        first_added = "+ " + DescribeFinding(*after.samples[key]);
      }
    } else if (it->second != verdict) {
      ++n_changed;
      if (first_changed.empty()) {
        first_changed = "~ " + DescribeFinding(*before.samples[key]) + " -> " +
                        DescribeFinding(*after.samples[key]);
      }
    }
  }
  for (const auto& [key, verdict] : before.verdicts) {
    if (after.verdicts.find(key) == after.verdicts.end()) {
      ++n_removed;
      if (first_removed.empty()) {
        first_removed = "- " + DescribeFinding(*before.samples[key]);
      }
    }
  }

  if (added != nullptr) *added = n_added;
  if (removed != nullptr) *removed = n_removed;
  if (changed != nullptr) *changed = n_changed;

  // Severity order: a pair that both breaks and repairs is a regression —
  // the broken user is the one the upgrade report exists for.
  Transition transition = Transition::kStable;
  std::string first;
  if (n_added > 0) {
    transition = Transition::kRegression;
    first = first_added;
  } else if (n_removed > 0) {
    transition = Transition::kFix;
    first = first_removed;
  } else if (n_changed > 0) {
    transition = Transition::kChangedReaction;
    first = first_changed;
  }
  if (detail != nullptr) *detail = first;
  return transition;
}

std::vector<ConfigTransition> DiffColumns(size_t from_version,
                                          const std::string& from_label,
                                          const BatchSummary& from, size_t to_version,
                                          const std::string& to_label,
                                          const BatchSummary& to) {
  std::vector<ConfigTransition> transitions;
  size_t count = std::min(from.reports.size(), to.reports.size());
  transitions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ConfigTransition transition;
    transition.config_index = i;
    transition.config = to.reports[i].name;
    transition.from_version = from_version;
    transition.to_version = to_version;
    transition.from_label = from_label;
    transition.to_label = to_label;
    transition.transition =
        ClassifyTransition(from.reports[i], to.reports[i], &transition.added,
                           &transition.removed, &transition.changed, &transition.detail);
    transitions.push_back(std::move(transition));
  }
  return transitions;
}

}  // namespace spex
