// Version sets for matrix checking: N versions of one target, each a
// session-owned spex::Target.
//
// The matrix checker answers "which upgrade breaks whose config", so its
// unit of comparison is a *version* — one concrete build of the target
// system. A TargetVersion names that build either as a synthesized corpus
// target ("squid") or as the same source/annotations/template triple an
// embedder would hand to Session::LoadSource. LoadVersionSet turns the
// whole list into loaded Targets in one sweep, with per-version failure
// containment: a version whose source does not parse carries its own
// error Status, and every other version still loads — the caller decides
// whether a partial matrix is worth having.
//
// Verdict-store scoping is automatic. Each version is its own Target, and
// a Target's store scope fingerprint folds its source, annotations, SUT
// spec and template (src/api/session.cc, StoreScopeLocked) — so attaching
// one shared VerdictStore to every version gives each version its own
// scope for free. Re-checking a matrix after one version bump replays
// only the bumped version's column; every other column is served from
// disk. O(diff) across the whole matrix, not per fleet.
#ifndef SPEX_MATRIX_VERSION_SET_H_
#define SPEX_MATRIX_VERSION_SET_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/confgen/config_file.h"
#include "src/inject/campaign.h"
#include "src/support/status.h"

namespace spex {

class Session;
class Target;
class VerdictStore;

// One version of the target under test. Exactly one of `corpus` or
// `source` must be set: a non-empty `corpus` names a synthesized corpus
// target (its dialect/SUT/template come from the corpus spec and the
// remaining fields are ignored); otherwise `source`/`annotations`/
// `template_config` are the Session::LoadSource triple, with `sut`
// naming the driver functions (the LoadSource defaults — MiniC models
// using handle_config_line/server_init — work unchanged).
struct TargetVersion {
  // Display label for reports ("v1", "squid-5.9", ...). Empty labels are
  // resolved to the corpus name or "v<index>" at load.
  std::string label;

  std::string corpus;  // Corpus target name; wins when non-empty.

  std::string source;
  std::string annotations;
  std::string file_name = "target.c";  // Compile-unit name for diagnostics.
  ConfigDialect dialect = ConfigDialect::kKeyEqualsValue;
  SutSpec sut;
  std::string template_config;
};

// One loaded version: `target` is session-owned (stable for the session's
// lifetime, like every LoadSource result) and null iff `status` carries
// the load failure.
struct LoadedVersion {
  size_t index = 0;     // Position in the requested version list.
  std::string label;    // Resolved display label (never empty).
  Target* target = nullptr;
  Status status;
};

// Structural validation of one version spec, independent of any session:
// kInvalidArgument when neither (or both) of corpus/source are set, and
// kNotFound for a corpus name the spec table does not contain (the corpus
// layer aborts on unknown names; the matrix layer must not).
Status ValidateVersion(const TargetVersion& version);

// Loads every version into `session`, attaching `store` (may be null) to
// each loaded Target — one shared store handle, one scope per version.
// The result has exactly versions.size() entries, in order; failures are
// contained per entry.
std::vector<LoadedVersion> LoadVersionSet(Session& session,
                                          std::span<const TargetVersion> versions,
                                          std::shared_ptr<VerdictStore> store);

}  // namespace spex

#endif  // SPEX_MATRIX_VERSION_SET_H_
