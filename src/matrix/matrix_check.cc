#include "src/matrix/matrix_check.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "src/api/session.h"

namespace spex {
namespace {

// Adapts the batch layer's per-config stream into per-cell matrix
// callbacks: a cell IS a ConfigReport, tagged with its column.
class CellForwarder : public BatchObserver {
 public:
  CellForwarder(MatrixObserver* observer, size_t version, const std::string& label)
      : observer_(observer), version_(version), label_(label) {}

  void OnConfigChecked(size_t index, const ConfigReport& report) override {
    (void)index;
    if (observer_ != nullptr) {
      observer_->OnCellChecked(version_, label_, report);
    }
  }

 private:
  MatrixObserver* observer_;
  size_t version_;
  const std::string& label_;
};

}  // namespace

MatrixSummary RunMatrixCheck(Session& session, std::span<const TargetVersion> versions,
                             std::span<const ConfigInput> configs,
                             const MatrixOptions& options, MatrixObserver* observer) {
  MatrixSummary summary;
  summary.versions_requested = versions.size();
  summary.configs = configs.size();
  summary.columns.reserve(versions.size());
  summary.per_config.resize(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    summary.per_config[i].index = i;
    summary.per_config[i].name = configs[i].name;
  }
  if (observer != nullptr) {
    observer->OnMatrixBegin(versions.size(), configs.size());
  }

  std::vector<LoadedVersion> loaded = LoadVersionSet(session, versions, options.store);

  BatchOptions batch_options;
  batch_options.check = options.check;
  batch_options.num_threads = options.num_threads;

  // Index (into summary.columns) of the most recent column that actually
  // ran — failed loads are reported but never diffed, so a broken middle
  // version leaves its neighbours compared to each other.
  ptrdiff_t prev_checked = -1;

  for (LoadedVersion& version : loaded) {
    if (observer != nullptr) {
      observer->OnVersionLoaded(version);
    }

    VersionReport column;
    column.index = version.index;
    column.label = version.label;
    column.status = version.status;
    if (version.status.ok()) {
      CellForwarder forwarder(observer, version.index, version.label);
      // Columns run sequentially: sharded batches serialize session-wide
      // anyway (they own the campaign pool while running), so the matrix
      // parallelism lives *inside* a column, where the batch layer shards
      // cells over the session pool with cross-config dedup intact.
      column.batch = version.target->CheckConfigBatch(configs, batch_options, &forwarder);
      summary.versions_checked += 1;
      summary.cells += column.batch.reports.size();
      summary.total_violations += column.batch.total_violations;
      summary.unique_replays += column.batch.unique_replays;
      summary.store_hits += column.batch.store_hits;
      for (const ConfigReport& report : column.batch.reports) {
        if (!report.violations.empty() && report.index < summary.per_config.size()) {
          summary.per_config[report.index].versions_with_violations += 1;
        }
      }
    }
    summary.columns.push_back(std::move(column));
    VersionReport& stored = summary.columns.back();

    if (stored.status.ok()) {
      if (prev_checked >= 0) {
        const VersionReport& before = summary.columns[static_cast<size_t>(prev_checked)];
        std::vector<ConfigTransition> transitions =
            DiffColumns(before.index, before.label, before.batch, stored.index,
                        stored.label, stored.batch);
        for (ConfigTransition& transition : transitions) {
          summary.transitions_by_kind[static_cast<size_t>(transition.transition)] += 1;
          if (transition.config_index < summary.per_config.size()) {
            ConfigRollup& rollup = summary.per_config[transition.config_index];
            switch (transition.transition) {
              case Transition::kRegression:
                rollup.regressions += 1;
                break;
              case Transition::kFix:
                rollup.fixes += 1;
                break;
              case Transition::kChangedReaction:
                rollup.changed_reactions += 1;
                break;
              case Transition::kStable:
                break;
            }
          }
          if (observer != nullptr) {
            observer->OnTransition(transition);
          }
          summary.transitions.push_back(std::move(transition));
        }
      }
      prev_checked = static_cast<ptrdiff_t>(summary.columns.size()) - 1;
    }

    if (observer != nullptr) {
      observer->OnVersionChecked(stored);
    }
  }

  if (observer != nullptr) {
    observer->OnMatrixEnd(summary);
  }
  return summary;
}

MatrixSummary Session::CheckMatrix(std::span<const TargetVersion> versions,
                                   std::span<const ConfigInput> configs,
                                   const MatrixOptions& options, MatrixObserver* observer) {
  return RunMatrixCheck(*this, versions, configs, options, observer);
}

}  // namespace spex
