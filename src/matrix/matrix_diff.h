// Transition classification between two versions' verdicts on one config.
//
// The matrix checker's deliverable is not N independent fleet reports but
// the *differences* between adjacent columns: an upgrade is safe for a
// user exactly when their config's verdicts do not get worse. Each
// (config, version-pair) is classified into one of four transitions:
//
//   regression        the newer version flags something the older one
//                     accepted — the upgrade breaks this config.
//   fix               the older version's finding is gone and nothing new
//                     appeared — the upgrade repairs this config.
//   changed-reaction  the same settings are flagged on both sides, but
//                     the verdict changed (different category, message,
//                     or observed Table-3 reaction) — same mistake, new
//                     behaviour.
//   stable            verdict-identical on both sides (clean or equally
//                     broken).
//
// Identity is per flagged setting — (param, value, line) — so a finding
// whose *description* changes is a changed reaction, not a coincidental
// fix+regression pair. When a pair both adds and removes findings the
// label is regression: breaking a user outranks repairing them.
#ifndef SPEX_MATRIX_MATRIX_DIFF_H_
#define SPEX_MATRIX_MATRIX_DIFF_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/api/batch_check.h"

namespace spex {

enum class Transition {
  kStable = 0,
  kChangedReaction,
  kFix,
  kRegression,
};
inline constexpr size_t kTransitionCount = 4;

// Stable lowercase names ("stable", "changed-reaction", "fix",
// "regression") — the JSONL vocabulary.
const char* TransitionName(Transition transition);

// One classified (config, adjacent-version-pair) cell-pair. Self-contained
// value type: labels and detail are copies.
struct ConfigTransition {
  size_t config_index = 0;      // Position in the fleet (cell row).
  std::string config;           // ConfigInput::name.
  size_t from_version = 0;      // Version indices in the matrix (columns).
  size_t to_version = 0;
  std::string from_label;
  std::string to_label;
  Transition transition = Transition::kStable;
  // The violation-level counts behind the label: findings only the newer
  // version reports, only the older one reports, and findings present on
  // both sides whose verdict differs.
  size_t added = 0;
  size_t removed = 0;
  size_t changed = 0;
  // First difference, human-oriented: "+ [range] worker_threads = 12"
  // (added), "- ..." (removed), "~ ..." (changed). Empty when stable.
  std::string detail;
};

// Classifies one config's transition between two reports (the same config
// checked against the older and newer version). Out-params may be null.
Transition ClassifyTransition(const ConfigReport& from, const ConfigReport& to,
                              size_t* added, size_t* removed, size_t* changed,
                              std::string* detail);

// Diffs two whole columns (BatchSummary::reports are in batch order on
// both sides — same fleet, same order). Returns one ConfigTransition per
// config, in batch order.
std::vector<ConfigTransition> DiffColumns(size_t from_version,
                                          const std::string& from_label,
                                          const BatchSummary& from, size_t to_version,
                                          const std::string& to_label,
                                          const BatchSummary& to);

}  // namespace spex

#endif  // SPEX_MATRIX_MATRIX_DIFF_H_
