// Version-matrix checking: one fleet of configs × N versions of a target,
// in a single pass — "which upgrade breaks whose config".
//
// The paper's end state is the vendor shipping the checker with the
// product; the sharpest real-world moment for it is an upgrade, when a
// config that was fine against version A silently becomes a
// misconfiguration against version B. Session::CheckMatrix (declared on
// Session, implemented here) runs the whole answer:
//
//   versions ──LoadVersionSet──▶ one session-owned Target per version
//       │                          (shared VerdictStore, one scope each)
//       ▼
//   per version: CheckConfigBatch over the fleet — the (version × config)
//   cells of that column, sharded over the session pool, with the batch
//   layer's cross-config dedup and store consult/append per version
//       ▼
//   matrix_diff over adjacent columns ──▶ regression / fix /
//   changed-reaction / stable per (config, version-pair)
//       ▼
//   MatrixSummary: per-version columns, per-config rollups, transition
//   counts
//
// Cell identity guarantee: every cell is bit-identical to an independent
// CheckConfigBatch of the same fleet against that version alone — the
// matrix adds comparison, never new verdict machinery. This is inherited,
// not re-implemented: a column IS one CheckConfigBatch call, and the
// batch layer's verdicts are bit-identical to N independent CheckConfig
// calls at every thread count (src/api/batch_check.h).
//
// O(diff) warm refresh: with a store attached, every version lands in its
// own verdict-store scope automatically (the Target scope fingerprint
// folds source/annotations/SUT/template), so re-running a matrix after
// one version bump replays only the bumped version's column —
// MatrixSummary::columns[i].batch.unique_replays stays 0 for every
// unchanged version. BM_VersionMatrix pins this down.
#ifndef SPEX_MATRIX_MATRIX_CHECK_H_
#define SPEX_MATRIX_MATRIX_CHECK_H_

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/api/batch_check.h"
#include "src/matrix/matrix_diff.h"
#include "src/matrix/version_set.h"

namespace spex {

class Session;

// Options for one matrix check. Freely copyable.
struct MatrixOptions {
  // Per-cell CheckOptions (mode, snapshot knob, deadline, cancel token) —
  // the same options every cell's dedicated CheckConfig would take.
  CheckOptions check;
  // Sharding per column, with BatchOptions::num_threads semantics:
  // 1 = serial (default), 0 = session pool width, N = N shards. Cells and
  // transitions are identical for every value.
  int num_threads = 1;
  // Optional persistent verdict store shared by every version — each
  // version reads/writes its own scope, making warm matrix refreshes
  // O(diff) across versions. May be null.
  std::shared_ptr<VerdictStore> store;
};

// One version's column: the full fleet checked against that version.
// `status` carries a load failure (column never checked, `batch` empty);
// checked columns have status Ok.
struct VersionReport {
  size_t index = 0;
  std::string label;
  Status status;
  BatchSummary batch;
};

// Per-config rollup across the whole matrix — the row the "is my config
// safe to upgrade" user reads.
struct ConfigRollup {
  size_t index = 0;
  std::string name;
  size_t versions_with_violations = 0;  // Columns where this config is flagged.
  size_t regressions = 0;               // Adjacent pairs that break it...
  size_t fixes = 0;                     // ...repair it...
  size_t changed_reactions = 0;         // ...or change its verdict.
};

// Matrix-wide rollup. `columns` holds every version in request order
// (failed loads included, with their status); `transitions` holds one
// entry per (config, adjacent-checked-version-pair) in version-major,
// batch order.
struct MatrixSummary {
  size_t versions_requested = 0;
  size_t versions_checked = 0;  // Columns that actually ran.
  size_t configs = 0;
  size_t cells = 0;  // versions_checked * configs.
  size_t total_violations = 0;  // Across every cell.
  // Matrix-wide verdict-store accounting, summed over columns.
  size_t unique_replays = 0;
  size_t store_hits = 0;
  // Transition counts indexed by static_cast<size_t>(Transition); the
  // entries sum to transitions.size().
  std::array<size_t, kTransitionCount> transitions_by_kind{};

  std::vector<VersionReport> columns;
  std::vector<ConfigTransition> transitions;
  std::vector<ConfigRollup> per_config;

  bool AnyRegression() const {
    return transitions_by_kind[static_cast<size_t>(Transition::kRegression)] > 0;
  }
};

// Streaming callbacks, all on the calling thread. Cells stream through
// OnCellChecked in column-major order (every config of version 0, then
// version 1, ...), each after its verdicts are final — the same per-cell
// ordering contract BatchObserver gives within a column. References are
// valid only during the call; the same objects land in MatrixSummary.
class MatrixObserver {
 public:
  virtual ~MatrixObserver() = default;
  virtual void OnMatrixBegin(size_t versions, size_t configs) {
    (void)versions;
    (void)configs;
  }
  // Once per requested version, before its column runs (or with the load
  // failure that prevents it from running).
  virtual void OnVersionLoaded(const LoadedVersion& version) { (void)version; }
  virtual void OnCellChecked(size_t version, const std::string& version_label,
                             const ConfigReport& report) {
    (void)version;
    (void)version_label;
    (void)report;
  }
  virtual void OnVersionChecked(const VersionReport& column) { (void)column; }
  virtual void OnTransition(const ConfigTransition& transition) { (void)transition; }
  virtual void OnMatrixEnd(const MatrixSummary& summary) { (void)summary; }
};

// The engine behind Session::CheckMatrix — exposed, like RunBatchCheck,
// so tests and custom drivers can reach it directly.
MatrixSummary RunMatrixCheck(Session& session, std::span<const TargetVersion> versions,
                             std::span<const ConfigInput> configs,
                             const MatrixOptions& options, MatrixObserver* observer);

}  // namespace spex

#endif  // SPEX_MATRIX_MATRIX_CHECK_H_
