#include "src/matrix/version_set.h"

#include <algorithm>

#include "src/api/session.h"
#include "src/corpus/spec.h"

namespace spex {

Status ValidateVersion(const TargetVersion& version) {
  const bool has_corpus = !version.corpus.empty();
  const bool has_source = !version.source.empty();
  if (has_corpus == has_source) {
    return Status::InvalidArgument(
        has_corpus ? "version '" + version.label +
                         "' sets both a corpus name and a source; pick one"
                   : "version '" + version.label +
                         "' names neither a corpus target nor a source");
  }
  if (has_corpus) {
    // FindTarget aborts on unknown names — the same serving-boundary
    // rationale as TargetPool::Acquire: validate against the spec table
    // first so an unknown version is a Status, not a process exit.
    std::vector<TargetSpec> known = EvaluatedTargets();
    if (std::none_of(known.begin(), known.end(), [&](const TargetSpec& spec) {
          return spec.name == version.corpus;
        })) {
      return Status::NotFound("unknown corpus target '" + version.corpus + "'");
    }
  }
  return Status::Ok();
}

std::vector<LoadedVersion> LoadVersionSet(Session& session,
                                          std::span<const TargetVersion> versions,
                                          std::shared_ptr<VerdictStore> store) {
  std::vector<LoadedVersion> loaded;
  loaded.reserve(versions.size());
  for (size_t i = 0; i < versions.size(); ++i) {
    const TargetVersion& version = versions[i];
    LoadedVersion entry;
    entry.index = i;
    entry.label = !version.label.empty()
                      ? version.label
                      : (!version.corpus.empty() ? version.corpus
                                                 : "v" + std::to_string(i + 1));
    entry.status = ValidateVersion(version);
    if (entry.status.ok()) {
      // Session loads contain failures per call (diagnostics accumulate,
      // later loads are unaffected), so a broken version cannot poison
      // the columns after it.
      entry.target =
          !version.corpus.empty()
              ? session.LoadTarget(version.corpus)
              : session.LoadSource(version.source, version.annotations,
                                   version.file_name, version.dialect, version.sut,
                                   version.template_config);
      if (entry.target == nullptr) {
        entry.status = Status::Internal("loading version '" + entry.label +
                                        "' failed:\n" + session.RenderDiagnostics());
      } else if (store != nullptr) {
        // One shared store handle; the Target derives its own scope
        // fingerprint, so every version reads and writes its own column.
        entry.target->AttachVerdictStore(store);
      }
    }
    loaded.push_back(std::move(entry));
  }
  return loaded;
}

}  // namespace spex
