// spexcheckd's serving core: config checking as a fault-contained service.
//
// CheckServer turns the embeddable spex::Session façade into a network
// daemon with one non-negotiable invariant: NO REQUEST EVER TAKES THE
// PROCESS DOWN, OR HOLDS IT HOSTAGE. Every layer enforces a piece of it:
//
//   event loop   One front-end thread owns an epoll set of nonblocking
//                sockets: it accepts, reads requests incrementally
//                (HttpParser state machine per connection), tracks
//                keep-alive idle time on a deadline heap, and hands only
//                COMPLETE, well-framed requests to the workers. A
//                slow-loris client dribbling bytes, or a kept-alive
//                connection parked between requests, costs one connection
//                slot and a heap entry — NEVER a worker thread. Workers
//                block only on checking work (and a bounded response
//                write), not on client sockets.
//   admission    Two bounds, answered from the front end: a connection
//                cap (max_connections — beyond it new arrivals are shed
//                with 503) and a bounded request queue between the event
//                loop and the worker pool (full queue => the parsed
//                request is shed with 503 + Retry-After). The cost of an
//                overload is one refused client, not an unbounded
//                backlog.
//   deadlines    Every request carries a CancelToken armed with its
//                deadline (client-supplied ?deadline_ms, capped default).
//                The token is polled inside the interpreter's step loop,
//                so a pathological config is cut off mid-replay and
//                reported as `deadline_exceeded` — a verdict about the
//                request's budget, never confused with the paper's
//                crash/hang verdict about the target. Socket-side
//                deadlines (read_timeout for mid-request stalls,
//                keepalive_idle_timeout for parked reuse) live on the
//                event loop's deadline heap against an injectable Clock,
//                so tests drive expiry deterministically.
//   degradation  Dynamic replays are capped globally
//                (max_inflight_replays) and per target
//                (per_target_replay_budget, a token bucket per pool
//                entry). At either cap a dynamic request is not shed: it
//                degrades to the static-only check (milliseconds, no
//                interpreter) and the response says so — partial answer
//                over no answer. The per-target bucket means one noisy
//                target degrades only its own traffic.
//   containment  Malformed requests, unknown targets, oversized bodies,
//                replay faults: each maps to a structured per-request
//                spex::Status (and its HTTP mapping). Framing errors are
//                answered by the front end before a worker ever sees the
//                connection. Batches keep their per-config containment
//                semantics — a poisoned config errors its own report line
//                only.
//   drain        Shutdown() (SIGTERM in the daemon) stops accepting new
//                connections, closes idle and mid-read connections (their
//                requests were never admitted), and lets queued +
//                in-flight requests finish under drain_deadline; past it,
//                the drain token that parents every request token fires —
//                cancelling stragglers cooperatively. No admitted request
//                is ever killed mid-write.
//
// Wire protocol (HTTP/1.1, close-by-default with opt-in keep-alive, JSONL
// bodies). A client sending "Connection: keep-alive" may reuse its
// connection for sequential requests, bounded by keepalive_max_requests
// and keepalive_idle_timeout — reuse amortizes the TCP handshake for
// fleet drivers, and an idle reused connection costs a connection slot
// on the event loop, not a worker:
//
//   GET  /healthz                      "ok" (503 "draining" during drain)
//   GET  /statz                        JSON counters (admission, pool, ...)
//   POST /check?target=NAME[&...]      body = config text; response = one
//                                      JSON line per violation + a summary
//                                      line.
//   POST /batch?target=NAME[&...]      body = configs framed by "=== name"
//                                      lines; response = violation lines +
//                                      one report line per config + a batch
//                                      summary line.
//
//   Query knobs: mode=static|dynamic (default dynamic), deadline_ms=N
//   (request budget; 0 = none, capped at the server's default),
//   replay_deadline_ms=N (per-suspect budget), name=... (report label for
//   /check).
#ifndef SPEX_SERVE_SERVER_H_
#define SPEX_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/serve/fault.h"
#include "src/serve/target_pool.h"
#include "src/support/bounded_queue.h"
#include "src/support/cancellation.h"
#include "src/support/clock.h"
#include "src/support/deadline_heap.h"
#include "src/support/status.h"

namespace spex {

struct HttpRequest;
class HttpParser;

struct ServerOptions {
  // 0 = ephemeral; the bound port is CheckServer::port() after Start().
  // The daemon listens on 127.0.0.1 only — fronting proxies own the
  // external surface.
  uint16_t port = 0;
  size_t num_workers = 4;
  // Open connections the event loop will hold at once (reading, queued,
  // being served, or idle keep-alive). Beyond this, new arrivals are shed
  // with 503 from the front end. Each slot costs one fd + one HttpParser
  // (≤ header cap + body cap bytes) — connection state is cheap; worker
  // time is not, which is exactly why the two are bounded separately.
  size_t max_connections = 256;
  // Admission: parsed requests pending between the event loop and the
  // workers. Full => 503 + Retry-After, written from the front end.
  size_t queue_capacity = 64;
  // Dynamic replays running at once; at the cap a dynamic request
  // degrades to static instead of queueing behind slow replays.
  size_t max_inflight_replays = 2;
  // Per-target replay budget: a token bucket per hot target (capacity =
  // budget, refill = budget/second). A dynamic request on a target whose
  // bucket is empty degrades to static — one noisy target cannot consume
  // every replay slot. 0 = unlimited (disarmed).
  size_t per_target_replay_budget = 0;
  size_t max_body_bytes = 1 << 20;
  // Per-request budget when the client sends none; also the cap on what a
  // client may ask for (a client must not buy unbounded worker time).
  // Zero disables deadlines entirely (trusted-embedder mode).
  std::chrono::milliseconds default_deadline{2000};
  // How long a connection may take to deliver one complete request,
  // measured from its first byte — the slow-loris bound, enforced by the
  // event loop's deadline heap (expired mid-request => 408).
  std::chrono::milliseconds read_timeout{2000};
  // How long Shutdown() lets in-flight requests finish before the drain
  // token cancels them cooperatively.
  std::chrono::milliseconds drain_deadline{5000};
  // Hot targets kept loaded (LRU beyond this).
  size_t target_capacity = 4;
  // HTTP/1.1 keep-alive ("Connection: keep-alive" from the client): how
  // many requests one connection may carry before the server closes it
  // (the fairness cap — a chatty client cannot own a connection slot
  // forever), and how long an idle reused connection is held open between
  // requests. Connections stay close-by-default for clients that do not
  // opt in.
  size_t keepalive_max_requests = 100;
  std::chrono::milliseconds keepalive_idle_timeout{2000};
  // Directory for per-target persistent verdict stores ("" = disabled).
  // Each target loaded by the pool gets "<store_dir>/<name>.vst"; re-checks
  // of unchanged configs are then served from disk without replaying.
  std::string store_dir;
  // Time source for the socket-side deadlines (read timeout, keep-alive
  // idle, budget refill). Null = steady clock. Tests install a
  // ManualClock so "the idle timeout elapsed" is a deterministic
  // statement, not a sleep.
  std::shared_ptr<Clock> clock;
  SessionOptions session;
  FaultInjector faults;
};

// Monotonic counters + point-in-time gauges, snapshot via
// CheckServer::stats(). Every terminal outcome of a request increments
// exactly one of the outcome counters.
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t served_ok = 0;
  uint64_t shed = 0;               // 503 from admission (connection cap / queue full / draining).
  uint64_t degraded = 0;           // Dynamic request served static at a replay cap or budget.
  uint64_t budget_degraded = 0;    // Subset of `degraded` caused by a per-target budget.
  uint64_t invalid_requests = 0;   // 400s: framing, validation, oversize.
  uint64_t not_found = 0;          // Unknown route or target.
  uint64_t deadline_exceeded = 0;  // Request budget fired mid-check.
  uint64_t cancelled = 0;          // Explicit cancellation (drain, faults).
  uint64_t read_timeouts = 0;      // Slow-loris cutoffs (408 from the event loop).
  uint64_t internal_errors = 0;    // Contained exceptions; 500s.
  uint64_t batch_configs = 0;      // Configs checked via /batch.
  uint64_t keepalive_reuses = 0;   // Requests served on a reused connection.
  uint64_t store_hits = 0;         // Unique executions served from the verdict store.
  uint64_t partial_reads = 0;      // Read events that ended with a request still incomplete.
  uint64_t client_aborts = 0;      // Peer closed mid-request (partial/mid-body disconnect).
  // Gauges (state of the event loop at snapshot time).
  uint64_t open_connections = 0;   // Connections the server currently holds.
  uint64_t idle_keepalive = 0;     // Subset parked between keep-alive requests.
};

class CheckServer {
 public:
  explicit CheckServer(ServerOptions options = {});
  // Shutdown() + Join() if still running: destroying the server is always
  // a graceful drain.
  ~CheckServer();

  CheckServer(const CheckServer&) = delete;
  CheckServer& operator=(const CheckServer&) = delete;

  // Binds, listens and spawns the event-loop + worker threads.
  // kUnavailable when the port cannot be bound.
  Status Start();
  uint16_t port() const { return port_; }

  // Graceful shutdown: idempotent, callable from any thread (not from a
  // signal handler — the daemon's handler sets a flag its main loop
  // polls). Returns immediately; Join() waits for the drain.
  void Shutdown();
  void Join();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServerStats stats() const;
  // The pool, for tests asserting hit/eviction/budget behavior.
  const TargetPool& targets() const { return *targets_; }

 private:
  // Per-connection state machine, owned by exactly one thread at a time:
  // the event loop while reading / idle, a worker while a parsed request
  // is being served. Handoffs go through mutex-guarded queues.
  struct Conn {
    ~Conn();
    int fd = -1;
    uint64_t id = 0;       // Distinguishes reused fd numbers in the heap.
    std::unique_ptr<HttpParser> parser;
    size_t served = 0;     // Completed requests on this connection.
    bool idle = false;     // Parked between keep-alive requests (0 bytes in).
    MonotonicTime deadline{};  // Currently armed read/idle deadline.
  };
  // Lazy-cancelled deadline-heap entry; validated against the connection's
  // live state when popped.
  struct DeadlineEntry {
    int fd = -1;
    uint64_t conn_id = 0;
    MonotonicTime armed{};
  };

  MonotonicTime Now() const;
  void Wake();  // Nudges the event loop (eventfd) from any thread.

  // --- Event-loop thread ---
  void EventLoop();
  void HandleAccept();
  void HandleReadable(int fd);
  // Arms `deadline` on the heap and the connection.
  void ArmConnDeadline(Conn* conn, std::chrono::milliseconds timeout);
  void ExpireDeadlines(MonotonicTime now);
  // Pulls connections workers handed back for keep-alive reuse.
  void AdoptReturnedConns();
  // Parsed request complete: off epoll, into the worker queue (or shed).
  void DispatchConn(int fd);
  // Answers `status` from the front end (zero-wait write) and closes.
  void ShedConn(int fd, const Status& status);
  // Removes from epoll + conns_ and destroys (front-end paths).
  void CloseConn(int fd);
  void DestroyConn(std::unique_ptr<Conn> conn);

  // --- Worker threads ---
  void WorkerLoop();
  void ServeConn(std::unique_ptr<Conn> conn);
  // Routes one parsed request. `keep_alive` is the server's decision for
  // this response; the return says whether the connection stays open
  // (every error path closes).
  bool HandleRequest(int fd, const HttpRequest& request, bool keep_alive);
  // Routes /check and /batch. `batch` selects the body framing. Returns
  // whether the connection stays open.
  bool HandleCheck(int fd, const std::string& query, const std::string& body, bool batch,
                   bool keep_alive, TargetPool::Entry* entry_hint = nullptr);
  void WriteError(int fd, const Status& status);

  ServerOptions options_;
  std::unique_ptr<TargetPool> targets_;
  std::unique_ptr<BoundedQueue<std::unique_ptr<Conn>>> queue_;
  // Parent of every request token; fired (with the drain deadline) by
  // Shutdown so stragglers cancel cooperatively.
  CancelToken drain_token_;
  std::atomic<bool> draining_{false};
  std::atomic<size_t> inflight_replays_{0};

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: shutdown, returned conns, manual-clock advance.
  uint16_t port_ = 0;
  std::thread event_thread_;
  std::vector<std::thread> workers_;
  bool started_ = false;

  // Event-loop-private state (no locks: one owner thread).
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  DeadlineHeap<DeadlineEntry> deadlines_;
  uint64_t next_conn_id_ = 0;

  // Worker -> event loop handback of kept-alive connections.
  std::mutex returned_mutex_;
  std::vector<std::unique_ptr<Conn>> returned_;

  // Counters (relaxed; read as a snapshot).
  std::atomic<uint64_t> stat_accepted_{0};
  std::atomic<uint64_t> stat_served_ok_{0};
  std::atomic<uint64_t> stat_shed_{0};
  std::atomic<uint64_t> stat_degraded_{0};
  std::atomic<uint64_t> stat_budget_degraded_{0};
  std::atomic<uint64_t> stat_invalid_{0};
  std::atomic<uint64_t> stat_not_found_{0};
  std::atomic<uint64_t> stat_deadline_{0};
  std::atomic<uint64_t> stat_cancelled_{0};
  std::atomic<uint64_t> stat_read_timeouts_{0};
  std::atomic<uint64_t> stat_internal_{0};
  std::atomic<uint64_t> stat_batch_configs_{0};
  std::atomic<uint64_t> stat_keepalive_reuses_{0};
  std::atomic<uint64_t> stat_store_hits_{0};
  std::atomic<uint64_t> stat_partial_reads_{0};
  std::atomic<uint64_t> stat_client_aborts_{0};
  std::atomic<uint64_t> gauge_open_connections_{0};
  std::atomic<uint64_t> gauge_idle_keepalive_{0};
};

}  // namespace spex

#endif  // SPEX_SERVE_SERVER_H_
