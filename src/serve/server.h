// spexcheckd's serving core: config checking as a fault-contained service.
//
// CheckServer turns the embeddable spex::Session façade into a network
// daemon with one non-negotiable invariant: NO REQUEST EVER TAKES THE
// PROCESS DOWN, OR HOLDS IT HOSTAGE. Every layer enforces a piece of it:
//
//   admission    A bounded connection queue between the accept loop and
//                the worker pool. Full queue => the request is shed with
//                503 + Retry-After from the accept thread — the cost of
//                an overload is one refused client, not an unbounded
//                backlog.
//   deadlines    Every request carries a CancelToken armed with its
//                deadline (client-supplied ?deadline_ms, capped default).
//                The token is polled inside the interpreter's step loop,
//                so a pathological config is cut off mid-replay and
//                reported as `deadline_exceeded` — a verdict about the
//                request's budget, never confused with the paper's
//                crash/hang verdict about the target.
//   degradation  Dynamic replays are capped (max_inflight_replays). At
//                the cap, a dynamic request is not shed: it degrades to
//                the static-only check (milliseconds, no interpreter) and
//                the response says so — partial answer over no answer.
//   containment  Malformed requests, unknown targets, oversized bodies,
//                slow-loris reads, replay faults: each maps to a
//                structured per-request spex::Status (and its HTTP
//                mapping), handled on the worker that owns the request.
//                Batches keep their per-config containment semantics — a
//                poisoned config errors its own report line only.
//   drain        Shutdown() (SIGTERM in the daemon) stops accepting new
//                connections and lets queued + in-flight requests finish
//                under drain_deadline; past it, the drain token that
//                parents every request token fires — cancelling stragglers
//                cooperatively. No request is ever killed mid-write.
//
// Wire protocol (HTTP/1.1, close-by-default with opt-in keep-alive, JSONL
// bodies). A client sending "Connection: keep-alive" may reuse its
// connection for sequential requests, bounded by keepalive_max_requests
// and keepalive_idle_timeout — reuse amortizes the TCP handshake for
// fleet drivers without letting one client park a worker forever:
//
//   GET  /healthz                      "ok" (503 "draining" during drain)
//   GET  /statz                        JSON counters (admission, pool, ...)
//   POST /check?target=NAME[&...]      body = config text; response = one
//                                      JSON line per violation + a summary
//                                      line.
//   POST /batch?target=NAME[&...]      body = configs framed by "=== name"
//                                      lines; response = violation lines +
//                                      one report line per config + a batch
//                                      summary line.
//
//   Query knobs: mode=static|dynamic (default dynamic), deadline_ms=N
//   (request budget; 0 = none, capped at the server's default),
//   replay_deadline_ms=N (per-suspect budget), name=... (report label for
//   /check).
#ifndef SPEX_SERVE_SERVER_H_
#define SPEX_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/fault.h"
#include "src/serve/target_pool.h"
#include "src/support/bounded_queue.h"
#include "src/support/cancellation.h"
#include "src/support/status.h"

namespace spex {

struct HttpRequest;

struct ServerOptions {
  // 0 = ephemeral; the bound port is CheckServer::port() after Start().
  // The daemon listens on 127.0.0.1 only — fronting proxies own the
  // external surface.
  uint16_t port = 0;
  size_t num_workers = 4;
  // Admission: pending connections between accept and the workers. Full
  // => 503 + Retry-After, written from the accept thread.
  size_t queue_capacity = 64;
  // Dynamic replays running at once; at the cap a dynamic request
  // degrades to static instead of queueing behind slow replays.
  size_t max_inflight_replays = 2;
  size_t max_body_bytes = 1 << 20;
  // Per-request budget when the client sends none; also the cap on what a
  // client may ask for (a client must not buy unbounded worker time).
  // Zero disables deadlines entirely (trusted-embedder mode).
  std::chrono::milliseconds default_deadline{2000};
  // Socket read timeout — the slow-loris guard.
  std::chrono::milliseconds read_timeout{2000};
  // How long Shutdown() lets in-flight requests finish before the drain
  // token cancels them cooperatively.
  std::chrono::milliseconds drain_deadline{5000};
  // Hot targets kept loaded (LRU beyond this).
  size_t target_capacity = 4;
  // HTTP/1.1 keep-alive ("Connection: keep-alive" from the client): how
  // many requests one connection may carry before the server closes it
  // (the fairness cap — a chatty client cannot own a worker forever), and
  // how long an idle reused connection is held open between requests.
  // Connections stay close-by-default for clients that do not opt in.
  size_t keepalive_max_requests = 100;
  std::chrono::milliseconds keepalive_idle_timeout{2000};
  // Directory for per-target persistent verdict stores ("" = disabled).
  // Each target loaded by the pool gets "<store_dir>/<name>.vst"; re-checks
  // of unchanged configs are then served from disk without replaying.
  std::string store_dir;
  SessionOptions session;
  FaultInjector faults;
};

// Monotonic counters, snapshot via CheckServer::stats(). Every terminal
// outcome of a request increments exactly one of the outcome counters.
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t served_ok = 0;
  uint64_t shed = 0;               // 503 from admission (queue full / draining).
  uint64_t degraded = 0;           // Dynamic request served static at the replay cap.
  uint64_t invalid_requests = 0;   // 400s: framing, validation, oversize.
  uint64_t not_found = 0;          // Unknown route or target.
  uint64_t deadline_exceeded = 0;  // Request budget fired mid-check.
  uint64_t cancelled = 0;          // Explicit cancellation (drain, faults).
  uint64_t read_timeouts = 0;      // Slow-loris cutoffs.
  uint64_t internal_errors = 0;    // Contained exceptions; 500s.
  uint64_t batch_configs = 0;      // Configs checked via /batch.
  uint64_t keepalive_reuses = 0;   // Requests served on a reused connection.
  uint64_t store_hits = 0;         // Unique executions served from the verdict store.
};

class CheckServer {
 public:
  explicit CheckServer(ServerOptions options = {});
  // Shutdown() + Join() if still running: destroying the server is always
  // a graceful drain.
  ~CheckServer();

  CheckServer(const CheckServer&) = delete;
  CheckServer& operator=(const CheckServer&) = delete;

  // Binds, listens and spawns the accept + worker threads. kUnavailable
  // when the port cannot be bound.
  Status Start();
  uint16_t port() const { return port_; }

  // Graceful shutdown: idempotent, callable from any thread (not from a
  // signal handler — the daemon's handler sets a flag its main loop
  // polls). Returns immediately; Join() waits for the drain.
  void Shutdown();
  void Join();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServerStats stats() const;
  // The pool, for tests asserting hit/eviction behavior.
  const TargetPool& targets() const { return *targets_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  // Owns a connection for its whole life: reads requests in a loop while
  // the client keeps the connection alive (opt-in, capped, idle-bounded).
  void HandleConnection(int fd);
  // Routes one parsed request. `keep_alive` is the server's decision for
  // this response; the return says whether the connection stays open
  // (every error path closes).
  bool HandleRequest(int fd, const HttpRequest& request, bool keep_alive);
  // Routes /check and /batch. `batch` selects the body framing. Returns
  // whether the connection stays open.
  bool HandleCheck(int fd, const std::string& query, const std::string& body, bool batch,
                   bool keep_alive);
  void WriteError(int fd, const Status& status);

  ServerOptions options_;
  std::unique_ptr<TargetPool> targets_;
  std::unique_ptr<BoundedQueue<int>> queue_;
  // Parent of every request token; fired (with the drain deadline) by
  // Shutdown so stragglers cancel cooperatively.
  CancelToken drain_token_;
  std::atomic<bool> draining_{false};
  std::atomic<size_t> inflight_replays_{0};

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  bool started_ = false;

  // Counters (relaxed; read as a snapshot).
  std::atomic<uint64_t> stat_accepted_{0};
  std::atomic<uint64_t> stat_served_ok_{0};
  std::atomic<uint64_t> stat_shed_{0};
  std::atomic<uint64_t> stat_degraded_{0};
  std::atomic<uint64_t> stat_invalid_{0};
  std::atomic<uint64_t> stat_not_found_{0};
  std::atomic<uint64_t> stat_deadline_{0};
  std::atomic<uint64_t> stat_cancelled_{0};
  std::atomic<uint64_t> stat_read_timeouts_{0};
  std::atomic<uint64_t> stat_internal_{0};
  std::atomic<uint64_t> stat_batch_configs_{0};
  std::atomic<uint64_t> stat_keepalive_reuses_{0};
  std::atomic<uint64_t> stat_store_hits_{0};
};

}  // namespace spex

#endif  // SPEX_SERVE_SERVER_H_
