// Hot-target cache for spexcheckd: loaded spex::Session/Target pairs
// keyed by corpus target name, LRU-evicted when the cache is full.
//
// Loading a target (parse -> lower -> constraint inference) costs orders
// of magnitude more than checking one config against it, and a fleet
// checker sees the same handful of targets over and over — so the daemon
// keeps each loaded target hot, together with the campaign snapshot cache
// living inside it (the warm-check fast path the benches measure). Memory
// is the counter-pressure: each entry owns a full Session, so the pool
// holds at most `capacity` of them and evicts the least-recently-used
// entry when a new target needs the slot.
//
// Eviction vs. in-flight requests: Acquire hands out a shared_ptr. The
// pool dropping its reference (eviction) therefore never destroys a
// Session a request is still replaying on — the entry dies when the last
// in-flight check returns its pointer. This is the same pinning idiom
// Target::EnsureCampaign uses for campaign swaps, one level up.
//
// Per-target replay budgets: with `replay_budget` > 0 each entry carries
// a token bucket (capacity = budget, refill = budget tokens/second on the
// injected clock). A dynamic check consumes one token; an empty bucket is
// the per-target degradation signal — the request is served the static
// check instead, so ONE noisy target (a fleet re-checking a broken config
// in a tight loop, a runaway client) degrades only its own traffic while
// every other target keeps full dynamic service. This is fairness at the
// target granularity, beneath the server's global replay cap.
//
// Thread-safety: all members are internally synchronized. Cold loads run
// under the pool mutex, so two concurrent first-requests for different
// targets serialize their loads; acceptable because loads are rare
// (bounded by capacity x target-universe) and keeping it simple keeps it
// obviously correct. Hot acquires are a map lookup + stamp bump. Budget
// consumption takes a tiny per-entry mutex, never the pool mutex.
#ifndef SPEX_SERVE_TARGET_POOL_H_
#define SPEX_SERVE_TARGET_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/api/session.h"
#include "src/support/clock.h"
#include "src/support/status.h"

namespace spex {

class TargetPool {
 public:
  // One hot target. `target` points into `session` and shares its
  // lifetime; both are immutable after load (checks mutate only the
  // campaign internals, which are themselves thread-safe).
  struct Entry {
    std::string name;
    std::unique_ptr<Session> session;
    Target* target = nullptr;
    // Token bucket for the per-target replay budget (armed when the
    // pool's replay_budget > 0). Guarded by budget_mutex; the degraded
    // counter is atomic so /statz reads it without the lock.
    std::mutex budget_mutex;
    double budget_tokens = 0;
    MonotonicTime budget_refilled{};
    std::atomic<uint64_t> budget_degraded{0};
  };

  // Per-target budget state, snapshot for /statz.
  struct BudgetState {
    std::string name;
    double tokens = 0;          // Remaining replay tokens (≤ budget).
    uint64_t degraded = 0;      // Dynamic requests this target degraded.
  };

  // `capacity` is clamped to >= 1. `session_options` seeds every entry's
  // Session (engine knobs, campaign threads). A non-empty `store_dir`
  // attaches a persistent verdict store ("<store_dir>/<name>.vst") to each
  // target on cold load, so verdicts survive evictions AND daemon
  // restarts — a re-loaded target starts warm from disk. Store-open
  // failures degrade to checking without a store; they never fail a load.
  // `replay_budget` arms the per-target token bucket (0 = unlimited);
  // `clock` drives its refill (null = steady clock — tests inject a
  // ManualClock so budget exhaustion is deterministic).
  explicit TargetPool(size_t capacity, SessionOptions session_options = {},
                      std::string store_dir = {}, size_t replay_budget = 0,
                      std::shared_ptr<Clock> clock = nullptr);

  TargetPool(const TargetPool&) = delete;
  TargetPool& operator=(const TargetPool&) = delete;

  // Find-or-load. Unknown corpus names return kNotFound (checked against
  // EvaluatedTargets() up front — corpus FindTarget aborts on unknown
  // names, and an abort is exactly what a serving boundary exists to
  // prevent); a load whose analysis fails returns kInternal with the
  // diagnostics. On success the entry is pinned by the returned
  // shared_ptr for as long as the caller holds it.
  std::shared_ptr<Entry> Acquire(const std::string& name, Status* status);

  // Consumes one replay token from `entry`'s bucket. True = the dynamic
  // replay may run; false = the target's budget is exhausted and THIS
  // request must degrade to static (the entry's degraded counter is
  // already bumped). Always true when budgets are disarmed.
  bool TryConsumeReplayToken(Entry* entry);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t replay_budget() const { return replay_budget_; }
  // Cumulative counters for /statz: cold loads vs. cache hits, evictions.
  size_t loads() const;
  size_t hits() const;
  size_t evictions() const;
  // Budget state of every resident target (empty when budgets disarmed).
  std::vector<BudgetState> BudgetStates() const;

 private:
  struct Slot {
    std::shared_ptr<Entry> entry;
    uint64_t last_used = 0;
  };

  MonotonicTime Now() const { return clock_ ? clock_->Now() : MonotonicNow(); }

  const size_t capacity_;
  const SessionOptions session_options_;
  const std::string store_dir_;
  const size_t replay_budget_;
  const std::shared_ptr<Clock> clock_;
  mutable std::mutex mutex_;
  uint64_t tick_ = 0;  // Monotonic use counter; drives LRU order.
  std::unordered_map<std::string, Slot> slots_;
  size_t loads_ = 0;
  size_t hits_ = 0;
  size_t evictions_ = 0;
};

}  // namespace spex

#endif  // SPEX_SERVE_TARGET_POOL_H_
