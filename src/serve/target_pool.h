// Hot-target cache for spexcheckd: loaded spex::Session/Target pairs
// keyed by corpus target name, LRU-evicted when the cache is full.
//
// Loading a target (parse -> lower -> constraint inference) costs orders
// of magnitude more than checking one config against it, and a fleet
// checker sees the same handful of targets over and over — so the daemon
// keeps each loaded target hot, together with the campaign snapshot cache
// living inside it (the warm-check fast path the benches measure). Memory
// is the counter-pressure: each entry owns a full Session, so the pool
// holds at most `capacity` of them and evicts the least-recently-used
// entry when a new target needs the slot.
//
// Eviction vs. in-flight requests: Acquire hands out a shared_ptr. The
// pool dropping its reference (eviction) therefore never destroys a
// Session a request is still replaying on — the entry dies when the last
// in-flight check returns its pointer. This is the same pinning idiom
// Target::EnsureCampaign uses for campaign swaps, one level up.
//
// Thread-safety: all members are internally synchronized. Cold loads run
// under the pool mutex, so two concurrent first-requests for different
// targets serialize their loads; acceptable because loads are rare
// (bounded by capacity x target-universe) and keeping it simple keeps it
// obviously correct. Hot acquires are a map lookup + stamp bump.
#ifndef SPEX_SERVE_TARGET_POOL_H_
#define SPEX_SERVE_TARGET_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/api/session.h"
#include "src/support/status.h"

namespace spex {

class TargetPool {
 public:
  // One hot target. `target` points into `session` and shares its
  // lifetime; both are immutable after load (checks mutate only the
  // campaign internals, which are themselves thread-safe).
  struct Entry {
    std::string name;
    std::unique_ptr<Session> session;
    Target* target = nullptr;
  };

  // `capacity` is clamped to >= 1. `session_options` seeds every entry's
  // Session (engine knobs, campaign threads). A non-empty `store_dir`
  // attaches a persistent verdict store ("<store_dir>/<name>.vst") to each
  // target on cold load, so verdicts survive evictions AND daemon
  // restarts — a re-loaded target starts warm from disk. Store-open
  // failures degrade to checking without a store; they never fail a load.
  explicit TargetPool(size_t capacity, SessionOptions session_options = {},
                      std::string store_dir = {});

  TargetPool(const TargetPool&) = delete;
  TargetPool& operator=(const TargetPool&) = delete;

  // Find-or-load. Unknown corpus names return kNotFound (checked against
  // EvaluatedTargets() up front — corpus FindTarget aborts on unknown
  // names, and an abort is exactly what a serving boundary exists to
  // prevent); a load whose analysis fails returns kInternal with the
  // diagnostics. On success the entry is pinned by the returned
  // shared_ptr for as long as the caller holds it.
  std::shared_ptr<Entry> Acquire(const std::string& name, Status* status);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  // Cumulative counters for /statz: cold loads vs. cache hits, evictions.
  size_t loads() const;
  size_t hits() const;
  size_t evictions() const;

 private:
  struct Slot {
    std::shared_ptr<Entry> entry;
    uint64_t last_used = 0;
  };

  const size_t capacity_;
  const SessionOptions session_options_;
  const std::string store_dir_;
  mutable std::mutex mutex_;
  uint64_t tick_ = 0;  // Monotonic use counter; drives LRU order.
  std::unordered_map<std::string, Slot> slots_;
  size_t loads_ = 0;
  size_t hits_ = 0;
  size_t evictions_ = 0;
};

}  // namespace spex

#endif  // SPEX_SERVE_TARGET_POOL_H_
