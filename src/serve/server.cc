#include "src/serve/server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/api/batch_check.h"
#include "src/serve/http.h"
#include "src/support/strings.h"

namespace spex {

namespace {

// Closes the connection on every exit path from a worker — leaked fds are
// the quiet way a "contained" failure still costs the process.
class FdCloser {
 public:
  explicit FdCloser(int fd) : fd_(fd) {}
  ~FdCloser() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  FdCloser(const FdCloser&) = delete;
  FdCloser& operator=(const FdCloser&) = delete;

 private:
  int fd_;
};

// RAII slot in the dynamic-replay cap. Not acquiring is not an error —
// it is the degradation signal.
class ReplayGate {
 public:
  ReplayGate(std::atomic<size_t>* inflight, size_t max) : inflight_(inflight) {
    size_t current = inflight_->fetch_add(1, std::memory_order_acq_rel);
    if (current >= max) {
      inflight_->fetch_sub(1, std::memory_order_acq_rel);
      inflight_ = nullptr;
    }
  }
  ~ReplayGate() {
    if (inflight_ != nullptr) {
      inflight_->fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  ReplayGate(const ReplayGate&) = delete;
  ReplayGate& operator=(const ReplayGate&) = delete;
  bool acquired() const { return inflight_ != nullptr; }

 private:
  std::atomic<size_t>* inflight_;
};

void SetRecvTimeout(int fd, std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) {
    return;
  }
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

std::string StatusJson(const Status& status) {
  return std::string("{\"type\":\"error\",\"status\":\"") + StatusCodeName(status.code()) +
         "\",\"message\":\"" + JsonEscape(status.message()) + "\"}\n";
}

// One violation as a JSONL line. `config` tags batch lines with the
// report they belong to; null for single checks.
std::string ViolationJson(const Violation& violation, const std::string* config) {
  std::string line = "{\"type\":\"violation\"";
  if (config != nullptr) {
    line += ",\"config\":\"" + JsonEscape(*config) + "\"";
  }
  line += ",\"file\":\"" + JsonEscape(violation.file) + "\"";
  line += ",\"line\":" + std::to_string(violation.line);
  line += ",\"category\":\"" + std::string(ViolationCategoryName(violation.category)) + "\"";
  line += ",\"param\":\"" + JsonEscape(violation.param) + "\"";
  line += ",\"value\":\"" + JsonEscape(violation.value) + "\"";
  line += ",\"message\":\"" + JsonEscape(violation.message) + "\"";
  if (violation.reaction.has_value()) {
    line += ",\"reaction\":\"" +
            std::string(ReactionCategoryName(*violation.reaction)) + "\"";
    line += ",\"prediction\":\"" + JsonEscape(violation.prediction) + "\"";
  }
  line += "}\n";
  return line;
}

// "=== <name>" framing for /batch bodies. Content before the first frame
// marker must be blank — anything else is a malformed batch, reported as
// such rather than silently dropped.
Status ParseBatchBody(const std::string& body, std::vector<ConfigInput>* out) {
  ConfigInput* current = nullptr;
  uint32_t line_number = 0;
  for (const std::string& line : SplitString(body, '\n')) {
    ++line_number;
    if (line.rfind("=== ", 0) == 0) {
      std::string name(TrimWhitespace(std::string_view(line).substr(4)));
      if (name.empty()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": '===' frame with an empty config name");
      }
      out->push_back(ConfigInput{std::move(name), std::string()});
      current = &out->back();
      continue;
    }
    if (current == nullptr) {
      if (!TrimWhitespace(line).empty()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": content before the first '=== <name>' frame");
      }
      continue;
    }
    current->text += line;
    current->text += '\n';
  }
  if (out->empty()) {
    return Status::InvalidArgument("batch body contains no '=== <name>' frames");
  }
  return Status::Ok();
}

// The request's effective budget: the client may ask for less than the
// server default, never for more (worker time is the server's to ration).
// A server default of zero disables deadlines (trusted-embedder mode).
std::chrono::milliseconds EffectiveDeadline(const std::string& query,
                                            std::chrono::milliseconds server_default) {
  auto requested = ParseInt64(QueryParam(query, "deadline_ms"));
  std::chrono::milliseconds asked{requested.has_value() && *requested > 0 ? *requested : 0};
  if (server_default.count() == 0) {
    return asked;
  }
  if (asked.count() == 0) {
    return server_default;
  }
  return std::min(asked, server_default);
}

}  // namespace

CheckServer::CheckServer(ServerOptions options)
    : options_(std::move(options)),
      targets_(std::make_unique<TargetPool>(options_.target_capacity, options_.session,
                                            options_.store_dir)),
      queue_(std::make_unique<BoundedQueue<int>>(options_.queue_capacity)) {}

CheckServer::~CheckServer() {
  Shutdown();
  Join();
}

Status CheckServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::Unavailable(std::string("bind(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status status = Status::Unavailable(std::string("listen(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  size_t workers = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::Ok();
}

void CheckServer::Shutdown() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    return;
  }
  // The drain order is the containment order: (1) no new work past the
  // listener, (2) queued + in-flight work finishes on its own under the
  // drain deadline, (3) the deadline fires the drain token and every
  // request token parented to it cancels cooperatively at the next poll.
  if (options_.drain_deadline.count() > 0) {
    drain_token_.ArmDeadlineAfter(options_.drain_deadline);
  } else {
    drain_token_.Cancel();
  }
  queue_->Close();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void CheckServer::Join() {
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void CheckServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      // Listener shut down (drain) or hard error: either way the accept
      // loop is done; workers drain whatever is queued.
      return;
    }
    stat_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (queue_->TryPush(fd)) {
      continue;
    }
    // Admission shed: the queue is full (overload) or closed (draining).
    // Answer from the accept thread — cheap, bounded work — so the client
    // learns to back off instead of hanging on an unread socket.
    stat_shed_.fetch_add(1, std::memory_order_relaxed);
    Status status = draining()
                        ? Status::Unavailable("server is draining; no new work accepted")
                        : Status::ResourceExhausted(
                              "request queue full (" +
                              std::to_string(queue_->capacity()) + " pending); retry later");
    int http = HttpStatusFor(status.code());
    WriteHttpResponse(fd, http, HttpReasonFor(http), "application/json", StatusJson(status),
                      {{"Retry-After", "1"}});
    ::close(fd);
  }
}

void CheckServer::WorkerLoop() {
  while (true) {
    std::optional<int> fd = queue_->Pop();
    if (!fd.has_value()) {
      return;  // Closed and drained: the worker-exit signal.
    }
    HandleConnection(*fd);
  }
}

void CheckServer::WriteError(int fd, const Status& status) {
  int http = HttpStatusFor(status.code());
  std::vector<std::pair<std::string, std::string>> extra;
  if (http == 503) {
    extra.emplace_back("Retry-After", "1");
  }
  WriteHttpResponse(fd, http, HttpReasonFor(http), "application/json", StatusJson(status),
                    extra);
}

void CheckServer::HandleConnection(int fd) {
  FdCloser closer(fd);
  size_t served = 0;
  while (true) {
    // First request: the slow-loris read timeout. Reused connection: the
    // (usually shorter) keep-alive idle bound — a parked client must not
    // hold a worker hostage between requests.
    SetRecvTimeout(fd, served == 0 ? options_.read_timeout : options_.keepalive_idle_timeout);
    HttpRequest request;
    Status read_status = ReadHttpRequest(fd, options_.max_body_bytes, &request);
    if (!read_status.ok()) {
      if (read_status.code() == StatusCode::kDeadlineExceeded) {
        if (served > 0 && request.wire_bytes == 0) {
          // Idle keep-alive expiry: the client simply had nothing more to
          // send. Close silently — this is the protocol working, not a
          // slow-loris cutoff.
          return;
        }
        // Slow-loris cutoff: a client that cannot finish its request
        // within the read timeout gets 408 and its worker back.
        stat_read_timeouts_.fetch_add(1, std::memory_order_relaxed);
        WriteHttpResponse(fd, 408, HttpReasonFor(408), "application/json",
                          StatusJson(read_status));
      } else if (read_status.code() == StatusCode::kInvalidArgument) {
        stat_invalid_.fetch_add(1, std::memory_order_relaxed);
        WriteError(fd, read_status);
      }
      // kUnavailable (peer vanished): nobody left to answer.
      return;
    }
    if (served > 0) {
      stat_keepalive_reuses_.fetch_add(1, std::memory_order_relaxed);
    }
    // The server's keep-alive decision for this response: the client must
    // opt in, the per-connection request cap must have room, and a
    // draining server wants its sockets back.
    const bool keep_alive = RequestWantsKeepAlive(request) &&
                            served + 1 < options_.keepalive_max_requests && !draining();
    if (!HandleRequest(fd, request, keep_alive)) {
      return;
    }
    ++served;
  }
}

bool CheckServer::HandleRequest(int fd, const HttpRequest& request, bool keep_alive) {
  auto [path, query_view] = SplitRequestTarget(request.path);
  std::string query(query_view);
  if (request.method == "GET" && path == "/healthz") {
    if (draining()) {
      WriteHttpResponse(fd, 503, HttpReasonFor(503), "text/plain", "draining\n",
                        {{"Retry-After", "1"}});
      return false;
    }
    WriteHttpResponse(fd, 200, "OK", "text/plain", "ok\n", {}, keep_alive);
    return keep_alive;
  }
  if (request.method == "GET" && path == "/statz") {
    ServerStats snapshot = stats();
    std::string body = "{";
    auto field = [&](const char* name, uint64_t value, bool first = false) {
      if (!first) {
        body += ',';
      }
      body += '"';
      body += name;
      body += "\":";
      body += std::to_string(value);
    };
    field("accepted", snapshot.accepted, true);
    field("served_ok", snapshot.served_ok);
    field("shed", snapshot.shed);
    field("degraded", snapshot.degraded);
    field("invalid_requests", snapshot.invalid_requests);
    field("not_found", snapshot.not_found);
    field("deadline_exceeded", snapshot.deadline_exceeded);
    field("cancelled", snapshot.cancelled);
    field("read_timeouts", snapshot.read_timeouts);
    field("internal_errors", snapshot.internal_errors);
    field("batch_configs", snapshot.batch_configs);
    field("keepalive_reuses", snapshot.keepalive_reuses);
    field("store_hits", snapshot.store_hits);
    field("queue_depth", queue_->size());
    field("inflight_replays", inflight_replays_.load(std::memory_order_relaxed));
    field("targets_loaded", targets_->size());
    field("target_loads", targets_->loads());
    field("target_hits", targets_->hits());
    field("target_evictions", targets_->evictions());
    body += ",\"draining\":";
    body += draining() ? "true" : "false";
    body += "}\n";
    WriteHttpResponse(fd, 200, "OK", "application/json", body, {}, keep_alive);
    return keep_alive;
  }
  if (request.method == "POST" && (path == "/check" || path == "/batch")) {
    return HandleCheck(fd, query, request.body, path == "/batch", keep_alive);
  }
  stat_not_found_.fetch_add(1, std::memory_order_relaxed);
  WriteError(fd, Status::NotFound("no route for " + request.method + " " +
                                  std::string(path)));
  return false;
}

bool CheckServer::HandleCheck(int fd, const std::string& query, const std::string& body,
                              bool batch, bool keep_alive) {
  // The whole request path runs under catch-all containment: a thrown
  // bad_alloc or logic error becomes this request's 500, never the
  // daemon's last words.
  try {
    std::string target_name = QueryParam(query, "target");
    if (target_name.empty()) {
      stat_invalid_.fetch_add(1, std::memory_order_relaxed);
      WriteError(fd, Status::InvalidArgument("missing required query parameter 'target'"));
      return false;
    }
    Status status;
    std::shared_ptr<TargetPool::Entry> entry = targets_->Acquire(target_name, &status);
    if (!status.ok()) {
      (status.code() == StatusCode::kNotFound ? stat_not_found_ : stat_internal_)
          .fetch_add(1, std::memory_order_relaxed);
      WriteError(fd, status);
      return false;
    }

    const bool want_dynamic = QueryParam(query, "mode") != "static";
    CancelToken token(&drain_token_);
    std::chrono::milliseconds deadline =
        EffectiveDeadline(query, options_.default_deadline);
    if (deadline.count() > 0) {
      token.ArmDeadlineAfter(deadline);
    }
    options_.faults.OnRequestToken(&token);

    CheckOptions check;
    check.mode = want_dynamic ? CheckMode::kDynamic : CheckMode::kStatic;
    check.cancel = &token;
    auto replay_ms = ParseInt64(QueryParam(query, "replay_deadline_ms"));
    if (replay_ms.has_value() && *replay_ms > 0) {
      check.deadline = std::chrono::milliseconds(*replay_ms);
    }

    // Graceful degradation: at the replay cap a dynamic request is served
    // statically instead of queueing behind slow replays or being shed —
    // the static verdict is still the paper's pre-flight check, delivered
    // in microseconds, and the response says it was degraded.
    ReplayGate gate(&inflight_replays_,
                    want_dynamic ? options_.max_inflight_replays : SIZE_MAX);
    bool degraded = false;
    if (want_dynamic && !gate.acquired()) {
      check.mode = CheckMode::kStatic;
      degraded = true;
      stat_degraded_.fetch_add(1, std::memory_order_relaxed);
    }
    options_.faults.BeforeCheck();

    std::string response;
    if (!batch) {
      Status valid = ValidateConfigText(body, entry->target->dialect());
      if (!valid.ok()) {
        stat_invalid_.fetch_add(1, std::memory_order_relaxed);
        WriteError(fd, valid);
        return false;
      }
      std::string name = QueryParam(query, "name");
      if (name.empty()) {
        name = "config";
      }
      // Routed through a 1-config batch rather than CheckConfig: verdicts
      // are bit-identical (the batch identity guarantee), and the
      // BatchSummary carries the verdict-store counters a bare CheckConfig
      // cannot report — so /check can say whether it was served from disk.
      std::vector<ConfigInput> single;
      single.push_back(ConfigInput{name, body});
      BatchOptions single_options;
      single_options.check = check;
      single_options.num_threads = 1;
      BatchSummary single_summary = entry->target->CheckConfigBatch(single, single_options);
      stat_store_hits_.fetch_add(single_summary.store_hits, std::memory_order_relaxed);
      const std::vector<Violation>& violations = single_summary.reports.front().violations;
      for (const Violation& violation : violations) {
        response += ViolationJson(violation, nullptr);
      }
      Status final = token.cancelled()
                         ? (token.reason() == CancelToken::Reason::kDeadline
                                ? Status::DeadlineExceeded("request budget exhausted mid-check")
                                : Status::Cancelled("request cancelled mid-check"))
                         : Status::Ok();
      response += "{\"type\":\"summary\",\"status\":\"";
      response += StatusCodeName(final.code());
      response += "\",\"target\":\"" + JsonEscape(target_name) + "\"";
      response += ",\"mode\":\"";
      response += check.mode == CheckMode::kDynamic ? "dynamic" : "static";
      response += "\",\"violations\":" + std::to_string(violations.size());
      response += ",\"degraded\":";
      response += degraded ? "true" : "false";
      // cached: every suspect execution was served from the persistent
      // verdict store — nothing replayed for this request.
      const bool cached = single_summary.total_suspects > 0 &&
                          single_summary.unique_replays == 0 &&
                          single_summary.store_hits > 0;
      response += ",\"cached\":";
      response += cached ? "true" : "false";
      response += "}\n";
      int http = HttpStatusFor(final.code());
      (final.ok() ? stat_served_ok_
                  : final.code() == StatusCode::kDeadlineExceeded ? stat_deadline_
                                                                  : stat_cancelled_)
          .fetch_add(1, std::memory_order_relaxed);
      // Only a clean verdict keeps the connection: a request that blew its
      // budget leaves the connection in a state not worth reasoning about.
      const bool stay_open = keep_alive && final.ok();
      WriteHttpResponse(fd, http, HttpReasonFor(http), "application/jsonl", response, {},
                        stay_open);
      return stay_open;
    }

    std::vector<ConfigInput> inputs;
    Status framed = ParseBatchBody(body, &inputs);
    if (!framed.ok()) {
      stat_invalid_.fetch_add(1, std::memory_order_relaxed);
      WriteError(fd, framed);
      return false;
    }
    BatchOptions batch_options;
    batch_options.check = check;
    batch_options.num_threads = 1;  // Concurrency comes from the worker pool.
    BatchSummary summary = entry->target->CheckConfigBatch(inputs, batch_options);
    stat_batch_configs_.fetch_add(inputs.size(), std::memory_order_relaxed);
    stat_store_hits_.fetch_add(summary.store_hits, std::memory_order_relaxed);
    for (const ConfigReport& report : summary.reports) {
      for (const Violation& violation : report.violations) {
        response += ViolationJson(violation, &report.name);
      }
      response += "{\"type\":\"report\",\"index\":" + std::to_string(report.index);
      response += ",\"config\":\"" + JsonEscape(report.name) + "\"";
      response += ",\"status\":\"";
      response += StatusCodeName(report.status.code());
      response += "\"";
      if (!report.status.ok()) {
        response += ",\"error\":\"" + JsonEscape(report.status.message()) + "\"";
      }
      response += ",\"violations\":" + std::to_string(report.violations.size());
      response += ",\"suspects\":" + std::to_string(report.suspects);
      response += ",\"shared_replays\":" + std::to_string(report.shared_replays);
      response += "}\n";
    }
    Status final = token.cancelled()
                       ? (token.reason() == CancelToken::Reason::kDeadline
                              ? Status::DeadlineExceeded("request budget exhausted mid-batch")
                              : Status::Cancelled("request cancelled mid-batch"))
                       : Status::Ok();
    response += "{\"type\":\"batch_summary\",\"status\":\"";
    response += StatusCodeName(final.code());
    response += "\",\"configs\":" + std::to_string(summary.configs_checked);
    response += ",\"errors\":" + std::to_string(summary.configs_with_errors);
    response += ",\"violations\":" + std::to_string(summary.total_violations);
    response += ",\"total_suspects\":" + std::to_string(summary.total_suspects);
    response += ",\"unique_replays\":" + std::to_string(summary.unique_replays);
    response += ",\"degraded\":";
    response += degraded ? "true" : "false";
    response += ",\"cached\":";
    response += (summary.total_suspects > 0 && summary.unique_replays == 0 &&
                 summary.store_hits > 0)
                    ? "true"
                    : "false";
    response += "}\n";
    int http = HttpStatusFor(final.code());
    (final.ok() ? stat_served_ok_
                : final.code() == StatusCode::kDeadlineExceeded ? stat_deadline_
                                                                : stat_cancelled_)
        .fetch_add(1, std::memory_order_relaxed);
    const bool stay_open = keep_alive && final.ok();
    WriteHttpResponse(fd, http, HttpReasonFor(http), "application/jsonl", response, {},
                      stay_open);
    return stay_open;
  } catch (const std::exception& error) {
    stat_internal_.fetch_add(1, std::memory_order_relaxed);
    WriteError(fd, Status::Internal(std::string("contained request failure: ") +
                                    error.what()));
  } catch (...) {
    stat_internal_.fetch_add(1, std::memory_order_relaxed);
    WriteError(fd, Status::Internal("contained request failure of unknown type"));
  }
  return false;
}

ServerStats CheckServer::stats() const {
  ServerStats snapshot;
  snapshot.accepted = stat_accepted_.load(std::memory_order_relaxed);
  snapshot.served_ok = stat_served_ok_.load(std::memory_order_relaxed);
  snapshot.shed = stat_shed_.load(std::memory_order_relaxed);
  snapshot.degraded = stat_degraded_.load(std::memory_order_relaxed);
  snapshot.invalid_requests = stat_invalid_.load(std::memory_order_relaxed);
  snapshot.not_found = stat_not_found_.load(std::memory_order_relaxed);
  snapshot.deadline_exceeded = stat_deadline_.load(std::memory_order_relaxed);
  snapshot.cancelled = stat_cancelled_.load(std::memory_order_relaxed);
  snapshot.read_timeouts = stat_read_timeouts_.load(std::memory_order_relaxed);
  snapshot.internal_errors = stat_internal_.load(std::memory_order_relaxed);
  snapshot.batch_configs = stat_batch_configs_.load(std::memory_order_relaxed);
  snapshot.keepalive_reuses = stat_keepalive_reuses_.load(std::memory_order_relaxed);
  snapshot.store_hits = stat_store_hits_.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace spex
