#include "src/serve/server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/api/batch_check.h"
#include "src/api/config_set.h"
#include "src/serve/http.h"
#include "src/support/strings.h"

namespace spex {

namespace {

// RAII slot in the dynamic-replay cap. Not acquiring is not an error —
// it is the degradation signal.
class ReplayGate {
 public:
  ReplayGate(std::atomic<size_t>* inflight, size_t max) : inflight_(inflight) {
    size_t current = inflight_->fetch_add(1, std::memory_order_acq_rel);
    if (current >= max) {
      inflight_->fetch_sub(1, std::memory_order_acq_rel);
      inflight_ = nullptr;
    }
  }
  ~ReplayGate() {
    if (inflight_ != nullptr) {
      inflight_->fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  ReplayGate(const ReplayGate&) = delete;
  ReplayGate& operator=(const ReplayGate&) = delete;
  bool acquired() const { return inflight_ != nullptr; }

 private:
  std::atomic<size_t>* inflight_;
};

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

std::string StatusJson(const Status& status) {
  return std::string("{\"type\":\"error\",\"status\":\"") + StatusCodeName(status.code()) +
         "\",\"message\":\"" + JsonEscape(status.message()) + "\"}\n";
}

// One violation as a JSONL line. `config` tags batch lines with the
// report they belong to; null for single checks.
std::string ViolationJson(const Violation& violation, const std::string* config) {
  std::string line = "{\"type\":\"violation\"";
  if (config != nullptr) {
    line += ",\"config\":\"" + JsonEscape(*config) + "\"";
  }
  line += ",\"file\":\"" + JsonEscape(violation.file) + "\"";
  line += ",\"line\":" + std::to_string(violation.line);
  line += ",\"category\":\"" + std::string(ViolationCategoryName(violation.category)) + "\"";
  line += ",\"param\":\"" + JsonEscape(violation.param) + "\"";
  line += ",\"value\":\"" + JsonEscape(violation.value) + "\"";
  line += ",\"message\":\"" + JsonEscape(violation.message) + "\"";
  if (!violation.override_note.empty()) {
    line += ",\"note\":\"" + JsonEscape(violation.override_note) + "\"";
  }
  if (violation.reaction.has_value()) {
    line += ",\"reaction\":\"" +
            std::string(ReactionCategoryName(*violation.reaction)) + "\"";
    line += ",\"prediction\":\"" + JsonEscape(violation.prediction) + "\"";
  }
  line += "}\n";
  return line;
}

// "=== <name>" framing for /batch bodies. Content before the first frame
// marker must be blank — anything else is a malformed batch, reported as
// such rather than silently dropped.
Status ParseBatchBody(const std::string& body, std::vector<ConfigInput>* out) {
  ConfigInput* current = nullptr;
  uint32_t line_number = 0;
  for (const std::string& line : SplitString(body, '\n')) {
    ++line_number;
    if (line.rfind("=== ", 0) == 0) {
      std::string name(TrimWhitespace(std::string_view(line).substr(4)));
      if (name.empty()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": '===' frame with an empty config name");
      }
      out->push_back(ConfigInput{std::move(name), std::string()});
      current = &out->back();
      continue;
    }
    if (current == nullptr) {
      if (!TrimWhitespace(line).empty()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": content before the first '=== <name>' frame");
      }
      continue;
    }
    current->text += line;
    current->text += '\n';
  }
  if (out->empty()) {
    return Status::InvalidArgument("batch body contains no '=== <name>' frames");
  }
  return Status::Ok();
}

// The request's effective budget: the client may ask for less than the
// server default, never for more (worker time is the server's to ration).
// A server default of zero disables deadlines (trusted-embedder mode).
std::chrono::milliseconds EffectiveDeadline(const std::string& query,
                                            std::chrono::milliseconds server_default) {
  auto requested = ParseInt64(QueryParam(query, "deadline_ms"));
  std::chrono::milliseconds asked{requested.has_value() && *requested > 0 ? *requested : 0};
  if (server_default.count() == 0) {
    return asked;
  }
  if (asked.count() == 0) {
    return server_default;
  }
  return std::min(asked, server_default);
}

}  // namespace

// All connection accounting lives here: whoever destroys the Conn —
// worker after a closed response, event loop on expiry, drain cleanup,
// a shed race — the fd is closed and the gauges stay truthful.
CheckServer::Conn::~Conn() {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

CheckServer::CheckServer(ServerOptions options)
    : options_(std::move(options)),
      targets_(std::make_unique<TargetPool>(options_.target_capacity, options_.session,
                                            options_.store_dir,
                                            options_.per_target_replay_budget,
                                            options_.clock)),
      queue_(std::make_unique<BoundedQueue<std::unique_ptr<Conn>>>(options_.queue_capacity)) {}

CheckServer::~CheckServer() {
  Shutdown();
  Join();
}

MonotonicTime CheckServer::Now() const {
  return options_.clock ? options_.clock->Now() : MonotonicNow();
}

void CheckServer::Wake() {
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
}

Status CheckServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::Unavailable(std::string("bind(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status status = Status::Unavailable(std::string("listen(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status status = Status::Unavailable(std::string("epoll/eventfd: ") + std::strerror(errno));
    Join();  // Closes whatever opened.
    return status;
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event);
  event.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);

  // A ManualClock only moves when a test advances it; the waker turns
  // that advance into an epoll wakeup so armed deadlines are re-checked.
  if (auto* manual = dynamic_cast<ManualClock*>(options_.clock.get())) {
    manual->SetWaker([this] { Wake(); });
  }

  size_t workers = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  event_thread_ = std::thread([this] { EventLoop(); });
  started_ = true;
  return Status::Ok();
}

void CheckServer::Shutdown() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    return;
  }
  // The drain order is the containment order: (1) no new work past the
  // listener (the event loop also closes idle + mid-read connections —
  // their requests were never admitted), (2) queued + in-flight work
  // finishes on its own under the drain deadline, (3) the deadline fires
  // the drain token and every request token parented to it cancels
  // cooperatively at the next poll.
  if (options_.drain_deadline.count() > 0) {
    drain_token_.ArmDeadlineAfter(options_.drain_deadline);
  } else {
    drain_token_.Cancel();
  }
  queue_->Close();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  Wake();
}

void CheckServer::Join() {
  if (event_thread_.joinable()) {
    event_thread_.join();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  // Workers racing the drain may have handed connections back after the
  // event loop exited; destroy them now (the Conn destructor closes).
  {
    std::lock_guard<std::mutex> lock(returned_mutex_);
    for (auto& conn : returned_) {
      DestroyConn(std::move(conn));
    }
    returned_.clear();
  }
  if (auto* manual = dynamic_cast<ManualClock*>(options_.clock.get())) {
    manual->SetWaker(nullptr);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Event-loop thread: accept, read, expire. Never checks a config, never
// blocks on a client.

void CheckServer::EventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (true) {
    int timeout_ms = -1;
    if (!deadlines_.empty()) {
      MonotonicTime now = Now();
      MonotonicTime next = deadlines_.next_deadline();
      if (next <= now) {
        timeout_ms = 0;
      } else {
        auto delta =
            std::chrono::duration_cast<std::chrono::milliseconds>(next - now).count() + 1;
        timeout_ms = static_cast<int>(std::min<long long>(delta, 60'000));
      }
    }
    int ready = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // epoll fd gone: the server is being torn down.
    }
    for (int i = 0; i < ready; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        ssize_t ignored = ::read(wake_fd_, &drained, sizeof(drained));
        (void)ignored;
      } else if (fd == listen_fd_) {
        HandleAccept();
      } else {
        HandleReadable(fd);
      }
    }
    AdoptReturnedConns();
    if (draining()) {
      break;
    }
    ExpireDeadlines(Now());
  }
  // Drain: every connection still owned by the event loop holds work that
  // was never admitted (partial requests, parked keep-alives) — close
  // them all; admitted requests finish on the workers.
  for (auto& [fd, conn] : conns_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    DestroyConn(std::move(conn));
  }
  conns_.clear();
  AdoptReturnedConns();  // Destroys (draining) whatever workers returned.
}

void CheckServer::HandleAccept() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN (no more arrivals) or listener shut down.
    }
    stat_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (draining()) {
      ShedConn(fd, Status::Unavailable("server is draining; no new work accepted"));
      continue;
    }
    if (gauge_open_connections_.load(std::memory_order_relaxed) >= options_.max_connections) {
      // Connection-slot admission: cheap state, but still bounded — a
      // slow-loris herd must exhaust this cap, not the process's fds.
      ShedConn(fd, Status::ResourceExhausted(
                       "connection limit (" + std::to_string(options_.max_connections) +
                       " open) reached; retry later"));
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = ++next_conn_id_;
    conn->parser = std::make_unique<HttpParser>(options_.max_body_bytes);
    gauge_open_connections_.fetch_add(1, std::memory_order_relaxed);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
    Conn* raw = conn.get();
    conns_[fd] = std::move(conn);
    // The slow-loris budget starts at accept: one complete request within
    // read_timeout, or 408.
    ArmConnDeadline(raw, options_.read_timeout);
  }
}

void CheckServer::HandleReadable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) {
    return;  // Stale event for a connection already dispatched or closed.
  }
  Conn* conn = it->second.get();
  char chunk[16384];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;  // Read everything available; request still incomplete.
      }
      // Hard socket error mid-request: nobody left to answer.
      if (!conn->idle && conn->parser->wire_bytes() > 0) {
        stat_client_aborts_.fetch_add(1, std::memory_order_relaxed);
      }
      CloseConn(fd);
      return;
    }
    if (n == 0) {
      // Peer closed. An idle keep-alive close is the protocol working; a
      // close mid-request (partial headers, mid-body) is a client abort —
      // count it, clean up, and the pool never hears about it.
      if (!conn->idle && conn->parser->wire_bytes() > 0) {
        stat_client_aborts_.fetch_add(1, std::memory_order_relaxed);
      }
      CloseConn(fd);
      return;
    }
    if (conn->idle) {
      // First bytes of the next request on a reused connection: the idle
      // bound is over, the read bound begins.
      conn->idle = false;
      gauge_idle_keepalive_.fetch_sub(1, std::memory_order_relaxed);
      ArmConnDeadline(conn, options_.read_timeout);
    }
    HttpParser::State state = conn->parser->Consume(chunk, static_cast<size_t>(n));
    if (state == HttpParser::State::kError) {
      stat_invalid_.fetch_add(1, std::memory_order_relaxed);
      Status error = conn->parser->error();
      int http = HttpStatusFor(error.code());
      WriteHttpResponse(fd, http, HttpReasonFor(http), "application/json", StatusJson(error),
                        {}, false, /*eagain_timeout_ms=*/0);
      CloseConn(fd);
      return;
    }
    if (state == HttpParser::State::kComplete) {
      DispatchConn(fd);
      return;
    }
  }
  if (conn->parser->wire_bytes() > 0) {
    stat_partial_reads_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CheckServer::ArmConnDeadline(Conn* conn, std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) {
    conn->deadline = MonotonicTime();  // Disarmed; stale heap entries never match.
    return;
  }
  conn->deadline = Now() + timeout;
  deadlines_.Push(conn->deadline, DeadlineEntry{conn->fd, conn->id, conn->deadline});
}

void CheckServer::ExpireDeadlines(MonotonicTime now) {
  deadlines_.PopExpired(now, [&](DeadlineEntry entry) {
    auto it = conns_.find(entry.fd);
    if (it == conns_.end()) {
      return;  // Connection already dispatched or closed: lazy-cancelled.
    }
    Conn* conn = it->second.get();
    if (conn->id != entry.conn_id || conn->deadline != entry.armed) {
      return;  // Re-armed since this entry was pushed: superseded.
    }
    if (conn->idle) {
      // Idle keep-alive expiry: the client simply had nothing more to
      // send. Close silently — this is the protocol working, not a
      // slow-loris cutoff.
      CloseConn(entry.fd);
      return;
    }
    // Slow-loris cutoff: a client that cannot finish its request within
    // the read timeout gets 408 and its connection slot back.
    stat_read_timeouts_.fetch_add(1, std::memory_order_relaxed);
    WriteHttpResponse(entry.fd, 408, HttpReasonFor(408), "application/json",
                      StatusJson(Status::DeadlineExceeded("timed out reading request")), {},
                      false, /*eagain_timeout_ms=*/0);
    CloseConn(entry.fd);
  });
}

void CheckServer::AdoptReturnedConns() {
  std::vector<std::unique_ptr<Conn>> adopted;
  {
    std::lock_guard<std::mutex> lock(returned_mutex_);
    adopted.swap(returned_);
  }
  for (auto& conn : adopted) {
    if (draining()) {
      DestroyConn(std::move(conn));
      continue;
    }
    conn->idle = true;
    gauge_idle_keepalive_.fetch_add(1, std::memory_order_relaxed);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &event);
    Conn* raw = conn.get();
    conns_[conn->fd] = std::move(conn);
    ArmConnDeadline(raw, options_.keepalive_idle_timeout);
  }
}

void CheckServer::DispatchConn(int fd) {
  auto node = conns_.extract(fd);
  if (node.empty()) {
    return;
  }
  std::unique_ptr<Conn> conn = std::move(node.mapped());
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  conn->deadline = MonotonicTime();  // Socket deadlines are the front end's; disarm.
  // The event loop is the queue's only producer, so this pre-check is
  // authoritative: consumers only ever shrink the queue under us.
  bool admitted = false;
  if (!draining() && queue_->size() < queue_->capacity()) {
    admitted = queue_->TryPush(std::move(conn));
  }
  if (admitted) {
    return;
  }
  // Admission shed: the queue is full (overload) or closed (draining).
  // Answer from the event loop — cheap, bounded, zero-wait — so the
  // client learns to back off instead of hanging on an unread socket.
  stat_shed_.fetch_add(1, std::memory_order_relaxed);
  if (conn == nullptr) {
    return;  // Lost the drain race inside TryPush; the Conn closed itself.
  }
  Status status = draining()
                      ? Status::Unavailable("server is draining; no new work accepted")
                      : Status::ResourceExhausted(
                            "request queue full (" +
                            std::to_string(queue_->capacity()) + " pending); retry later");
  int http = HttpStatusFor(status.code());
  WriteHttpResponse(fd, http, HttpReasonFor(http), "application/json", StatusJson(status),
                    {{"Retry-After", "1"}}, false, /*eagain_timeout_ms=*/0);
  DestroyConn(std::move(conn));
}

void CheckServer::ShedConn(int fd, const Status& status) {
  stat_shed_.fetch_add(1, std::memory_order_relaxed);
  int http = HttpStatusFor(status.code());
  WriteHttpResponse(fd, http, HttpReasonFor(http), "application/json", StatusJson(status),
                    {{"Retry-After", "1"}}, false, /*eagain_timeout_ms=*/0);
  ::close(fd);
}

void CheckServer::CloseConn(int fd) {
  auto node = conns_.extract(fd);
  if (node.empty()) {
    return;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  DestroyConn(std::move(node.mapped()));
}

void CheckServer::DestroyConn(std::unique_ptr<Conn> conn) {
  if (conn == nullptr) {
    return;
  }
  if (conn->idle) {
    gauge_idle_keepalive_.fetch_sub(1, std::memory_order_relaxed);
  }
  gauge_open_connections_.fetch_sub(1, std::memory_order_relaxed);
  conn.reset();  // ~Conn closes the fd.
}

// ---------------------------------------------------------------------------
// Worker threads: check configs, write responses. Never read a socket.

void CheckServer::WorkerLoop() {
  while (true) {
    std::optional<std::unique_ptr<Conn>> conn = queue_->Pop();
    if (!conn.has_value()) {
      return;  // Closed and drained: the worker-exit signal.
    }
    ServeConn(std::move(*conn));
  }
}

void CheckServer::ServeConn(std::unique_ptr<Conn> conn) {
  const HttpRequest& request = conn->parser->request();
  if (conn->served > 0) {
    stat_keepalive_reuses_.fetch_add(1, std::memory_order_relaxed);
  }
  // The server's keep-alive decision for this response: the client must
  // opt in, the per-connection request cap must have room, and a
  // draining server wants its sockets back.
  const bool keep_alive = RequestWantsKeepAlive(request) &&
                          conn->served + 1 < options_.keepalive_max_requests && !draining();
  const bool stay_open = HandleRequest(conn->fd, request, keep_alive);
  if (!stay_open || draining()) {
    DestroyConn(std::move(conn));
    return;
  }
  // Keep-alive: hand the connection back to the event loop, which owns
  // idle time. The worker is free the moment the response is written.
  ++conn->served;
  conn->parser->Reset();
  {
    std::lock_guard<std::mutex> lock(returned_mutex_);
    returned_.push_back(std::move(conn));
  }
  Wake();
}

void CheckServer::WriteError(int fd, const Status& status) {
  int http = HttpStatusFor(status.code());
  std::vector<std::pair<std::string, std::string>> extra;
  if (http == 503) {
    extra.emplace_back("Retry-After", "1");
  }
  WriteHttpResponse(fd, http, HttpReasonFor(http), "application/json", StatusJson(status),
                    extra);
}

bool CheckServer::HandleRequest(int fd, const HttpRequest& request, bool keep_alive) {
  auto [path, query_view] = SplitRequestTarget(request.path);
  std::string query(query_view);
  if (request.method == "GET" && path == "/healthz") {
    if (draining()) {
      WriteHttpResponse(fd, 503, HttpReasonFor(503), "text/plain", "draining\n",
                        {{"Retry-After", "1"}});
      return false;
    }
    WriteHttpResponse(fd, 200, "OK", "text/plain", "ok\n", {}, keep_alive);
    return keep_alive;
  }
  if (request.method == "GET" && path == "/statz") {
    ServerStats snapshot = stats();
    std::string body = "{";
    auto field = [&](const char* name, uint64_t value, bool first = false) {
      if (!first) {
        body += ',';
      }
      body += '"';
      body += name;
      body += "\":";
      body += std::to_string(value);
    };
    field("accepted", snapshot.accepted, true);
    field("served_ok", snapshot.served_ok);
    field("shed", snapshot.shed);
    field("degraded", snapshot.degraded);
    field("budget_degraded", snapshot.budget_degraded);
    field("invalid_requests", snapshot.invalid_requests);
    field("not_found", snapshot.not_found);
    field("deadline_exceeded", snapshot.deadline_exceeded);
    field("cancelled", snapshot.cancelled);
    field("read_timeouts", snapshot.read_timeouts);
    field("internal_errors", snapshot.internal_errors);
    field("batch_configs", snapshot.batch_configs);
    field("keepalive_reuses", snapshot.keepalive_reuses);
    field("store_hits", snapshot.store_hits);
    field("partial_reads", snapshot.partial_reads);
    field("client_aborts", snapshot.client_aborts);
    field("open_connections", snapshot.open_connections);
    field("idle_keepalive", snapshot.idle_keepalive);
    field("max_connections", options_.max_connections);
    field("queue_depth", queue_->size());
    field("inflight_replays", inflight_replays_.load(std::memory_order_relaxed));
    field("per_target_replay_budget", targets_->replay_budget());
    field("targets_loaded", targets_->size());
    field("target_loads", targets_->loads());
    field("target_hits", targets_->hits());
    field("target_evictions", targets_->evictions());
    // Per-target budget state: how many replay tokens each hot target has
    // left and how often its traffic degraded — the operator's view of
    // "which target is the noisy one".
    body += ",\"target_budget\":[";
    bool first_target = true;
    for (const TargetPool::BudgetState& state : targets_->BudgetStates()) {
      if (!first_target) {
        body += ',';
      }
      first_target = false;
      body += "{\"name\":\"" + JsonEscape(state.name) + "\"";
      body += ",\"tokens\":" + std::to_string(static_cast<uint64_t>(state.tokens));
      body += ",\"degraded\":" + std::to_string(state.degraded) + "}";
    }
    body += "]";
    body += ",\"draining\":";
    body += draining() ? "true" : "false";
    body += "}\n";
    WriteHttpResponse(fd, 200, "OK", "application/json", body, {}, keep_alive);
    return keep_alive;
  }
  if (request.method == "POST" && (path == "/check" || path == "/batch")) {
    return HandleCheck(fd, query, request.body, path == "/batch", keep_alive);
  }
  stat_not_found_.fetch_add(1, std::memory_order_relaxed);
  WriteError(fd, Status::NotFound("no route for " + request.method + " " +
                                  std::string(path)));
  return false;
}

bool CheckServer::HandleCheck(int fd, const std::string& query, const std::string& body,
                              bool batch, bool keep_alive, TargetPool::Entry*) {
  // The whole request path runs under catch-all containment: a thrown
  // bad_alloc or logic error becomes this request's 500, never the
  // daemon's last words.
  try {
    std::string target_name = QueryParam(query, "target");
    if (target_name.empty()) {
      stat_invalid_.fetch_add(1, std::memory_order_relaxed);
      WriteError(fd, Status::InvalidArgument("missing required query parameter 'target'"));
      return false;
    }
    Status status;
    std::shared_ptr<TargetPool::Entry> entry = targets_->Acquire(target_name, &status);
    if (!status.ok()) {
      (status.code() == StatusCode::kNotFound ? stat_not_found_ : stat_internal_)
          .fetch_add(1, std::memory_order_relaxed);
      WriteError(fd, status);
      return false;
    }

    const bool want_dynamic = QueryParam(query, "mode") != "static";
    CancelToken token(&drain_token_);
    std::chrono::milliseconds deadline =
        EffectiveDeadline(query, options_.default_deadline);
    if (deadline.count() > 0) {
      token.ArmDeadlineAfter(deadline);
    }
    options_.faults.OnRequestToken(&token);

    CheckOptions check;
    check.mode = want_dynamic ? CheckMode::kDynamic : CheckMode::kStatic;
    check.cancel = &token;
    auto replay_ms = ParseInt64(QueryParam(query, "replay_deadline_ms"));
    if (replay_ms.has_value() && *replay_ms > 0) {
      check.deadline = std::chrono::milliseconds(*replay_ms);
    }

    // Graceful degradation, two gates before a dynamic replay may run:
    // the target's own token bucket (one noisy target degrades alone),
    // then the global in-flight cap (the whole daemon's replay budget).
    // At either, a dynamic request is served statically instead of
    // queueing behind slow replays or being shed — the static verdict is
    // still the paper's pre-flight check, delivered in microseconds, and
    // the response says it was degraded.
    bool degraded = false;
    if (want_dynamic && !targets_->TryConsumeReplayToken(entry.get())) {
      check.mode = CheckMode::kStatic;
      degraded = true;
      stat_degraded_.fetch_add(1, std::memory_order_relaxed);
      stat_budget_degraded_.fetch_add(1, std::memory_order_relaxed);
    }
    ReplayGate gate(&inflight_replays_,
                    want_dynamic && !degraded ? options_.max_inflight_replays : SIZE_MAX);
    if (want_dynamic && !degraded && !gate.acquired()) {
      check.mode = CheckMode::kStatic;
      degraded = true;
      stat_degraded_.fetch_add(1, std::memory_order_relaxed);
    }
    options_.faults.BeforeCheck();

    std::string response;
    if (!batch) {
      // A body opening with '{' is the multi-file form: a JSON object
      // naming the set's files, resolved (includes, last-wins overrides)
      // to one flattened effective config before checking. Anything else
      // is the classic raw-config-text form.
      size_t first_byte = body.find_first_not_of(" \t\r\n");
      const bool set_body = first_byte != std::string::npos && body[first_byte] == '{';
      ConfigSetInput set_input;
      if (set_body) {
        Status parsed = ParseConfigSetJson(body, &set_input);
        if (!parsed.ok()) {
          stat_invalid_.fetch_add(1, std::memory_order_relaxed);
          WriteError(fd, parsed);
          return false;
        }
      } else {
        Status valid = ValidateConfigText(body, entry->target->dialect());
        if (!valid.ok()) {
          stat_invalid_.fetch_add(1, std::memory_order_relaxed);
          WriteError(fd, valid);
          return false;
        }
      }
      std::string name = QueryParam(query, "name");
      if (name.empty()) {
        name = set_body ? set_input.name : "config";
      }
      // Routed through a 1-config batch rather than CheckConfig: verdicts
      // are bit-identical (the batch identity guarantee), and the
      // BatchSummary carries the verdict-store counters a bare CheckConfig
      // cannot report — so /check can say whether it was served from disk.
      BatchOptions single_options;
      single_options.check = check;
      single_options.num_threads = 1;
      BatchSummary single_summary;
      std::vector<ResolvedConfigSet> resolutions;
      if (set_body) {
        set_input.name = name;
        std::vector<ConfigSetInput> sets;
        sets.push_back(std::move(set_input));
        single_summary =
            entry->target->CheckConfigSet(sets, single_options, nullptr, &resolutions);
        for (const ConfigSetError& set_error : resolutions.front().errors) {
          response += "{\"type\":\"config_set_error\",\"kind\":\"";
          response += ConfigSetErrorKindName(set_error.kind);
          response += "\",\"file\":\"" + JsonEscape(set_error.file) + "\"";
          response += ",\"line\":" + std::to_string(set_error.line);
          response += ",\"target\":\"" + JsonEscape(set_error.target) + "\"}\n";
        }
      } else {
        std::vector<ConfigInput> single;
        single.push_back(ConfigInput{name, body});
        single_summary = entry->target->CheckConfigBatch(single, single_options);
      }
      stat_store_hits_.fetch_add(single_summary.store_hits, std::memory_order_relaxed);
      const std::vector<Violation>& violations = single_summary.reports.front().violations;
      for (const Violation& violation : violations) {
        response += ViolationJson(violation, nullptr);
      }
      Status final = token.cancelled()
                         ? (token.reason() == CancelToken::Reason::kDeadline
                                ? Status::DeadlineExceeded("request budget exhausted mid-check")
                                : Status::Cancelled("request cancelled mid-check"))
                         : Status::Ok();
      response += "{\"type\":\"summary\",\"status\":\"";
      response += StatusCodeName(final.code());
      response += "\",\"target\":\"" + JsonEscape(target_name) + "\"";
      response += ",\"mode\":\"";
      response += check.mode == CheckMode::kDynamic ? "dynamic" : "static";
      response += "\",\"violations\":" + std::to_string(violations.size());
      if (set_body) {
        response += ",\"files\":" + std::to_string(resolutions.front().files_resolved);
      }
      response += ",\"degraded\":";
      response += degraded ? "true" : "false";
      // cached: every suspect execution was served from the persistent
      // verdict store — nothing replayed for this request.
      const bool cached = single_summary.total_suspects > 0 &&
                          single_summary.unique_replays == 0 &&
                          single_summary.store_hits > 0;
      response += ",\"cached\":";
      response += cached ? "true" : "false";
      response += "}\n";
      int http = HttpStatusFor(final.code());
      (final.ok() ? stat_served_ok_
                  : final.code() == StatusCode::kDeadlineExceeded ? stat_deadline_
                                                                  : stat_cancelled_)
          .fetch_add(1, std::memory_order_relaxed);
      // Only a clean verdict keeps the connection: a request that blew its
      // budget leaves the connection in a state not worth reasoning about.
      const bool stay_open = keep_alive && final.ok();
      WriteHttpResponse(fd, http, HttpReasonFor(http), "application/jsonl", response, {},
                        stay_open);
      return stay_open;
    }

    std::vector<ConfigInput> inputs;
    Status framed = ParseBatchBody(body, &inputs);
    if (!framed.ok()) {
      stat_invalid_.fetch_add(1, std::memory_order_relaxed);
      WriteError(fd, framed);
      return false;
    }
    BatchOptions batch_options;
    batch_options.check = check;
    batch_options.num_threads = 1;  // Concurrency comes from the worker pool.
    BatchSummary summary = entry->target->CheckConfigBatch(inputs, batch_options);
    stat_batch_configs_.fetch_add(inputs.size(), std::memory_order_relaxed);
    stat_store_hits_.fetch_add(summary.store_hits, std::memory_order_relaxed);
    for (const ConfigReport& report : summary.reports) {
      for (const Violation& violation : report.violations) {
        response += ViolationJson(violation, &report.name);
      }
      response += "{\"type\":\"report\",\"index\":" + std::to_string(report.index);
      response += ",\"config\":\"" + JsonEscape(report.name) + "\"";
      response += ",\"status\":\"";
      response += StatusCodeName(report.status.code());
      response += "\"";
      if (!report.status.ok()) {
        response += ",\"error\":\"" + JsonEscape(report.status.message()) + "\"";
      }
      response += ",\"violations\":" + std::to_string(report.violations.size());
      response += ",\"suspects\":" + std::to_string(report.suspects);
      response += ",\"shared_replays\":" + std::to_string(report.shared_replays);
      response += "}\n";
    }
    Status final = token.cancelled()
                       ? (token.reason() == CancelToken::Reason::kDeadline
                              ? Status::DeadlineExceeded("request budget exhausted mid-batch")
                              : Status::Cancelled("request cancelled mid-batch"))
                       : Status::Ok();
    response += "{\"type\":\"batch_summary\",\"status\":\"";
    response += StatusCodeName(final.code());
    response += "\",\"configs\":" + std::to_string(summary.configs_checked);
    response += ",\"errors\":" + std::to_string(summary.configs_with_errors);
    response += ",\"violations\":" + std::to_string(summary.total_violations);
    response += ",\"total_suspects\":" + std::to_string(summary.total_suspects);
    response += ",\"unique_replays\":" + std::to_string(summary.unique_replays);
    response += ",\"degraded\":";
    response += degraded ? "true" : "false";
    response += ",\"cached\":";
    response += (summary.total_suspects > 0 && summary.unique_replays == 0 &&
                 summary.store_hits > 0)
                    ? "true"
                    : "false";
    response += "}\n";
    int http = HttpStatusFor(final.code());
    (final.ok() ? stat_served_ok_
                : final.code() == StatusCode::kDeadlineExceeded ? stat_deadline_
                                                                : stat_cancelled_)
        .fetch_add(1, std::memory_order_relaxed);
    const bool stay_open = keep_alive && final.ok();
    WriteHttpResponse(fd, http, HttpReasonFor(http), "application/jsonl", response, {},
                      stay_open);
    return stay_open;
  } catch (const std::exception& error) {
    stat_internal_.fetch_add(1, std::memory_order_relaxed);
    WriteError(fd, Status::Internal(std::string("contained request failure: ") +
                                    error.what()));
  } catch (...) {
    stat_internal_.fetch_add(1, std::memory_order_relaxed);
    WriteError(fd, Status::Internal("contained request failure of unknown type"));
  }
  return false;
}

ServerStats CheckServer::stats() const {
  ServerStats snapshot;
  snapshot.accepted = stat_accepted_.load(std::memory_order_relaxed);
  snapshot.served_ok = stat_served_ok_.load(std::memory_order_relaxed);
  snapshot.shed = stat_shed_.load(std::memory_order_relaxed);
  snapshot.degraded = stat_degraded_.load(std::memory_order_relaxed);
  snapshot.budget_degraded = stat_budget_degraded_.load(std::memory_order_relaxed);
  snapshot.invalid_requests = stat_invalid_.load(std::memory_order_relaxed);
  snapshot.not_found = stat_not_found_.load(std::memory_order_relaxed);
  snapshot.deadline_exceeded = stat_deadline_.load(std::memory_order_relaxed);
  snapshot.cancelled = stat_cancelled_.load(std::memory_order_relaxed);
  snapshot.read_timeouts = stat_read_timeouts_.load(std::memory_order_relaxed);
  snapshot.internal_errors = stat_internal_.load(std::memory_order_relaxed);
  snapshot.batch_configs = stat_batch_configs_.load(std::memory_order_relaxed);
  snapshot.keepalive_reuses = stat_keepalive_reuses_.load(std::memory_order_relaxed);
  snapshot.store_hits = stat_store_hits_.load(std::memory_order_relaxed);
  snapshot.partial_reads = stat_partial_reads_.load(std::memory_order_relaxed);
  snapshot.client_aborts = stat_client_aborts_.load(std::memory_order_relaxed);
  snapshot.open_connections = gauge_open_connections_.load(std::memory_order_relaxed);
  snapshot.idle_keepalive = gauge_idle_keepalive_.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace spex
