#include "src/serve/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/support/strings.h"

namespace spex {

namespace {

// "slow_replay:50" -> ("slow_replay", 50); missing/invalid parameter
// yields `fallback`.
int64_t TokenParam(std::string_view token, int64_t fallback) {
  size_t colon = token.find(':');
  if (colon == std::string_view::npos) {
    return fallback;
  }
  auto value = ParseInt64(token.substr(colon + 1));
  return value.has_value() && *value > 0 ? *value : fallback;
}

}  // namespace

FaultInjector FaultInjector::FromEnv() {
  FaultInjector faults;
  const char* spec = std::getenv("SPEXCHECKD_FAULTS");
  if (spec == nullptr || spec[0] == '\0') {
    return faults;
  }
  for (const std::string& raw : SplitString(spec, ',')) {
    std::string_view token = TrimWhitespace(raw);
    if (token.rfind("slow_replay", 0) == 0) {
      faults.slow_replay_ms_ = TokenParam(token, 200);
    } else if (token.rfind("alloc_pressure", 0) == 0) {
      faults.alloc_pressure_mb_ = TokenParam(token, 64);
    } else if (token.rfind("cancel_midway", 0) == 0) {
      faults.cancel_after_polls_ = TokenParam(token, 4096);
    }
    // Unknown tokens fall through silently: a typo must not stop startup.
  }
  return faults;
}

void FaultInjector::OnRequestToken(CancelToken* token) const {
  if (cancel_after_polls_ > 0 && token != nullptr) {
    token->CancelAfterPolls(cancel_after_polls_);
  }
}

void FaultInjector::BeforeCheck() const {
  if (slow_replay_ms_ > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(slow_replay_ms_));
  }
  if (alloc_pressure_mb_ > 0) {
    // Touch every page so the allocation is real RSS, then release it —
    // the spike is per-request by construction, which is exactly the
    // property the soak's bounded-memory assertion checks.
    const size_t bytes = static_cast<size_t>(alloc_pressure_mb_) << 20;
    std::vector<unsigned char> pressure(bytes);
    for (size_t i = 0; i < bytes; i += 4096) {
      pressure[i] = static_cast<unsigned char>(i);
    }
  }
}

std::string FaultInjector::Describe() const {
  if (!armed()) {
    return "disarmed";
  }
  std::string out;
  auto append = [&](const std::string& part) {
    if (!out.empty()) {
      out += ", ";
    }
    out += part;
  };
  if (slow_replay_ms_ > 0) {
    append("slow_replay=" + std::to_string(slow_replay_ms_) + "ms");
  }
  if (alloc_pressure_mb_ > 0) {
    append("alloc_pressure=" + std::to_string(alloc_pressure_mb_) + "MiB");
  }
  if (cancel_after_polls_ > 0) {
    append("cancel_midway=" + std::to_string(cancel_after_polls_) + " polls");
  }
  return out;
}

}  // namespace spex
