#include "src/serve/target_pool.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <system_error>
#include <utility>

#include "src/corpus/spec.h"
#include "src/support/verdict_store.h"

namespace spex {

TargetPool::TargetPool(size_t capacity, SessionOptions session_options, std::string store_dir,
                       size_t replay_budget, std::shared_ptr<Clock> clock)
    : capacity_(capacity == 0 ? 1 : capacity),
      session_options_(std::move(session_options)),
      store_dir_(std::move(store_dir)),
      replay_budget_(replay_budget),
      clock_(std::move(clock)) {}

std::shared_ptr<TargetPool::Entry> TargetPool::Acquire(const std::string& name,
                                                       Status* status) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(name);
  if (it != slots_.end()) {
    it->second.last_used = ++tick_;
    ++hits_;
    *status = Status::Ok();
    return it->second.entry;
  }

  // Validate the name before FindTarget — the corpus lookup aborts on
  // unknown names, and turning untrusted input into an abort is the one
  // thing a serving boundary must never do.
  bool known = false;
  for (const TargetSpec& spec : EvaluatedTargets()) {
    if (spec.name == name) {
      known = true;
      break;
    }
  }
  if (!known) {
    *status = Status::NotFound("unknown target '" + name + "'");
    return nullptr;
  }

  auto entry = std::make_shared<Entry>();
  entry->name = name;
  entry->session = std::make_unique<Session>(session_options_);
  entry->target = entry->session->LoadTarget(name);
  if (entry->target == nullptr) {
    *status = Status::Internal("loading target '" + name +
                               "' failed: " + entry->session->RenderDiagnostics());
    return nullptr;
  }
  if (!store_dir_.empty()) {
    // Persistent verdicts: the store outlives both this entry (eviction)
    // and the process (restart), which is the whole point — Open never
    // hard-fails, so a corrupt or unwritable store means checking without
    // one, not a failed load.
    std::error_code ec;
    std::filesystem::create_directories(store_dir_, ec);
    entry->target->AttachVerdictStore(
        VerdictStore::Open(store_dir_ + "/" + name + ".vst"));
  }
  // A fresh target starts with a full bucket: the first `budget` dynamic
  // checks run unthrottled, then refill paces the rest.
  entry->budget_tokens = static_cast<double>(replay_budget_);
  entry->budget_refilled = Now();
  ++loads_;

  if (slots_.size() >= capacity_) {
    // Evict the least-recently-used entry. Dropping the map's shared_ptr
    // is all eviction means — an in-flight request holding the entry keeps
    // it alive until it finishes, so eviction can never pull a Session out
    // from under a replay.
    auto victim = slots_.end();
    for (auto candidate = slots_.begin(); candidate != slots_.end(); ++candidate) {
      if (victim == slots_.end() || candidate->second.last_used < victim->second.last_used) {
        victim = candidate;
      }
    }
    if (victim != slots_.end()) {
      slots_.erase(victim);
      ++evictions_;
    }
  }
  slots_[name] = Slot{entry, ++tick_};
  *status = Status::Ok();
  return entry;
}

bool TargetPool::TryConsumeReplayToken(Entry* entry) {
  if (replay_budget_ == 0 || entry == nullptr) {
    return true;  // Budgets disarmed: every dynamic request may replay.
  }
  std::lock_guard<std::mutex> lock(entry->budget_mutex);
  // Refill: budget tokens per second of (injected) clock time, capped at
  // the bucket size so idle time never banks an unbounded burst.
  MonotonicTime now = Now();
  if (now > entry->budget_refilled) {
    double elapsed_seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(now - entry->budget_refilled)
            .count();
    entry->budget_tokens =
        std::min(static_cast<double>(replay_budget_),
                 entry->budget_tokens + elapsed_seconds * static_cast<double>(replay_budget_));
  }
  entry->budget_refilled = now;
  if (entry->budget_tokens >= 1.0) {
    entry->budget_tokens -= 1.0;
    return true;
  }
  entry->budget_degraded.fetch_add(1, std::memory_order_relaxed);
  return false;
}

size_t TargetPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

size_t TargetPool::loads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return loads_;
}

size_t TargetPool::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

size_t TargetPool::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::vector<TargetPool::BudgetState> TargetPool::BudgetStates() const {
  std::vector<BudgetState> states;
  if (replay_budget_ == 0) {
    return states;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  states.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {
    BudgetState state;
    state.name = name;
    {
      std::lock_guard<std::mutex> budget_lock(slot.entry->budget_mutex);
      state.tokens = slot.entry->budget_tokens;
    }
    state.degraded = slot.entry->budget_degraded.load(std::memory_order_relaxed);
    states.push_back(std::move(state));
  }
  return states;
}

}  // namespace spex
