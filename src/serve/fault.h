// Fault-injection seam for spexcheckd.
//
// A fault-contained service earns that adjective under *injected* fault,
// not on the happy path: the soak job arms this seam and then asserts the
// daemon sheds, degrades and drains instead of dying. The seam is
// deliberately dumb — three faults, armed by an environment variable,
// compiled into the binary but no-ops when disarmed — so production and
// test run the identical request path and the only delta is the armed
// flag. Nothing in src/serve/ branches on "am I under test".
//
// Arming: SPEXCHECKD_FAULTS is a comma-separated list of fault tokens,
// each optionally parameterized with ":<n>":
//
//   slow_replay[:ms]      sleep <ms> (default 200) before every check —
//                         simulates a pathological config / slow target,
//                         drives the deadline and admission paths.
//   alloc_pressure[:mb]   allocate and touch <mb> MiB (default 64) per
//                         request, freed before the response — simulates
//                         memory spikes; the soak asserts RSS stays
//                         bounded because the spike never outlives its
//                         request.
//   cancel_midway[:n]     arm CancelToken::CancelAfterPolls(<n>, default
//                         4096) on every request token — deterministic
//                         mid-replay cancellation, the wall-clock-free way
//                         to exercise the kCancelled path under load.
//
// Example: SPEXCHECKD_FAULTS=slow_replay:50,cancel_midway spexcheckd ...
#ifndef SPEX_SERVE_FAULT_H_
#define SPEX_SERVE_FAULT_H_

#include <cstdint>
#include <string>

#include "src/support/cancellation.h"

namespace spex {

class FaultInjector {
 public:
  // Disarmed: every hook is a no-op.
  FaultInjector() = default;

  // Parses SPEXCHECKD_FAULTS (absent/empty = disarmed). Unknown tokens are
  // ignored with a note in Describe() rather than rejected — a typo in a
  // fault spec must not keep the daemon from starting.
  static FaultInjector FromEnv();

  bool armed() const { return slow_replay_ms_ > 0 || alloc_pressure_mb_ > 0 || cancel_after_polls_ > 0; }

  // Called once per request, before the check runs: arms the deterministic
  // mid-replay cancellation on the request's token.
  void OnRequestToken(CancelToken* token) const;

  // Called on the worker thread immediately before the check executes:
  // injects the latency and/or the allocation spike.
  void BeforeCheck() const;

  // Human-readable summary for the startup log ("faults: slow_replay=50ms").
  std::string Describe() const;

 private:
  int64_t slow_replay_ms_ = 0;
  int64_t alloc_pressure_mb_ = 0;
  int64_t cancel_after_polls_ = 0;
};

}  // namespace spex

#endif  // SPEX_SERVE_FAULT_H_
