// Minimal HTTP/1.1 request/response handling over raw POSIX sockets.
//
// spexcheckd speaks just enough HTTP for curl, a load balancer's health
// probe, and the soak harness: Content-Length bodies only (no chunked
// upload, no TLS), one request at a time per connection. Connections are
// close-by-default; a client that sends "Connection: keep-alive" may
// reuse the connection for sequential requests (the server caps the count
// and the idle gap — see ServerOptions). True pipelining is not
// supported: bytes past the current request's Content-Length are
// discarded, so clients must await each response. That floor is a
// feature — every parsing decision here is a containment decision, because
// the bytes are untrusted:
//
//   - the header block is capped (kMaxHeaderBytes) and the body is capped
//     by the caller's `max_body` — an oversized request is a structured
//     kInvalidArgument, never an allocation the client controls;
//   - reads run under the socket's SO_RCVTIMEO (set by the server), so a
//     slow-loris client that dribbles one byte a second is cut off with
//     kDeadlineExceeded instead of parking a worker forever;
//   - any malformed framing (bad request line, bad Content-Length) is a
//     per-connection error report, and the connection is simply closed.
//
// The parser allocates at most header-cap + body-cap per connection and
// touches nothing global, so a hostile request's blast radius is its own
// worker slot — which the admission queue already bounds.
#ifndef SPEX_SERVE_HTTP_H_
#define SPEX_SERVE_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/support/status.h"

namespace spex {

// Parsed request. `path` is the raw request-target ("/check?target=mysql");
// use SplitRequestTarget/QueryParam to decompose it. Header names are
// lower-cased at parse time (HTTP headers are case-insensitive).
struct HttpRequest {
  std::string method;
  std::string path;
  std::map<std::string, std::string> headers;
  std::string body;
  // Bytes received for this request so far (set even on failure). Lets a
  // keep-alive server distinguish "idle connection expired" (0 bytes,
  // silent close) from "client stalled mid-request" (408).
  size_t wire_bytes = 0;
};

inline constexpr size_t kMaxHeaderBytes = 16 * 1024;

// Reads one request from `fd`. Returns kInvalidArgument for malformed or
// oversized input, kDeadlineExceeded when the socket read timed out
// (SO_RCVTIMEO — the slow-loris guard), kUnavailable when the peer closed
// mid-request. Never throws; never blocks past the socket timeout.
Status ReadHttpRequest(int fd, size_t max_body, HttpRequest* out);

// Writes a complete response (status line, headers, Content-Length, body).
// `keep_alive` selects the Connection header: the caller decides whether
// this connection survives the response (client asked + under the cap +
// not draining) and must close the socket itself when it says false.
// Best-effort: a client that vanished mid-write is its own problem — the
// return only says whether every byte was accepted by the kernel.
bool WriteHttpResponse(int fd, int status_code, std::string_view reason,
                       std::string_view content_type, std::string_view body,
                       const std::vector<std::pair<std::string, std::string>>& extra_headers = {},
                       bool keep_alive = false);

// True when the client opted into connection reuse ("Connection:
// keep-alive", case-insensitive, possibly in a comma-separated list).
// Close-by-default otherwise — existing read-to-EOF clients keep working.
bool RequestWantsKeepAlive(const HttpRequest& request);

// "/check?target=mysql&mode=dynamic" -> {"/check", "target=mysql&mode=dynamic"}.
std::pair<std::string_view, std::string_view> SplitRequestTarget(std::string_view target);

// Value of `key` in a query string, or empty. No percent-decoding beyond
// '+' -> ' ' — target names and modes are [a-z_]+ by construction.
std::string QueryParam(std::string_view query, std::string_view key);

// JSON string escaping for the JSONL verdict stream (quotes, backslashes,
// control characters).
std::string JsonEscape(std::string_view text);

// The HTTP status line a spex::Status maps to. kOk -> 200; kCancelled maps
// to 499 (the de-facto "client closed request" code), kResourceExhausted
// and kUnavailable to 503 (the server tells the client to come back, with
// Retry-After added by the caller), kDeadlineExceeded to 504.
int HttpStatusFor(StatusCode code);
const char* HttpReasonFor(int http_status);

}  // namespace spex

#endif  // SPEX_SERVE_HTTP_H_
