// Minimal HTTP/1.1 request/response handling over raw POSIX sockets.
//
// spexcheckd speaks just enough HTTP for curl, a load balancer's health
// probe, and the soak harness: Content-Length bodies only (no chunked
// upload, no TLS). Connections are close-by-default; a client that sends
// "Connection: keep-alive" may reuse the connection for sequential
// requests (the server caps the count and the idle gap — see
// ServerOptions). True pipelining is not supported: bytes past the
// current request's Content-Length are discarded, so clients must await
// each response. That floor is a feature — every parsing decision here is
// a containment decision, because the bytes are untrusted:
//
//   - the header block is capped (kMaxHeaderBytes) and the body is capped
//     by the parser's `max_body` — an oversized request is a structured
//     kInvalidArgument, never an allocation the client controls;
//   - parsing is incremental (HttpParser): the event-loop front end feeds
//     whatever bytes a nonblocking read produced and learns "need more /
//     complete / error" — a slow-loris client that dribbles one byte a
//     second costs a connection slot and a deadline-heap entry, never a
//     blocked thread;
//   - any malformed framing (bad request line, bad Content-Length) is a
//     per-connection error report, and the connection is simply closed.
//
// The parser allocates at most header-cap + body-cap per connection and
// touches nothing global, so a hostile request's blast radius is its own
// connection slot — which the server's connection cap already bounds.
#ifndef SPEX_SERVE_HTTP_H_
#define SPEX_SERVE_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/support/status.h"

namespace spex {

// Parsed request. `path` is the raw request-target ("/check?target=mysql");
// use SplitRequestTarget/QueryParam to decompose it. Header names are
// lower-cased at parse time (HTTP headers are case-insensitive).
struct HttpRequest {
  std::string method;
  std::string path;
  std::map<std::string, std::string> headers;
  std::string body;
};

inline constexpr size_t kMaxHeaderBytes = 16 * 1024;

// Incremental HTTP/1.1 request parser: a per-connection state machine the
// event loop drives with whatever bytes each nonblocking read produced.
//
//   HttpParser parser(max_body);
//   while (recv gives bytes) {
//     switch (parser.Consume(data, n)) {
//       case kNeedMore:  keep the connection in epoll, deadline armed;
//       case kComplete:  hand parser.request() to a worker;
//       case kError:     answer parser.error() (HTTP 4xx) and close;
//     }
//   }
//
// Extra bytes past the current request's Content-Length are consumed and
// discarded (no pipelining — same contract as before). Reset() rearms the
// machine for the next request on a kept-alive connection.
class HttpParser {
 public:
  enum class State {
    kNeedMore,  // Mid-request: header block or body still incomplete.
    kComplete,  // request() is fully framed and within every cap.
    kError,     // error() says why; the connection is not worth keeping.
  };

  explicit HttpParser(size_t max_body) : max_body_(max_body) { Reset(); }

  // Feeds `n` bytes; returns the state after consuming all of them.
  // Calling Consume after kComplete/kError discards the bytes (the server
  // answers the current request or closes before reading more).
  State Consume(const char* data, size_t n);

  State state() const { return state_; }
  // Valid in state kComplete.
  const HttpRequest& request() const { return request_; }
  // Valid in state kError; always kInvalidArgument (a framing problem).
  const Status& error() const { return error_; }
  // Bytes consumed toward the *current* request. Zero on a kept-alive
  // connection means "idle between requests" — the signal that lets the
  // server close an expired idle connection silently instead of
  // answering 408.
  size_t wire_bytes() const { return wire_bytes_; }

  // Back to "waiting for a fresh request" — the keep-alive rearm.
  void Reset();

 private:
  State Fail(std::string message);
  // Parses the accumulated header block once "\r\n\r\n" is seen.
  State FinishHeaders(size_t header_end);

  size_t max_body_;
  State state_ = State::kNeedMore;
  Status error_;
  HttpRequest request_;
  std::string buffer_;       // Header accumulation (capped by kMaxHeaderBytes).
  size_t body_length_ = 0;   // Declared Content-Length once headers parsed.
  bool in_body_ = false;
  size_t wire_bytes_ = 0;
};

// Writes a complete response (status line, headers, Content-Length, body).
// `keep_alive` selects the Connection header: the caller decides whether
// this connection survives the response (client asked + under the cap +
// not draining) and must close the socket itself when it says false.
// Works on nonblocking sockets: on EAGAIN the writer polls for
// writability up to `eagain_timeout_ms` total (0 = give up immediately —
// the front-end thread's mode, which must never wait on one client).
// Best-effort: a client that vanished mid-write is its own problem — the
// return only says whether every byte was accepted by the kernel.
bool WriteHttpResponse(int fd, int status_code, std::string_view reason,
                       std::string_view content_type, std::string_view body,
                       const std::vector<std::pair<std::string, std::string>>& extra_headers = {},
                       bool keep_alive = false, int eagain_timeout_ms = 5000);

// True when the client opted into connection reuse ("Connection:
// keep-alive", case-insensitive, possibly in a comma-separated list).
// Close-by-default otherwise — existing read-to-EOF clients keep working.
bool RequestWantsKeepAlive(const HttpRequest& request);

// "/check?target=mysql&mode=dynamic" -> {"/check", "target=mysql&mode=dynamic"}.
std::pair<std::string_view, std::string_view> SplitRequestTarget(std::string_view target);

// Value of `key` in a query string, or empty. No percent-decoding beyond
// '+' -> ' ' — target names and modes are [a-z_]+ by construction.
std::string QueryParam(std::string_view query, std::string_view key);

// JSON string escaping for the JSONL verdict stream (quotes, backslashes,
// control characters).
std::string JsonEscape(std::string_view text);

// The HTTP status line a spex::Status maps to. kOk -> 200; kCancelled maps
// to 499 (the de-facto "client closed request" code), kResourceExhausted
// and kUnavailable to 503 (the server tells the client to come back, with
// Retry-After added by the caller), kDeadlineExceeded to 504.
int HttpStatusFor(StatusCode code);
const char* HttpReasonFor(int http_status);

}  // namespace spex

#endif  // SPEX_SERVE_HTTP_H_
