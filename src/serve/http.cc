#include "src/serve/http.h"

#include <cerrno>
#include <cstdio>

#include <sys/socket.h>
#include <unistd.h>

#include "src/support/strings.h"

namespace spex {

namespace {

// recv() wrapper distinguishing timeout (SO_RCVTIMEO) from close/error.
// Returns >0 bytes, 0 on orderly close, -1 on timeout, -2 on hard error.
ssize_t RecvSome(int fd, char* buffer, size_t capacity) {
  while (true) {
    ssize_t n = ::recv(fd, buffer, capacity, 0);
    if (n >= 0) {
      return n;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return -1;
    }
    return -2;
  }
}

std::string_view TrimOws(std::string_view text) { return TrimWhitespace(text); }

}  // namespace

Status ReadHttpRequest(int fd, size_t max_body, HttpRequest* out) {
  *out = HttpRequest();  // Reusable across a keep-alive loop.
  // Phase 1: accumulate until the blank line ending the header block.
  std::string data;
  data.reserve(1024);
  size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    if (data.size() > kMaxHeaderBytes) {
      return Status::InvalidArgument("request header block exceeds " +
                                     std::to_string(kMaxHeaderBytes) + " bytes");
    }
    ssize_t n = RecvSome(fd, chunk, sizeof(chunk));
    if (n == -1) {
      return Status::DeadlineExceeded("timed out reading request headers");
    }
    if (n == -2) {
      return Status::Unavailable("connection error while reading request");
    }
    if (n == 0) {
      return Status::Unavailable("peer closed the connection mid-request");
    }
    data.append(chunk, static_cast<size_t>(n));
    out->wire_bytes += static_cast<size_t>(n);
    header_end = data.find("\r\n\r\n");
  }

  // Phase 2: request line + headers.
  std::string_view header_block = std::string_view(data).substr(0, header_end);
  size_t line_end = header_block.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? header_block : header_block.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Status::InvalidArgument("malformed request line");
  }
  out->method = std::string(request_line.substr(0, sp1));
  out->path = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view rest = line_end == std::string_view::npos
                              ? std::string_view()
                              : header_block.substr(line_end + 2);
  while (!rest.empty()) {
    size_t eol = rest.find("\r\n");
    std::string_view line = eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view() : rest.substr(eol + 2);
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      continue;  // Tolerate junk header lines; framing is what matters.
    }
    std::string name = ToLowerCopy(TrimOws(line.substr(0, colon)));
    out->headers[name] = std::string(TrimOws(line.substr(colon + 1)));
  }

  // Phase 3: body, gated by Content-Length.
  size_t body_length = 0;
  auto it = out->headers.find("content-length");
  if (it != out->headers.end()) {
    auto parsed = ParseInt64(it->second);
    if (!parsed.has_value() || *parsed < 0) {
      return Status::InvalidArgument("malformed Content-Length");
    }
    body_length = static_cast<size_t>(*parsed);
  }
  if (body_length > max_body) {
    return Status::InvalidArgument("request body of " + std::to_string(body_length) +
                                   " bytes exceeds the " + std::to_string(max_body) +
                                   "-byte limit");
  }
  out->body = data.substr(header_end + 4);
  if (out->body.size() > body_length) {
    out->body.resize(body_length);  // Ignore pipelined trailing bytes.
  }
  while (out->body.size() < body_length) {
    ssize_t n = RecvSome(fd, chunk, sizeof(chunk));
    if (n == -1) {
      return Status::DeadlineExceeded("timed out reading request body");
    }
    if (n <= 0) {
      return Status::Unavailable("peer closed the connection mid-body");
    }
    size_t want = body_length - out->body.size();
    out->body.append(chunk, std::min(static_cast<size_t>(n), want));
    out->wire_bytes += static_cast<size_t>(n);
  }
  return Status::Ok();
}

bool RequestWantsKeepAlive(const HttpRequest& request) {
  auto it = request.headers.find("connection");
  if (it == request.headers.end()) {
    return false;
  }
  // The header is a comma-separated token list; scan for "keep-alive".
  std::string_view value = it->second;
  while (!value.empty()) {
    size_t comma = value.find(',');
    std::string_view token = comma == std::string_view::npos ? value : value.substr(0, comma);
    value = comma == std::string_view::npos ? std::string_view() : value.substr(comma + 1);
    if (ToLowerCopy(TrimOws(token)) == "keep-alive") {
      return true;
    }
  }
  return false;
}

bool WriteHttpResponse(int fd, int status_code, std::string_view reason,
                       std::string_view content_type, std::string_view body,
                       const std::vector<std::pair<std::string, std::string>>& extra_headers,
                       bool keep_alive) {
  std::string response;
  response.reserve(128 + body.size());
  response += "HTTP/1.1 ";
  response += std::to_string(status_code);
  response += ' ';
  response += reason;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += keep_alive ? "\r\nConnection: keep-alive\r\n" : "\r\nConnection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    response += name;
    response += ": ";
    response += value;
    response += "\r\n";
  }
  response += "\r\n";
  response += body;
  size_t written = 0;
  while (written < response.size()) {
    ssize_t n = ::send(fd, response.data() + written, response.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;  // Client gone; its loss.
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

std::pair<std::string_view, std::string_view> SplitRequestTarget(std::string_view target) {
  size_t question = target.find('?');
  if (question == std::string_view::npos) {
    return {target, std::string_view()};
  }
  return {target.substr(0, question), target.substr(question + 1)};
}

std::string QueryParam(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    size_t amp = query.find('&');
    std::string_view pair = amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view() : query.substr(amp + 1);
    size_t eq = pair.find('=');
    std::string_view pair_key = eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (pair_key != key) {
      continue;
    }
    std::string value(eq == std::string_view::npos ? std::string_view() : pair.substr(eq + 1));
    for (char& c : value) {
      if (c == '+') {
        c = ' ';
      }
    }
    return value;
  }
  return std::string();
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kResourceExhausted:
      return 503;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

const char* HttpReasonFor(int http_status) {
  switch (http_status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 408:
      return "Request Timeout";
    case 499:
      return "Client Closed Request";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

}  // namespace spex
