#include "src/serve/http.h"

#include <cerrno>
#include <cstdio>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/support/strings.h"

namespace spex {

namespace {

std::string_view TrimOws(std::string_view text) { return TrimWhitespace(text); }

}  // namespace

void HttpParser::Reset() {
  state_ = State::kNeedMore;
  error_ = Status::Ok();
  request_ = HttpRequest();
  buffer_.clear();
  body_length_ = 0;
  in_body_ = false;
  wire_bytes_ = 0;
}

HttpParser::State HttpParser::Fail(std::string message) {
  state_ = State::kError;
  error_ = Status::InvalidArgument(std::move(message));
  buffer_.clear();
  return state_;
}

HttpParser::State HttpParser::FinishHeaders(size_t header_end) {
  std::string_view header_block = std::string_view(buffer_).substr(0, header_end);
  size_t line_end = header_block.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? header_block : header_block.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Fail("malformed request line");
  }
  request_.method = std::string(request_line.substr(0, sp1));
  request_.path = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view rest = line_end == std::string_view::npos
                              ? std::string_view()
                              : header_block.substr(line_end + 2);
  while (!rest.empty()) {
    size_t eol = rest.find("\r\n");
    std::string_view line = eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view() : rest.substr(eol + 2);
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      continue;  // Tolerate junk header lines; framing is what matters.
    }
    std::string name = ToLowerCopy(TrimOws(line.substr(0, colon)));
    request_.headers[name] = std::string(TrimOws(line.substr(colon + 1)));
  }

  body_length_ = 0;
  auto it = request_.headers.find("content-length");
  if (it != request_.headers.end()) {
    auto parsed = ParseInt64(it->second);
    if (!parsed.has_value() || *parsed < 0) {
      return Fail("malformed Content-Length");
    }
    body_length_ = static_cast<size_t>(*parsed);
  }
  if (body_length_ > max_body_) {
    return Fail("request body of " + std::to_string(body_length_) +
                " bytes exceeds the " + std::to_string(max_body_) + "-byte limit");
  }

  // Whatever followed the blank line is body (possibly all of it).
  request_.body = buffer_.substr(header_end + 4);
  buffer_.clear();
  if (request_.body.size() >= body_length_) {
    request_.body.resize(body_length_);  // Ignore pipelined trailing bytes.
    state_ = State::kComplete;
  } else {
    in_body_ = true;
    state_ = State::kNeedMore;
  }
  return state_;
}

HttpParser::State HttpParser::Consume(const char* data, size_t n) {
  if (state_ != State::kNeedMore) {
    return state_;  // Already terminal; extra bytes are the client's loss.
  }
  wire_bytes_ += n;
  if (in_body_) {
    size_t want = body_length_ - request_.body.size();
    request_.body.append(data, std::min(n, want));
    if (request_.body.size() >= body_length_) {
      state_ = State::kComplete;
    }
    return state_;
  }
  buffer_.append(data, n);
  size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (buffer_.size() > kMaxHeaderBytes) {
      // An attacker streaming endless headers hits the cap, not the heap.
      return Fail("request header block exceeds " + std::to_string(kMaxHeaderBytes) +
                  " bytes");
    }
    return state_;  // Still accumulating headers.
  }
  if (header_end > kMaxHeaderBytes) {
    return Fail("request header block exceeds " + std::to_string(kMaxHeaderBytes) +
                " bytes");
  }
  return FinishHeaders(header_end);
}

bool RequestWantsKeepAlive(const HttpRequest& request) {
  auto it = request.headers.find("connection");
  if (it == request.headers.end()) {
    return false;
  }
  // The header is a comma-separated token list; scan for "keep-alive".
  std::string_view value = it->second;
  while (!value.empty()) {
    size_t comma = value.find(',');
    std::string_view token = comma == std::string_view::npos ? value : value.substr(0, comma);
    value = comma == std::string_view::npos ? std::string_view() : value.substr(comma + 1);
    if (ToLowerCopy(TrimOws(token)) == "keep-alive") {
      return true;
    }
  }
  return false;
}

bool WriteHttpResponse(int fd, int status_code, std::string_view reason,
                       std::string_view content_type, std::string_view body,
                       const std::vector<std::pair<std::string, std::string>>& extra_headers,
                       bool keep_alive, int eagain_timeout_ms) {
  std::string response;
  response.reserve(128 + body.size());
  response += "HTTP/1.1 ";
  response += std::to_string(status_code);
  response += ' ';
  response += reason;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += keep_alive ? "\r\nConnection: keep-alive\r\n" : "\r\nConnection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    response += name;
    response += ": ";
    response += value;
    response += "\r\n";
  }
  response += "\r\n";
  response += body;
  size_t written = 0;
  int wait_budget_ms = eagain_timeout_ms;
  while (written < response.size()) {
    ssize_t n = ::send(fd, response.data() + written, response.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Nonblocking socket, full send buffer: the client is not reading.
        // Wait for writability within the caller's budget — a worker may
        // spare a bounded wait, the event loop (budget 0) never waits.
        if (wait_budget_ms <= 0) {
          return false;
        }
        int slice = wait_budget_ms < 100 ? wait_budget_ms : 100;
        struct pollfd pfd{fd, POLLOUT, 0};
        int ready = ::poll(&pfd, 1, slice);
        wait_budget_ms -= slice;
        if (ready < 0 && errno != EINTR) {
          return false;
        }
        continue;
      }
      return false;  // Client gone; its loss.
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

std::pair<std::string_view, std::string_view> SplitRequestTarget(std::string_view target) {
  size_t question = target.find('?');
  if (question == std::string_view::npos) {
    return {target, std::string_view()};
  }
  return {target.substr(0, question), target.substr(question + 1)};
}

std::string QueryParam(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    size_t amp = query.find('&');
    std::string_view pair = amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view() : query.substr(amp + 1);
    size_t eq = pair.find('=');
    std::string_view pair_key = eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (pair_key != key) {
      continue;
    }
    std::string value(eq == std::string_view::npos ? std::string_view() : pair.substr(eq + 1));
    for (char& c : value) {
      if (c == '+') {
        c = ' ';
      }
    }
    return value;
  }
  return std::string();
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kResourceExhausted:
      return 503;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

const char* HttpReasonFor(int http_status) {
  switch (http_status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 408:
      return "Request Timeout";
    case 499:
      return "Client Closed Request";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

}  // namespace spex
