#include "src/inject/campaign.h"

#include <algorithm>
#include <atomic>
#include <set>

#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace spex {

const char* ReactionCategoryName(ReactionCategory category) {
  switch (category) {
    case ReactionCategory::kCrashHang:
      return "crash/hang";
    case ReactionCategory::kEarlyTermination:
      return "early termination";
    case ReactionCategory::kFunctionalFailure:
      return "functional failure";
    case ReactionCategory::kSilentViolation:
      return "silent violation";
    case ReactionCategory::kSilentIgnorance:
      return "silent ignorance";
    case ReactionCategory::kGoodReaction:
      return "good reaction";
    case ReactionCategory::kNoIssue:
      return "no issue";
  }
  return "?";
}

bool IsVulnerability(ReactionCategory category) {
  switch (category) {
    case ReactionCategory::kCrashHang:
    case ReactionCategory::kEarlyTermination:
    case ReactionCategory::kFunctionalFailure:
    case ReactionCategory::kSilentViolation:
    case ReactionCategory::kSilentIgnorance:
      return true;
    default:
      return false;
  }
}

size_t CampaignSummary::CountCategory(ReactionCategory category) const {
  size_t count = 0;
  for (const InjectionResult& result : results) {
    if (result.category == category) {
      ++count;
    }
  }
  return count;
}

size_t CampaignSummary::TotalVulnerabilities() const {
  size_t count = 0;
  for (const InjectionResult& result : results) {
    if (IsVulnerability(result.category)) {
      ++count;
    }
  }
  return count;
}

size_t CampaignSummary::UniqueVulnerabilityLocations() const {
  std::set<std::string> locations;
  for (const InjectionResult& result : results) {
    if (IsVulnerability(result.category)) {
      locations.insert(result.vulnerability_loc.IsValid() ? result.vulnerability_loc.LineKey()
                                                          : result.config.param);
    }
  }
  return locations.size();
}

InjectionCampaign::InjectionCampaign(const Module& module, const SutSpec& sut,
                                     OsSimulator os_template, CampaignOptions options)
    : module_(module), sut_(sut), os_template_(std::move(os_template)), options_(options) {
  if (options_.sort_tests_by_cost) {
    // Shortest-test-first: cheap tests surface failures sooner, which the
    // stop-at-first-failure optimization then exploits.
    std::stable_sort(sut_.tests.begin(), sut_.tests.end(),
                     [](const TestCase& a, const TestCase& b) {
                       return a.cost_hint < b.cost_hint;
                     });
  }
}

InjectionCampaign::RunOutcome InjectionCampaign::Execute(Interpreter& interp,
                                                         const ConfigFile& config) const {
  RunOutcome outcome;
  // Phase 1: parse every setting.
  for (const ConfigEntry& entry : config.entries()) {
    if (entry.kind != ConfigEntry::Kind::kSetting) {
      continue;
    }
    CallOutcome call = interp.Call(sut_.parse_function,
                                   {RtValue::Str(entry.key), RtValue::Str(entry.value)});
    if (call.status != CallOutcome::Status::kOk) {
      outcome.phase = RunOutcome::Phase::kParse;
      outcome.status = call.status;
      outcome.exit_code = call.exit_code;
      outcome.detail = call.trap_reason;
      return outcome;
    }
    if (call.return_value.AsInt() < 0) {
      outcome.phase = RunOutcome::Phase::kParse;
      outcome.rejected = true;
      outcome.detail = "configuration rejected while parsing '" + entry.key + "'";
      return outcome;
    }
  }
  // Phase 2: server initialization.
  {
    CallOutcome call = interp.Call(sut_.init_function, {});
    if (call.status != CallOutcome::Status::kOk) {
      outcome.phase = RunOutcome::Phase::kInit;
      outcome.status = call.status;
      outcome.exit_code = call.exit_code;
      outcome.detail = call.trap_reason;
      return outcome;
    }
    if (call.return_value.AsInt() < 0) {
      outcome.phase = RunOutcome::Phase::kInit;
      outcome.rejected = true;
      outcome.detail = "server initialization failed";
      return outcome;
    }
  }
  // Phase 3: functional tests.
  for (const TestCase& test : sut_.tests) {
    ++outcome.tests_run;
    CallOutcome call = interp.Call(test.function, {});
    if (call.status != CallOutcome::Status::kOk) {
      outcome.phase = RunOutcome::Phase::kTest;
      outcome.status = call.status;
      outcome.exit_code = call.exit_code;
      outcome.detail = call.trap_reason;
      outcome.failed_test = test.name;
      return outcome;
    }
    if (call.return_value.AsInt() != test.expected) {
      outcome.phase = RunOutcome::Phase::kTest;
      outcome.failed_test = test.name;
      outcome.detail = "test '" + test.name + "' failed (got " +
                       std::to_string(call.return_value.AsInt()) + ", want " +
                       std::to_string(test.expected) + ")";
      if (options_.stop_at_first_failure) {
        return outcome;
      }
    }
  }
  if (!outcome.failed_test.empty()) {
    outcome.phase = RunOutcome::Phase::kTest;
    return outcome;
  }
  outcome.phase = RunOutcome::Phase::kDone;
  return outcome;
}

bool InjectionCampaign::LogsPinpoint(const std::vector<std::string>& logs,
                                     const Misconfiguration& config,
                                     const ConfigFile& applied) const {
  uint32_t line = applied.LineOf(config.param);
  std::string line_marker = "line " + std::to_string(line);
  // Needles that count as pinpointing: the parameter name, the injected
  // value, the config-line marker, and the extra settings applied with it
  // (control-dep master, relationship peer). Collected once instead of
  // re-assembled per log line, and matched case-insensitively throughout —
  // a log that echoes the value in different case still pinpoints it.
  std::vector<std::string_view> needles;
  needles.reserve(3 + config.extra_settings.size());
  needles.push_back(config.param);
  if (config.value.size() >= 2) {
    needles.push_back(config.value);
  }
  if (line != 0) {
    needles.push_back(line_marker);
  }
  for (const auto& [key, value] : config.extra_settings) {
    needles.push_back(key);
  }
  for (const std::string& log : logs) {
    for (std::string_view needle : needles) {
      if (ContainsSubstringIgnoreCase(log, needle)) {
        return true;
      }
    }
  }
  return false;
}

bool InjectionCampaign::BaselinePasses(const ConfigFile& template_config) {
  OsSimulator os = os_template_;
  Interpreter interp(module_, &os, options_.interp);
  RunOutcome outcome = Execute(interp, template_config);
  return outcome.phase == RunOutcome::Phase::kDone;
}

InjectionResult InjectionCampaign::RunOne(const ConfigFile& template_config,
                                          const Misconfiguration& config) {
  OsSimulator os = os_template_;
  Interpreter interp(module_, &os, options_.interp);
  return RunOneWith(interp, os, template_config, config);
}

InjectionResult InjectionCampaign::RunOneWith(Interpreter& interp, OsSimulator& os,
                                              const ConfigFile& template_config,
                                              const Misconfiguration& config) const {
  // Fresh template state for every run: injected damage (occupied ports,
  // allocations, mutated globals) must never leak across runs.
  os = os_template_;
  interp.Reset();

  InjectionResult result;
  result.config = config;
  result.vulnerability_loc = config.constraint_loc;

  ConfigFile applied = template_config;
  applied.Set(config.param, config.value);
  for (const auto& [key, value] : config.extra_settings) {
    applied.Set(key, value);
  }

  RunOutcome outcome = Execute(interp, applied);
  result.logs = interp.logs();
  result.tests_run = outcome.tests_run;
  result.pinpointed = LogsPinpoint(result.logs, config, applied);

  // --- Classification per Table 3.
  if (outcome.status == CallOutcome::Status::kTrap ||
      outcome.status == CallOutcome::Status::kHang) {
    result.category = ReactionCategory::kCrashHang;
    result.detail = outcome.detail;
    return result;
  }
  if (outcome.status == CallOutcome::Status::kExit || outcome.rejected) {
    result.category =
        result.pinpointed ? ReactionCategory::kGoodReaction : ReactionCategory::kEarlyTermination;
    result.detail = outcome.detail;
    return result;
  }
  if (!outcome.failed_test.empty()) {
    result.category = result.pinpointed ? ReactionCategory::kGoodReaction
                                        : ReactionCategory::kFunctionalFailure;
    result.detail = outcome.detail;
    return result;
  }

  // Everything "worked". Look for silent violation / ignorance.
  auto storage_it = sut_.param_storage.find(config.param);
  if (config.expect_ignored) {
    bool read = storage_it != sut_.param_storage.end() &&
                interp.GlobalWasRead(storage_it->second);
    if (!read && !result.pinpointed) {
      result.category = ReactionCategory::kSilentIgnorance;
      result.detail = "dependent parameter was never consulted";
      return result;
    }
    result.category = result.pinpointed ? ReactionCategory::kGoodReaction
                                        : ReactionCategory::kNoIssue;
    return result;
  }
  if (storage_it != sut_.param_storage.end() && !result.pinpointed) {
    auto effective = interp.ReadGlobal(storage_it->second);
    if (effective.has_value() && effective->kind != RtValue::Kind::kString &&
        effective->kind != RtValue::Kind::kNull) {
      int64_t actual = effective->AsInt();
      if (config.intended_numeric.has_value() && actual != *config.intended_numeric) {
        result.category = ReactionCategory::kSilentViolation;
        result.detail = "configured " + config.value + " but effective value is " +
                        std::to_string(actual);
        return result;
      }
      if (!config.intended_numeric.has_value()) {
        auto strict = ParseInt64(config.value);
        if (!strict.has_value()) {
          // Garbage accepted without a word: the atoi("not_a_number") -> 0
          // silent acceptance.
          result.category = ReactionCategory::kSilentViolation;
          result.detail = "non-numeric input silently accepted as " + std::to_string(actual);
          return result;
        }
      }
    } else if (effective.has_value() && effective->kind == RtValue::Kind::kString &&
               effective->s != config.value) {
      result.category = ReactionCategory::kSilentViolation;
      result.detail = "configured \"" + config.value + "\" but effective value is \"" +
                      effective->s + "\"";
      return result;
    }
  }
  result.category =
      result.pinpointed ? ReactionCategory::kGoodReaction : ReactionCategory::kNoIssue;
  return result;
}

CampaignSummary InjectionCampaign::RunAll(const ConfigFile& template_config,
                                          const std::vector<Misconfiguration>& configs) {
  CampaignSummary summary;
  size_t worker_count =
      ThreadPool::ResolveThreadCount(options_.num_threads < 0
                                         ? 1
                                         : static_cast<size_t>(options_.num_threads));
  worker_count = std::min(worker_count, configs.size());

  if (worker_count <= 1) {
    // Serial path; still reuses one interpreter via Reset() instead of
    // rebuilding per run.
    OsSimulator os = os_template_;
    Interpreter interp(module_, &os, options_.interp);
    summary.results.reserve(configs.size());
    for (const Misconfiguration& config : configs) {
      summary.results.push_back(RunOneWith(interp, os, template_config, config));
    }
  } else {
    // Fan out over pre-sized slots: worker i writes results[index] for the
    // indexes it claims, so result order — and therefore every summary
    // statistic — is identical to the serial run. The module, SUT spec and
    // OS template are shared immutably; each worker owns its interpreter
    // and simulator copy.
    summary.results.resize(configs.size());
    std::atomic<size_t> next_index{0};
    ThreadPool pool(worker_count);
    for (size_t w = 0; w < worker_count; ++w) {
      pool.Submit([&] {
        OsSimulator os = os_template_;
        Interpreter interp(module_, &os, options_.interp);
        for (size_t i = next_index.fetch_add(1); i < configs.size();
             i = next_index.fetch_add(1)) {
          summary.results[i] = RunOneWith(interp, os, template_config, configs[i]);
        }
      });
    }
    pool.Wait();
  }

  for (const InjectionResult& result : summary.results) {
    summary.total_tests_run += result.tests_run;
  }
  return summary;
}

}  // namespace spex
